//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io registry, so this shim implements
//! the subset of proptest's API that the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`sample::select`] /
//! [`sample::Index`], `any::<T>()`, and simple `"[class]{lo,hi}"` string
//! strategies. Differences from the real crate:
//!
//! * **no shrinking** — a failing case reports the panic message of the
//!   underlying `assert!`, not a minimized input;
//! * case counts default to [`ProptestConfig::default`] (32) and can be
//!   overridden per-block with `ProptestConfig::with_cases` or globally with
//!   the `PROPTEST_CASES` environment variable;
//! * generation is deterministic per test-function name, so failures
//!   reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator; the whole stream is determined by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `span` (`span > 0`).
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count, honouring a `PROPTEST_CASES` env override.
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy for integer-like types.
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

/// `"[class]{lo,hi}"` string strategies (the only regex shape the workspace
/// uses). A `-` between two characters denotes a range; first or last in the
/// class it is literal.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parse `[class]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            if a > b {
                return None;
            }
            chars.extend(a..=b);
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for [`vec()`](fn@vec): a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy yielding vectors of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies, mirroring `proptest::sample`.
pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};

    /// Pick uniformly from an explicit list of options.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// A position into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` elements.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((u128::from(self.0) * len as u128) >> 64) as usize
        }
    }

    /// Full-range strategy for [`Index`].
    #[derive(Debug, Clone, Copy)]
    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;
        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }

    impl Arbitrary for Index {
        type Strategy = IndexStrategy;
        fn arbitrary() -> Self::Strategy {
            IndexStrategy
        }
    }
}

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// `prop_assume!` under a proptest-compatible name: a failed assumption
/// skips to the next generated case (the real crate re-draws instead of
/// consuming a case; for the shim's fixed case counts the distinction does
/// not matter). Only usable where [`proptest!`] places the body — directly
/// inside the per-case loop.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// FNV-1a over the test name: a stable per-test seed.
#[doc(hidden)]
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Define property tests: each `pat in strategy` parameter is drawn fresh for
/// every case, and the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cases = $crate::ProptestConfig::effective_cases(&$cfg);
            let mut __rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
            for __case in 0..__cases {
                let _ = __case;
                $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn class_pattern_parses() {
        let (chars, lo, hi) = super::parse_class_pattern("[a-c_]{1,4}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '_']);
        assert_eq!((lo, hi), (1, 4));
        // Trailing '-' is literal.
        let (chars, _, _) = super::parse_class_pattern("[A-B -]{2,2}").unwrap();
        assert_eq!(chars, vec!['A', 'B', ' ', '-']);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 0u64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn tuples_and_vec((a, b) in (0u32..10, 1u32..5),
                          v in crate::collection::vec(0usize..9, 2..6)) {
            prop_assert!(a < 10 && (1..5).contains(&b));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 9));
        }

        #[test]
        fn strings_match_class(s in "[a-c]{1,8}") {
            prop_assert!((1..=8).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn flat_map_and_index(
            (len, i) in (1usize..50).prop_flat_map(|l| (Just(l), any::<crate::sample::Index>())),
        ) {
            prop_assert!(i.index(len) < len);
        }
    }
}
