//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored shim provides exactly the [`Buf`]/[`BufMut`] subset the workspace
//! uses for its binary codecs: little-endian integer reads/writes over
//! `&[u8]` / `Vec<u8>`. The method names and semantics match the real crate
//! so the code migrates transparently if a registry becomes available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Read access to a contiguous buffer, advancing past consumed bytes.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Advance the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes into `dst` and advance.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    ///
    /// # Panics
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    ///
    /// # Panics
    /// Panics if fewer than 2 bytes remain.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Append access to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(0xAB);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_slice(b"xyz");

        let mut buf = out.as_slice();
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16_le(), 0xBEEF);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        buf.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut buf = &data[..];
        buf.advance(2);
        assert_eq!(buf.get_u8(), 3);
    }

    #[test]
    #[should_panic]
    fn overread_panics() {
        let mut buf = &[1u8][..];
        let _ = buf.get_u32_le();
    }
}
