//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io registry, so this shim provides the
//! small deterministic-RNG subset the workspace uses for synthetic data
//! generation: `StdRng::seed_from_u64`, `gen`, `gen_range` (half-open and
//! inclusive integer ranges plus `f64` ranges) and `gen_bool`. The generator
//! is xoshiro256**, seeded via SplitMix64 — high-quality enough that the
//! workloads' statistical assertions (bucket balance, distribution moments)
//! hold just as they would under the real crate. Value streams differ from
//! upstream `rand`, which is fine: every consumer treats the RNG as an
//! arbitrary deterministic source.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256** seeded by SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from the full value range.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a uniform sampler over an interval. The blanket
/// [`SampleRange`] impls below are generic over this trait — one impl per
/// range shape, not per type — so integer-literal inference unifies the way
/// it does with the real crate (`BASES[rng.gen_range(0..4)]` infers `usize`).
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain.
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(mod_span(rng, span) as $t)
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    lo.wrapping_add(mod_span(rng, span) as $t)
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = lo + u * (hi - lo);
        // Guard against landing on `hi` through rounding.
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

/// Uniform draw in `[0, span)` by 128-bit widening multiply (Lemire, no
/// modulo bias worth caring about at these spans).
#[inline]
fn mod_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of `T` from its full range.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut hist = [0u32; 10];
        for _ in 0..100_000 {
            hist[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &hist {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
