//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io registry, so this shim implements
//! the benchmarking API surface the workspace's `benches/` use — groups,
//! throughput annotation, `iter`/`iter_batched`, `BenchmarkId` — on a plain
//! wall-clock harness. No statistics beyond mean-of-samples and no HTML
//! reports; each benchmark prints one line:
//!
//! ```text
//! group/name            123.4 ns/iter  (8.1 Melem/s)
//! ```
//!
//! Use with `harness = false` bench targets, exactly like real criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark (an implicit single-entry group).
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut g = self.benchmark_group(name.clone());
        g.bench_function(name, f);
        g.finish();
    }
}

/// Units for reporting rates alongside raw time, mirroring criterion.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// How much setup output `iter_batched` should pre-build per sample.
/// Accepted for API compatibility; this harness always sets up per-iteration.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// A parameterized benchmark name (`label/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Compose `label/parameter`.
    pub fn new(label: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            full: format!("{}/{}", label.into(), parameter),
        }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.full
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set the number of timing samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up: self.warm_up_time,
            budget: self.measurement_time,
            samples: self.sample_size,
            ns_per_iter: 0.0,
        };
        f(&mut bencher);
        self.report(&id, bencher.ns_per_iter);
    }

    /// Run one benchmark that closes over an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<String>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group (prints nothing extra; kept for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &str, ns_per_iter: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if ns_per_iter > 0.0 => {
                format!("  ({:.2} Melem/s)", n as f64 * 1e3 / ns_per_iter)
            }
            Some(Throughput::Bytes(n)) if ns_per_iter > 0.0 => {
                format!(
                    "  ({:.2} MiB/s)",
                    n as f64 * 1e9 / ns_per_iter / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!("{}/{id:<40} {ns_per_iter:>12.1} ns/iter{rate}", self.name);
    }
}

/// Drives the timed closure; passed to every benchmark body.
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    samples: usize,
    ns_per_iter: f64,
}

impl Bencher {
    /// Time a routine, amortized over as many iterations as fit the budget.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up and calibration: how many iterations fit one sample?
        let cal_start = Instant::now();
        let mut cal_iters: u64 = 0;
        while cal_start.elapsed() < self.warm_up || cal_iters == 0 {
            black_box(routine());
            cal_iters += 1;
            if cal_iters >= 1 << 20 {
                break;
            }
        }
        let per_iter = cal_start.elapsed().as_nanos() as f64 / cal_iters as f64;
        let sample_budget = self.budget.as_nanos() as f64 / self.samples as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);

        let mut total_ns = 0u128;
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total_ns += t.elapsed().as_nanos();
            total_iters += iters_per_sample;
        }
        self.ns_per_iter = total_ns as f64 / total_iters as f64;
    }

    /// Time a routine whose input is rebuilt (untimed) before every call.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        // Warm-up: one call to page everything in.
        black_box(routine(setup()));
        let deadline = Instant::now() + self.budget;
        let mut total_ns = 0u128;
        let mut total_iters = 0u64;
        while Instant::now() < deadline || total_iters == 0 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total_ns += t.elapsed().as_nanos();
            total_iters += 1;
            if total_iters >= 1 << 20 {
                break;
            }
        }
        self.ns_per_iter = total_ns as f64 / total_iters as f64;
    }
}

/// Bundle benchmark functions into one runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(3);
        g.throughput(Throughput::Elements(1));
        let mut x = 0u64;
        g.bench_function("add", |b| {
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        g.bench_function(BenchmarkId::new("batched", 7), |b| {
            b.iter_batched(|| 1u64, |v| v + 1, BatchSize::SmallInput)
        });
        g.finish();
    }
}
