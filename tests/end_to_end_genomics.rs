//! End-to-end genomics pipeline integration test: simulate genomes, sequence
//! them into FASTQ, parse the FASTQ back, extract k-mer sets (McCortex-like),
//! index with RAMBO, and verify queries against the exact inverted index —
//! the full Figure 1 workflow across five crates.

use rambo::baselines::InvertedIndex;
use rambo::core::{QueryContext, QueryMode, Rambo, RamboBuilder};
use rambo::kmer::sim::GenomeSimulator;
use rambo::kmer::{kmers_of, FastqReader, KmerSet};
use std::io::Cursor;

const K: usize = 31;

/// `(name, distinct packed k-mers)` per document.
type DocKmers = Vec<(String, Vec<u64>)>;
/// `(name, genome bases)` per simulated strain.
type Genomes = Vec<(String, Vec<u8>)>;

fn build_archive() -> (DocKmers, Genomes) {
    let mut sim = GenomeSimulator::new(77);
    let mut genomes = Vec::new();
    for f in 0..4 {
        let ancestor = sim.random_genome(4000);
        for (s, strain) in sim
            .derive_family(&ancestor, 3, 0.01)
            .into_iter()
            .enumerate()
        {
            genomes.push((format!("f{f}s{s}"), strain));
        }
    }
    let mut docs = Vec::new();
    for (name, genome) in &genomes {
        let reads = sim.simulate_reads(genome, 120, 8.0, 0.001);
        // Write + re-parse FASTQ to exercise the text format path.
        let mut buf = Vec::new();
        rambo::kmer::fastq::write_fastq(&mut buf, &reads).unwrap();
        let parsed: Vec<_> = FastqReader::new(Cursor::new(buf))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(parsed.len(), reads.len());
        let set = KmerSet::from_sequences(parsed.iter().map(|r| r.seq.as_slice()), K, false);
        // Roundtrip the McCortex-like binary format too.
        let mut bin = Vec::new();
        set.write_to(&mut bin).unwrap();
        let set = KmerSet::read_from(&bin[..]).unwrap();
        docs.push((name.clone(), set.kmers().to_vec()));
    }
    (docs, genomes)
}

fn build_index(docs: &[(String, Vec<u64>)]) -> Rambo {
    let mean = docs.iter().map(|(_, t)| t.len()).sum::<usize>() / docs.len();
    let mut index = RamboBuilder::new()
        .expected_documents(docs.len())
        .expected_terms_per_doc(mean)
        .expected_multiplicity(3)
        .target_fpr(0.01)
        .seed(3)
        .build()
        .unwrap();
    for (name, terms) in docs {
        index.insert_document(name, terms.iter().copied()).unwrap();
    }
    index
}

#[test]
fn rambo_is_superset_of_inverted_index_on_real_pipeline() {
    let (docs, _) = build_archive();
    let index = build_index(&docs);
    let oracle = InvertedIndex::build(&docs);

    // Sample k-mers from every document.
    for (d, (_, terms)) in docs.iter().enumerate() {
        for &t in terms.iter().step_by(terms.len() / 5 + 1) {
            let truth = oracle.postings(t);
            let got = index.query_u64(t);
            assert!(got.contains(&(d as u32)));
            for want in truth {
                assert!(got.contains(want), "missing doc {want} for kmer {t:#x}");
            }
        }
    }
}

#[test]
fn sequence_queries_find_source_genome() {
    let (docs, genomes) = build_archive();
    let index = build_index(&docs);
    let mut ctx = QueryContext::new();
    for target in [0usize, 5, 11] {
        let fragment = &genomes[target].1[1000..1300];
        let kmers: Vec<u64> = kmers_of(fragment, K, false).collect();
        let hits = index.query_sequence_theta(&kmers, 0.8, QueryMode::Sparse, &mut ctx);
        let names = index.resolve_names(&hits);
        assert!(
            names.contains(&genomes[target].0.as_str()),
            "fragment of {} not found (got {names:?})",
            genomes[target].0
        );
    }
}

#[test]
fn index_survives_serialization_and_folding() {
    let (docs, genomes) = build_archive();
    let index = build_index(&docs);
    let bytes = index.to_bytes().unwrap();
    let mut reloaded = Rambo::from_bytes(&bytes).unwrap();
    assert_eq!(index, reloaded);

    // Fold as far as legal; every fold must retain the owner.
    let probe: Vec<u64> = kmers_of(&genomes[2].1[500..600], K, false).collect();
    let owner = reloaded.document_id("f0s2").unwrap();
    loop {
        let mut ctx = QueryContext::new();
        let hits = reloaded.query_sequence_theta(&probe, 0.8, QueryMode::Full, &mut ctx);
        assert!(
            hits.contains(&owner),
            "owner lost at fold factor {}",
            reloaded.fold_factor()
        );
        if reloaded.fold_once().is_err() {
            break;
        }
    }
    assert!(reloaded.fold_factor() >= 1, "at least one fold exercised");
}

#[test]
fn canonical_kmers_unify_strands() {
    let (_, genomes) = build_archive();
    let genome = &genomes[0].1;
    let rc = rambo::kmer::revcomp_seq(genome);
    let fwd = KmerSet::from_sequence(genome, K, true);
    let rev = KmerSet::from_sequence(&rc, K, true);
    assert_eq!(fwd, rev, "canonical k-mer sets must be strand-invariant");
}
