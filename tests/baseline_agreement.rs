//! Cross-index agreement on one shared archive: every structure in the
//! Table 2 suite must return a superset of the exact answer, and the
//! structures' false-positive behaviour must stay within their design
//! budgets. This is the integration-level contract behind every comparison
//! table in EXPERIMENTS.md.

use rambo::baselines::{
    BitSlicedIndex, CompactBitSliced, InvertedIndex, MembershipIndex, RamboIndex, RamboPlusIndex,
    Sbt, SplitSbt,
};
use rambo::core::{Rambo, RamboParams};
use rambo::workloads::{ArchiveParams, PlantedQueries, SyntheticArchive};

fn archive_with_queries() -> (Vec<(String, Vec<u64>)>, PlantedQueries) {
    let mut p = ArchiveParams::tiny(120, 42);
    p.mean_terms = 250;
    p.std_terms = 100;
    let mut archive = SyntheticArchive::generate(&p);
    let planted = PlantedQueries::generate(150, archive.len(), 10.0, 9);
    planted.plant_into(&mut archive.docs);
    (archive.docs, planted)
}

fn suite(docs: &[(String, Vec<u64>)]) -> Vec<Box<dyn MembershipIndex>> {
    let mut rambo = Rambo::new(RamboParams::flat(24, 3, 1 << 16, 2, 5)).unwrap();
    for (name, terms) in docs {
        rambo.insert_document(name, terms.iter().copied()).unwrap();
    }
    let m_tree =
        rambo::bloom::params::optimal_m(docs.iter().map(|(_, t)| t.len()).max().unwrap(), 0.01);
    vec![
        Box::new(RamboIndex::new(rambo.clone())),
        Box::new(RamboPlusIndex::new(rambo)),
        Box::new(BitSlicedIndex::build_auto(docs, 0.01, 3, 5)),
        Box::new(CompactBitSliced::build(docs, 16, 0.01, 3, 5)),
        Box::new(Sbt::build(docs, m_tree, 1, 5)),
        Box::new(SplitSbt::build(docs, m_tree, 1, 5, false)),
        Box::new(SplitSbt::build(docs, m_tree, 1, 5, true)),
    ]
}

#[test]
fn every_index_contains_planted_truth() {
    let (docs, planted) = archive_with_queries();
    let indexes = suite(&docs);
    for idx in &indexes {
        // `measure` panics on any false negative, so this asserts the
        // superset property for every planted query at once.
        let m = planted.measure(docs.len(), |t| idx.query_term(t));
        assert_eq!(m.queries, planted.len());
        // All approximate structures run comfortably below 50% per-doc FPR
        // at these budgets; the exact one reports zero.
        let rate = m.per_doc_rate();
        assert!(rate < 0.5, "{}: per-doc FPR {rate}", idx.label());
    }
}

#[test]
fn exact_index_agrees_with_itself_and_bounds_everyone() {
    let (docs, planted) = archive_with_queries();
    let oracle = InvertedIndex::build(&docs);
    let m = planted.measure(docs.len(), |t| oracle.query_term(t));
    assert_eq!(m.false_positives, 0, "inverted index must be exact");

    // Archive terms (not planted): compare each index against the oracle.
    let indexes = suite(&docs);
    for (d, (_, terms)) in docs.iter().enumerate().step_by(17) {
        for &t in terms.iter().take(3) {
            let truth = oracle.postings(t);
            assert!(truth.contains(&(d as u32)));
            for idx in &indexes {
                let got = idx.query_term(t);
                for want in truth {
                    assert!(
                        got.contains(want),
                        "{} dropped doc {want} for archive term {t:#x}",
                        idx.label()
                    );
                }
            }
        }
    }
}

#[test]
fn multi_term_conjunctions_agree() {
    let (docs, _) = archive_with_queries();
    let oracle = InvertedIndex::build(&docs);
    let indexes = suite(&docs);
    for d in (0..docs.len()).step_by(23) {
        let q: Vec<u64> = docs[d].1.iter().take(4).copied().collect();
        let truth = oracle.query_terms(&q);
        assert!(truth.contains(&(d as u32)));
        for idx in &indexes {
            let got = idx.query_terms(&q);
            for want in &truth {
                assert!(
                    got.contains(want),
                    "{} dropped doc {want} on conjunction",
                    idx.label()
                );
            }
        }
    }
}

#[test]
fn size_ordering_matches_paper_shape() {
    // RAMBO within a small factor of COBS; plain SBT far larger; the
    // RRR-compressed split tree smaller than the dense one.
    let (docs, _) = archive_with_queries();
    let indexes = suite(&docs);
    let size_of = |label: &str| {
        indexes
            .iter()
            .find(|i| i.label() == label)
            .map(|i| i.size_bytes())
            .unwrap()
    };
    let rambo = size_of("RAMBO");
    let cobs = size_of("COBS");
    let bigsi = size_of("COBS(uniform)");
    let sbt = size_of("SBT");
    let ssbt = size_of("SSBT");
    let howde = size_of("HowDeSBT~");
    assert!(rambo < cobs * 16, "RAMBO {rambo} vs COBS {cobs}");
    // A tree stores 2K−1 filters of the same m the uniform bit-sliced index
    // uses for its K columns → ≈2x the bits (word-padding effects aside).
    assert!(
        sbt > bigsi * 3 / 2,
        "trees pay per-node filters: SBT {sbt} vs BIGSI {bigsi}"
    );
    assert!(howde < ssbt, "RRR compression must shrink the split tree");
}
