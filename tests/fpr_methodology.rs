//! Integration test of the §5.2/Figure 4 measurement methodology: planted
//! queries with controlled multiplicity, measured FPR vs the Lemma 4.1/4.2
//! predictions, and the fold-over FPR trade-off.

use rambo::core::{theory, Rambo, RamboParams};
use rambo::workloads::{ArchiveParams, PlantedQueries, SyntheticArchive};

fn build(k: usize, b: u64, r: usize, seed: u64) -> (Rambo, Vec<(String, Vec<u64>)>) {
    let mut p = ArchiveParams::tiny(k, seed);
    p.mean_terms = 150;
    p.std_terms = 40;
    let archive = SyntheticArchive::generate(&p);
    let per_bucket = (k as f64 / b as f64 * 160.0 * 1.3) as usize;
    let params = RamboParams::flat(
        b,
        r,
        rambo::bloom::params::optimal_m(per_bucket, 0.005),
        2,
        seed,
    );
    (Rambo::new(params).unwrap(), archive.docs)
}

fn build_with_planted(k: usize, b: u64, r: usize, seed: u64, planted: &PlantedQueries) -> Rambo {
    let (mut index, mut docs) = build(k, b, r, seed);
    planted.plant_into(&mut docs);
    for (name, terms) in &docs {
        index.insert_document(name, terms.iter().copied()).unwrap();
    }
    index
}

#[test]
fn measured_fpr_tracks_lemma_41_in_v() {
    let (k, b, r) = (400usize, 64u64, 3usize);
    let mut rates = Vec::new();
    for v in [1usize, 8, 32] {
        let planted = PlantedQueries::generate_fixed_v(200, k, v, 7);
        let index = build_with_planted(k, b, r, 7, &planted);
        let measured = planted.measure(k, |t| index.query_u64(t)).per_doc_rate();
        let predicted = theory::per_doc_fpr(index.estimated_bfu_fpr(), b, v as u32, r);
        rates.push((v, measured, predicted));
    }
    // Monotone in V, and within an order of magnitude of the prediction for
    // the collision-dominated (large V) points.
    assert!(rates[0].1 <= rates[1].1 + 0.01);
    assert!(rates[1].1 <= rates[2].1 + 0.01);
    let (_, measured, predicted) = rates[2];
    assert!(
        measured < predicted * 10.0 + 0.01 && predicted < measured * 10.0 + 0.01,
        "V=32: measured {measured} vs Lemma 4.1 {predicted}"
    );
}

#[test]
fn more_repetitions_cut_fpr() {
    let k = 300usize;
    let planted = PlantedQueries::generate_fixed_v(200, k, 16, 13);
    let idx_r1 = build_with_planted(k, 32, 1, 13, &planted);
    let idx_r4 = build_with_planted(k, 32, 4, 13, &planted);
    let fpr_r1 = planted.measure(k, |t| idx_r1.query_u64(t)).per_doc_rate();
    let fpr_r4 = planted.measure(k, |t| idx_r4.query_u64(t)).per_doc_rate();
    assert!(
        fpr_r4 < fpr_r1 / 2.0 + 0.005,
        "R=4 ({fpr_r4}) must beat R=1 ({fpr_r1}) decisively"
    );
}

#[test]
fn folding_trades_memory_for_fpr() {
    let k = 400usize;
    let planted = PlantedQueries::generate_fixed_v(150, k, 4, 17);
    let index = build_with_planted(k, 128, 3, 17, &planted);
    let mut sizes = Vec::new();
    let mut rates = Vec::new();
    let mut current = index;
    for _ in 0..3 {
        sizes.push(current.size_bytes());
        rates.push(planted.measure(k, |t| current.query_u64(t)).per_doc_rate());
        current.fold_once().unwrap();
    }
    assert!(
        sizes.windows(2).all(|w| w[1] < w[0]),
        "size must fall per fold: {sizes:?}"
    );
    assert!(
        !rates.windows(2).all(|w| w[1] <= w[0] + 1e-9) || rates[2] >= rates[0],
        "FPR must not fall as memory shrinks: {rates:?}"
    );
    assert!(
        rates[2] >= rates[0],
        "3rd fold FPR below baseline: {rates:?}"
    );
}

#[test]
fn overall_bound_holds_empirically() {
    // Lemma 4.2 assumes one uniform per-BFU rate `p`. Our archives have
    // lognormal document sizes, so bucket fills are heterogeneous and the
    // *mean* fill badly underestimates reality (heavy buckets dominate the
    // false positives — documented in EXPERIMENTS.md). Evaluating the bound
    // at the **maximum** observed fill restores a sound upper bound, and at
    // these parameters a tight one.
    let (k, b, r) = (300usize, 64u64, 4usize);
    let planted = PlantedQueries::generate_fixed_v(300, k, 2, 23);
    let index = build_with_planted(k, b, r, 23, &planted);
    let m = planted.measure(k, |t| index.query_u64(t));
    let (_, max_fill) = index.fill_stats();
    let p_worst = max_fill.powi(index.params().eta as i32);
    let bound = theory::overall_fpr_bound(k, p_worst.max(0.001), b, 2, r);
    assert!(
        m.any_fp_rate() <= (bound * 3.0 + 0.05).min(1.0),
        "any-FP rate {} exceeds 3x the worst-fill Lemma 4.2 bound {}",
        m.any_fp_rate(),
        bound
    );
    // The mean-fill bound must sit below the worst-fill bound (this is the
    // heterogeneity gap the EXPERIMENTS notes discuss).
    let mean_bound = theory::overall_fpr_bound(k, index.estimated_bfu_fpr(), b, 2, r);
    assert!(mean_bound <= bound + 1e-12);
}

#[test]
fn exponential_multiplicities_match_paper_setup() {
    // The α=100 exponential of §5.2: mean multiplicity ≈ 1 + α.
    let planted = PlantedQueries::generate(3000, 100_000, 100.0, 29);
    let mean =
        planted.queries.iter().map(|(_, t)| t.len()).sum::<usize>() as f64 / planted.len() as f64;
    assert!((85.0..120.0).contains(&mean), "mean V = {mean}");
}
