//! Integration test of the §5.4 document-indexing pipeline: tokenizer →
//! term hashing → RAMBO and COBS, with the Zipf corpus's head/tail
//! document-frequency structure preserved end to end.

use rambo::baselines::{CompactBitSliced, InvertedIndex, MembershipIndex};
use rambo::core::{QueryMode, RamboBuilder};
use rambo::hash::murmur3_x64_64;
use rambo::text::{tokenize, CorpusParams, ZipfCorpus};

fn term_of(word: &str) -> u64 {
    murmur3_x64_64(word.as_bytes(), 1)
}

#[test]
fn tokenizer_to_index_roundtrip() {
    let pages = [
        ("a", "the quick brown fox jumps over the lazy dog"),
        ("b", "pack my box with five dozen liquor jugs"),
        ("c", "the five boxing wizards jump quickly"),
    ];
    let mut index = RamboBuilder::new()
        .expected_documents(3)
        .expected_terms_per_doc(10)
        .buckets(6)
        .repetitions(3)
        .seed(2)
        .build()
        .unwrap();
    for (name, text) in pages {
        let terms: Vec<u64> = tokenize(text).iter().map(|w| term_of(w)).collect();
        index.insert_document(name, terms).unwrap();
    }
    // Stop words were removed at both index and query time, so "the" finds
    // nothing; content words find their documents.
    assert!(index.query_u64(term_of("the")).is_empty());
    let five = index.resolve_names(&index.query_u64(term_of("five")));
    assert!(five.contains(&"b") && five.contains(&"c"));
    let fox = index.resolve_names(&index.query_u64(term_of("fox")));
    assert!(fox.contains(&"a"));
}

#[test]
fn zipf_corpus_document_frequencies_survive_indexing() {
    let corpus = ZipfCorpus::generate(&CorpusParams {
        docs: 300,
        vocab: 20_000,
        exponent: 1.05,
        mean_terms: 120,
        seed: 5,
    });
    let docs: Vec<(String, Vec<u64>)> = corpus
        .docs
        .iter()
        .map(|d| (d.name.clone(), d.terms.clone()))
        .collect();

    let mean = corpus.total_terms() / docs.len();
    let mut rambo = RamboBuilder::new()
        .expected_documents(docs.len())
        .expected_terms_per_doc(mean)
        .expected_multiplicity(16)
        .seed(6)
        .build()
        .unwrap();
    for (name, terms) in &docs {
        rambo.insert_document(name, terms.iter().copied()).unwrap();
    }
    let cobs = CompactBitSliced::build(&docs, 32, 0.01, 3, 6);
    let oracle = InvertedIndex::build(&docs);

    // Head terms: document frequency high; both indexes must cover it.
    for term in [0u64, 1, 2] {
        let truth = oracle.postings(term);
        assert!(truth.len() > docs.len() / 4, "term {term} should be hot");
        let r = rambo.query_u64(term);
        let c = cobs.query_term(term);
        for d in truth {
            assert!(r.contains(d), "RAMBO dropped hot term doc {d}");
            assert!(c.contains(d), "COBS dropped hot term doc {d}");
        }
    }
    // Tail terms: rare or absent; result sets must stay small.
    for term in [19_990u64, 19_995, 19_999] {
        let truth = oracle.postings(term).len();
        assert!(rambo.query_u64(term).len() <= truth + docs.len() / 10);
    }
}

#[test]
fn conjunctive_phrase_queries() {
    let corpus = ZipfCorpus::generate(&CorpusParams {
        docs: 150,
        vocab: 10_000,
        exponent: 1.05,
        mean_terms: 80,
        seed: 8,
    });
    let docs: Vec<(String, Vec<u64>)> = corpus
        .docs
        .iter()
        .map(|d| (d.name.clone(), d.terms.clone()))
        .collect();
    let oracle = InvertedIndex::build(&docs);
    let mut rambo = RamboBuilder::new()
        .expected_documents(150)
        .expected_terms_per_doc(80)
        .expected_multiplicity(8)
        .seed(9)
        .build()
        .unwrap();
    for (name, terms) in &docs {
        rambo.insert_document(name, terms.iter().copied()).unwrap();
    }
    // Conjunctions of a document's rarest terms pinpoint it.
    for d in (0..docs.len()).step_by(31) {
        let q: Vec<u64> = docs[d].1.iter().rev().take(3).copied().collect();
        let truth = oracle.query_terms(&q);
        let got = rambo.query_terms_u64(&q, QueryMode::Sparse);
        assert!(got.contains(&(d as u32)));
        for want in &truth {
            assert!(got.contains(want));
        }
    }
}
