//! Integration test for the §5.3 distributed pipeline: parallel sharded
//! construction, lossless stacking, post-stack folding, serialization, and
//! query-answer equivalence with a monolithic build.

use rambo::core::{build_sharded_parallel, QueryMode, Rambo, RamboParams, ShardedRambo};
use rambo::workloads::{ArchiveParams, SyntheticArchive};

fn archive(k: usize) -> SyntheticArchive {
    let mut p = ArchiveParams::tiny(k, 31);
    p.mean_terms = 150;
    p.std_terms = 60;
    SyntheticArchive::generate(&p)
}

fn params(seed: u64) -> RamboParams {
    RamboParams::two_level(6, 8, 3, 1 << 15, 2, seed)
}

#[test]
fn parallel_build_matches_monolithic_bfus_and_answers() {
    let archive = archive(150);
    let p = params(11);
    let stacked = build_sharded_parallel(p, archive.docs.clone()).unwrap();

    let mut mono = Rambo::new(p).unwrap();
    for (name, terms) in &archive.docs {
        mono.insert_document(name, terms.iter().copied()).unwrap();
    }

    // BFU columns identical everywhere.
    for rep in 0..3 {
        for b in 0..p.buckets() as usize {
            assert_eq!(
                stacked.bfu_bits(rep, b),
                mono.bfu_bits(rep, b),
                "BFU ({rep},{b}) diverged"
            );
        }
    }
    // Same answers modulo document renumbering.
    for (name, terms) in archive.docs.iter().step_by(13) {
        for &t in terms.iter().take(3) {
            let mut a: Vec<&str> = stacked.resolve_names(&stacked.query_u64(t));
            let mut b: Vec<&str> = mono.resolve_names(&mono.query_u64(t));
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "answers diverged for {name} term {t:#x}");
        }
    }
}

#[test]
fn sequential_and_parallel_sharding_agree() {
    let archive = archive(100);
    let p = params(23);
    let parallel = build_sharded_parallel(p, archive.docs.clone()).unwrap();
    let mut sequential = ShardedRambo::new(p).unwrap();
    for (name, terms) in &archive.docs {
        sequential
            .ingest_document(name, terms.iter().copied())
            .unwrap();
    }
    assert_eq!(parallel, sequential.stack().unwrap());
}

#[test]
fn stacked_index_folds_serializes_and_queries() {
    let archive = archive(120);
    let p = params(37);
    let mut index = build_sharded_parallel(p, archive.docs.clone()).unwrap();

    // Fold once (48 → 24 buckets), serialize, reload, verify queries.
    index.fold_once().unwrap();
    assert_eq!(index.buckets(), 24);
    let reloaded = Rambo::from_bytes(&index.to_bytes().unwrap()).unwrap();
    assert_eq!(index, reloaded);

    for (name, terms) in archive.docs.iter().step_by(29) {
        let id = reloaded.document_id(name).unwrap();
        for &t in terms.iter().take(2) {
            assert!(
                reloaded.query_u64(t).contains(&id),
                "{name} lost term {t:#x} after fold+serialize"
            );
        }
    }
}

#[test]
fn batch_parallel_queries_match_serial() {
    let archive = archive(80);
    let index = build_sharded_parallel(params(41), archive.docs.clone()).unwrap();
    let terms: Vec<u64> = archive
        .docs
        .iter()
        .flat_map(|(_, t)| t[..2].to_vec())
        .chain((0..30).map(|i| 0xEEEE_0000_0000u64 + i))
        .collect();
    let serial: Vec<_> = terms.iter().map(|&t| index.query_u64(t)).collect();
    for threads in [1, 3, 8] {
        assert_eq!(
            index.query_batch_parallel(&terms, QueryMode::Full, threads),
            serial,
            "threads = {threads}"
        );
        assert_eq!(
            index.query_batch_parallel(&terms, QueryMode::Sparse, threads),
            serial,
            "sparse, threads = {threads}"
        );
    }
}

#[test]
fn routing_distributes_documents() {
    let sharded = ShardedRambo::new(params(53)).unwrap();
    let mut counts = vec![0usize; sharded.nodes()];
    for i in 0..600 {
        counts[sharded.route(&format!("doc{i}")) as usize] += 1;
    }
    for (node, &c) in counts.iter().enumerate() {
        assert!(c > 30, "node {node} starved: {c} docs");
    }
}
