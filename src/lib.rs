//! Umbrella crate re-exporting the full RAMBO reproduction API.
//!
//! See the individual crates for details; this crate exists so examples and
//! integration tests can say `use rambo::prelude::*`.

pub use rambo_baselines as baselines;
pub use rambo_bitvec as bitvec;
pub use rambo_bloom as bloom;
pub use rambo_cluster as cluster;
pub use rambo_core as core;
pub use rambo_hash as hash;
pub use rambo_kmer as kmer;
pub use rambo_server as server;
pub use rambo_text as text;
pub use rambo_workloads as workloads;

/// Commonly used items in one import.
pub mod prelude {
    pub use rambo_core::*;
}
