#!/usr/bin/env bash
# Smoke-run the throughput benchmark binaries with small, fast
# workloads. This script is the single source of truth for the smoke flags:
# CI's test job runs it verbatim, and a local `scripts/bench_smoke.sh`
# executes exactly what CI does.
#
# Each binary asserts its own correctness invariants (bit-identity across
# ingestion paths, served-vs-direct result parity, …) and writes its
# BENCH_*.json into the repo root. For the full-size runs that the
# regression gate compares against committed baselines, see
# scripts/bench_regression.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "+ $*" >&2
    "$@"
}

run cargo run --release -p rambo-bench --bin ingest_throughput -- \
    --docs 20 --mean-terms 5000 --reps 4
run cargo run --release -p rambo-bench --bin batch_query -- \
    --docs 100 --mean-terms 200 --queries 500
run cargo run --release -p rambo-bench --bin probe_kernel -- \
    --mask-words 262144 --rows 8 --iters 3 --docs 100 --queries 300
# serve-smoke: starts the adaptive-scheduler server (in-process and on a
# loopback non-blocking TCP port), sweeps the paced load levels 1/2/8 so
# the scheduler exercises both the inline-bypass and batching regimes, and
# asserts result parity with direct evaluation (served arms and TCP front
# alike), non-empty responses for present-term queries, strictly-smaller
# tier selection under a loosened FPR budget, and a clean drain-and-join
# shutdown. Mid-frame stalled-client abort and cached-vs-uncached parity
# are covered by `cargo test -p rambo-server` in the test step above.
run cargo run --release -p rambo-bench --bin serve_load -- \
    --docs 120 --mean-terms 800 --queries 800 --window 32 \
    --loads 1,2,8 --tcp
# cluster-smoke: plans a corpus into node-local shards, spawns replicated
# shard servers plus a scatter-gather coordinator over loopback, asserts
# every answer bit-identical to the stacked monolith, then kills one
# replica (zero queries may fail) and a whole replica set (replies must
# degrade, not error).
run cargo run --release -p rambo-bench --bin cluster_serve -- \
    --docs 24 --queries 80 --nodes 1,2 --replicas 2
# storage-smoke: dense vs RRR tier sizes with result-parity asserts, then a
# small on-disk catalog opened paged (cold) and re-queried hot through the
# block cache, with paged-vs-buffered parity asserts throughout.
run cargo run --release -p rambo-bench --bin storage_cold -- \
    --docs 60 --terms 300 --buckets 256 \
    --paged-docs 16 --paged-terms 120 --paged-m-bits 16 --queries 64
# mutable-smoke: streams live inserts into the generational index while
# closed-loop readers query through the background seal/merge churn, then
# asserts every answer (both modes, single- and multi-term) bit-identical
# to a from-scratch monolithic rebuild.
run cargo run --release -p rambo-bench --bin mutable_load -- \
    --docs 60 --mean-terms 200 --queries 300 --readers 2 --memtable-cap 8
# tenant-smoke: one process serving several named RAMBO indexes over the
# RESP text protocol, loaded and queried concurrently over real sockets,
# with per-tenant answers asserted bit-identical to isolated single-index
# oracles and document-quota admission rejections verified in-protocol.
run cargo run --release -p rambo-bench --bin tenant_serve -- \
    --tenants 3 --docs 40 --mean-terms 60 --queries 120
