#!/usr/bin/env bash
# Bench-regression gate: run the benchmark binaries at their canonical
# (default-flag) sizes and compare each BENCH_*.json headline metric against
# the committed baselines in scripts/bench_baselines/. Fails (exit 1) when a
# headline metric regresses by more than TOLERANCE_PCT.
#
# The headline metrics are deliberately *within-run speedup ratios*, not
# absolute throughputs: a ratio divides out the host's clock speed and cache
# sizes, so a baseline recorded on one machine remains meaningful on CI
# runners of a different class. A code change that slows the optimized side
# of any ratio shows up directly; absolute numbers are still recorded in the
# JSONs (and uploaded as CI artifacts) for human eyes.
#
# Usage:
#   scripts/bench_regression.sh            # gate: run + compare
#   scripts/bench_regression.sh --update   # rebless: run + overwrite baselines
#   TOLERANCE_PCT=10 scripts/bench_regression.sh   # tighter gate

# ---- the one tolerance knob -------------------------------------------------
TOLERANCE_PCT="${TOLERANCE_PCT:-25}"
# -----------------------------------------------------------------------------

set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE_DIR=scripts/bench_baselines

# file | headline metric (a within-run speedup ratio; higher is better)
#
# Metrics chosen for stability on the host class that recorded the
# baseline. Deliberately NOT gated: speedup_pipelined_vs_single and
# speedup_sharded_vs_single — two-threads-on-one-core ratios swing
# 0.8–1.8x with OS scheduling on single-core hosts (their win is a
# multi-core property); they are still recorded in BENCH_ingest.json and
# uploaded as artifacts for human eyes.
CHECKS="
BENCH_ingest.json|speedup_batch_vs_naive
BENCH_batch_query.json|sparse_batch_speedup
BENCH_probe.json|speedup_vectorized_vs_scalar
BENCH_serve.json|batched_qps_speedup_vs_one_at_a_time
BENCH_serve.json|batched_p99_speedup_vs_one_at_a_time
BENCH_serve.json|batched_p99_speedup_vs_always_batch
BENCH_storage.json|hot_over_cold_query_speedup
"

# file | metric | absolute floor — design targets that hold regardless of
# what any past run blessed: the adaptive scheduler must never lose at
# tail latency to either fixed design at ANY swept load level (the
# batched_p99_* aggregates are minima across levels), and a served hot
# query must beat re-evaluation by a wide margin. The same TOLERANCE_PCT
# is applied below the floor so single-core scheduler jitter does not
# fail a structurally-sound build; a real design regression sits well
# below floor*(1-tol) twice in a row.
#
# Storage floors: dense_over_rrr_bits_per_doc >= 1.667 is the acceptance
# criterion "RRR cold tier <= 0.6x the dense bits/doc" (deterministic —
# same seed, same sizes); cold_query_headroom >= 1.0 holds a cold
# (all-faulting) query under the 20ms serving ceiling on a 128MB catalog.
#
# Cluster floors are correctness/availability gates, not performance: the
# scatter-gather union must be bit-identical to the monolith on every
# query of the run, killing one replica must lose zero queries, and
# killing a full replica set must keep availability at 1.0 via degraded
# replies. These are 0-or-1 outcomes, so the tolerance never excuses a
# failure.
#
# Mutable-index floors: generations_parity_ok is the live-insert
# bit-identity gate (0-or-1 — every query through the generational index
# must equal a from-scratch monolithic rebuild, after a run full of
# concurrent seals and merges); merge_read_p99_headroom >= 1.0 holds the
# concurrent-read p99 under the mutable bench's latency ceiling while
# background merges run.
#
# Tenant floors are likewise 0-or-1 correctness gates: every named index
# served over the RESP front must answer bit-identically to an isolated
# single-index oracle (multi-tenancy unobservable from inside a tenant),
# and document-quota admission must reject exactly the inserts beyond the
# cap, in-protocol, with the registry's rejection counter agreeing.
ABS_CHECKS="
BENCH_serve.json|batched_p99_speedup_vs_one_at_a_time|1.0
BENCH_serve.json|batched_p99_speedup_vs_always_batch|1.0
BENCH_serve.json|cache_hit_p50_speedup|5.0
BENCH_storage.json|dense_over_rrr_bits_per_doc|1.667
BENCH_storage.json|cold_query_headroom|1.0
BENCH_cluster.json|scatter_parity_ok|1.0
BENCH_cluster.json|replica_kill_success|1.0
BENCH_cluster.json|degraded_availability|1.0
BENCH_mutable.json|generations_parity_ok|1.0
BENCH_mutable.json|merge_read_p99_headroom|1.0
BENCH_tenant.json|tenant_isolation_parity_ok|1.0
BENCH_tenant.json|quota_enforcement_ok|1.0
"

# Canonical runs: default flags except a fixed seed — these sizes are what
# the committed baselines were recorded with. Keep flags here and baseline
# regeneration (--update) in lockstep.
run_benches() {
    for bin in ingest_throughput batch_query probe_kernel serve_load storage_cold cluster_serve mutable_load tenant_serve; do
        echo "+ cargo run --release -p rambo-bench --bin $bin" >&2
        cargo run --release -p rambo-bench --bin "$bin" >/dev/null
    done
}

# extract FILE KEY -> prints the numeric value of "KEY": value
extract() {
    sed -n 's/^ *"'"$2"'": *\(-\{0,1\}[0-9.e+-]*\),\{0,1\}$/\1/p' "$1" | head -n1
}

cargo build --release -p rambo-bench
run_benches

if [ "${1:-}" = "--update" ]; then
    mkdir -p "$BASELINE_DIR"
    for f in BENCH_ingest.json BENCH_batch_query.json BENCH_probe.json BENCH_serve.json BENCH_storage.json BENCH_cluster.json BENCH_mutable.json BENCH_tenant.json; do
        cp "$f" "$BASELINE_DIR/$f"
        echo "blessed $BASELINE_DIR/$f"
    done
    exit 0
fi

# file -> bench bin (for targeted retries)
bin_of() {
    case "$1" in
        BENCH_ingest.json) echo ingest_throughput ;;
        BENCH_batch_query.json) echo batch_query ;;
        BENCH_probe.json) echo probe_kernel ;;
        BENCH_serve.json) echo serve_load ;;
        BENCH_storage.json) echo storage_cold ;;
        BENCH_cluster.json) echo cluster_serve ;;
        BENCH_mutable.json) echo mutable_load ;;
        BENCH_tenant.json) echo tenant_serve ;;
    esac
}

# compare_all -> prints per-metric verdicts; echoes failing files (unique,
# space-separated) on the FAILED_FILES line of its stdout tail via a global.
failed_files=""
hard_fail=0
compare_all() {
    failed_files=""
    for check in $CHECKS; do
        file="${check%%|*}"
        key="${check##*|}"
        base_file="$BASELINE_DIR/$file"
        if [ ! -f "$base_file" ]; then
            echo "  MISSING baseline $base_file (run scripts/bench_regression.sh --update)"
            hard_fail=1
            continue
        fi
        new="$(extract "$file" "$key")"
        base="$(extract "$base_file" "$key")"
        if [ -z "$new" ] || [ -z "$base" ]; then
            echo "  MISSING metric $key in $file (new='$new' baseline='$base')"
            hard_fail=1
            continue
        fi
        if awk -v n="$new" -v b="$base" -v tol="$TOLERANCE_PCT" \
            'BEGIN { exit !(n + 0 >= b * (1 - tol / 100)) }'; then
            printf '  ok        %-26s %-40s %10s (baseline %s)\n' "$file" "$key" "$new" "$base"
        else
            printf '  REGRESSED %-26s %-40s %10s < %s - %s%%\n' "$file" "$key" "$new" "$base" "$TOLERANCE_PCT"
            case " $failed_files " in
                *" $file "*) ;;
                *) failed_files="$failed_files $file" ;;
            esac
        fi
    done
    for check in $ABS_CHECKS; do
        file="${check%%|*}"
        rest="${check#*|}"
        key="${rest%%|*}"
        floor="${rest##*|}"
        new="$(extract "$file" "$key")"
        if [ -z "$new" ]; then
            echo "  MISSING metric $key in $file"
            hard_fail=1
            continue
        fi
        if awk -v n="$new" -v f="$floor" -v tol="$TOLERANCE_PCT" \
            'BEGIN { exit !(n + 0 >= f * (1 - tol / 100)) }'; then
            printf '  ok        %-26s %-40s %10s (floor %s)\n' "$file" "$key" "$new" "$floor"
        else
            printf '  BELOW     %-26s %-40s %10s < floor %s - %s%%\n' "$file" "$key" "$new" "$floor" "$TOLERANCE_PCT"
            case " $failed_files " in
                *" $file "*) ;;
                *) failed_files="$failed_files $file" ;;
            esac
        fi
    done
}

echo "bench-regression gate (tolerance ${TOLERANCE_PCT}%):"
compare_all

# Benchmarks are noisy on shared runners: give any regressed bench one
# fresh run before failing — a persistent regression survives the retry, a
# scheduling hiccup does not.
if [ -n "$failed_files" ]; then
    echo "retrying regressed benches once:$failed_files"
    for f in $failed_files; do
        bin="$(bin_of "$f")"
        echo "+ cargo run --release -p rambo-bench --bin $bin" >&2
        cargo run --release -p rambo-bench --bin "$bin" >/dev/null
    done
    echo "re-comparing after retry:"
    compare_all
fi

if [ "$hard_fail" -ne 0 ] || [ -n "$failed_files" ]; then
    echo "bench-regression gate FAILED: a headline metric regressed more than ${TOLERANCE_PCT}% (twice in a row)." >&2
    echo "If the change is intentional, rebless with scripts/bench_regression.sh --update." >&2
    exit 1
fi
echo "bench-regression gate passed."
