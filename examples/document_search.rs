//! Text document indexing (the paper's §5.4): RAMBO as a word-membership
//! search engine over a Wiki-like corpus.
//!
//! Real text flows through the same pipeline as genomes: tokenize each
//! document into a distinct term set, hash terms to u64, insert. This
//! example indexes a small built-in corpus plus a Zipfian synthetic corpus,
//! then answers word and phrase-conjunction queries.
//!
//! ```text
//! cargo run --release --example document_search
//! ```

use rambo::core::{QueryMode, RamboBuilder};
use rambo::hash::murmur3_x64_64;
use rambo::text::{tokenize, CorpusParams, ZipfCorpus};

/// Hash a word to the u64 term space (collisions are ~2⁻⁶⁴ per pair —
/// negligible against the index's own false-positive rate).
fn term_of(word: &str) -> u64 {
    murmur3_x64_64(word.as_bytes(), 0x7E97)
}

fn main() {
    // --- A tiny hand-written corpus --------------------------------------
    let pages: &[(&str, &str)] = &[
        (
            "bloom-filter",
            "A Bloom filter is a space efficient probabilistic data structure \
             for set membership testing with false positives but no false negatives.",
        ),
        (
            "count-min-sketch",
            "The count-min sketch is a probabilistic data structure for \
             frequency estimation over data streams using pairwise independent hashing.",
        ),
        (
            "genome-assembly",
            "Genome assembly reconstructs a genome sequence from short \
             sequencing reads using de Bruijn graphs over k-mers.",
        ),
        (
            "sequence-search",
            "Sequence search over genomic archives tests k-mer membership \
             across thousands of datasets with Bloom filter indexes.",
        ),
    ];

    // At toy scale (K = 4) the derived B = √(KV/η) would be 2, which makes
    // bucket collisions certain; override to one-bucket-per-doc territory.
    let mut index = RamboBuilder::new()
        .expected_documents(pages.len())
        .expected_terms_per_doc(20)
        .buckets(8)
        .repetitions(3)
        .target_fpr(0.01)
        .seed(5)
        .build()
        .expect("valid parameters");
    for (name, text) in pages {
        let mut terms: Vec<u64> = tokenize(text).iter().map(|w| term_of(w)).collect();
        terms.sort_unstable();
        terms.dedup();
        index.insert_document(name, terms).expect("unique names");
    }

    for query in ["probabilistic", "membership", "genome", "streams"] {
        let hits = index.query_u64(term_of(query));
        println!("'{query}' -> {:?}", index.resolve_names(&hits));
    }
    // Conjunction: documents containing BOTH words (Algorithm 2 semantics).
    let both = index.query_terms_u64(&[term_of("bloom"), term_of("membership")], QueryMode::Full);
    println!(
        "'bloom' AND 'membership' -> {:?}\n",
        index.resolve_names(&both)
    );

    // --- A Wiki-scale synthetic corpus (§5.4 shape) -----------------------
    let corpus = ZipfCorpus::generate(&CorpusParams::wiki(0.02, 99)); // ~350 docs
    let k = corpus.docs.len();
    let mean_terms = corpus.total_terms() / k;
    println!("synthetic wiki corpus: {k} docs, ~{mean_terms} distinct terms each");

    let mut wiki = RamboBuilder::new()
        .expected_documents(k)
        .expected_terms_per_doc(mean_terms)
        .expected_multiplicity(8)
        .target_fpr(0.01)
        .seed(6)
        .build()
        .expect("valid parameters");
    for doc in &corpus.docs {
        wiki.insert_document(&doc.name, doc.terms.iter().copied())
            .expect("unique names");
    }

    // A frequent (head) term hits many documents; a rare (tail) term few.
    let head_hits = wiki.query_u64(0);
    let tail_term = 150_000u64;
    let tail_hits = wiki.query_u64(tail_term);
    println!(
        "head term -> {} docs (exact document frequency {})",
        head_hits.len(),
        corpus.doc_frequency(0)
    );
    println!(
        "tail term -> {} docs (exact document frequency {})",
        tail_hits.len(),
        corpus.doc_frequency(tail_term)
    );
    // Superset guarantee in both regimes.
    assert!(head_hits.len() >= corpus.doc_frequency(0));
    assert!(tail_hits.len() >= corpus.doc_frequency(tail_term));
    println!(
        "wiki index: B={} x R={}, {:.1} KB",
        wiki.buckets(),
        wiki.repetitions(),
        wiki.size_bytes() as f64 / 1e3
    );
}
