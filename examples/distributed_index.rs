//! The §5.3 cluster workflow on one machine: shard documents over simulated
//! nodes with the two-level hash, ingest in parallel, stack losslessly,
//! serialize, then fold the index down to smaller footprints.
//!
//! ```text
//! cargo run --release --example distributed_index
//! ```

use rambo::core::{build_sharded_parallel, QueryMode, Rambo, RamboParams};
use rambo::workloads::{ArchiveParams, SyntheticArchive};

const NODES: u64 = 8;
const LOCAL_BUCKETS: u64 = 32;
const REPETITIONS: usize = 4;

fn main() {
    // A synthetic archive standing in for a batch of ENA accessions.
    let mut params = ArchiveParams::ena_like(600, 1.0 / 20_000.0, 31);
    params.mean_terms = 2_000;
    params.std_terms = 1_000;
    let archive = SyntheticArchive::generate(&params);
    println!(
        "archive: {} documents, {:.0} mean distinct k-mers",
        archive.len(),
        archive.mean_terms()
    );

    // Shard over 8 simulated nodes: τ routes each document to a node, the
    // node-local φᵢ picks its BFU; global bucket = b·τ(D) + φᵢ(D).
    let bfu_bits = rambo::bloom::params::optimal_m(
        (archive.len() as f64 / (NODES * LOCAL_BUCKETS) as f64 * 2_000.0 * 1.3) as usize,
        0.01,
    );
    let rambo_params =
        RamboParams::two_level(NODES, LOCAL_BUCKETS, REPETITIONS, bfu_bits, 2, 0xC1C1);

    let start = std::time::Instant::now();
    let index =
        build_sharded_parallel(rambo_params, archive.docs.clone()).expect("sharded build succeeds");
    println!(
        "parallel build on {NODES} simulated nodes: {:?} (B = {} x R = {REPETITIONS})",
        start.elapsed(),
        index.buckets(),
    );

    // Verify stacking is lossless: a single-machine build with the same seed
    // produces byte-identical BFU columns.
    let mut mono = Rambo::new(rambo_params).expect("params");
    for (name, terms) in &archive.docs {
        mono.insert_document(name, terms.iter().copied())
            .expect("unique");
    }
    for rep in 0..REPETITIONS {
        for b in 0..index.buckets() as usize {
            assert_eq!(
                index.bfu_bits(rep, b),
                mono.bfu_bits(rep, b),
                "stacking must be lossless"
            );
        }
    }
    println!("stacked == monolithic: verified bit-for-bit");

    // Serialize / reload.
    let bytes = index.to_bytes().expect("stacked index serializes");
    let mut reloaded = Rambo::from_bytes(&bytes).expect("roundtrip");
    println!("serialized index: {:.2} MB", bytes.len() as f64 / 1e6);

    // Fold twice (Figure 3): size shrinks, FPR grows, no false negatives.
    let probe_doc = &archive.docs[123];
    let probe_id = reloaded.document_id(&probe_doc.0).expect("doc registered");
    for fold in 0..3 {
        let hits = reloaded.query_u64(probe_doc.1[0]);
        assert!(hits.contains(&probe_id), "owner lost at fold {fold}");
        println!(
            "fold x{}: B = {:>3}, {:>10} bytes, owner-of-probe found, {} total hits",
            1 << fold,
            reloaded.buckets(),
            reloaded.size_bytes(),
            hits.len()
        );
        if fold < 2 {
            reloaded.fold_once().expect("fold available");
        }
    }

    // Batch queries fan out over threads (queries are embarrassingly
    // parallel, §1.1).
    let queries: Vec<u64> = archive.docs.iter().map(|(_, t)| t[0]).collect();
    let start = std::time::Instant::now();
    let results = reloaded.query_batch_parallel(&queries, QueryMode::Sparse, 8);
    println!(
        "batch of {} queries on 8 threads: {:?} ({} non-empty)",
        queries.len(),
        start.elapsed(),
        results.iter().filter(|r| !r.is_empty()).count()
    );
}
