//! Genomic sequence search end-to-end: the paper's Figure 1 workflow.
//!
//! Simulates a microbial archive (genome families with shared ancestry),
//! sequences each genome into error-laden FASTQ reads, extracts 31-mers,
//! indexes them with RAMBO, and then answers sequence queries — including
//! for a strain *related but not identical* to an indexed one, the paper's
//! outbreak-tracking motivation.
//!
//! ```text
//! cargo run --release --example genome_search
//! ```

use rambo::baselines::{InvertedIndex, MembershipIndex};
use rambo::core::{IngestPipeline, QueryBatch, QueryContext, QueryMode, RamboBuilder};
use rambo::kmer::sim::GenomeSimulator;
use rambo::kmer::{kmers_of, KmerSet};

const K: usize = 31;
const GENOME_LEN: usize = 20_000;
const FAMILIES: usize = 10;
const STRAINS_PER_FAMILY: usize = 5;

fn main() {
    // --- 1. Simulate the archive: families of related strains ------------
    let mut sim = GenomeSimulator::new(2024);
    let mut genomes: Vec<(String, Vec<u8>)> = Vec::new();
    for f in 0..FAMILIES {
        let ancestor = sim.random_genome(GENOME_LEN);
        for (s, strain) in sim
            .derive_family(&ancestor, STRAINS_PER_FAMILY, 0.01)
            .into_iter()
            .enumerate()
        {
            genomes.push((format!("family{f}-strain{s}"), strain));
        }
    }
    println!("simulated {} genomes of {} bp", genomes.len(), GENOME_LEN);

    // --- 2. Sequence + extract k-mers (FASTQ -> McCortex-like sets) ------
    let mut sets: Vec<(String, KmerSet)> = Vec::new();
    for (name, genome) in &genomes {
        let reads = sim.simulate_reads(genome, 150, 6.0, 0.002);
        let set = KmerSet::from_sequences(reads.iter().map(|r| r.seq.as_slice()), K, false);
        sets.push((name.clone(), set));
    }
    let mean_kmers = sets.iter().map(|(_, s)| s.len()).sum::<usize>() / sets.len();
    println!("mean distinct {K}-mers per document: {mean_kmers}");
    let docs: Vec<(String, Vec<u64>)> = sets
        .iter()
        .map(|(name, set)| (name.clone(), set.kmers().to_vec()))
        .collect();

    // --- 3. Index with RAMBO (+ exact oracle for comparison) -------------
    // K-mer sets stream in through the bounded-queue ingestion pipeline:
    // while the write stage sets genome n's filter bits, the calling thread
    // is already hashing genome n+1 (each document still gets the batch
    // engine's hash-once-per-repetition, row-grouped treatment).
    let mut index = RamboBuilder::new()
        .expected_documents(docs.len())
        .expected_terms_per_doc(mean_kmers)
        .expected_multiplicity(STRAINS_PER_FAMILY as u32)
        .target_fpr(0.01)
        .seed(7)
        .build()
        .expect("valid parameters");
    let report = IngestPipeline::new()
        .ingest(&mut index, docs.iter().cloned())
        .expect("unique names");
    println!(
        "pipelined ingest: {} documents, {} terms; producer stalled {}x, writer {}x",
        report.docs, report.terms, report.producer_stalls, report.writer_stalls
    );
    let oracle = InvertedIndex::build(&docs);
    println!(
        "RAMBO: B={} x R={}, {:.1} KB (exact inverted index: {:.1} KB)",
        index.buckets(),
        index.repetitions(),
        index.size_bytes() as f64 / 1e3,
        oracle.size_bytes() as f64 / 1e3,
    );

    // --- 4. Query a fragment of a known strain ---------------------------
    // The index holds k-mers from *reads*: coverage gaps and sequencing
    // errors mean a few percent of any genome fragment's k-mers are simply
    // not in the indexed set, so the strict all-terms intersection of §3.3.1
    // is too brittle here. We query with a θ-fraction threshold (θ = 0.8),
    // the same robustness mechanism the SBT family uses.
    let mut ctx = QueryContext::new();
    let target = 17; // family3-strain2
    let fragment = &genomes[target].1[5_000..5_400];
    let query_kmers: Vec<u64> = kmers_of(fragment, K, false).collect();
    let hits = index.query_sequence_theta(&query_kmers, 0.8, QueryMode::Sparse, &mut ctx);
    let names = index.resolve_names(&hits);
    println!("\nfragment of {} -> {:?}", genomes[target].0, names);
    assert!(
        names.contains(&genomes[target].0.as_str()),
        "zero false negatives: the owner must be found"
    );
    // Cross-check against the exact oracle under the same θ semantics: every
    // document truly containing ≥80% of the k-mers must be reported.
    let needed = (query_kmers.len() as f64 * 0.8).ceil() as usize;
    for d in 0..docs.len() as u32 {
        let truly = query_kmers
            .iter()
            .filter(|&&t| oracle.postings(t).binary_search(&d).is_ok())
            .count();
        if truly >= needed {
            assert!(
                hits.contains(&d),
                "RAMBO must return a superset of the truth"
            );
        }
    }

    // --- 5. Query an unseen outbreak strain (novel mutant) ---------------
    // A strain 0.2% diverged from an indexed one: most 31-mer windows are
    // intact, so the θ query still pins the family.
    let outbreak = sim.mutate(&genomes[target].1, 0.002);
    let fragment = &outbreak[8_000..8_400];
    let query_kmers: Vec<u64> = kmers_of(fragment, K, false).collect();
    let hits = index.query_sequence_theta(&query_kmers, 0.6, QueryMode::Sparse, &mut ctx);
    println!(
        "outbreak-strain fragment (0.2% diverged) -> {:?}",
        index.resolve_names(&hits)
    );

    // --- 6. And a fragment from a genome never sequenced -----------------
    let alien = GenomeSimulator::new(999).random_genome(1_000);
    let query_kmers: Vec<u64> = kmers_of(&alien[..200], K, false).collect();
    let hits = index.query_sequence_theta(&query_kmers, 0.6, QueryMode::Sparse, &mut ctx);
    println!("unrelated fragment -> {} hits (expect 0)", hits.len());

    // --- 7. Batch membership: which documents hold each probe k-mer? -----
    // Overlapping windows share 30 of 31 k-mers between neighbours, so the
    // memoizing batch engine probes each distinct k-mer once.
    let probes: Vec<Vec<u64>> = genomes[target].1[5_000..5_200]
        .windows(K)
        .step_by(8)
        .filter_map(|w| kmers_of(w, K, false).next().map(|km| vec![km]))
        .collect();
    let mut batch = QueryBatch::new(&index);
    let results = batch.run(&probes, QueryMode::Full);
    let owner = index.document_id(&genomes[target].0).expect("indexed");
    let found = results.iter().filter(|r| r.contains(&owner)).count();
    println!(
        "batch membership: {found}/{} probe k-mers report the owner ({} distinct terms memoized)",
        probes.len(),
        batch.memoized_terms()
    );
}
