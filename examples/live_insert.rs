//! Live inserts: the mutable generational index behind a server front.
//!
//! The paper's pipeline is batch-shaped — crawl, build for a week, then
//! serve a frozen catalog. This example shows the online path layered on
//! top: a `LiveServer` owns an LSM-style `GenerationalIndex` (one mutable
//! memtable + sealed immutable generations, merged in the background),
//! accepts inserts while answering queries bit-identically to a
//! monolithic rebuild, exposes the same over TCP via the `MUTATE`
//! opcode, and finally freezes the accumulated documents into a regular
//! fold-over `Catalog` through the unified builder.
//!
//! ```text
//! cargo run --release --example live_insert
//! ```

use rambo::core::{GenerationConfig, QueryMode, RamboParams, TierCompression};
use rambo::server::{serve_live_tcp, Catalog, LiveServer, ServeOptions, ServerConfig, TcpClient};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};

/// A synthetic "sample": 32 private terms plus one shared marker term.
fn sample(i: u64) -> (String, Vec<u64>) {
    let mut terms: Vec<u64> = (0..32).map(|t| (i << 20) | t).collect();
    terms.push(0xC0FFEE);
    (format!("sample-{i}"), terms)
}

fn main() {
    let params = RamboParams::flat(32, 3, 1 << 13, 2, 42);
    // Small memtable so the run visibly seals and merges: at most 8 docs
    // (or a predicted FPR above 2%) per generation, tiers merged 2:1,
    // never more than 3 immutable generations.
    let config = ServerConfig::builder()
        .generations(GenerationConfig {
            memtable_fpr_budget: 0.02,
            memtable_max_docs: 8,
            tier_growth: 2,
            max_generations: 3,
        })
        .build();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let stop = AtomicBool::new(false);

    let ((), stats) = LiveServer::scope(params, config, |handle| {
        // 1. In-process live inserts, queried as they land.
        for i in 0..20 {
            let (name, terms) = sample(i);
            let id = handle.insert_document(&name, &terms).expect("insert");
            assert!(handle.query(&[terms[0]], None).contains(&id));
        }
        let snap = handle.stats();
        println!(
            "after 20 inserts: {} generations + {} memtable docs (epoch {}, {} seals, {} merges)",
            snap.generations, snap.memtable_documents, snap.epoch, snap.seals, snap.merges
        );

        // 2. The same index over TCP: the MUTATE opcode inserts, QUERY
        //    reads its own writes on the same connection.
        std::thread::scope(|s| {
            let server =
                s.spawn(|| serve_live_tcp(handle, listener, &stop, &ServeOptions::default()));
            let mut client = TcpClient::connect(addr).expect("connect");
            for i in 20..28 {
                let (name, terms) = sample(i);
                let (id, epoch) = client.insert_document(&name, &terms).expect("mutate");
                let reply = client
                    .query(&[terms[0]], 1.0, std::time::Duration::from_secs(5))
                    .expect("query");
                assert!(reply.docs.contains(&id));
                println!("tcp insert {name} -> id {id} (epoch {epoch})");
            }
            // Duplicates are rejected in-protocol; the connection survives.
            let err = client.insert_document("sample-5", &[1]).unwrap_err();
            println!("duplicate rejected: {err}");
            println!(
                "--- live STATS frame ---\n{}",
                client.stats().expect("stats")
            );
            stop.store(true, Ordering::Relaxed);
            server.join().expect("join").expect("serve");
        });

        // 3. All 28 documents answer identically to a monolithic rebuild
        //    no matter how the generations happen to be laid out.
        handle.drain_merges().expect("merge");
        for i in 0..28 {
            let (name, terms) = sample(i);
            let id = handle.document_id(&name).expect("indexed");
            assert!(handle
                .query(&[terms[7]], Some(QueryMode::Sparse))
                .contains(&id));
        }
        assert_eq!(handle.query(&[0xC0FFEE], None).len(), 28);

        // 4. Freeze the live index into a fold-over catalog (32- and
        //    16-bucket tiers) through the unified builder.
        let frozen = handle.freeze().expect("snapshot");
        let catalog = Catalog::builder()
            .base(&frozen)
            .tiers(&[(32, TierCompression::Dense), (16, TierCompression::Dense)])
            .build()
            .expect("freeze");
        println!(
            "frozen into a {}-tier catalog ({} bytes)",
            catalog.len(),
            catalog.buffer().len()
        );
    })
    .expect("valid config");

    println!(
        "final: {} docs, {} seals, {} merges, write p99 {:?}, read p99 {:?}",
        stats.documents, stats.seals, stats.merges, stats.write_p99, stats.read_p99
    );
}
