//! Quickstart: build a RAMBO index over a handful of documents and query it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rambo::core::{QueryMode, Rambo, RamboBuilder};

fn main() {
    // Size the index from workload estimates (§5.1 pooling method): the
    // builder derives B = √(KV/η), R = log K, and BFU bits for the target
    // per-BFU false-positive rate.
    let mut index: Rambo = RamboBuilder::new()
        .expected_documents(4)
        .expected_terms_per_doc(8)
        .target_fpr(0.01)
        .seed(42)
        .build()
        .expect("valid parameters");

    // Documents are named sets of terms. Any u64 term works: packed k-mers,
    // word ids, feature hashes...
    let archive: &[(&str, &[u64])] = &[
        ("genome-alpha", &[10, 11, 12, 13, 99]),
        ("genome-beta", &[20, 21, 22, 23, 99]),
        ("genome-gamma", &[30, 31, 32, 33, 99]),
        ("genome-delta", &[40, 41, 42, 43]),
    ];
    for (name, terms) in archive {
        index
            .insert_document(name, terms.iter().copied())
            .expect("unique document names");
    }

    // Single-term membership: which documents contain term 21?
    let hits = index.query_u64(21);
    println!("term 21 -> {:?}", index.resolve_names(&hits));
    assert!(index.resolve_names(&hits).contains(&"genome-beta"));

    // A term shared by several documents returns all of them — with zero
    // false negatives, guaranteed.
    let hits = index.query_u64(99);
    println!("term 99 -> {:?}", index.resolve_names(&hits));
    assert!(hits.len() >= 3);

    // Multi-term (Algorithm 2) and RAMBO+ sparse evaluation.
    let joint = index.query_terms_u64(&[30, 31, 32], QueryMode::Sparse);
    println!("terms {{30,31,32}} -> {:?}", index.resolve_names(&joint));

    // Absent terms (almost always) return nothing.
    let miss = index.query_u64(777_777);
    println!("term 777777 -> {:?}", index.resolve_names(&miss));

    println!(
        "index: K={} documents, B={} buckets x R={} repetitions, {} bytes",
        index.num_documents(),
        index.buckets(),
        index.repetitions(),
        index.size_bytes()
    );
}
