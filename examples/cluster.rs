//! A live RAMBO cluster on one machine: shard a corpus over node-local
//! servers, front them with a scatter-gather coordinator, then exercise
//! failover and degraded mode by killing replicas.
//!
//! This is the serving half of the §5.3 story: `distributed_index.rs`
//! shows the *build* side (shard, ingest in parallel, stack losslessly);
//! here each node keeps its local shard and answers queries in place,
//! while a coordinator unions the per-shard answers — bit-identical to
//! the stacked monolith, because the two-level hash gives every node a
//! disjoint slice of the global bucket space.
//!
//! ```text
//! cargo run --release --example cluster
//! ```

use rambo::cluster::{plan_cluster, ClusterConfig, Coordinator, ShardNode};
use rambo::core::{QueryMode, RamboParams};
use rambo::server::ServerConfig;
use std::time::Duration;

const NODES: u64 = 3;
const REPLICAS: u32 = 2;
const DEADLINE: Duration = Duration::from_secs(5);

fn main() {
    // A small corpus: every document gets a private run of terms plus a
    // shared triple so multi-document hits exist.
    let docs: Vec<(String, Vec<u64>)> = (0..30u64)
        .map(|d| {
            let terms = (0..3u64)
                .map(|t| 0xABC0 | t)
                .chain((3..24).map(|t| d << 16 | t))
                .collect();
            (format!("accession-{d}"), terms)
        })
        .collect();

    // Plan: ingest once, keep both the node-local shards and the stacked
    // monolith (the parity reference).
    let params = RamboParams::two_level(NODES, 16, 3, 1 << 12, 2, 0xC1C2);
    let plan = plan_cluster(params, &docs).expect("plan cluster");
    println!(
        "planned {} shards over {} documents (ranges {:?})",
        plan.shards.len(),
        docs.len(),
        plan.ranges
    );

    // Spawn REPLICAS replicas of every shard, each a real TCP server over
    // its node-local index, announcing itself via a HELLO manifest.
    let mut nodes: Vec<Vec<ShardNode>> = plan
        .shards
        .iter()
        .zip(&plan.ranges)
        .enumerate()
        .map(|(s, (shard, &(lo, hi)))| {
            (0..REPLICAS)
                .map(|r| {
                    ShardNode::spawn(shard.clone(), s as u32, r, lo, hi, ServerConfig::default())
                        .expect("spawn shard node")
                })
                .collect()
        })
        .collect();
    let topology: Vec<Vec<_>> = nodes
        .iter()
        .map(|reps| reps.iter().map(ShardNode::addr).collect())
        .collect();
    for (s, reps) in topology.iter().enumerate() {
        println!("shard {s}: replicas at {reps:?}");
    }

    // The coordinator validates every manifest (shard ids, disjoint
    // ranges, replica fingerprints) before serving.
    let coordinator =
        Coordinator::connect(&topology, ClusterConfig::default()).expect("connect coordinator");

    // Scatter-gather answers are bit-identical to the monolith.
    let probe: Vec<u64> = vec![7 << 16 | 3, 7 << 16 | 4, 7 << 16 | 5];
    let reply = coordinator.query(&probe, 0.0, DEADLINE).expect("query");
    let mono = plan.monolith.query_terms_u64(&probe, QueryMode::Full);
    assert_eq!(reply.docs, mono);
    println!("scatter-gather == monolith: docs {:?}", reply.docs);

    // Kill one replica of shard 0: its sibling covers, no query fails.
    nodes[0][0].kill();
    for _ in 0..5 {
        let reply = coordinator.query(&probe, 0.0, DEADLINE).expect("failover");
        assert_eq!(reply.docs, mono);
        assert!(reply.degraded.is_empty());
    }
    println!("killed 1 replica of shard 0: failover covered, zero lost queries");

    // Kill the whole replica set: answers degrade instead of failing —
    // the reply lists the dead shard and covers everything else.
    for node in &mut nodes[0] {
        node.kill();
    }
    let (lo, hi) = plan.ranges[0];
    let mut degraded_reply = None;
    for _ in 0..6 {
        let reply = coordinator.query(&probe, 0.0, DEADLINE).expect("degraded");
        if !reply.degraded.is_empty() {
            degraded_reply = Some(reply);
            break;
        }
    }
    let reply = degraded_reply.expect("shard 0 must be reported down");
    assert_eq!(reply.degraded, vec![0]);
    assert!(reply.docs.iter().all(|&d| d < lo || d >= hi));
    println!(
        "killed shard 0 entirely: degraded reply (down shards {:?}), partial docs {:?}",
        reply.degraded, reply.docs
    );

    println!("\n{}", coordinator.stats());
}
