//! The coordinator/router: scatter-gather with hedged reads and replica
//! failover.
//!
//! One query fans out to every shard in a scoped thread each; within a
//! shard, attempts run on short-lived detached threads so the orchestrator
//! can race a hedge against a straggling primary and take whichever
//! answers first. An attempt owns everything it touches (`Arc`s to the
//! replica's pool/health/histogram), so a late loser cleans up after
//! itself — recording its outcome and recycling its connection — even
//! after the query has long returned.

use crate::health::ReplicaHealth;
use crate::manifest::{ManifestError, NodeManifest};
use crate::pool::ClientPool;
use rambo_core::QueryMode;
use rambo_server::{QueryReply, ServerError, TcpClient, TcpClientError};
use rambo_workloads::stats::LatencyHistogram;
use std::fmt;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// When to re-issue a straggling request to a sibling replica.
#[derive(Debug, Clone)]
pub struct HedgeConfig {
    /// Latency quantile of the primary replica's own history that arms the
    /// hedge timer.
    pub quantile: f64,
    /// Lower clamp on the derived delay (don't hedge on micro-jitter).
    pub floor: Duration,
    /// Upper clamp on the derived delay (a slow history must not disable
    /// hedging entirely).
    pub cap: Duration,
    /// Delay used until the replica has [`HedgeConfig::min_samples`]
    /// recorded attempts.
    pub cold: Duration,
    /// Attempts a replica's histogram needs before its quantile is
    /// trusted.
    pub min_samples: u64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self {
            quantile: 0.99,
            floor: Duration::from_millis(1),
            cap: Duration::from_millis(100),
            cold: Duration::from_millis(20),
            min_samples: 32,
        }
    }
}

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-address TCP connect timeout (topology discovery and pool
    /// refills).
    pub connect_timeout: Duration,
    /// Idle connections kept per replica.
    pub pool_capacity: usize,
    /// Consecutive transport errors that demote a replica.
    pub fail_threshold: u32,
    /// Cool-down before a demoted replica is re-probed with a live query.
    pub probe_interval: Duration,
    /// Hedged-read policy.
    pub hedge: HedgeConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            pool_capacity: 4,
            fail_threshold: 3,
            probe_interval: Duration::from_millis(500),
            hedge: HedgeConfig::default(),
        }
    }
}

/// A coordinator answer: the global union, plus which shards (if any)
/// could not be reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterReply {
    /// Matching global (node-major) document ids, ascending.
    pub docs: Vec<u32>,
    /// Highest (most folded) tier any shard answered from.
    pub tier: usize,
    /// Shard ids whose entire replica set was unreachable; their documents
    /// are missing from `docs`. Empty for a complete answer.
    pub degraded: Vec<u32>,
}

/// Coordinator-level failure.
#[derive(Debug)]
pub enum ClusterError {
    /// Transport failure during topology discovery.
    Io(io::Error),
    /// A node's `HELLO` answer was not a valid manifest.
    Manifest {
        /// Which node answered.
        addr: String,
        /// What was malformed.
        error: ManifestError,
    },
    /// The configured topology contradicts what the nodes announced.
    Config(String),
    /// A (reachable) shard rejected the query — overload or deadline; the
    /// cluster answer would be incomplete for a non-availability reason,
    /// so the rejection is surfaced rather than masked as degraded.
    Shard {
        /// Which shard rejected.
        shard: u32,
        /// Its rejection.
        error: ServerError,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "cluster transport error: {e}"),
            Self::Manifest { addr, error } => {
                write!(f, "cluster topology error: {addr}: {error}")
            }
            Self::Config(msg) => write!(f, "cluster topology error: {msg}"),
            Self::Shard { shard, error } => {
                write!(f, "shard {shard} rejected the query: {error}")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Manifest { error, .. } => Some(error),
            Self::Config(_) => None,
            Self::Shard { error, .. } => Some(error),
        }
    }
}

impl From<io::Error> for ClusterError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Everything an attempt thread needs about one replica — `Arc`-shared so
/// detached attempts outliving their query stay sound.
#[derive(Debug)]
struct Replica {
    pool: ClientPool,
    health: ReplicaHealth,
    /// Per-attempt latency history; feeds the hedge delay.
    latency: LatencyHistogram,
    demotions: AtomicU64,
    manifest: NodeManifest,
}

/// One shard's routing state (coordinator-internal).
#[derive(Debug)]
struct Shard {
    id: u32,
    doc_lo: u32,
    replicas: Vec<Arc<Replica>>,
    /// Round-robin cursor for primary selection.
    rr: AtomicUsize,
    /// Whole-query latency as seen by the gather loop.
    latency: LatencyHistogram,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    failovers: AtomicU64,
}

/// How one shard's scatter leg ended, before gathering.
enum ShardFailure {
    /// Every replica transport-failed (or none was eligible) — the shard
    /// is unreachable and the reply degrades.
    Unreachable,
    /// A live shard said no (overload/deadline).
    Rejected(ServerError),
}

/// The scatter-gather router. See the crate docs for the full picture.
#[derive(Debug)]
pub struct Coordinator {
    shards: Vec<Shard>,
    config: ClusterConfig,
    /// Monotonic epoch for the probe scheduler's nanosecond clock.
    epoch: Instant,
    queries: AtomicU64,
    degraded_replies: AtomicU64,
}

impl Coordinator {
    /// Dial a replica and complete the `HELLO` exchange. The whole
    /// exchange is bounded by `timeout` — discovery must never hang on a
    /// half-dead peer — and retried once, because a freshly spawned node
    /// on a loaded host can miss a single read window without being
    /// dead. Each retry starts from a brand-new connection so a late
    /// reply to the first attempt can never desynchronize the stream.
    fn dial_hello(
        addr: SocketAddr,
        timeout: Duration,
    ) -> Result<(TcpClient, Vec<u8>), ClusterError> {
        let mut last = None;
        for _ in 0..2 {
            let attempt = (|| {
                let mut client = TcpClient::connect_with_timeout(addr, timeout)?;
                client.set_io_timeout(Some(timeout))?;
                let raw = client.hello().map_err(|e| {
                    ClusterError::Config(format!("{addr} did not answer HELLO: {e}"))
                })?;
                Ok((client, raw))
            })();
            match attempt {
                Ok(ok) => return Ok(ok),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one dial attempt"))
    }

    /// Connect to a cluster: `topology[s]` lists the replica addresses of
    /// shard `s`. Every replica is dialed, `HELLO`-verified, and its
    /// manifest cross-checked — replicas of one shard must announce the
    /// same shard id, doc range and catalog fingerprint, shard ids must
    /// match their position, and doc ranges must be ascending and
    /// disjoint (so concatenating per-shard answers is already sorted).
    ///
    /// # Errors
    /// [`ClusterError::Io`] when a replica cannot be reached,
    /// [`ClusterError::Config`] when the manifests contradict the
    /// configured topology.
    pub fn connect(
        topology: &[Vec<SocketAddr>],
        config: ClusterConfig,
    ) -> Result<Self, ClusterError> {
        if topology.is_empty() {
            return Err(ClusterError::Config("topology has no shards".into()));
        }
        let mut shards = Vec::with_capacity(topology.len());
        let mut prev_hi: Option<u32> = None;
        for (s, addrs) in topology.iter().enumerate() {
            if addrs.is_empty() {
                return Err(ClusterError::Config(format!("shard {s} has no replicas")));
            }
            let mut replicas = Vec::with_capacity(addrs.len());
            let mut first: Option<NodeManifest> = None;
            for &addr in addrs {
                let (client, raw) = Self::dial_hello(addr, config.connect_timeout)?;
                let manifest =
                    NodeManifest::decode(&raw).map_err(|error| ClusterError::Manifest {
                        addr: addr.to_string(),
                        error,
                    })?;
                if manifest.shard as usize != s {
                    return Err(ClusterError::Config(format!(
                        "{addr} announces shard {} but is configured as shard {s}",
                        manifest.shard
                    )));
                }
                match &first {
                    None => first = Some(manifest),
                    Some(head) => {
                        let consistent = head.doc_lo == manifest.doc_lo
                            && head.doc_hi == manifest.doc_hi
                            && head.fingerprint == manifest.fingerprint
                            && head.tiers == manifest.tiers
                            && head.buckets == manifest.buckets;
                        if !consistent {
                            return Err(ClusterError::Config(format!(
                                "shard {s} replicas disagree: {addr} serves a different \
                                 catalog or doc range than {}",
                                addrs[0]
                            )));
                        }
                    }
                }
                let pool = ClientPool::new(addr, config.connect_timeout, config.pool_capacity);
                pool.put(client); // seed with the discovery connection
                replicas.push(Arc::new(Replica {
                    pool,
                    health: ReplicaHealth::new(),
                    latency: LatencyHistogram::new(),
                    demotions: AtomicU64::new(0),
                    manifest,
                }));
            }
            let head = first.expect("at least one replica");
            if let Some(hi) = prev_hi {
                if head.doc_lo < hi {
                    return Err(ClusterError::Config(format!(
                        "shard {s} doc range [{}, {}) overlaps or precedes shard {}",
                        head.doc_lo,
                        head.doc_hi,
                        s - 1
                    )));
                }
            }
            prev_hi = Some(head.doc_hi);
            shards.push(Shard {
                id: s as u32,
                doc_lo: head.doc_lo,
                replicas,
                rr: AtomicUsize::new(0),
                latency: LatencyHistogram::new(),
                hedges: AtomicU64::new(0),
                hedge_wins: AtomicU64::new(0),
                failovers: AtomicU64::new(0),
            });
        }
        Ok(Self {
            shards,
            config,
            epoch: Instant::now(),
            queries: AtomicU64::new(0),
            degraded_replies: AtomicU64::new(0),
        })
    }

    /// Number of shards in the topology.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Scatter-gather a query: the union of per-shard answers, mapped to
    /// global doc ids. Unreachable shards degrade the reply
    /// ([`ClusterReply::degraded`]); reachable-but-rejecting shards fail it
    /// ([`ClusterError::Shard`]).
    ///
    /// # Errors
    /// See [`ClusterError`].
    pub fn query(
        &self,
        terms: &[u64],
        fpr_budget: f64,
        deadline: Duration,
    ) -> Result<ClusterReply, ClusterError> {
        self.query_mode(terms, fpr_budget, deadline, None)
    }

    /// [`Coordinator::query`] with an explicit evaluation mode.
    ///
    /// # Errors
    /// See [`Coordinator::query`].
    pub fn query_mode(
        &self,
        terms: &[u64],
        fpr_budget: f64,
        deadline: Duration,
        mode: Option<QueryMode>,
    ) -> Result<ClusterReply, ClusterError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let terms: Arc<Vec<u64>> = Arc::new(terms.to_vec());
        let outcomes: Vec<Result<QueryReply, ShardFailure>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    let terms = Arc::clone(&terms);
                    scope.spawn(move || {
                        self.query_shard(shard, terms, fpr_budget, start, deadline, mode)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard orchestrator panicked"))
                .collect()
        });

        let mut docs = Vec::new();
        let mut tier = 0usize;
        let mut degraded = Vec::new();
        for (shard, outcome) in self.shards.iter().zip(outcomes) {
            match outcome {
                Ok(reply) => {
                    tier = tier.max(reply.tier);
                    docs.extend(reply.docs.iter().map(|&local| shard.doc_lo + local));
                }
                Err(ShardFailure::Unreachable) => degraded.push(shard.id),
                Err(ShardFailure::Rejected(error)) => {
                    return Err(ClusterError::Shard {
                        shard: shard.id,
                        error,
                    })
                }
            }
        }
        if !degraded.is_empty() {
            self.degraded_replies.fetch_add(1, Ordering::Relaxed);
        }
        Ok(ClusterReply {
            docs,
            tier,
            degraded,
        })
    }

    /// One shard's scatter leg: primary attempt, hedge on the quantile
    /// timer, failover on error, first success wins.
    fn query_shard(
        &self,
        shard: &Shard,
        terms: Arc<Vec<u64>>,
        fpr_budget: f64,
        start: Instant,
        deadline: Duration,
        mode: Option<QueryMode>,
    ) -> Result<QueryReply, ShardFailure> {
        let overall = start + deadline;
        let (tx, rx) = mpsc::channel::<(bool, Result<QueryReply, TcpClientError>)>();
        let mut used = vec![false; shard.replicas.len()];
        let now_ns = || self.epoch.elapsed().as_nanos() as u64;
        let probe_ns = self.config.probe_interval.as_nanos() as u64;

        let Some(primary) = self.pick_primary(shard, &used, now_ns(), probe_ns) else {
            return Err(ShardFailure::Unreachable);
        };
        used[primary] = true;
        let hedge_at = Instant::now() + self.hedge_delay(&shard.replicas[primary]);
        self.launch(
            shard, primary, &tx, &terms, fpr_budget, overall, mode, false,
        );
        let mut inflight = 1usize;
        let mut hedged = false;
        let mut last_rejection: Option<ServerError> = None;

        loop {
            let now = Instant::now();
            if now >= overall {
                return Err(ShardFailure::Rejected(ServerError::DeadlineExceeded {
                    tier: 0,
                }));
            }
            let wake = if hedged || inflight == 0 {
                overall
            } else {
                overall.min(hedge_at)
            };
            match rx.recv_timeout(wake.saturating_duration_since(now)) {
                Ok((was_hedge, Ok(reply))) => {
                    shard.latency.record(start.elapsed());
                    if was_hedge {
                        shard.hedge_wins.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(reply);
                }
                Ok((_, Err(e))) => {
                    inflight -= 1;
                    if let TcpClientError::Server(err) = e {
                        last_rejection = Some(err);
                    }
                    // Failover: try the next untried replica immediately.
                    if let Some(next) = self.pick_fallback(shard, &used, now_ns(), probe_ns) {
                        used[next] = true;
                        shard.failovers.fetch_add(1, Ordering::Relaxed);
                        self.launch(shard, next, &tx, &terms, fpr_budget, overall, mode, hedged);
                        inflight += 1;
                    } else if inflight == 0 {
                        return Err(match last_rejection {
                            Some(err) => ShardFailure::Rejected(err),
                            None => ShardFailure::Unreachable,
                        });
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if !hedged && Instant::now() >= hedge_at {
                        hedged = true;
                        if let Some(next) = self.pick_fallback(shard, &used, now_ns(), probe_ns) {
                            used[next] = true;
                            shard.hedges.fetch_add(1, Ordering::Relaxed);
                            self.launch(shard, next, &tx, &terms, fpr_budget, overall, mode, true);
                            inflight += 1;
                        }
                    }
                    // Otherwise the overall deadline fired; the top of the
                    // loop converts it.
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(ShardFailure::Unreachable);
                }
            }
        }
    }

    /// Round-robin over healthy replicas; with none healthy, the one
    /// caller who wins the half-open probe CAS gets to test a demoted one.
    fn pick_primary(
        &self,
        shard: &Shard,
        used: &[bool],
        now_ns: u64,
        probe_ns: u64,
    ) -> Option<usize> {
        let n = shard.replicas.len();
        let cursor = shard.rr.fetch_add(1, Ordering::Relaxed);
        for k in 0..n {
            let i = (cursor + k) % n;
            if !used[i] && shard.replicas[i].health.is_up() {
                return Some(i);
            }
        }
        (0..n).find(|&i| !used[i] && shard.replicas[i].health.claim_probe(now_ns, probe_ns))
    }

    /// An untried replica for hedging/failover: healthy ones first, then a
    /// probe-eligible demoted one.
    fn pick_fallback(
        &self,
        shard: &Shard,
        used: &[bool],
        now_ns: u64,
        probe_ns: u64,
    ) -> Option<usize> {
        let up = (0..shard.replicas.len()).find(|&i| !used[i] && shard.replicas[i].health.is_up());
        up.or_else(|| {
            (0..shard.replicas.len())
                .find(|&i| !used[i] && shard.replicas[i].health.claim_probe(now_ns, probe_ns))
        })
    }

    /// The hedge timer for a primary: its own latency quantile, clamped;
    /// a configured cold default until the histogram has enough samples.
    fn hedge_delay(&self, replica: &Replica) -> Duration {
        let h = &self.config.hedge;
        if replica.latency.count() < h.min_samples {
            h.cold
        } else {
            replica.latency.quantile(h.quantile).clamp(h.floor, h.cap)
        }
    }

    /// Fire one attempt on a detached thread. The thread owns `Arc`s to
    /// everything it touches and its socket reads are bounded by the
    /// remaining deadline, so it dies promptly even when nobody is left
    /// listening; health, histogram and pool updates happen in the
    /// attempt so late losers still count.
    #[allow(clippy::too_many_arguments)]
    fn launch(
        &self,
        shard: &Shard,
        replica_idx: usize,
        tx: &mpsc::Sender<(bool, Result<QueryReply, TcpClientError>)>,
        terms: &Arc<Vec<u64>>,
        fpr_budget: f64,
        overall: Instant,
        mode: Option<QueryMode>,
        is_hedge: bool,
    ) {
        let replica = Arc::clone(&shard.replicas[replica_idx]);
        let terms = Arc::clone(terms);
        let tx = tx.clone();
        let fail_threshold = self.config.fail_threshold;
        let probe_ns = self.config.probe_interval.as_nanos() as u64;
        let epoch = self.epoch;
        std::thread::spawn(move || {
            let remaining = overall.saturating_duration_since(Instant::now());
            let t0 = Instant::now();
            let result = attempt(&replica.pool, &terms, fpr_budget, remaining, mode);
            match &result {
                Ok(_) => {
                    replica.latency.record(t0.elapsed());
                    replica.health.record_success();
                }
                Err(TcpClientError::Server(_) | TcpClientError::Rejected(_)) => {
                    // The node is alive and the stream stayed in sync;
                    // rejections are not transport failures.
                }
                Err(TcpClientError::Io(_) | TcpClientError::Protocol(_)) => {
                    let now_ns = epoch.elapsed().as_nanos() as u64;
                    if replica
                        .health
                        .record_failure(fail_threshold, now_ns, probe_ns)
                    {
                        replica.demotions.fetch_add(1, Ordering::Relaxed);
                        // Sockets that died with the replica must not be
                        // handed out after it recovers.
                        replica.pool.clear();
                    }
                }
            }
            let _ = tx.send((is_hedge, result));
        });
    }

    /// A point-in-time stats snapshot (also serialized by the front's
    /// `STATS` opcode).
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            queries: self.queries.load(Ordering::Relaxed),
            degraded_replies: self.degraded_replies.load(Ordering::Relaxed),
            shards: self
                .shards
                .iter()
                .map(|s| ShardStats {
                    shard: s.id,
                    queries: s.latency.count(),
                    p50: s.latency.quantile(0.5),
                    p99: s.latency.quantile(0.99),
                    hedges: s.hedges.load(Ordering::Relaxed),
                    hedge_wins: s.hedge_wins.load(Ordering::Relaxed),
                    failovers: s.failovers.load(Ordering::Relaxed),
                    replicas: s
                        .replicas
                        .iter()
                        .map(|r| ReplicaStats {
                            addr: r.pool.addr(),
                            replica: r.manifest.replica,
                            up: r.health.is_up(),
                            errors: r.health.total_errors(),
                            demotions: r.demotions.load(Ordering::Relaxed),
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// One pooled request/reply exchange against a replica; reads and writes
/// are bounded by `remaining`, and only a cleanly-synced connection goes
/// back to the pool.
fn attempt(
    pool: &ClientPool,
    terms: &[u64],
    fpr_budget: f64,
    remaining: Duration,
    mode: Option<QueryMode>,
) -> Result<QueryReply, TcpClientError> {
    let mut client = pool.get(remaining)?;
    match client.query_mode(
        terms,
        fpr_budget,
        remaining.max(Duration::from_millis(1)),
        mode,
    ) {
        Ok(reply) => {
            pool.put(client);
            Ok(reply)
        }
        Err(e @ TcpClientError::Server(_)) => {
            // Error frames arrive complete; the stream is still in sync.
            pool.put(client);
            Err(e)
        }
        Err(e) => Err(e), // timed out / short read: the connection is dropped
    }
}

/// Health and error counters of one replica.
#[derive(Debug, Clone)]
pub struct ReplicaStats {
    /// Replica address.
    pub addr: SocketAddr,
    /// Replica id from its manifest.
    pub replica: u32,
    /// Currently in the routing rotation.
    pub up: bool,
    /// Lifetime transport errors.
    pub errors: u64,
    /// Times this replica was demoted.
    pub demotions: u64,
}

/// Latency and resilience counters of one shard.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard id.
    pub shard: u32,
    /// Successful scatter legs recorded.
    pub queries: u64,
    /// Median shard-leg latency.
    pub p50: Duration,
    /// Tail shard-leg latency.
    pub p99: Duration,
    /// Hedges fired.
    pub hedges: u64,
    /// Queries won by the hedge attempt.
    pub hedge_wins: u64,
    /// Failover re-launches after an attempt error.
    pub failovers: u64,
    /// Per-replica health.
    pub replicas: Vec<ReplicaStats>,
}

/// Cluster-wide counters, serialized as plain text by the `STATS` opcode.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Queries routed.
    pub queries: u64,
    /// Replies that degraded (≥1 shard unreachable).
    pub degraded_replies: u64,
    /// Per-shard breakdown.
    pub shards: Vec<ShardStats>,
}

impl ClusterStats {
    /// Total hedges fired across shards.
    #[must_use]
    pub fn total_hedges(&self) -> u64 {
        self.shards.iter().map(|s| s.hedges).sum()
    }

    /// Total failover re-launches across shards.
    #[must_use]
    pub fn total_failovers(&self) -> u64 {
        self.shards.iter().map(|s| s.failovers).sum()
    }
}

impl fmt::Display for ClusterStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster: {} queries, {} degraded replies",
            self.queries, self.degraded_replies
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "  shard {}: {} legs, p50 {:?}, p99 {:?}, {} hedges ({} won), {} failovers",
                s.shard, s.queries, s.p50, s.p99, s.hedges, s.hedge_wins, s.failovers
            )?;
            for r in &s.replicas {
                writeln!(
                    f,
                    "    replica {} @ {}: {}, {} errors, {} demotions",
                    r.replica,
                    r.addr,
                    if r.up { "up" } else { "down" },
                    r.errors,
                    r.demotions
                )?;
            }
        }
        Ok(())
    }
}
