//! Cluster-aware client: a [`TcpClient`] that also understands degraded
//! replies.
//!
//! A plain [`TcpClient`] works against the coordinator for healthy
//! answers (the front speaks the standard protocol) but reports status 4
//! as an unknown status; this wrapper surfaces the partial answer and the
//! missing shard list instead.

use crate::coordinator::ClusterReply;
use crate::wire;
use rambo_server::{ServerError, TcpClient, TcpClientError};
use std::io;
use std::net::ToSocketAddrs;
use std::time::Duration;

/// Blocking client for a [`crate::Coordinator`] front.
#[derive(Debug)]
pub struct ClusterClient {
    inner: TcpClient,
}

impl ClusterClient {
    /// Connect to a coordinator front.
    ///
    /// # Errors
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Self {
            inner: TcpClient::connect(addr)?,
        })
    }

    /// Connect with a bound on connection establishment.
    ///
    /// # Errors
    /// See [`TcpClient::connect_with_timeout`].
    pub fn connect_with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        Ok(Self {
            inner: TcpClient::connect_with_timeout(addr, timeout)?,
        })
    }

    /// Bound every read and write on the connection.
    ///
    /// # Errors
    /// See [`TcpClient::set_io_timeout`].
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_io_timeout(timeout)
    }

    /// Query the cluster. A degraded answer (some shards unreachable) is a
    /// *successful* call with [`ClusterReply::degraded`] non-empty — the
    /// caller decides whether a partial answer is acceptable.
    ///
    /// # Errors
    /// [`TcpClientError::Server`] for overload/deadline rejections,
    /// [`TcpClientError::Io`]/[`TcpClientError::Protocol`] on transport or
    /// framing failures.
    pub fn query(
        &mut self,
        terms: &[u64],
        fpr_budget: f64,
        deadline: Duration,
    ) -> Result<ClusterReply, TcpClientError> {
        let frame = wire::encode_query_request(&wire::QueryRequest {
            terms: terms.to_vec(),
            fpr_budget,
            deadline,
            mode: None,
        });
        let payload = self.inner.exchange(&frame)?;
        let parsed = wire::parse_response(&payload).map_err(TcpClientError::Protocol)?;
        let tier = parsed.tier as usize;
        match parsed.status {
            wire::STATUS_OK | wire::STATUS_DEGRADED => Ok(ClusterReply {
                docs: parsed.docs,
                tier,
                degraded: parsed.down_shards,
            }),
            wire::STATUS_OVERLOADED => {
                Err(TcpClientError::Server(ServerError::Overloaded { tier }))
            }
            wire::STATUS_DEADLINE => Err(TcpClientError::Server(ServerError::DeadlineExceeded {
                tier,
            })),
            wire::STATUS_BAD_REQUEST => Err(TcpClientError::Protocol(
                "coordinator reported a bad request".into(),
            )),
            other => Err(TcpClientError::Protocol(format!(
                "unknown response status {other}"
            ))),
        }
    }

    /// Fetch the coordinator's plain-text [`crate::ClusterStats`] dump.
    ///
    /// # Errors
    /// See [`TcpClient::stats`].
    pub fn stats(&mut self) -> Result<String, TcpClientError> {
        self.inner.stats()
    }
}
