//! Cluster wire protocol: the `rambo-server` frame layout plus the
//! degraded-response extension.
//!
//! The coordinator front speaks the *same* length-prefixed protocol as a
//! single `rambo-server` node — a plain [`rambo_server::TcpClient`] works
//! against it unmodified for healthy replies. One extension: when some
//! shards were unreachable the coordinator answers with status
//! [`STATUS_DEGRADED`], which carries the normal response layout followed
//! by the list of missing shard ids:
//!
//! ```text
//! degraded-response := u32 len | u8 status(=4) | u32 tier | u32 n_docs
//!                      | n_docs × u32 | u32 n_down | n_down × u32 shard-ids
//! ```
//!
//! A protocol-unaware client treats status 4 as an unknown error; a
//! [`crate::ClusterClient`] surfaces the partial answer plus the missing
//! shards.

use rambo_core::QueryMode;
use std::io::{self, Read};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on a frame payload, mirrored from `rambo-server`.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Query request opcode.
pub const OPCODE_QUERY: u8 = 1;
/// Stats request opcode.
pub const OPCODE_STATS: u8 = 2;
/// Manifest request opcode.
pub const OPCODE_HELLO: u8 = 3;

/// Response status: success.
pub const STATUS_OK: u8 = 0;
/// Response status: admission queue full.
pub const STATUS_OVERLOADED: u8 = 1;
/// Response status: deadline exceeded.
pub const STATUS_DEADLINE: u8 = 2;
/// Response status: malformed or unanswerable request.
pub const STATUS_BAD_REQUEST: u8 = 3;
/// Response status (cluster extension): partial answer, some shards
/// unreachable.
pub const STATUS_DEGRADED: u8 = 4;

/// A decoded query request.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Query terms (hashed k-mers).
    pub terms: Vec<u64>,
    /// Requested false-positive budget in `[0, 1]`.
    pub fpr_budget: f64,
    /// End-to-end deadline (wire 0 ⇒ the protocol default of 1s).
    pub deadline: Duration,
    /// Evaluation mode override.
    pub mode: Option<QueryMode>,
}

/// The deadline a `0` on the wire stands for.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(1);

/// Decode a query request payload (everything after the length prefix).
/// Returns `None` for non-query opcodes and malformed frames.
#[must_use]
pub fn parse_query_request(payload: &[u8]) -> Option<QueryRequest> {
    if payload.len() < 20 || payload[0] != OPCODE_QUERY {
        return None;
    }
    let mode = match payload[1] {
        0 => None,
        1 => Some(QueryMode::Full),
        2 => Some(QueryMode::Sparse),
        _ => return None,
    };
    if payload[2] != 0 || payload[3] != 0 {
        return None;
    }
    let fpr_budget = f64::from_le_bytes(payload[4..12].try_into().ok()?);
    if !(0.0..=1.0).contains(&fpr_budget) {
        return None;
    }
    let deadline_ms = u32::from_le_bytes(payload[12..16].try_into().ok()?);
    let n_terms = u32::from_le_bytes(payload[16..20].try_into().ok()?) as usize;
    let body = &payload[20..];
    if body.len() != n_terms.checked_mul(8)? {
        return None;
    }
    let terms = body
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect();
    Some(QueryRequest {
        terms,
        fpr_budget,
        deadline: if deadline_ms == 0 {
            DEFAULT_DEADLINE
        } else {
            Duration::from_millis(u64::from(deadline_ms))
        },
        mode,
    })
}

/// Encode a standard (non-degraded) response frame.
#[must_use]
pub fn encode_response(status: u8, tier: u32, docs: &[u32]) -> Vec<u8> {
    let len = 1 + 4 + 4 + docs.len() * 4;
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_le_bytes());
    frame.push(status);
    frame.extend_from_slice(&tier.to_le_bytes());
    frame.extend_from_slice(&(docs.len() as u32).to_le_bytes());
    for &d in docs {
        frame.extend_from_slice(&d.to_le_bytes());
    }
    frame
}

/// Encode a degraded response: the partial answer plus the unreachable
/// shard ids.
#[must_use]
pub fn encode_degraded_response(tier: u32, docs: &[u32], down_shards: &[u32]) -> Vec<u8> {
    let len = 1 + 4 + 4 + docs.len() * 4 + 4 + down_shards.len() * 4;
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_le_bytes());
    frame.push(STATUS_DEGRADED);
    frame.extend_from_slice(&tier.to_le_bytes());
    frame.extend_from_slice(&(docs.len() as u32).to_le_bytes());
    for &d in docs {
        frame.extend_from_slice(&d.to_le_bytes());
    }
    frame.extend_from_slice(&(down_shards.len() as u32).to_le_bytes());
    for &s in down_shards {
        frame.extend_from_slice(&s.to_le_bytes());
    }
    frame
}

/// A decoded response frame (both the standard and degraded layouts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponsePayload {
    /// Response status byte.
    pub status: u8,
    /// Tier the answer came from.
    pub tier: u32,
    /// Matching document ids.
    pub docs: Vec<u32>,
    /// Unreachable shard ids (empty unless `status == STATUS_DEGRADED`).
    pub down_shards: Vec<u32>,
}

/// Decode a response payload (everything after the length prefix),
/// accepting both the standard and degraded layouts.
///
/// # Errors
/// A human-readable description of the malformation.
pub fn parse_response(payload: &[u8]) -> Result<ResponsePayload, String> {
    if payload.len() < 9 {
        return Err(format!("response payload too short: {}", payload.len()));
    }
    let status = payload[0];
    let tier = u32::from_le_bytes(payload[1..5].try_into().expect("4 bytes"));
    let n_docs = u32::from_le_bytes(payload[5..9].try_into().expect("4 bytes")) as usize;
    let Some(docs_end) = n_docs.checked_mul(4).map(|b| 9 + b) else {
        return Err("document count overflows the frame".into());
    };
    if payload.len() < docs_end {
        return Err("response truncated inside the document list".into());
    }
    let docs = payload[9..docs_end]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect();
    let mut down_shards = Vec::new();
    if status == STATUS_DEGRADED {
        if payload.len() < docs_end + 4 {
            return Err("degraded response missing the down-shard count".into());
        }
        let n_down =
            u32::from_le_bytes(payload[docs_end..docs_end + 4].try_into().expect("4 bytes"))
                as usize;
        let tail = &payload[docs_end + 4..];
        if tail.len() != n_down * 4 {
            return Err("degraded response length disagrees with down-shard count".into());
        }
        down_shards = tail
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
            .collect();
    } else if payload.len() != docs_end {
        return Err("response length disagrees with document count".into());
    }
    Ok(ResponsePayload {
        status,
        tier,
        docs,
        down_shards,
    })
}

/// Read one length-prefixed frame payload from a blocking stream whose
/// read timeout is managed by the caller. Returns `Ok(None)` on clean EOF
/// *before* any length byte (the peer hung up between frames);
/// mid-frame EOF and oversized lengths are errors.
///
/// # Errors
/// Transport errors, including `WouldBlock`/`TimedOut` from the socket
/// read timeout (the front's stop-polling mechanism).
pub fn read_frame(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    loop {
        match stream.read(&mut len_buf[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    stream.read_exact(&mut len_buf[1..])?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if !(1..=MAX_FRAME_BYTES).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} out of range"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encode a query request frame (length prefix included) — what a client
/// sends, and what the fault proxy re-emits after inspection.
#[must_use]
pub fn encode_query_request(req: &QueryRequest) -> Vec<u8> {
    let deadline_ms = u32::try_from(req.deadline.as_millis().max(1)).unwrap_or(u32::MAX);
    let len = 20 + req.terms.len() * 8;
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_le_bytes());
    frame.push(OPCODE_QUERY);
    frame.push(match req.mode {
        None => 0,
        Some(QueryMode::Full) => 1,
        Some(QueryMode::Sparse) => 2,
    });
    frame.extend_from_slice(&[0, 0]);
    frame.extend_from_slice(&req.fpr_budget.to_le_bytes());
    frame.extend_from_slice(&deadline_ms.to_le_bytes());
    frame.extend_from_slice(&(req.terms.len() as u32).to_le_bytes());
    for &t in &req.terms {
        frame.extend_from_slice(&t.to_le_bytes());
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_request_roundtrip() {
        let req = QueryRequest {
            terms: vec![1, 2, 3, u64::MAX],
            fpr_budget: 0.05,
            deadline: Duration::from_millis(250),
            mode: Some(QueryMode::Sparse),
        };
        let frame = encode_query_request(&req);
        assert_eq!(parse_query_request(&frame[4..]), Some(req));
    }

    #[test]
    fn degraded_response_roundtrip() {
        let frame = encode_degraded_response(2, &[5, 9, 70], &[1, 3]);
        let parsed = parse_response(&frame[4..]).expect("parse");
        assert_eq!(parsed.status, STATUS_DEGRADED);
        assert_eq!(parsed.tier, 2);
        assert_eq!(parsed.docs, vec![5, 9, 70]);
        assert_eq!(parsed.down_shards, vec![1, 3]);
    }

    #[test]
    fn standard_response_roundtrip() {
        let frame = encode_response(STATUS_OK, 1, &[7, 8]);
        let parsed = parse_response(&frame[4..]).expect("parse");
        assert_eq!(parsed.status, STATUS_OK);
        assert_eq!(parsed.docs, vec![7, 8]);
        assert!(parsed.down_shards.is_empty());
    }

    #[test]
    fn rejects_truncated_and_trailing_bytes() {
        let frame = encode_degraded_response(0, &[1], &[2]);
        for cut in 5..frame.len() - 1 {
            assert!(parse_response(&frame[4..cut]).is_err(), "cut at {cut}");
        }
        let ok = encode_response(STATUS_OK, 0, &[1]);
        let mut trailing = ok[4..].to_vec();
        trailing.push(0);
        assert!(parse_response(&trailing).is_err());
    }

    #[test]
    fn rejects_malformed_requests() {
        let good = encode_query_request(&QueryRequest {
            terms: vec![1],
            fpr_budget: 0.0,
            deadline: Duration::from_millis(100),
            mode: None,
        });
        let payload = &good[4..];
        assert!(parse_query_request(&payload[..payload.len() - 1]).is_none());
        let mut bad_opcode = payload.to_vec();
        bad_opcode[0] = 9;
        assert!(parse_query_request(&bad_opcode).is_none());
        let mut bad_fpr = payload.to_vec();
        bad_fpr[4..12].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(parse_query_request(&bad_fpr).is_none());
    }
}
