//! # rambo-cluster — distributed RAMBO: coordinator/router with
//! scatter-gather, replica failover, and query hedging
//!
//! The paper's deployment story (§5.3) is explicitly distributed: 170TB of
//! raw sequence data is indexed "on a distributed cluster of 100 nodes",
//! with the archive partitioned across machines and each machine indexing
//! its slice independently. `rambo-core`'s [`rambo_core::ShardedRambo`]
//! already models the *construction* half — a two-level hash gives every
//! node a disjoint slice of the global bucket space, so per-node shards
//! stack into the monolithic index bit-for-bit. This crate is the
//! *serving* half: those same node-local shards, deployed behind real
//! sockets, answering as one index.
//!
//! Three pieces, std-only like `rambo-server`:
//!
//! * **Shard nodes** — [`ShardNode`] wraps the existing
//!   [`rambo_server::Server`] + [`rambo_server::serve_tcp_with`] stack
//!   around one node-local shard, and registers a [`NodeManifest`] (shard
//!   id, replica id, global doc-id range, catalog fingerprint) served to
//!   `HELLO` requests, so a coordinator can *verify* its topology instead
//!   of trusting its config file.
//! * **Coordinator** — [`Coordinator`] speaks the same client protocol on
//!   the front ([`serve_cluster`]) and scatter-gathers every query to all
//!   shards over per-replica connection pools. Because the two-level
//!   partition makes bucket slices disjoint, a node-local answer *is* the
//!   monolith's answer restricted to that node's documents — false
//!   positives included — so the union of per-shard answers is
//!   **bit-identical** to querying the stacked monolith (property-tested,
//!   and re-asserted on every `cluster_serve` bench run). Deadlines
//!   propagate to shards net of elapsed time, and **hedged reads** re-issue
//!   a straggling request to a sibling replica after a delay derived from
//!   the replica's own latency histogram quantile — the first answer wins.
//! * **Replica failover** — [`ReplicaHealth`] demotes a replica after
//!   consecutive transport errors and re-probes it after a cool-down;
//!   queries fail over to siblings transparently. When *every* replica of
//!   a shard is unreachable the coordinator answers **degraded** — the
//!   union over reachable shards plus the list of missing shard ids
//!   ([`ClusterReply::degraded`], wire status 4) — instead of failing the
//!   query. [`ClusterStats`] exposes per-shard latency histograms, hedge
//!   and failover counters, and degraded-reply counts via the
//!   coordinator's `STATS` frame.
//!
//! ```
//! use rambo_cluster::{plan_cluster, ClusterConfig, Coordinator, ShardNode};
//! use rambo_core::{QueryMode, RamboParams};
//! use rambo_server::ServerConfig;
//! use std::time::Duration;
//!
//! // Partition a corpus across 2 nodes with the two-level hash.
//! let docs: Vec<(String, Vec<u64>)> = (0..24u64)
//!     .map(|d| (format!("doc{d}"), (0..40).map(|t| d << 16 | t).collect()))
//!     .collect();
//! let params = RamboParams::two_level(2, 16, 3, 1 << 12, 2, 7);
//! let plan = plan_cluster(params, &docs).unwrap();
//!
//! // One replica per shard, serving over loopback.
//! let nodes: Vec<ShardNode> = plan
//!     .shards
//!     .iter()
//!     .zip(&plan.ranges)
//!     .enumerate()
//!     .map(|(s, (shard, &(lo, hi)))| {
//!         ShardNode::spawn(shard.clone(), s as u32, 0, lo, hi, ServerConfig::default())
//!             .unwrap()
//!     })
//!     .collect();
//! let topology: Vec<Vec<std::net::SocketAddr>> =
//!     nodes.iter().map(|n| vec![n.addr()]).collect();
//!
//! // The coordinator's union answer is bit-identical to the monolith.
//! let coordinator = Coordinator::connect(&topology, ClusterConfig::default()).unwrap();
//! let terms = vec![5u64 << 16 | 1, 5 << 16 | 2];
//! let reply = coordinator
//!     .query(&terms, 0.0, Duration::from_secs(2))
//!     .unwrap();
//! let expected = plan.monolith.query_terms_u64(&terms, QueryMode::Full);
//! assert_eq!(reply.docs, expected);
//! assert!(reply.degraded.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod coordinator;
mod front;
mod health;
mod manifest;
mod partition;
mod pool;
mod proxy;
mod shard;
pub mod wire;

pub use client::ClusterClient;
pub use coordinator::{
    ClusterConfig, ClusterError, ClusterReply, ClusterStats, Coordinator, HedgeConfig,
    ReplicaStats, ShardStats,
};
pub use front::serve_cluster;
pub use health::ReplicaHealth;
pub use manifest::{fingerprint_bytes, ManifestError, NodeManifest};
pub use partition::{plan_cluster, ClusterPlan};
pub use pool::ClientPool;
pub use proxy::{Fault, FaultProxy};
pub use shard::ShardNode;
