//! Per-replica connection pools over [`TcpClient`].
//!
//! A coordinator keeps one pool per shard replica. Checking out reuses an
//! idle connection when one exists and dials otherwise; checking in after
//! a clean exchange recycles the connection. Anything that errored is
//! simply *not* returned — the protocol is length-prefixed request/reply,
//! so after a timeout or short read the stream may hold a stale
//! half-frame and the only safe move is a fresh connection.

use rambo_server::TcpClient;
use std::io;
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::Duration;

/// `set_read_timeout(Some(Duration::ZERO))` is an error in std; clamp the
/// remaining-deadline timeout to this floor instead.
const MIN_IO_TIMEOUT: Duration = Duration::from_millis(1);

/// A bounded pool of idle connections to one replica.
#[derive(Debug)]
pub struct ClientPool {
    addr: SocketAddr,
    connect_timeout: Duration,
    capacity: usize,
    idle: Mutex<Vec<TcpClient>>,
}

impl ClientPool {
    /// A pool dialing `addr` with `connect_timeout`, keeping at most
    /// `capacity` idle connections.
    #[must_use]
    pub fn new(addr: SocketAddr, connect_timeout: Duration, capacity: usize) -> Self {
        Self {
            addr,
            connect_timeout,
            capacity,
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The replica this pool dials.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Check out a connection with reads and writes bounded by `io_timeout`
    /// (clamped to ≥1ms — the deadline-propagation path hands us whatever
    /// is left of the client's budget).
    ///
    /// # Errors
    /// Connect or socket-option failures.
    pub fn get(&self, io_timeout: Duration) -> io::Result<TcpClient> {
        let reused = self.idle.lock().expect("pool lock poisoned").pop();
        let mut client = match reused {
            Some(c) => c,
            None => TcpClient::connect_with_timeout(self.addr, self.connect_timeout)?,
        };
        client.set_io_timeout(Some(io_timeout.max(MIN_IO_TIMEOUT)))?;
        Ok(client)
    }

    /// Return a connection after a clean request/reply exchange. Dropped on
    /// the floor when the pool is full.
    pub fn put(&self, client: TcpClient) {
        let mut idle = self.idle.lock().expect("pool lock poisoned");
        if idle.len() < self.capacity {
            idle.push(client);
        }
    }

    /// Number of idle pooled connections (tests/stats).
    #[must_use]
    pub fn idle_len(&self) -> usize {
        self.idle.lock().expect("pool lock poisoned").len()
    }

    /// Drop every idle connection (e.g. after the replica was demoted — a
    /// recovered replica gets fresh dials, not sockets that died with it).
    pub fn clear(&self) {
        self.idle.lock().expect("pool lock poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// An accept-and-hold listener so `get` can dial something real.
    fn listener() -> (TcpListener, SocketAddr) {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = l.local_addr().expect("addr");
        (l, addr)
    }

    #[test]
    fn reuses_and_bounds_idle_connections() {
        let (l, addr) = listener();
        let pool = ClientPool::new(addr, Duration::from_secs(1), 1);
        let c1 = pool.get(Duration::from_millis(100)).expect("dial 1");
        let s1 = l.accept().expect("accept 1").0;
        let c2 = pool.get(Duration::from_millis(100)).expect("dial 2");
        let s2 = l.accept().expect("accept 2").0;
        pool.put(c1);
        pool.put(c2); // over capacity → dropped
        assert_eq!(pool.idle_len(), 1);
        let c3 = pool.get(Duration::from_millis(100)).expect("reuse");
        assert_eq!(pool.idle_len(), 0, "reused the pooled connection");
        drop((c3, s1, s2));
    }

    #[test]
    fn zero_timeout_is_clamped_not_rejected() {
        let (l, addr) = listener();
        let pool = ClientPool::new(addr, Duration::from_secs(1), 2);
        let client = pool.get(Duration::ZERO).expect("zero timeout must clamp");
        let (mut server_side, _) = l.accept().expect("accept");
        drop(client);
        // The connection really was established.
        let mut buf = [0u8; 1];
        assert_eq!(server_side.read(&mut buf).expect("peer closed"), 0);
        let _ = server_side.flush();
    }

    #[test]
    fn clear_empties_the_pool() {
        let (l, addr) = listener();
        let pool = ClientPool::new(addr, Duration::from_secs(1), 4);
        let c = pool.get(Duration::from_millis(50)).expect("dial");
        let _s = l.accept().expect("accept");
        pool.put(c);
        assert_eq!(pool.idle_len(), 1);
        pool.clear();
        assert_eq!(pool.idle_len(), 0);
    }
}
