//! A fault-injecting TCP proxy for resilience tests.
//!
//! Sits between the coordinator and one shard replica, relaying whole
//! frames (it parses the length prefixes, so corruption is well-defined)
//! and injecting one configured [`Fault`] at a time: reply delays to make
//! hedging fire, blackholes to exercise deadline propagation and
//! demotion, corrupt/truncated replies to exercise malformed-frame
//! rejection, and connection drops. It also records the `deadline_ms`
//! field of the last query request it saw, so tests can assert the
//! coordinator really propagates the *remaining* budget downstream
//! rather than the client's original deadline.

use crate::wire;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// What the proxy does to traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Relay faithfully.
    None,
    /// Relay, but sit on every reply for this many milliseconds first.
    DelayReplyMs(u64),
    /// Swallow requests: forward nothing, answer nothing. The client sees
    /// a read timeout (or its deadline), never a reply.
    Blackhole,
    /// Relay the request, then flip bytes inside the reply payload (the
    /// length prefix stays correct, so the damage is in the frame body).
    CorruptReply,
    /// Relay the request, then send only half of the reply frame and
    /// close the connection.
    TruncateReply,
    /// Close the client connection as soon as a query request arrives.
    CloseOnQuery,
}

/// How often relay threads re-check the stop flag while idle.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// A running fault proxy in front of one upstream replica.
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    fault: Arc<Mutex<Fault>>,
    /// `deadline_ms` of the last query request observed (0 = none yet).
    last_deadline_ms: Arc<AtomicU32>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Start a proxy on a fresh loopback port relaying to `upstream`.
    ///
    /// # Errors
    /// Bind failures.
    pub fn spawn(upstream: SocketAddr) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let fault = Arc::new(Mutex::new(Fault::None));
        let last_deadline_ms = Arc::new(AtomicU32::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_state = (
            Arc::clone(&fault),
            Arc::clone(&last_deadline_ms),
            Arc::clone(&stop),
        );
        let thread = std::thread::spawn(move || {
            let (fault, last_deadline_ms, stop) = accept_state;
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((client, _)) => {
                        let fault = Arc::clone(&fault);
                        let last = Arc::clone(&last_deadline_ms);
                        let stop = Arc::clone(&stop);
                        std::thread::spawn(move || relay(client, upstream, &fault, &last, &stop));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        });
        Ok(Self {
            addr,
            fault,
            last_deadline_ms,
            stop,
            thread: Some(thread),
        })
    }

    /// The address to dial instead of the upstream.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Swap the active fault (applies to frames relayed from now on).
    pub fn set_fault(&self, fault: Fault) {
        *self.fault.lock().expect("fault lock poisoned") = fault;
    }

    /// `deadline_ms` of the last query request the proxy saw (0 = none).
    #[must_use]
    pub fn last_deadline_ms(&self) -> u32 {
        self.last_deadline_ms.load(Ordering::Relaxed)
    }

    /// Stop accepting and wind down the accept thread. Established relays
    /// notice the flag within a poll interval.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Relay one client connection frame-by-frame, applying the active fault.
fn relay(
    mut client: TcpStream,
    upstream: SocketAddr,
    fault: &Mutex<Fault>,
    last_deadline_ms: &AtomicU32,
    stop: &AtomicBool,
) {
    if client.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut server: Option<TcpStream> = None;
    while !stop.load(Ordering::Relaxed) {
        let request = match wire::read_frame(&mut client) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        if request.first() == Some(&wire::OPCODE_QUERY) && request.len() >= 16 {
            let ms = u32::from_le_bytes(request[12..16].try_into().expect("4 bytes"));
            last_deadline_ms.store(ms, Ordering::Relaxed);
        }
        let active = *fault.lock().expect("fault lock poisoned");
        match active {
            Fault::Blackhole => continue, // swallow; never answer
            Fault::CloseOnQuery if request.first() == Some(&wire::OPCODE_QUERY) => return,
            _ => {}
        }
        // Lazily dial the upstream on first use.
        if server.is_none() {
            match TcpStream::connect(upstream) {
                Ok(s) => {
                    if s.set_read_timeout(Some(Duration::from_secs(5))).is_err() {
                        return;
                    }
                    server = Some(s);
                }
                Err(_) => return,
            }
        }
        let up = server.as_mut().expect("dialed above");
        let mut framed = Vec::with_capacity(4 + request.len());
        framed.extend_from_slice(&(request.len() as u32).to_le_bytes());
        framed.extend_from_slice(&request);
        if up.write_all(&framed).is_err() {
            return;
        }
        let reply = match wire::read_frame(up) {
            Ok(Some(p)) => p,
            _ => return,
        };
        let mut out = Vec::with_capacity(4 + reply.len());
        out.extend_from_slice(&(reply.len() as u32).to_le_bytes());
        out.extend_from_slice(&reply);
        match active {
            Fault::DelayReplyMs(ms) => {
                // Sleep in poll-sized slices so shutdown stays prompt.
                let mut left = Duration::from_millis(ms);
                while !left.is_zero() && !stop.load(Ordering::Relaxed) {
                    let nap = left.min(POLL_INTERVAL);
                    std::thread::sleep(nap);
                    left -= nap;
                }
            }
            Fault::CorruptReply => {
                // Flip bytes in the payload, sparing the length prefix.
                for b in &mut out[4..] {
                    *b ^= 0xA5;
                }
            }
            Fault::TruncateReply => {
                out.truncate(4 + reply.len() / 2);
                let _ = client.write_all(&out);
                return; // half a frame, then hang up
            }
            _ => {}
        }
        if client.write_all(&out).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::QueryRequest;
    use std::io::Read;

    /// A trivial upstream echoing a fixed OK reply per request frame.
    fn upstream() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            if let Ok((mut s, _)) = listener.accept() {
                while let Ok(Some(_req)) = wire::read_frame(&mut s) {
                    let reply = wire::encode_response(wire::STATUS_OK, 0, &[1, 2, 3]);
                    if s.write_all(&reply).is_err() {
                        return;
                    }
                }
            }
        });
        (addr, handle)
    }

    fn query_frame(deadline_ms: u64) -> Vec<u8> {
        wire::encode_query_request(&QueryRequest {
            terms: vec![42],
            fpr_budget: 0.0,
            deadline: Duration::from_millis(deadline_ms),
            mode: None,
        })
    }

    #[test]
    fn relays_and_captures_deadline() {
        let (up, server) = upstream();
        let proxy = FaultProxy::spawn(up).expect("proxy");
        let mut c = TcpStream::connect(proxy.addr()).expect("dial");
        c.write_all(&query_frame(777)).expect("send");
        let reply = wire::read_frame(&mut c).expect("read").expect("frame");
        let parsed = wire::parse_response(&reply).expect("parse");
        assert_eq!(parsed.docs, vec![1, 2, 3]);
        assert_eq!(proxy.last_deadline_ms(), 777);
        drop(c);
        drop(proxy);
        let _ = server.join();
    }

    #[test]
    fn corrupt_reply_breaks_the_payload_not_the_framing() {
        let (up, server) = upstream();
        let proxy = FaultProxy::spawn(up).expect("proxy");
        proxy.set_fault(Fault::CorruptReply);
        let mut c = TcpStream::connect(proxy.addr()).expect("dial");
        c.write_all(&query_frame(100)).expect("send");
        let reply = wire::read_frame(&mut c).expect("read").expect("frame");
        assert_ne!(
            reply,
            wire::encode_response(wire::STATUS_OK, 0, &[1, 2, 3])[4..].to_vec()
        );
        drop(c);
        drop(proxy);
        let _ = server.join();
    }

    #[test]
    fn truncate_reply_sends_half_then_closes() {
        let (up, server) = upstream();
        let proxy = FaultProxy::spawn(up).expect("proxy");
        proxy.set_fault(Fault::TruncateReply);
        let mut c = TcpStream::connect(proxy.addr()).expect("dial");
        c.write_all(&query_frame(100)).expect("send");
        let mut got = Vec::new();
        c.read_to_end(&mut got).expect("drain");
        let full = wire::encode_response(wire::STATUS_OK, 0, &[1, 2, 3]);
        assert!(!got.is_empty() && got.len() < full.len());
        drop(c);
        drop(proxy);
        let _ = server.join();
    }

    #[test]
    fn blackhole_answers_nothing() {
        let (up, server) = upstream();
        let proxy = FaultProxy::spawn(up).expect("proxy");
        proxy.set_fault(Fault::Blackhole);
        let mut c = TcpStream::connect(proxy.addr()).expect("dial");
        c.set_read_timeout(Some(Duration::from_millis(200)))
            .expect("timeout");
        c.write_all(&query_frame(100)).expect("send");
        let mut buf = [0u8; 1];
        let got = c.read(&mut buf);
        assert!(
            matches!(got, Err(ref e) if e.kind() == io::ErrorKind::WouldBlock
                || e.kind() == io::ErrorKind::TimedOut),
            "blackhole must produce a read timeout, got {got:?}"
        );
        drop(c);
        drop(proxy);
        drop(server); // upstream never saw a connection; don't join
    }
}
