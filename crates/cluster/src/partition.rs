//! Cluster planning: partition a corpus into node-local shards whose
//! scatter-gather union is bit-identical to the stacked monolith.
//!
//! The correctness argument rests on the two-level hash
//! ([`rambo_core::PartitionScheme::TwoLevel`]): global bucket =
//! `local_buckets · τ(doc) + φ(doc)`, so each node owns a *disjoint slice*
//! of the global bucket space and [`rambo_core::ShardedRambo::stack`]
//! copies the slices verbatim. A node-local shard's query answer is
//! therefore exactly the monolith's answer restricted to that node's
//! documents — identical false positives included, because no other node's
//! insertions ever touch its buckets. Document ids in the stacked monolith
//! are node-major (all of node 0's docs, then node 1's, …), so a
//! coordinator recovers global ids by adding each shard's `doc_lo` offset,
//! and concatenating the (sorted, node-local) per-shard answers in shard
//! order yields the monolith's sorted answer directly.

use rambo_core::{DocId, Rambo, RamboError, RamboParams, ShardedRambo};

/// A corpus partitioned for cluster serving, plus the monolithic oracle.
#[derive(Debug)]
pub struct ClusterPlan {
    /// Node-local shards in node order; deploy each behind a [`crate::ShardNode`]
    /// (replicate by deploying clones of the same shard).
    pub shards: Vec<Rambo>,
    /// Global (node-major) doc-id range `[lo, hi)` served by each shard.
    pub ranges: Vec<(DocId, DocId)>,
    /// The stacked monolithic index — the bit-identity oracle for tests
    /// and benchmarks.
    pub monolith: Rambo,
}

/// Partition `docs` across the nodes of a two-level `params` geometry,
/// returning the node-local shards, their global doc-id ranges, and the
/// stacked monolith built from the *same* ingestion order.
///
/// # Errors
/// Propagates parameter validation and ingestion errors; `params` must use
/// [`rambo_core::PartitionScheme::TwoLevel`].
pub fn plan_cluster(
    params: RamboParams,
    docs: &[(String, Vec<u64>)],
) -> Result<ClusterPlan, RamboError> {
    let mut for_shards = ShardedRambo::new(params)?;
    let mut for_monolith = ShardedRambo::new(params)?;
    for (name, terms) in docs {
        for_shards.ingest_document(name, terms.iter().copied())?;
        for_monolith.ingest_document(name, terms.iter().copied())?;
    }
    let shards = for_shards.into_shards();
    let mut ranges = Vec::with_capacity(shards.len());
    let mut lo: DocId = 0;
    for shard in &shards {
        let hi = lo + shard.num_documents() as DocId;
        ranges.push((lo, hi));
        lo = hi;
    }
    let monolith = for_monolith.stack()?;
    Ok(ClusterPlan {
        shards,
        ranges,
        monolith,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambo_core::QueryMode;

    fn corpus(n: u64) -> Vec<(String, Vec<u64>)> {
        (0..n)
            .map(|d| (format!("doc{d}"), (0..30).map(|t| d << 16 | t).collect()))
            .collect()
    }

    #[test]
    fn ranges_are_contiguous_and_cover_the_corpus() {
        let docs = corpus(40);
        let plan = plan_cluster(RamboParams::two_level(3, 8, 3, 1 << 12, 2, 11), &docs).unwrap();
        assert_eq!(plan.shards.len(), 3);
        let mut expect_lo = 0;
        for &(lo, hi) in &plan.ranges {
            assert_eq!(lo, expect_lo);
            assert!(hi >= lo);
            expect_lo = hi;
        }
        assert_eq!(expect_lo as usize, docs.len());
        assert_eq!(plan.monolith.num_documents(), docs.len());
    }

    #[test]
    fn offset_union_matches_monolith() {
        let docs = corpus(48);
        let plan = plan_cluster(RamboParams::two_level(4, 8, 3, 1 << 12, 2, 13), &docs).unwrap();
        for d in [0u64, 7, 23, 47] {
            let terms: Vec<u64> = (0..5).map(|t| d << 16 | t).collect();
            let mut union: Vec<DocId> = Vec::new();
            for (shard, &(lo, _)) in plan.shards.iter().zip(&plan.ranges) {
                union.extend(
                    shard
                        .query_terms_u64(&terms, QueryMode::Full)
                        .into_iter()
                        .map(|local| lo + local),
                );
            }
            let mono = plan.monolith.query_terms_u64(&terms, QueryMode::Full);
            assert_eq!(union, mono, "term set of doc{d}");
        }
    }
}
