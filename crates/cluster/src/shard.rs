//! A shard node: the existing serving stack wrapped around one node-local
//! shard, announcing its identity via the `HELLO` manifest.

use crate::manifest::NodeManifest;
use rambo_core::{DocId, Rambo};
use rambo_server::{serve_tcp_with, Catalog, ServeOptions, Server, ServerConfig};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One running shard replica: a [`Server`] over the shard's catalog behind
/// [`serve_tcp_with`], on its own thread. Dropping (or [`ShardNode::kill`])
/// stops the front, joins the thread and closes the listener — from then
/// on the address refuses connections, which is exactly the failure a
/// coordinator's failover path is built for (and what the cluster bench
/// inflicts on purpose).
#[derive(Debug)]
pub struct ShardNode {
    addr: SocketAddr,
    manifest: NodeManifest,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ShardNode {
    /// Bind a loopback listener and serve `shard` as replica `replica` of
    /// shard `shard_id`, covering global doc ids `[doc_lo, doc_hi)`. The
    /// catalog is single-tier (the shard's own geometry); production
    /// deployments with fold-over tiers build their own catalog and use
    /// [`ShardNode::spawn_with_catalog`].
    ///
    /// # Errors
    /// Bind failures and catalog construction errors.
    pub fn spawn(
        shard: Rambo,
        shard_id: u32,
        replica: u32,
        doc_lo: DocId,
        doc_hi: DocId,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let catalog = Catalog::build(&shard, &[shard.buckets()])
            .map_err(|e| io::Error::other(format!("shard catalog build failed: {e}")))?;
        Self::spawn_with_catalog(catalog, shard_id, replica, doc_lo, doc_hi, config)
    }

    /// [`ShardNode::spawn`] with a pre-built (possibly multi-tier)
    /// catalog.
    ///
    /// # Errors
    /// Bind failures.
    pub fn spawn_with_catalog(
        catalog: Catalog,
        shard_id: u32,
        replica: u32,
        doc_lo: DocId,
        doc_hi: DocId,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let manifest = NodeManifest::for_catalog(shard_id, replica, doc_lo, doc_hi, &catalog);
        let options = ServeOptions {
            manifest: Some(manifest.encode()),
        };
        let stop = Arc::new(AtomicBool::new(false));
        let stop_for_thread = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            Server::scope(&catalog, config, |handle| {
                let _ = serve_tcp_with(handle, listener, &stop_for_thread, &options);
            });
        });
        Ok(Self {
            addr,
            manifest,
            stop,
            thread: Some(thread),
        })
    }

    /// The address clients and coordinators dial.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The manifest this node announces to `HELLO`.
    #[must_use]
    pub fn manifest(&self) -> NodeManifest {
        self.manifest
    }

    /// Stop serving and wait for the node to wind down. Idempotent; after
    /// this the address refuses new connections and established ones see
    /// EOF — the transport failures the coordinator demotes on.
    pub fn kill(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ShardNode {
    fn drop(&mut self) {
        self.kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambo_core::{QueryMode, RamboParams};
    use rambo_server::TcpClient;
    use std::time::Duration;

    fn small_shard() -> Rambo {
        let mut r = Rambo::new(RamboParams::flat(16, 3, 1 << 12, 2, 7)).unwrap();
        for d in 0..10u64 {
            r.insert_document(&format!("doc{d}"), (0..20).map(|t| d << 16 | t))
                .unwrap();
        }
        r
    }

    #[test]
    fn serves_queries_and_manifest() {
        let shard = small_shard();
        let oracle = shard.query_terms_u64(&[3 << 16 | 4], QueryMode::Full);
        let node = ShardNode::spawn(shard, 2, 1, 100, 110, ServerConfig::default()).expect("spawn");
        let mut client =
            TcpClient::connect_with_timeout(node.addr(), Duration::from_secs(2)).expect("dial");
        let manifest = NodeManifest::decode(&client.hello().expect("hello")).expect("decode");
        assert_eq!(manifest, node.manifest());
        assert_eq!(manifest.shard, 2);
        assert_eq!((manifest.doc_lo, manifest.doc_hi), (100, 110));
        let reply = client
            .query(&[3 << 16 | 4], 0.0, Duration::from_secs(2))
            .expect("query");
        assert_eq!(reply.docs, oracle);
    }

    #[test]
    fn kill_refuses_new_connections() {
        let mut node =
            ShardNode::spawn(small_shard(), 0, 0, 0, 10, ServerConfig::default()).expect("spawn");
        let addr = node.addr();
        node.kill();
        node.kill(); // idempotent
        assert!(
            TcpClient::connect_with_timeout(addr, Duration::from_millis(500)).is_err(),
            "killed node must refuse connections"
        );
    }
}
