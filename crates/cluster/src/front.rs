//! The coordinator's client-facing TCP front.
//!
//! Speaks the same length-prefixed protocol as a single `rambo-server`
//! node, so existing clients point at the coordinator unchanged; the one
//! extension is the degraded status (see [`crate::wire`]). Unlike the
//! shard nodes' readiness reactor, the front is a plain thread-per-
//! connection loop inside a [`std::thread::scope`] — a coordinator query
//! blocks its connection thread on the scatter anyway, and the scoped
//! spawn keeps shutdown structural: `serve_cluster` returns only after
//! every connection thread has observed `stop` and exited.

use crate::coordinator::{ClusterError, Coordinator};
use crate::wire;
use rambo_server::ServerError;
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// How often an idle connection (or the accept loop) re-checks `stop`.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Serve the coordinator over TCP until `stop` is set. One thread per
/// connection; socket reads are bounded by `POLL_INTERVAL` so every
/// thread notices `stop` promptly, and the scoped spawn joins them all
/// before returning.
///
/// # Errors
/// Listener configuration errors and fatal accept failures.
pub fn serve_cluster(
    coordinator: &Coordinator,
    listener: TcpListener,
    stop: &AtomicBool,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|scope| {
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    scope.spawn(move || serve_connection(coordinator, stream, stop));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    stop.store(true, Ordering::Relaxed);
                    return Err(e);
                }
            }
        }
        Ok(())
    })
}

/// Drive one connection until EOF, a protocol error, or `stop`.
fn serve_connection(coordinator: &Coordinator, mut stream: TcpStream, stop: &AtomicBool) {
    if stream.set_nodelay(true).is_err() || stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    while !stop.load(Ordering::Relaxed) {
        let payload = match wire::read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF between frames
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // idle poll tick: re-check stop
            }
            Err(_) => return,
        };
        let frame = answer(coordinator, &payload);
        let close_after = frame.is_none();
        let frame =
            frame.unwrap_or_else(|| wire::encode_response(wire::STATUS_BAD_REQUEST, 0, &[]));
        if stream.write_all(&frame).is_err() {
            return;
        }
        if close_after {
            return; // a malformed frame may have desynchronized the stream
        }
    }
}

/// Answer one request frame; `None` means "bad request, then hang up".
fn answer(coordinator: &Coordinator, payload: &[u8]) -> Option<Vec<u8>> {
    if payload.len() == 1 && payload[0] == wire::OPCODE_STATS {
        let text = coordinator.stats().to_string();
        let mut frame = Vec::with_capacity(4 + 1 + text.len());
        frame.extend_from_slice(&(1 + text.len() as u32).to_le_bytes());
        frame.push(wire::STATUS_OK);
        frame.extend_from_slice(text.as_bytes());
        return Some(frame);
    }
    if payload.len() == 1 && payload[0] == wire::OPCODE_HELLO {
        // The coordinator is not a shard; like a manifest-less server it
        // answers HELLO with bad-request but keeps the connection open.
        let mut frame = Vec::with_capacity(5);
        frame.extend_from_slice(&1u32.to_le_bytes());
        frame.push(wire::STATUS_BAD_REQUEST);
        return Some(frame);
    }
    let req = wire::parse_query_request(payload)?;
    let reply = coordinator.query_mode(&req.terms, req.fpr_budget, req.deadline, req.mode);
    Some(match reply {
        Ok(r) if r.degraded.is_empty() => {
            wire::encode_response(wire::STATUS_OK, r.tier as u32, &r.docs)
        }
        Ok(r) => wire::encode_degraded_response(r.tier as u32, &r.docs, &r.degraded),
        Err(ClusterError::Shard {
            error: ServerError::Overloaded { tier },
            ..
        }) => wire::encode_response(wire::STATUS_OVERLOADED, tier as u32, &[]),
        Err(ClusterError::Shard {
            error: ServerError::DeadlineExceeded { tier },
            ..
        }) => wire::encode_response(wire::STATUS_DEADLINE, tier as u32, &[]),
        Err(_) => wire::encode_response(wire::STATUS_BAD_REQUEST, 0, &[]),
    })
}
