//! Node identity announcement: what a shard server tells the coordinator.
//!
//! Every shard replica registers an encoded [`NodeManifest`] with its TCP
//! front ([`rambo_server::ServeOptions`]); the coordinator fetches it via
//! the `HELLO` opcode at connect time and uses it to (a) map node-local
//! document ids back to the stacked index's node-major global ids
//! (`doc_lo`), (b) verify that the replicas of one shard really serve the
//! same catalog (`fingerprint`), and (c) verify that the shard list it was
//! configured with matches what the nodes themselves believe (`shard`).

use rambo_server::Catalog;
use std::fmt;

/// Magic + version prefix of an encoded manifest (`"RCM1"`).
const MANIFEST_MAGIC: [u8; 4] = *b"RCM1";
/// Encoded size: magic + 5×u32 + 2×u64.
const MANIFEST_LEN: usize = 4 + 5 * 4 + 2 * 8;

/// Why a byte buffer is not a valid [`NodeManifest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManifestError {
    /// Wrong byte count (a manifest is a fixed-size record, not a stream);
    /// carries the length received.
    Length(usize),
    /// The `"RCM1"` magic prefix did not match — the peer is probably not
    /// a RAMBO cluster node.
    Magic,
    /// `doc_lo > doc_hi`: the announced document range is inverted.
    InvertedRange {
        /// Announced first global document id.
        lo: u32,
        /// Announced one-past-last global document id.
        hi: u32,
    },
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Length(got) => {
                write!(f, "manifest must be {MANIFEST_LEN} bytes, got {got}")
            }
            Self::Magic => write!(f, "manifest magic mismatch (not a RAMBO cluster node?)"),
            Self::InvertedRange { lo, hi } => {
                write!(f, "manifest doc range is inverted: [{lo}, {hi})")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

/// A shard replica's identity, exchanged via the `HELLO` opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeManifest {
    /// Which document partition this node serves (coordinator shard index).
    pub shard: u32,
    /// Which replica of that shard this node is (informational).
    pub replica: u32,
    /// First global (node-major) document id this shard serves.
    pub doc_lo: u32,
    /// One past the last global document id this shard serves.
    pub doc_hi: u32,
    /// Number of catalog tiers the node serves.
    pub tiers: u32,
    /// Bucket count of the node's tier-0 index (sanity, not identity).
    pub buckets: u64,
    /// FNV-1a hash of the serialized catalog: replicas of one shard must
    /// agree byte-for-byte, or scatter-gather answers would depend on which
    /// replica won the hedge race.
    pub fingerprint: u64,
}

impl NodeManifest {
    /// Build a manifest for a shard serving `catalog` as replica
    /// `replica` of shard `shard`, covering global doc ids `[doc_lo,
    /// doc_hi)`.
    #[must_use]
    pub fn for_catalog(
        shard: u32,
        replica: u32,
        doc_lo: u32,
        doc_hi: u32,
        catalog: &Catalog,
    ) -> Self {
        Self {
            shard,
            replica,
            doc_lo,
            doc_hi,
            tiers: catalog.len() as u32,
            buckets: catalog.tier(0).buckets(),
            fingerprint: fingerprint_bytes(catalog.buffer()),
        }
    }

    /// Serialize to the fixed little-endian wire form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MANIFEST_LEN);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&self.shard.to_le_bytes());
        out.extend_from_slice(&self.replica.to_le_bytes());
        out.extend_from_slice(&self.doc_lo.to_le_bytes());
        out.extend_from_slice(&self.doc_hi.to_le_bytes());
        out.extend_from_slice(&self.tiers.to_le_bytes());
        out.extend_from_slice(&self.buckets.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out
    }

    /// Decode the wire form; rejects wrong magic, truncation and trailing
    /// garbage (a manifest is a fixed-size record, not a stream).
    ///
    /// # Errors
    /// A [`ManifestError`] naming what was malformed.
    pub fn decode(bytes: &[u8]) -> Result<Self, ManifestError> {
        if bytes.len() != MANIFEST_LEN {
            return Err(ManifestError::Length(bytes.len()));
        }
        if bytes[..4] != MANIFEST_MAGIC {
            return Err(ManifestError::Magic);
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
        let m = Self {
            shard: u32_at(4),
            replica: u32_at(8),
            doc_lo: u32_at(12),
            doc_hi: u32_at(16),
            tiers: u32_at(20),
            buckets: u64_at(24),
            fingerprint: u64_at(32),
        };
        if m.doc_lo > m.doc_hi {
            return Err(ManifestError::InvertedRange {
                lo: m.doc_lo,
                hi: m.doc_hi,
            });
        }
        Ok(m)
    }
}

/// FNV-1a over a byte slice — the catalog fingerprint. Not cryptographic;
/// it detects configuration mistakes (replicas built from different
/// corpora), not adversaries.
#[must_use]
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeManifest {
        NodeManifest {
            shard: 3,
            replica: 1,
            doc_lo: 120,
            doc_hi: 180,
            tiers: 2,
            buckets: 64,
            fingerprint: 0xDEAD_BEEF_0123_4567,
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        assert_eq!(NodeManifest::decode(&m.encode()), Ok(m));
    }

    #[test]
    fn rejects_truncation_and_garbage() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(NodeManifest::decode(&bytes[..cut]).is_err());
        }
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(NodeManifest::decode(&longer).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(NodeManifest::decode(&bad_magic).is_err());
    }

    #[test]
    fn rejects_inverted_range() {
        let mut m = sample();
        m.doc_lo = 200;
        m.doc_hi = 100;
        assert_eq!(
            NodeManifest::decode(&m.encode()),
            Err(ManifestError::InvertedRange { lo: 200, hi: 100 })
        );
    }

    #[test]
    fn error_variants_are_typed() {
        let bytes = sample().encode();
        assert_eq!(
            NodeManifest::decode(&bytes[..7]),
            Err(ManifestError::Length(7))
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(NodeManifest::decode(&bad_magic), Err(ManifestError::Magic));
        // Display stays human-readable for coordinator Config messages.
        assert!(ManifestError::Length(7).to_string().contains("7"));
        let source: &dyn std::error::Error = &ManifestError::Magic;
        assert!(source.source().is_none());
    }

    #[test]
    fn fingerprint_differs_on_any_byte() {
        let a = fingerprint_bytes(b"catalog-one");
        let b = fingerprint_bytes(b"catalog-two");
        assert_ne!(a, b);
        assert_eq!(a, fingerprint_bytes(b"catalog-one"));
    }
}
