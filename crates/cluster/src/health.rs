//! Replica health tracking: consecutive-error demotion with timed
//! half-open re-probes.
//!
//! Lock-free (plain atomics) because it sits on the coordinator's query
//! hot path: every attempt outcome is one `fetch_add`/`store`, and the
//! re-probe decision is a single CAS so exactly one query thread wins the
//! right to test a demoted replica per probe interval — the rest keep
//! routing around it.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Health state of one shard replica.
#[derive(Debug, Default)]
pub struct ReplicaHealth {
    /// Transport errors since the last success.
    consecutive_errors: AtomicU32,
    /// Demoted: excluded from primary/hedge selection until re-probed.
    down: AtomicBool,
    /// Monotonic-nanos timestamp after which a demoted replica may be
    /// probed again (0 = immediately).
    next_probe_ns: AtomicU64,
    /// Lifetime transport-error count (stats).
    total_errors: AtomicU64,
}

impl ReplicaHealth {
    /// A fresh, healthy replica.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The replica answered: clear the error streak and restore it to the
    /// routing rotation.
    pub fn record_success(&self) {
        self.consecutive_errors.store(0, Ordering::Relaxed);
        self.down.store(false, Ordering::Relaxed);
    }

    /// The replica failed at the transport level. Demotes it once the
    /// streak reaches `threshold`, scheduling the first re-probe at
    /// `now_ns + probe_interval_ns`. Returns `true` when this call is the
    /// one that demoted it.
    pub fn record_failure(&self, threshold: u32, now_ns: u64, probe_interval_ns: u64) -> bool {
        self.total_errors.fetch_add(1, Ordering::Relaxed);
        let streak = self.consecutive_errors.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= threshold && !self.down.swap(true, Ordering::Relaxed) {
            self.next_probe_ns
                .store(now_ns.saturating_add(probe_interval_ns), Ordering::Relaxed);
            return true;
        }
        if streak >= threshold {
            // Already down: push the next probe window out again.
            self.next_probe_ns
                .store(now_ns.saturating_add(probe_interval_ns), Ordering::Relaxed);
        }
        false
    }

    /// Whether the replica is in the routing rotation.
    #[must_use]
    pub fn is_up(&self) -> bool {
        !self.down.load(Ordering::Relaxed)
    }

    /// Try to claim the half-open probe slot for a demoted replica: returns
    /// `true` for exactly one caller per probe interval once `now_ns` has
    /// passed the scheduled probe time (that caller should send the replica
    /// one real query and report the outcome); `false` for everyone else
    /// and for healthy replicas.
    pub fn claim_probe(&self, now_ns: u64, probe_interval_ns: u64) -> bool {
        if self.is_up() {
            return false;
        }
        let due = self.next_probe_ns.load(Ordering::Relaxed);
        if now_ns < due {
            return false;
        }
        // Winning the CAS reschedules the *next* probe, so concurrent
        // callers (and later ones inside this interval) lose.
        self.next_probe_ns
            .compare_exchange(
                due,
                now_ns.saturating_add(probe_interval_ns),
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Lifetime transport-error count.
    #[must_use]
    pub fn total_errors(&self) -> u64 {
        self.total_errors.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demotes_only_after_threshold() {
        let h = ReplicaHealth::new();
        assert!(!h.record_failure(3, 100, 50));
        assert!(h.is_up());
        assert!(!h.record_failure(3, 100, 50));
        assert!(h.is_up());
        assert!(h.record_failure(3, 100, 50));
        assert!(!h.is_up());
        // Further failures keep it down but do not "re-demote".
        assert!(!h.record_failure(3, 100, 50));
        assert_eq!(h.total_errors(), 4);
    }

    #[test]
    fn success_resets_streak_and_restores() {
        let h = ReplicaHealth::new();
        h.record_failure(2, 0, 10);
        h.record_success();
        assert!(!h.record_failure(2, 0, 10), "streak restarted");
        assert!(h.is_up());
        h.record_failure(2, 0, 10);
        assert!(!h.is_up());
        h.record_success();
        assert!(h.is_up());
    }

    #[test]
    fn probe_claim_is_exclusive_per_interval() {
        let h = ReplicaHealth::new();
        h.record_failure(1, 1_000, 100);
        assert!(!h.is_up());
        assert!(!h.claim_probe(1_050, 100), "probe not due yet");
        assert!(h.claim_probe(1_100, 100), "first claimer wins");
        assert!(!h.claim_probe(1_100, 100), "second claimer loses");
        assert!(h.claim_probe(1_250, 100), "next interval opens again");
    }

    #[test]
    fn healthy_replicas_never_claim() {
        let h = ReplicaHealth::new();
        assert!(!h.claim_probe(u64::MAX, 0));
    }
}
