//! Property tests for the scatter-gather identity: over fuzzed cluster
//! geometries and corpora, the union of node-local shard answers (offset
//! into global node-major ids) must be **bit-identical** to the stacked
//! monolith's answer — false positives included. This is the invariant
//! the whole coordinator design rests on; it holds because the two-level
//! hash gives every node a disjoint slice of the global bucket space.

use proptest::prelude::*;
use rambo_cluster::plan_cluster;
use rambo_core::{DocId, QueryContext, QueryMode, RamboParams};

/// Deterministic corpus: `docs` documents of `terms_per_doc` terms each,
/// with a `shared` prefix of terms common to every document (so
/// multi-term queries hit several docs and false positives get a chance).
fn corpus(docs: u64, terms_per_doc: u64, shared: u64, salt: u64) -> Vec<(String, Vec<u64>)> {
    (0..docs)
        .map(|d| {
            let name = format!("doc-{salt}-{d}");
            let terms = (0..shared)
                .map(|t| salt << 32 | t)
                .chain((shared..terms_per_doc).map(|t| salt << 32 | d << 16 | t))
                .collect();
            (name, terms)
        })
        .collect()
}

/// Union of per-shard answers in shard order, offset to global ids.
fn scatter_union(
    plan: &rambo_cluster::ClusterPlan,
    query: impl Fn(&rambo_core::Rambo) -> Vec<DocId>,
) -> Vec<DocId> {
    let mut union = Vec::new();
    for (shard, &(lo, _)) in plan.shards.iter().zip(&plan.ranges) {
        union.extend(query(shard).into_iter().map(|local| lo + local));
    }
    union
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact-intersection queries: scatter union ≡ monolith, for planted
    /// and absent term sets, across fuzzed node counts and geometries.
    #[test]
    fn scatter_union_is_bit_identical_for_intersections(
        nodes in 1u64..6,
        local_b_log in 2u32..5,
        reps in 2usize..4,
        docs in 1u64..40,
        seed in 0u64..1000,
        probe in 0u64..40,
        n_terms in 1usize..5,
    ) {
        let params = RamboParams::two_level(nodes, 1 << local_b_log, reps, 1 << 10, 2, seed);
        let corpus = corpus(docs, 12, 3, seed);
        let plan = plan_cluster(params, &corpus).unwrap();

        // A planted per-doc term set, a shared term set, and an absent one.
        let d = probe % docs;
        let planted: Vec<u64> = (3..3 + n_terms as u64).map(|t| seed << 32 | d << 16 | t).collect();
        let shared: Vec<u64> = (0..n_terms as u64).map(|t| seed << 32 | t).collect();
        let absent: Vec<u64> = (0..n_terms as u64).map(|t| 0xDEAD_0000 | t).collect();
        for terms in [&planted, &shared, &absent] {
            for mode in [QueryMode::Full, QueryMode::Sparse] {
                let union = scatter_union(&plan, |s| s.query_terms_u64(terms, mode));
                let mono = plan.monolith.query_terms_u64(terms, mode);
                prop_assert_eq!(union, mono);
            }
        }
    }

    /// θ-threshold sequence queries (§3.3.1): per-document term-hit counts
    /// restrict per shard exactly, so the θ-set union is also identical.
    #[test]
    fn scatter_union_is_bit_identical_for_theta_sequences(
        nodes in 1u64..5,
        docs in 1u64..30,
        seed in 0u64..1000,
        probe in 0u64..30,
        theta_pct in 3u32..10,
    ) {
        let params = RamboParams::two_level(nodes, 8, 3, 1 << 10, 2, seed);
        let corpus = corpus(docs, 12, 2, seed);
        let plan = plan_cluster(params, &corpus).unwrap();

        // A sequence where some terms were never indexed, so θ < 1 matters.
        let d = probe % docs;
        let seq: Vec<u64> = (2..8u64)
            .map(|t| seed << 32 | d << 16 | t)
            .chain([0xBAD_0001, 0xBAD_0002])
            .collect();
        let theta = f64::from(theta_pct) / 10.0;
        let mut ctx = QueryContext::new();
        let union = scatter_union(&plan, |s| {
            s.query_sequence_theta(&seq, theta, QueryMode::Full, &mut QueryContext::new())
        });
        let mono = plan.monolith.query_sequence_theta(&seq, theta, QueryMode::Full, &mut ctx);
        prop_assert_eq!(union, mono);
    }
}
