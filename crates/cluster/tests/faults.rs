//! Fault-injection tests: a [`FaultProxy`] between the coordinator and a
//! replica exercises hedging, deadline propagation, and malformed-frame
//! rejection — failure modes a healthy loopback cluster never shows.

use rambo_cluster::{
    plan_cluster, ClusterConfig, ClusterPlan, Coordinator, Fault, FaultProxy, HedgeConfig,
    ShardNode,
};
use rambo_core::{QueryMode, RamboParams};
use rambo_server::ServerConfig;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn plan() -> ClusterPlan {
    let docs: Vec<(String, Vec<u64>)> = (0..16u64)
        .map(|d| (format!("doc{d}"), (0..20).map(|t| d << 16 | t).collect()))
        .collect();
    plan_cluster(RamboParams::two_level(1, 16, 3, 1 << 12, 2, 9), &docs).unwrap()
}

/// One shard, two replicas, each behind its own proxy.
fn proxied_pair(plan: &ClusterPlan) -> (Vec<ShardNode>, FaultProxy, FaultProxy) {
    let (lo, hi) = plan.ranges[0];
    let nodes: Vec<ShardNode> = (0..2)
        .map(|r| {
            ShardNode::spawn(
                plan.shards[0].clone(),
                0,
                r,
                lo,
                hi,
                ServerConfig::default(),
            )
            .expect("spawn")
        })
        .collect();
    let p0 = FaultProxy::spawn(nodes[0].addr()).expect("proxy 0");
    let p1 = FaultProxy::spawn(nodes[1].addr()).expect("proxy 1");
    (nodes, p0, p1)
}

/// A hedge config that always uses a fixed cold delay (histograms never
/// reach `min_samples`), keeping tests deterministic.
fn fixed_hedge(cold: Duration) -> HedgeConfig {
    HedgeConfig {
        cold,
        min_samples: u64::MAX,
        ..HedgeConfig::default()
    }
}

fn topo(p0: &FaultProxy, p1: &FaultProxy) -> Vec<Vec<SocketAddr>> {
    vec![vec![p0.addr(), p1.addr()]]
}

#[test]
fn hedging_fires_on_a_slow_replica_and_wins() {
    let plan = plan();
    let (_nodes, p0, p1) = proxied_pair(&plan);
    let config = ClusterConfig {
        hedge: fixed_hedge(Duration::from_millis(40)),
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::connect(&topo(&p0, &p1), config).expect("connect");
    // Primary (replica 0, first in round-robin) sits on replies for 900ms;
    // the hedge should fire after ~40ms and win via replica 1.
    p0.set_fault(Fault::DelayReplyMs(900));
    let terms: Vec<u64> = vec![5 << 16 | 1, 5 << 16 | 2];
    let t0 = Instant::now();
    let reply = coordinator
        .query(&terms, 0.0, Duration::from_secs(5))
        .expect("hedged query");
    let elapsed = t0.elapsed();
    assert_eq!(
        reply.docs,
        plan.monolith.query_terms_u64(&terms, QueryMode::Full)
    );
    assert!(
        elapsed < Duration::from_millis(800),
        "the hedge must beat the delayed primary, took {elapsed:?}"
    );
    let stats = coordinator.stats();
    assert_eq!(stats.shards[0].hedges, 1, "{stats}");
    assert_eq!(stats.shards[0].hedge_wins, 1, "{stats}");
}

#[test]
fn deadlines_propagate_net_of_elapsed_time() {
    let plan = plan();
    let (_nodes, p0, p1) = proxied_pair(&plan);
    let config = ClusterConfig {
        hedge: fixed_hedge(Duration::from_millis(100)),
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::connect(&topo(&p0, &p1), config).expect("connect");
    // Primary blackholed: its attempt consumes the hedge delay before the
    // sibling is tried, so the sibling must see a *smaller* remaining
    // deadline than the primary did.
    p0.set_fault(Fault::Blackhole);
    let terms: Vec<u64> = vec![2 << 16 | 1];
    let reply = coordinator
        .query(&terms, 0.0, Duration::from_millis(800))
        .expect("query");
    assert_eq!(
        reply.docs,
        plan.monolith.query_terms_u64(&terms, QueryMode::Full)
    );
    let first = p0.last_deadline_ms();
    let second = p1.last_deadline_ms();
    assert!(first > 0 && second > 0, "both proxies must see a query");
    assert!(
        second < first && first <= 800,
        "remaining budget must shrink downstream: primary saw {first}ms, hedge saw {second}ms"
    );
    assert!(
        second <= 710,
        "the hedge fired after ≥100ms, so ≤700ms may remain (saw {second}ms)"
    );
}

#[test]
fn corrupt_replies_are_rejected_and_failed_over() {
    let plan = plan();
    let (_nodes, p0, p1) = proxied_pair(&plan);
    let coordinator =
        Coordinator::connect(&topo(&p0, &p1), ClusterConfig::default()).expect("connect");
    p0.set_fault(Fault::CorruptReply);
    let terms: Vec<u64> = vec![7 << 16 | 3, 7 << 16 | 4];
    let reply = coordinator
        .query(&terms, 0.0, Duration::from_secs(5))
        .expect("query must fail over past the corruptor");
    assert_eq!(
        reply.docs,
        plan.monolith.query_terms_u64(&terms, QueryMode::Full)
    );
    let stats = coordinator.stats();
    assert!(stats.shards[0].failovers >= 1, "{stats}");
    assert!(
        stats.shards[0].replicas[0].errors >= 1,
        "the corrupt replica must be charged a transport error: {stats}"
    );
}

#[test]
fn truncated_replies_are_rejected_and_failed_over() {
    let plan = plan();
    let (_nodes, p0, p1) = proxied_pair(&plan);
    let coordinator =
        Coordinator::connect(&topo(&p0, &p1), ClusterConfig::default()).expect("connect");
    p0.set_fault(Fault::TruncateReply);
    let terms: Vec<u64> = vec![1 << 16 | 5];
    let reply = coordinator
        .query(&terms, 0.0, Duration::from_secs(5))
        .expect("query must fail over past the truncator");
    assert_eq!(
        reply.docs,
        plan.monolith.query_terms_u64(&terms, QueryMode::Full)
    );
    assert!(coordinator.stats().shards[0].failovers >= 1);
}

#[test]
fn connect_fails_fast_when_a_peer_blackholes_hello() {
    let plan = plan();
    let (_nodes, p0, p1) = proxied_pair(&plan);
    p0.set_fault(Fault::Blackhole);
    let config = ClusterConfig {
        connect_timeout: Duration::from_millis(200),
        ..ClusterConfig::default()
    };
    let t0 = Instant::now();
    let result = Coordinator::connect(&topo(&p0, &p1), config);
    let elapsed = t0.elapsed();
    assert!(result.is_err(), "a swallowed HELLO cannot yield a cluster");
    assert!(
        elapsed < Duration::from_secs(3),
        "discovery must be bounded by connect_timeout, took {elapsed:?}"
    );
}

#[test]
fn blackholed_cluster_respects_the_client_deadline() {
    let plan = plan();
    let (_nodes, p0, p1) = proxied_pair(&plan);
    let config = ClusterConfig {
        hedge: fixed_hedge(Duration::from_millis(50)),
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::connect(&topo(&p0, &p1), config).expect("connect");
    p0.set_fault(Fault::Blackhole);
    p1.set_fault(Fault::Blackhole);
    let t0 = Instant::now();
    let result = coordinator.query(&[1, 2], 0.0, Duration::from_millis(400));
    let elapsed = t0.elapsed();
    assert!(result.is_err(), "a fully blackholed shard cannot answer");
    assert!(
        elapsed < Duration::from_secs(3),
        "the deadline must bound the wait, took {elapsed:?}"
    );
}
