//! End-to-end cluster tests over real loopback sockets: scatter-gather
//! parity with the monolith, replica failover with zero failed queries,
//! degraded answers when a whole replica set is gone, and the
//! coordinator front speaking the standard protocol.

use rambo_cluster::{
    plan_cluster, serve_cluster, ClusterClient, ClusterConfig, ClusterError, ClusterPlan,
    Coordinator, ShardNode,
};
use rambo_core::{QueryMode, RamboParams};
use rambo_server::{ServerConfig, TcpClient};
use rambo_workloads::TestClient;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const DEADLINE: Duration = Duration::from_secs(5);

fn corpus(docs: u64) -> Vec<(String, Vec<u64>)> {
    (0..docs)
        .map(|d| {
            let terms = (0..3u64)
                .map(|t| 0xABC0 | t) // shared prefix: multi-doc hits
                .chain((3..24).map(|t| d << 16 | t))
                .collect();
            (format!("doc{d}"), terms)
        })
        .collect()
}

fn plan(nodes: u64, docs: u64) -> ClusterPlan {
    plan_cluster(
        RamboParams::two_level(nodes, 16, 3, 1 << 12, 2, 42),
        &corpus(docs),
    )
    .unwrap()
}

/// Spawn `replicas` replicas of every shard in the plan.
fn spawn_nodes(plan: &ClusterPlan, replicas: u32) -> Vec<Vec<ShardNode>> {
    plan.shards
        .iter()
        .zip(&plan.ranges)
        .enumerate()
        .map(|(s, (shard, &(lo, hi)))| {
            (0..replicas)
                .map(|r| {
                    ShardNode::spawn(shard.clone(), s as u32, r, lo, hi, ServerConfig::default())
                        .expect("spawn shard node")
                })
                .collect()
        })
        .collect()
}

fn topology(nodes: &[Vec<ShardNode>]) -> Vec<Vec<SocketAddr>> {
    nodes
        .iter()
        .map(|reps| reps.iter().map(ShardNode::addr).collect())
        .collect()
}

/// Query mixes: per-doc planted intersections, the shared term set, and
/// absent terms (all-false-positive territory).
fn query_mix(docs: u64) -> Vec<Vec<u64>> {
    let mut queries: Vec<Vec<u64>> = (0..docs)
        .map(|d| (3..7u64).map(|t| d << 16 | t).collect())
        .collect();
    queries.push(vec![0xABC0, 0xABC1]);
    queries.push(vec![0x7777_0001, 0x7777_0002]);
    queries
}

#[test]
fn scatter_gather_is_bit_identical_to_monolith() {
    let plan = plan(3, 30);
    let nodes = spawn_nodes(&plan, 1);
    let coordinator =
        Coordinator::connect(&topology(&nodes), ClusterConfig::default()).expect("connect");
    assert_eq!(coordinator.n_shards(), 3);
    for terms in query_mix(30) {
        let reply = coordinator.query(&terms, 0.0, DEADLINE).expect("query");
        assert!(reply.degraded.is_empty());
        let mono = plan.monolith.query_terms_u64(&terms, QueryMode::Full);
        assert_eq!(reply.docs, mono, "terms {terms:?}");
    }
    let stats = coordinator.stats();
    assert_eq!(stats.queries, 32);
    assert_eq!(stats.degraded_replies, 0);
    assert_eq!(stats.total_failovers(), 0);
}

#[test]
fn killing_one_replica_loses_zero_queries() {
    let plan = plan(2, 20);
    let mut nodes = spawn_nodes(&plan, 2);
    let coordinator =
        Coordinator::connect(&topology(&nodes), ClusterConfig::default()).expect("connect");
    let queries = query_mix(20);

    // Warm traffic, then kill replica 0 of shard 0 mid-load.
    for terms in &queries[..5] {
        coordinator.query(terms, 0.0, DEADLINE).expect("warm query");
    }
    nodes[0][0].kill();
    let mut failed = 0u64;
    for _ in 0..3 {
        for terms in &queries {
            match coordinator.query(terms, 0.0, DEADLINE) {
                Ok(reply) => {
                    assert!(reply.degraded.is_empty(), "sibling replica must cover");
                    let mono = plan.monolith.query_terms_u64(terms, QueryMode::Full);
                    assert_eq!(reply.docs, mono);
                }
                Err(_) => failed += 1,
            }
        }
    }
    assert_eq!(failed, 0, "failover must lose zero queries");
    let stats = coordinator.stats();
    assert!(
        stats.shards[0].failovers > 0,
        "the dead replica must have triggered failovers: {stats}"
    );
}

#[test]
fn killing_a_full_replica_set_degrades_instead_of_failing() {
    let plan = plan(2, 20);
    let mut nodes = spawn_nodes(&plan, 2);
    let config = ClusterConfig {
        fail_threshold: 2,
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::connect(&topology(&nodes), config).expect("connect");
    let queries = query_mix(20);
    for terms in &queries[..3] {
        coordinator.query(terms, 0.0, DEADLINE).expect("warm query");
    }
    // Kill the entire replica set of shard 1.
    nodes[1][0].kill();
    nodes[1][1].kill();
    let (lo, hi) = plan.ranges[1];
    let mut degraded_seen = 0u64;
    for terms in &queries {
        let reply = coordinator
            .query(terms, 0.0, DEADLINE)
            .expect("a dead shard must degrade the reply, not fail it");
        if reply.degraded.is_empty() {
            continue; // pooled connections can serve a few more answers
        }
        assert_eq!(reply.degraded, vec![1]);
        degraded_seen += 1;
        // The partial answer is exactly the monolith minus shard 1's range.
        let expect: Vec<u32> = plan
            .monolith
            .query_terms_u64(terms, QueryMode::Full)
            .into_iter()
            .filter(|&d| d < lo || d >= hi)
            .collect();
        assert_eq!(reply.docs, expect, "terms {terms:?}");
    }
    assert!(
        degraded_seen > 0,
        "some replies must have been marked degraded"
    );
    let stats = coordinator.stats();
    assert_eq!(stats.degraded_replies, degraded_seen);
    assert!(
        stats.shards[1].replicas.iter().all(|r| !r.up),
        "both replicas of shard 1 must be demoted: {stats}"
    );
}

#[test]
fn front_speaks_the_standard_protocol_and_the_degraded_extension() {
    let plan = plan(2, 16);
    let mut nodes = spawn_nodes(&plan, 1);
    let config = ClusterConfig {
        fail_threshold: 1,
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::connect(&topology(&nodes), config).expect("connect");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind front");
    let front_addr = listener.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let coordinator = &coordinator;
        let stop_ref = &stop;
        scope.spawn(move || {
            serve_cluster(coordinator, listener, stop_ref).expect("front");
        });

        // A plain TcpClient works against the coordinator unchanged.
        let mut plain = TcpClient::connect(front_addr).expect("dial front");
        for terms in query_mix(16) {
            let reply = plain.query(&terms, 0.0, DEADLINE).expect("plain query");
            let mono = plan.monolith.query_terms_u64(&terms, QueryMode::Full);
            assert_eq!(reply.docs, mono);
        }
        // STATS round-trips as text.
        let text = plain.stats().expect("stats");
        assert!(text.contains("cluster:"), "stats dump: {text}");

        // The cluster client sees the same answers...
        let mut cluster = ClusterClient::connect(front_addr).expect("dial front");
        let probe: Vec<u64> = vec![3 << 16 | 3, 3 << 16 | 4];
        let reply = cluster.query(&probe, 0.0, DEADLINE).expect("cluster query");
        assert_eq!(
            reply.docs,
            plan.monolith.query_terms_u64(&probe, QueryMode::Full)
        );
        assert!(reply.degraded.is_empty());

        // ...and surfaces the degraded extension once a shard dies.
        nodes[1][0].kill();
        let (lo, _) = plan.ranges[1];
        let mut saw_degraded = false;
        for _ in 0..4 {
            let reply = cluster
                .query(&probe, 0.0, DEADLINE)
                .expect("degraded query");
            if reply.degraded == vec![1] {
                saw_degraded = true;
                assert!(reply.docs.iter().all(|&d| d < lo));
            }
        }
        assert!(saw_degraded, "the dead shard must surface in degraded");

        // A malformed frame gets a bad-request answer, then the stream ends.
        let mut raw = TestClient::connect(front_addr).expect("raw dial");
        raw.send_framed(&[0xFF, 1, 2, 3, 4]).expect("garbage");
        let payload = raw.read_frame(16 << 20).expect("frame");
        assert_eq!(payload[0], rambo_cluster::wire::STATUS_BAD_REQUEST);

        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn connect_rejects_contradictory_topologies() {
    let plan = plan(2, 16);
    let nodes = spawn_nodes(&plan, 1);
    let mut topo = topology(&nodes);
    // Swap the shards: every node now announces the "wrong" shard id.
    topo.swap(0, 1);
    match Coordinator::connect(&topo, ClusterConfig::default()) {
        Err(ClusterError::Config(msg)) => {
            assert!(msg.contains("announces shard"), "got: {msg}")
        }
        other => panic!("swapped topology must be rejected, got {other:?}"),
    }
    // An empty topology is rejected too.
    assert!(matches!(
        Coordinator::connect(&[], ClusterConfig::default()),
        Err(ClusterError::Config(_))
    ));
}

#[test]
fn connect_rejects_mismatched_replica_catalogs() {
    // Two "replicas" of shard 0 serving different corpora: the manifests'
    // fingerprints disagree and connect must refuse to treat them as one
    // replica set (hedging between them would give nondeterministic
    // answers).
    let plan_a = plan(2, 16);
    let plan_b = plan(2, 18);
    let (lo, hi) = plan_a.ranges[0];
    let node_a = ShardNode::spawn(
        plan_a.shards[0].clone(),
        0,
        0,
        lo,
        hi,
        ServerConfig::default(),
    )
    .expect("node a");
    let node_b = ShardNode::spawn(
        plan_b.shards[0].clone(),
        0,
        1,
        lo,
        hi,
        ServerConfig::default(),
    )
    .expect("node b");
    match Coordinator::connect(
        &[vec![node_a.addr(), node_b.addr()]],
        ClusterConfig::default(),
    ) {
        Err(ClusterError::Config(msg)) => {
            assert!(msg.contains("disagree"), "got: {msg}")
        }
        other => panic!("mismatched replicas must be rejected, got {other:?}"),
    }
}
