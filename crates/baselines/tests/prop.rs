//! Cross-baseline property tests: every approximate index must return a
//! superset of the exact inverted index's answer (zero false negatives), for
//! random archives and random geometries. This is the contract that makes
//! the Table 2 comparison meaningful.

use proptest::prelude::*;
use rambo_baselines::{
    BitSlicedIndex, CompactBitSliced, InvertedIndex, MembershipIndex, RamboIndex, RamboPlusIndex,
    Sbt, SplitSbt,
};
use rambo_core::{Rambo, RamboParams};

fn archive_strategy() -> impl Strategy<Value = Vec<(String, Vec<u64>)>> {
    (2usize..14, 1usize..30, 0usize..8).prop_map(|(k, private, shared)| {
        (0..k)
            .map(|d| {
                let base = (d as u64) << 32;
                let mut terms: Vec<u64> = (0..private as u64).map(|t| base | t).collect();
                terms.extend((0..shared as u64).map(|s| 0x5555_0000 + (s % 4)));
                terms.sort_unstable();
                terms.dedup();
                (format!("doc-{d}"), terms)
            })
            .collect()
    })
}

fn build_all(docs: &[(String, Vec<u64>)], seed: u64) -> Vec<Box<dyn MembershipIndex>> {
    let mut rambo = Rambo::new(RamboParams::flat(4, 2, 1 << 12, 2, seed)).unwrap();
    for (name, terms) in docs {
        rambo.insert_document(name, terms.iter().copied()).unwrap();
    }
    vec![
        Box::new(RamboIndex::new(rambo.clone())),
        Box::new(RamboPlusIndex::new(rambo)),
        Box::new(BitSlicedIndex::build_auto(docs, 0.01, 3, seed)),
        Box::new(CompactBitSliced::build(docs, 4, 0.01, 3, seed)),
        Box::new(Sbt::build(docs, 1 << 12, 2, seed)),
        Box::new(SplitSbt::build(docs, 1 << 12, 2, seed, false)),
        Box::new(SplitSbt::build(docs, 1 << 12, 2, seed, true)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Single-term answers: superset of ground truth for every index.
    #[test]
    fn all_indexes_contain_ground_truth(
        docs in archive_strategy(),
        seed in any::<u64>(),
    ) {
        let truth = InvertedIndex::build(&docs);
        let indexes = build_all(&docs, seed);
        for (_, terms) in &docs {
            for &t in terms.iter().take(3) {
                let exact = truth.postings(t);
                for idx in &indexes {
                    let got = idx.query_term(t);
                    for d in exact {
                        prop_assert!(
                            got.contains(d),
                            "{} dropped doc {} for term {:#x}",
                            idx.label(), d, t
                        );
                    }
                    // Ascending ids.
                    prop_assert!(got.windows(2).all(|w| w[0] < w[1]));
                }
            }
        }
    }

    /// Multi-term answers: same superset contract under conjunctions.
    #[test]
    fn multi_term_contains_ground_truth(
        docs in archive_strategy(),
        seed in any::<u64>(),
    ) {
        let truth = InvertedIndex::build(&docs);
        let indexes = build_all(&docs, seed);
        for (d, (_, terms)) in docs.iter().enumerate() {
            let q: Vec<u64> = terms.iter().take(3).copied().collect();
            let exact = truth.query_terms(&q);
            prop_assert!(exact.contains(&(d as u32)), "oracle broken");
            for idx in &indexes {
                let got = idx.query_terms(&q);
                for doc in &exact {
                    prop_assert!(
                        got.contains(doc),
                        "{} dropped doc {} for joint query",
                        idx.label(), doc
                    );
                }
            }
        }
    }

    /// Absent terms: the exact index returns nothing; approximate ones may
    /// return few spurious docs but must not blow up.
    #[test]
    fn absent_terms_bounded_false_positives(
        docs in archive_strategy(),
        seed in any::<u64>(),
        probes in proptest::collection::vec(0xFFFF_0000_0000u64..0xFFFF_0000_1000, 5..15),
    ) {
        let truth = InvertedIndex::build(&docs);
        let indexes = build_all(&docs, seed);
        for t in probes {
            prop_assert!(truth.query_term(t).is_empty());
            for idx in &indexes {
                let fp = idx.query_term(t).len();
                prop_assert!(
                    fp <= docs.len(),
                    "{} returned {} docs for an absent term", idx.label(), fp
                );
            }
        }
    }
}
