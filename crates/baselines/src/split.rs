//! Split-filter Sequence Bloom Trees: SSBT (Solomon & Kingsford 2017,
//! reference [29]) and the HowDeSBT-like compressed variant (Harris &
//! Medvedev 2019, reference [19]).
//!
//! Each node stores two filters over the same `m` positions:
//!
//! * **sim** — bits present in *every* leaf below the node (and not already
//!   claimed by an ancestor's sim);
//! * **rem** — bits present in *at least one but not every* leaf below.
//!
//! Querying walks the tree with a set of unresolved probe positions. At a
//! node, a position found in `sim` is resolved *for the entire subtree* (the
//! big win over plain SBT: a query hitting a tight cluster stops high in the
//! tree); a position in `rem` stays unresolved and forces descent; a
//! position in neither is absent from every leaf below — prune. A node with
//! no unresolved positions reports its whole subtree without further probes.
//!
//! The HowDeSBT-like variant stores `sim`/`rem` as RRR-compressed vectors
//! (the paper's Table 3 credits RRR for the SBT family's sizes); full
//! HowDeSBT also culls determined bits, which we do not reproduce — see
//! DESIGN.md, "Substitutions" item 4.

use crate::sbt::{build_greedy_tree, NodeKind};
use crate::traits::MembershipIndex;
use rambo_bitvec::{BitVec, RrrVec};
use rambo_hash::HashPair;

/// Node filter storage: dense (SSBT) or RRR-compressed (HowDeSBT-like).
#[derive(Debug, Clone)]
enum NodeBits {
    Dense(BitVec),
    Rrr(RrrVec),
}

impl NodeBits {
    #[inline]
    fn get(&self, i: usize) -> bool {
        match self {
            Self::Dense(b) => b.get(i),
            Self::Rrr(r) => r.get(i),
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            Self::Dense(b) => b.size_bytes(),
            Self::Rrr(r) => r.size_bytes(),
        }
    }
}

#[derive(Debug, Clone)]
struct SplitNode {
    sim: NodeBits,
    rem: NodeBits,
    kind: NodeKind,
}

/// A split-filter SBT.
#[derive(Debug, Clone)]
pub struct SplitSbt {
    nodes: Vec<SplitNode>,
    root: Option<usize>,
    m: usize,
    eta: u32,
    seed: u64,
    ndocs: usize,
    compressed: bool,
}

impl SplitSbt {
    /// Build over a document batch; `compress` selects RRR node storage
    /// (the HowDeSBT-like configuration).
    ///
    /// # Panics
    /// Panics if `m_bits == 0` or `eta == 0`.
    #[must_use]
    pub fn build(
        docs: &[(String, Vec<u64>)],
        m_bits: usize,
        eta: u32,
        seed: u64,
        compress: bool,
    ) -> Self {
        assert!(m_bits > 0 && eta > 0);
        let filters: Vec<BitVec> = docs
            .iter()
            .map(|(_, terms)| {
                let mut f = BitVec::zeros(m_bits);
                for &t in terms {
                    let pair = HashPair::of_u64(t, seed);
                    for i in 0..eta {
                        f.set(pair.index(i, m_bits as u64) as usize);
                    }
                }
                f
            })
            .collect();
        let (tree, root) = build_greedy_tree(filters);

        // Pass 1 (bottom-up, iterative post-order): `all` = intersection of
        // leaf filters below each node. `union` is already in the tree.
        let mut all: Vec<Option<BitVec>> = vec![None; tree.len()];
        if let Some(root) = root {
            let mut stack = vec![(root, false)];
            while let Some((v, expanded)) = stack.pop() {
                match tree[v].kind {
                    NodeKind::Leaf { .. } => {
                        all[v] = Some(tree[v].union.clone());
                    }
                    NodeKind::Internal { left, right } => {
                        if expanded {
                            let mut a = all[left].clone().expect("child computed");
                            a.and_assign(all[right].as_ref().expect("child computed"));
                            all[v] = Some(a);
                        } else {
                            stack.push((v, true));
                            stack.push((left, false));
                            stack.push((right, false));
                        }
                    }
                }
            }
        }

        // Pass 2 (top-down): sim = all − ancestor sims; rem = union − all.
        let mut nodes: Vec<Option<SplitNode>> = (0..tree.len()).map(|_| None).collect();
        if let Some(root) = root {
            let mut stack: Vec<(usize, BitVec)> = vec![(root, BitVec::zeros(m_bits))];
            while let Some((v, acc)) = stack.pop() {
                let a = all[v].take().expect("all computed");
                let mut sim = a.clone();
                sim.and_not_assign(&acc);
                let mut rem = tree[v].union.clone();
                rem.and_not_assign(&a);
                let mut child_acc = acc;
                child_acc.or_assign(&sim);
                if let NodeKind::Internal { left, right } = tree[v].kind {
                    stack.push((left, child_acc.clone()));
                    stack.push((right, child_acc));
                }
                let (sim, rem) = if compress {
                    (
                        NodeBits::Rrr(RrrVec::from_bitvec(&sim)),
                        NodeBits::Rrr(RrrVec::from_bitvec(&rem)),
                    )
                } else {
                    (NodeBits::Dense(sim), NodeBits::Dense(rem))
                };
                nodes[v] = Some(SplitNode {
                    sim,
                    rem,
                    kind: tree[v].kind,
                });
            }
        }

        Self {
            nodes: nodes.into_iter().map(|n| n.expect("visited")).collect(),
            root,
            m: m_bits,
            eta,
            seed,
            ndocs: docs.len(),
            compressed: compress,
        }
    }

    /// Whether nodes are RRR-compressed.
    #[must_use]
    pub fn is_compressed(&self) -> bool {
        self.compressed
    }

    /// Number of tree nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Query with traversal accounting: `(hits, nodes_visited)`.
    #[must_use]
    pub fn query_term_stats(&self, term: u64) -> (Vec<u32>, usize) {
        let Some(root) = self.root else {
            return (Vec::new(), 0);
        };
        let pair = HashPair::of_u64(term, self.seed);
        let positions: Vec<usize> = (0..self.eta)
            .map(|i| pair.index(i, self.m as u64) as usize)
            .collect();
        let mut hits = Vec::new();
        let mut visited = 0usize;
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(root, positions)];
        'outer: while let Some((v, unresolved)) = stack.pop() {
            visited += 1;
            let node = &self.nodes[v];
            let mut still = Vec::with_capacity(unresolved.len());
            for p in unresolved {
                if node.sim.get(p) {
                    continue; // resolved: present in every leaf below
                }
                if node.rem.get(p) {
                    still.push(p); // present somewhere below — descend
                } else {
                    continue 'outer; // absent below — prune subtree
                }
            }
            if still.is_empty() {
                // Every probe resolved: the whole subtree matches.
                leaves_below_split(&self.nodes, v, &mut hits);
                continue;
            }
            match node.kind {
                // Leaf rem is empty, so unresolved positions would have
                // pruned above; reaching here with `still` non-empty is
                // impossible.
                NodeKind::Leaf { .. } => unreachable!("leaf with unresolved positions"),
                NodeKind::Internal { left, right } => {
                    stack.push((left, still.clone()));
                    stack.push((right, still));
                }
            }
        }
        hits.sort_unstable();
        (hits, visited)
    }
}

/// `leaves_below` over split nodes (same shape, different node type).
fn leaves_below_split(nodes: &[SplitNode], start: usize, out: &mut Vec<u32>) {
    // Reconstruct a kind-only view and reuse the shared walker.
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        match nodes[v].kind {
            NodeKind::Leaf { doc } => out.push(doc),
            NodeKind::Internal { left, right } => {
                stack.push(left);
                stack.push(right);
            }
        }
    }
}

impl MembershipIndex for SplitSbt {
    fn label(&self) -> &'static str {
        if self.compressed {
            "HowDeSBT~"
        } else {
            "SSBT"
        }
    }

    fn num_documents(&self) -> usize {
        self.ndocs
    }

    fn query_term(&self, term: u64) -> Vec<u32> {
        self.query_term_stats(term).0
    }

    fn size_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.sim.size_bytes() + n.rem.size_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbt::Sbt;

    fn docs(k: usize, n: usize) -> Vec<(String, Vec<u64>)> {
        (0..k)
            .map(|d| {
                let base = (d as u64) << 24;
                (format!("doc{d}"), (0..n as u64).map(|t| base | t).collect())
            })
            .collect()
    }

    #[test]
    fn no_false_negatives_dense_and_compressed() {
        let ds = docs(20, 40);
        for compress in [false, true] {
            let t = SplitSbt::build(&ds, 1 << 14, 2, 5, compress);
            for (j, (_, terms)) in ds.iter().enumerate() {
                for &term in terms.iter().take(4) {
                    assert!(
                        t.query_term(term).contains(&(j as u32)),
                        "doc {j} lost (compress={compress})"
                    );
                }
            }
        }
    }

    #[test]
    fn agrees_with_plain_sbt() {
        // Same (m, η, seed) ⇒ identical leaf filters ⇒ identical answer sets
        // (both structures are exact over the same per-doc filters).
        let ds = docs(24, 35);
        let sbt = Sbt::build(&ds, 1 << 13, 2, 9);
        let split = SplitSbt::build(&ds, 1 << 13, 2, 9, false);
        let mut probes: Vec<u64> = ds.iter().flat_map(|(_, t)| t[..3].to_vec()).collect();
        probes.extend((0..200).map(|i| 0xEEEE_0000_0000u64 + i));
        for t in probes {
            assert_eq!(sbt.query_term(t), split.query_term(t), "term {t:#x}");
        }
    }

    #[test]
    fn compressed_matches_dense_results() {
        let ds = docs(18, 30);
        let dense = SplitSbt::build(&ds, 1 << 13, 2, 3, false);
        let rrr = SplitSbt::build(&ds, 1 << 13, 2, 3, true);
        for t in ds.iter().flat_map(|(_, t)| t[..2].to_vec()) {
            assert_eq!(dense.query_term(t), rrr.query_term(t));
        }
        assert!(rrr.is_compressed() && !dense.is_compressed());
        assert_eq!(dense.label(), "SSBT");
        assert_eq!(rrr.label(), "HowDeSBT~");
    }

    #[test]
    fn compression_shrinks_sparse_trees() {
        // Low fill (small docs, big filters) → RRR wins clearly.
        let ds = docs(16, 10);
        let dense = SplitSbt::build(&ds, 1 << 15, 2, 7, false);
        let rrr = SplitSbt::build(&ds, 1 << 15, 2, 7, true);
        assert!(
            rrr.size_bytes() < dense.size_bytes() / 2,
            "rrr {} vs dense {}",
            rrr.size_bytes(),
            dense.size_bytes()
        );
    }

    #[test]
    fn shared_terms_resolve_high_in_the_tree() {
        // Every document shares a core term set: sim at the root should
        // resolve those probes immediately (few nodes visited, all docs
        // reported). This is SSBT's signature behaviour.
        let k = 16;
        let ds: Vec<(String, Vec<u64>)> = (0..k)
            .map(|d| {
                let mut terms: Vec<u64> = (0..20u64).collect(); // shared core
                terms.extend((0..10u64).map(|t| ((d as u64) << 24) | (t + 100)));
                (format!("doc{d}"), terms)
            })
            .collect();
        let t = SplitSbt::build(&ds, 1 << 14, 2, 11, false);
        let (hits, visited) = t.query_term_stats(5);
        assert_eq!(hits, (0..k as u32).collect::<Vec<_>>());
        assert!(
            visited <= 3,
            "shared term should resolve at/near the root, visited {visited}"
        );
    }

    #[test]
    fn absent_terms_prune_immediately() {
        let ds = docs(32, 25);
        let t = SplitSbt::build(&ds, 1 << 15, 3, 13, false);
        let mut total = 0usize;
        for probe in 0..100u64 {
            let (hits, visited) = t.query_term_stats(0xDDDD_0000_0000 + probe);
            assert!(hits.len() < 4);
            total += visited;
        }
        assert!(total < 100 * t.num_nodes() / 4, "visited {total}");
    }

    #[test]
    fn empty_tree() {
        let t = SplitSbt::build(&[], 1024, 2, 0, false);
        assert!(t.query_term(7).is_empty());
        assert_eq!(t.num_nodes(), 0);
    }

    #[test]
    fn single_document_tree() {
        let ds = docs(1, 10);
        let t = SplitSbt::build(&ds, 1 << 10, 2, 1, false);
        assert_eq!(t.query_term(ds[0].1[3]), vec![0]);
        assert!(t.query_term(0xFFFF_FFFF).is_empty());
    }
}
