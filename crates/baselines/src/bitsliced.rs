//! BIGSI and COBS: bit-sliced signature indexes.
//!
//! BIGSI (Bradley et al., Nature Biotech 2019 — reference [9]) keeps one
//! same-size Bloom filter per document but stores the matrix *transposed*:
//! row `i` is a `K`-bit vector whose `j`-th bit says "filter bit `i` is set
//! in document `j`". A term lookup reads its `η` rows and ANDs them — one
//! cache-friendly pass that answers the membership question for **all** `K`
//! documents simultaneously. That is why its query time is `O(K)` but with
//! an excellent constant, and why the paper calls the layout "a simple,
//! system-friendly data structure".
//!
//! COBS (Bingmann et al., SPIRE 2019 — reference [6]) adds the *compact*
//! twist: documents are sorted by cardinality and grouped into blocks, each
//! block getting a filter size fitted to its largest member, removing the
//! padding BIGSI wastes on small documents.

use crate::traits::MembershipIndex;
use rambo_bitvec::BitVec;
use rambo_bloom::params::optimal_m;
use rambo_hash::HashPair;

/// BIGSI-style uniform bit-sliced index.
#[derive(Debug, Clone)]
pub struct BitSlicedIndex {
    /// `m` rows of `K` bits each.
    rows: Vec<BitVec>,
    m: usize,
    eta: u32,
    seed: u64,
    ndocs: usize,
}

impl BitSlicedIndex {
    /// Build from a document batch with filter size `m_bits` and `eta`
    /// probes (BIGSI sizes `m_bits` for the largest document).
    ///
    /// # Panics
    /// Panics if `m_bits == 0` or `eta == 0`.
    #[must_use]
    pub fn build(docs: &[(String, Vec<u64>)], m_bits: usize, eta: u32, seed: u64) -> Self {
        assert!(m_bits > 0 && eta > 0);
        let ndocs = docs.len();
        let mut rows = vec![BitVec::zeros(ndocs); m_bits];
        for (j, (_, terms)) in docs.iter().enumerate() {
            for &term in terms {
                let pair = HashPair::of_u64(term, seed);
                for i in 0..eta {
                    rows[pair.index(i, m_bits as u64) as usize].set(j);
                }
            }
        }
        Self {
            rows,
            m: m_bits,
            eta,
            seed,
            ndocs,
        }
    }

    /// Build with the classic auto-sizing: fit the largest document at the
    /// target false-positive rate.
    #[must_use]
    pub fn build_auto(docs: &[(String, Vec<u64>)], fpr: f64, eta: u32, seed: u64) -> Self {
        let max_n = docs.iter().map(|(_, t)| t.len()).max().unwrap_or(1).max(1);
        Self::build(docs, optimal_m(max_n, fpr), eta, seed)
    }

    /// The term's candidate bitmap over all documents (AND of `η` rows).
    #[must_use]
    pub fn query_bitmap(&self, term: u64) -> BitVec {
        let pair = HashPair::of_u64(term, self.seed);
        let mut acc = self.rows[pair.index(0, self.m as u64) as usize].clone();
        for i in 1..self.eta {
            acc.and_assign(&self.rows[pair.index(i, self.m as u64) as usize]);
            if acc.none() {
                break;
            }
        }
        acc
    }
}

impl MembershipIndex for BitSlicedIndex {
    fn label(&self) -> &'static str {
        "COBS(uniform)"
    }

    fn num_documents(&self) -> usize {
        self.ndocs
    }

    fn query_term(&self, term: u64) -> Vec<u32> {
        self.query_bitmap(term)
            .iter_ones()
            .map(|i| i as u32)
            .collect()
    }

    fn query_terms(&self, terms: &[u64]) -> Vec<u32> {
        if terms.is_empty() || self.ndocs == 0 {
            return Vec::new();
        }
        let mut acc = self.query_bitmap(terms[0]);
        for &t in &terms[1..] {
            if acc.none() {
                return Vec::new();
            }
            acc.and_assign(&self.query_bitmap(t));
        }
        acc.iter_ones().map(|i| i as u32).collect()
    }

    fn size_bytes(&self) -> usize {
        self.rows.iter().map(BitVec::size_bytes).sum()
    }
}

/// One block of the compact layout.
#[derive(Debug, Clone)]
struct Block {
    /// Original document ids, in block-local column order.
    doc_ids: Vec<u32>,
    index: BitSlicedIndex,
}

/// COBS-style compact bit-sliced index: per-block filter sizes.
#[derive(Debug, Clone)]
pub struct CompactBitSliced {
    blocks: Vec<Block>,
    ndocs: usize,
}

impl CompactBitSliced {
    /// Build with `block_size` documents per block, sorted by cardinality,
    /// each block sized for its largest member at `fpr`.
    ///
    /// # Panics
    /// Panics if `block_size == 0` or `eta == 0`.
    #[must_use]
    pub fn build(
        docs: &[(String, Vec<u64>)],
        block_size: usize,
        fpr: f64,
        eta: u32,
        seed: u64,
    ) -> Self {
        assert!(block_size > 0 && eta > 0);
        // Sort document indices by cardinality (ascending) — small documents
        // share small filters.
        let mut order: Vec<u32> = (0..docs.len() as u32).collect();
        order.sort_by_key(|&j| docs[j as usize].1.len());
        let blocks = order
            .chunks(block_size)
            .map(|chunk| {
                let block_docs: Vec<(String, Vec<u64>)> =
                    chunk.iter().map(|&j| docs[j as usize].clone()).collect();
                let max_n = block_docs
                    .iter()
                    .map(|(_, t)| t.len())
                    .max()
                    .unwrap_or(1)
                    .max(1);
                Block {
                    doc_ids: chunk.to_vec(),
                    index: BitSlicedIndex::build(&block_docs, optimal_m(max_n, fpr), eta, seed),
                }
            })
            .collect();
        Self {
            blocks,
            ndocs: docs.len(),
        }
    }

    /// Number of blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

impl MembershipIndex for CompactBitSliced {
    fn label(&self) -> &'static str {
        "COBS"
    }

    fn num_documents(&self) -> usize {
        self.ndocs
    }

    fn query_term(&self, term: u64) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .blocks
            .iter()
            .flat_map(|b| {
                b.index
                    .query_bitmap(term)
                    .iter_ones()
                    .map(|col| b.doc_ids[col])
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable();
        out
    }

    fn query_terms(&self, terms: &[u64]) -> Vec<u32> {
        if terms.is_empty() || self.ndocs == 0 {
            return Vec::new();
        }
        let mut out: Vec<u32> = Vec::new();
        for block in &self.blocks {
            let mut acc = block.index.query_bitmap(terms[0]);
            for &t in &terms[1..] {
                if acc.none() {
                    break;
                }
                acc.and_assign(&block.index.query_bitmap(t));
            }
            out.extend(acc.iter_ones().map(|col| block.doc_ids[col]));
        }
        out.sort_unstable();
        out
    }

    fn size_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.index.size_bytes() + b.doc_ids.len() * 4)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(k: usize, terms_per_doc: usize) -> Vec<(String, Vec<u64>)> {
        (0..k)
            .map(|d| {
                let base = (d as u64) << 24;
                // Vary cardinality so compact blocks differ in size.
                let n = terms_per_doc / 2 + (d * terms_per_doc) / k;
                (format!("doc{d}"), (0..n as u64).map(|t| base | t).collect())
            })
            .collect()
    }

    #[test]
    fn bigsi_no_false_negatives() {
        let ds = docs(20, 60);
        let idx = BitSlicedIndex::build_auto(&ds, 0.01, 3, 7);
        for (j, (_, terms)) in ds.iter().enumerate() {
            for &t in terms.iter().take(5) {
                assert!(idx.query_term(t).contains(&(j as u32)));
            }
        }
    }

    #[test]
    fn bigsi_absent_terms_mostly_empty() {
        let ds = docs(20, 60);
        let idx = BitSlicedIndex::build_auto(&ds, 0.01, 3, 7);
        let mut fp = 0usize;
        for probe in 0..500u64 {
            fp += idx.query_term(0xDEAD_0000_0000 + probe).len();
        }
        // 500 probes × 20 docs × ~1% → ~100 expected; stay well under 4x.
        assert!(fp < 400, "false positives {fp}");
    }

    #[test]
    fn bigsi_multi_term_narrows() {
        let ds = docs(15, 40);
        let idx = BitSlicedIndex::build_auto(&ds, 0.01, 3, 1);
        let q: Vec<u64> = ds[7].1[..5].to_vec();
        let hits = idx.query_terms(&q);
        assert!(hits.contains(&7));
        assert!(hits.len() <= idx.query_term(q[0]).len());
    }

    #[test]
    fn compact_agrees_with_uniform_on_membership() {
        let ds = docs(30, 50);
        let uniform = BitSlicedIndex::build_auto(&ds, 0.01, 3, 5);
        let compact = CompactBitSliced::build(&ds, 8, 0.01, 3, 5);
        assert!(compact.num_blocks() >= 3);
        for (j, (_, terms)) in ds.iter().enumerate() {
            for &t in terms.iter().take(3) {
                assert!(uniform.query_term(t).contains(&(j as u32)));
                assert!(compact.query_term(t).contains(&(j as u32)));
            }
        }
    }

    #[test]
    fn compact_is_smaller_on_skewed_cardinalities() {
        // One huge document forces BIGSI to pad everyone: its row count is
        // sized for 20k terms and every row spans all K documents. COBS
        // blocks confine that width to the huge document's block. (K must be
        // well above 64 so the row width is not just word-granularity.)
        let mut ds = docs(200, 40);
        ds.push((
            "huge".to_string(),
            (0..20_000u64).map(|t| (1 << 40) | t).collect(),
        ));
        let uniform = BitSlicedIndex::build_auto(&ds, 0.01, 3, 5);
        let compact = CompactBitSliced::build(&ds, 64, 0.01, 3, 5);
        assert!(
            compact.size_bytes() < uniform.size_bytes() / 2,
            "compact {} vs uniform {}",
            compact.size_bytes(),
            uniform.size_bytes()
        );
    }

    #[test]
    fn compact_query_terms_blockwise_and() {
        let ds = docs(20, 30);
        let compact = CompactBitSliced::build(&ds, 6, 0.01, 3, 9);
        let q: Vec<u64> = ds[3].1[..4].to_vec();
        let hits = compact.query_terms(&q);
        assert!(hits.contains(&3));
        assert!(hits.windows(2).all(|w| w[0] < w[1]), "sorted output");
    }

    #[test]
    fn empty_inputs() {
        let idx = BitSlicedIndex::build(&[], 64, 2, 0);
        assert!(idx.query_term(1).is_empty());
        let c = CompactBitSliced::build(&[], 4, 0.1, 2, 0);
        assert!(c.query_term(1).is_empty());
        assert!(c.query_terms(&[1, 2]).is_empty());
    }
}
