//! The exact inverted index — Table 1's classical comparator and the ground
//! truth oracle for every false-positive measurement in this repository.
//!
//! The paper notes (Table 1) that inverted indexes have the best possible
//! query time but "enormous construction time, impractical for bigger
//! datasets": every distinct term must be materialized with its posting
//! list. At our synthetic scales that cost is affordable, which is exactly
//! why it can serve as the oracle.

use crate::traits::MembershipIndex;
use rambo_hash::FastMap;

/// Exact term → posting-list index over `u64` terms.
#[derive(Debug, Default, Clone)]
pub struct InvertedIndex {
    map: FastMap<u64, Vec<u32>>,
    ndocs: usize,
}

impl InvertedIndex {
    /// Empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a batch of documents.
    #[must_use]
    pub fn build(docs: &[(String, Vec<u64>)]) -> Self {
        let mut idx = Self::new();
        for (_, terms) in docs {
            idx.push_document(terms.iter().copied());
        }
        idx
    }

    /// Append one document (ids issued in insertion order). Duplicate terms
    /// within a document are recorded once.
    pub fn push_document(&mut self, terms: impl IntoIterator<Item = u64>) -> u32 {
        let id = u32::try_from(self.ndocs).expect("doc count exceeds u32");
        for term in terms {
            let posting = self.map.entry(term).or_default();
            if posting.last() != Some(&id) {
                posting.push(id);
            }
        }
        self.ndocs += 1;
        id
    }

    /// Exact posting list for a term (ascending ids; empty if absent).
    #[must_use]
    pub fn postings(&self, term: u64) -> &[u32] {
        self.map.get(&term).map_or(&[], Vec::as_slice)
    }

    /// Document frequency of a term — the multiplicity `V` of the analysis.
    #[must_use]
    pub fn doc_frequency(&self, term: u64) -> usize {
        self.postings(term).len()
    }

    /// Number of distinct terms indexed.
    #[must_use]
    pub fn distinct_terms(&self) -> usize {
        self.map.len()
    }
}

impl MembershipIndex for InvertedIndex {
    fn label(&self) -> &'static str {
        "InvertedIndex"
    }

    fn num_documents(&self) -> usize {
        self.ndocs
    }

    fn query_term(&self, term: u64) -> Vec<u32> {
        self.postings(term).to_vec()
    }

    fn size_bytes(&self) -> usize {
        // Term keys + posting entries + per-entry Vec headers; hash table
        // overhead approximated by its load-factor-1 footprint.
        self.map
            .values()
            .map(|v| 8 + v.len() * 4 + std::mem::size_of::<Vec<u32>>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postings_are_exact_and_sorted() {
        let mut idx = InvertedIndex::new();
        idx.push_document([1u64, 2, 3]);
        idx.push_document([2u64, 4]);
        idx.push_document([2u64, 1]);
        assert_eq!(idx.postings(2), &[0, 1, 2]);
        assert_eq!(idx.postings(1), &[0, 2]);
        assert_eq!(idx.postings(4), &[1]);
        assert_eq!(idx.postings(99), &[] as &[u32]);
        assert_eq!(idx.num_documents(), 3);
        assert_eq!(idx.doc_frequency(2), 3);
        assert_eq!(idx.distinct_terms(), 4);
    }

    #[test]
    fn duplicate_terms_in_doc_counted_once() {
        let mut idx = InvertedIndex::new();
        idx.push_document([5u64, 5, 5]);
        assert_eq!(idx.postings(5), &[0]);
    }

    #[test]
    fn query_terms_is_exact_intersection() {
        let docs = vec![
            ("a".to_string(), vec![1u64, 2, 3]),
            ("b".to_string(), vec![2u64, 3]),
            ("c".to_string(), vec![3u64]),
        ];
        let idx = InvertedIndex::build(&docs);
        assert_eq!(idx.query_terms(&[2, 3]), vec![0, 1]);
        assert_eq!(idx.query_terms(&[1, 2, 3]), vec![0]);
        assert_eq!(idx.query_terms(&[1, 99]), Vec::<u32>::new());
    }

    #[test]
    fn size_grows_with_content() {
        let mut idx = InvertedIndex::new();
        let s0 = idx.size_bytes();
        idx.push_document(0..1000u64);
        assert!(idx.size_bytes() > s0);
    }
}
