//! The common query interface all evaluated indexes implement, plus the
//! adapters that put RAMBO and RAMBO+ behind it.

use rambo_core::{QueryContext, QueryMode, Rambo};
use std::cell::RefCell;

/// A multi-set membership index: maps a term to the documents containing it.
///
/// The contract mirrors the paper's problem definition (§4): results must be
/// a **superset** of the true containing set (no false negatives) and are
/// returned as ascending document ids.
pub trait MembershipIndex {
    /// Short display name for harness tables.
    fn label(&self) -> &'static str;

    /// Number of indexed documents `K`.
    fn num_documents(&self) -> usize;

    /// Documents (possibly) containing `term`.
    fn query_term(&self, term: u64) -> Vec<u32>;

    /// Documents (possibly) containing *all* `terms`. The default
    /// implementation intersects per-term results with the §3.3.1 early
    /// exit; structures with a cheaper joint test override it.
    fn query_terms(&self, terms: &[u64]) -> Vec<u32> {
        let mut acc: Option<Vec<u32>> = None;
        for &t in terms {
            let hits = self.query_term(t);
            acc = Some(match acc {
                None => hits,
                Some(prev) => intersect_sorted(&prev, &hits),
            });
            if acc.as_ref().is_some_and(Vec::is_empty) {
                return Vec::new();
            }
        }
        acc.unwrap_or_default()
    }

    /// Index payload size in bytes (filters + auxiliary structures).
    fn size_bytes(&self) -> usize;
}

/// Intersection of two ascending id lists.
///
/// Exposed publicly for the §5.1 "bitmap arrays vs sets" ablation: the
/// benches compare this sorted-list merge against [`BitVec`] word-AND at
/// different densities (the paper picked bitmaps because result sets exceed
/// the ~15% density where bitmaps win).
///
/// [`BitVec`]: rambo_bitvec::BitVec
#[must_use]
pub fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// RAMBO behind the common interface (full evaluation). Owns a reusable
/// [`QueryContext`] so trait-object sweeps don't allocate per query.
pub struct RamboIndex {
    index: Rambo,
    ctx: RefCell<QueryContext>,
}

impl RamboIndex {
    /// Wrap a built index.
    #[must_use]
    pub fn new(index: Rambo) -> Self {
        Self {
            index,
            ctx: RefCell::new(QueryContext::new()),
        }
    }

    /// The wrapped index.
    #[must_use]
    pub fn inner(&self) -> &Rambo {
        &self.index
    }
}

impl MembershipIndex for RamboIndex {
    fn label(&self) -> &'static str {
        "RAMBO"
    }

    fn num_documents(&self) -> usize {
        self.index.num_documents()
    }

    fn query_term(&self, term: u64) -> Vec<u32> {
        self.index
            .query_terms_with(&[term], QueryMode::Full, &mut self.ctx.borrow_mut())
    }

    fn query_terms(&self, terms: &[u64]) -> Vec<u32> {
        self.index
            .query_terms_with(terms, QueryMode::Full, &mut self.ctx.borrow_mut())
    }

    fn size_bytes(&self) -> usize {
        self.index.size_bytes()
    }
}

/// RAMBO+ (sparse sequential evaluation, §5.1) behind the common interface.
pub struct RamboPlusIndex {
    index: Rambo,
    ctx: RefCell<QueryContext>,
}

impl RamboPlusIndex {
    /// Wrap a built index.
    #[must_use]
    pub fn new(index: Rambo) -> Self {
        Self {
            index,
            ctx: RefCell::new(QueryContext::new()),
        }
    }

    /// The wrapped index.
    #[must_use]
    pub fn inner(&self) -> &Rambo {
        &self.index
    }
}

impl MembershipIndex for RamboPlusIndex {
    fn label(&self) -> &'static str {
        "RAMBO+"
    }

    fn num_documents(&self) -> usize {
        self.index.num_documents()
    }

    fn query_term(&self, term: u64) -> Vec<u32> {
        self.index
            .query_terms_with(&[term], QueryMode::Sparse, &mut self.ctx.borrow_mut())
    }

    fn query_terms(&self, terms: &[u64]) -> Vec<u32> {
        self.index
            .query_terms_with(terms, QueryMode::Sparse, &mut self.ctx.borrow_mut())
    }

    fn size_bytes(&self) -> usize {
        self.index.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambo_core::RamboParams;

    #[test]
    fn intersect_sorted_basic() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 9], &[2, 3, 9]), vec![3, 9]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&[7], &[7]), vec![7]);
    }

    #[test]
    fn adapters_expose_rambo() {
        let mut r = Rambo::new(RamboParams::flat(4, 2, 1 << 10, 2, 1)).unwrap();
        r.insert_document("a", [10u64, 11]).unwrap();
        r.insert_document("b", [12u64]).unwrap();
        let full = RamboIndex::new(r.clone());
        let plus = RamboPlusIndex::new(r);
        assert_eq!(full.num_documents(), 2);
        assert_eq!(full.query_term(10), plus.query_term(10));
        assert!(full.query_term(10).contains(&0));
        assert!(plus.query_term(12).contains(&1));
        assert_eq!(full.label(), "RAMBO");
        assert_eq!(plus.label(), "RAMBO+");
        assert!(full.size_bytes() > 0);
    }

    #[test]
    fn default_query_terms_intersects() {
        let mut r = Rambo::new(RamboParams::flat(4, 3, 1 << 12, 2, 2)).unwrap();
        r.insert_document("a", [1u64, 2, 3]).unwrap();
        r.insert_document("b", [2u64, 3, 4]).unwrap();
        let idx = RamboIndex::new(r);
        let both = idx.query_terms(&[2, 3]);
        assert!(both.contains(&0) && both.contains(&1));
        let only_a = idx.query_terms(&[1, 2]);
        assert!(only_a.contains(&0));
    }
}
