//! The Sequence Bloom Tree (Solomon & Kingsford, Nature Biotech 2016 —
//! reference [28] of the RAMBO paper).
//!
//! One equal-size Bloom filter per document at the leaves; every internal
//! node stores the OR (union) of its children. Queries descend from the
//! root, pruning subtrees whose union filter lacks the query. Best case
//! `O(log K)`, worst case `O(K)` — and inherently *sequential*, which is the
//! paper's core criticism ("tree-based traversal is a sequential algorithm",
//! §1).
//!
//! Construction uses the original greedy insertion: walk each new document's
//! filter down the tree, at every internal node choosing the child with the
//! larger bit overlap, then split the reached leaf.

use crate::traits::MembershipIndex;
use rambo_bitvec::BitVec;
use rambo_hash::HashPair;

/// Tree node shared by [`Sbt`] and the split-filter variants.
#[derive(Debug, Clone)]
pub(crate) struct TreeNode {
    /// Union filter (OR of all leaf filters below).
    pub union: BitVec,
    pub kind: NodeKind,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum NodeKind {
    Leaf { doc: u32 },
    Internal { left: usize, right: usize },
}

/// Greedy-insertion tree construction over per-document filters.
/// Returns the node arena and the root index (`None` for zero documents).
pub(crate) fn build_greedy_tree(filters: Vec<BitVec>) -> (Vec<TreeNode>, Option<usize>) {
    let mut nodes: Vec<TreeNode> = Vec::with_capacity(filters.len() * 2);
    let mut root: Option<usize> = None;
    for (doc, filter) in filters.into_iter().enumerate() {
        let doc = doc as u32;
        let Some(mut cur) = root else {
            nodes.push(TreeNode {
                union: filter,
                kind: NodeKind::Leaf { doc },
            });
            root = Some(0);
            continue;
        };
        // Walk to the most similar leaf, OR-ing the new filter into every
        // internal node on the way (its subtree will own the document).
        let mut parent: Option<(usize, bool)> = None; // (node, went_right)
        while let NodeKind::Internal { left, right } = nodes[cur].kind {
            nodes[cur].union.or_assign(&filter);
            let go_right =
                nodes[right].union.count_and(&filter) > nodes[left].union.count_and(&filter);
            parent = Some((cur, go_right));
            cur = if go_right { right } else { left };
        }
        // Split the leaf: new internal node adopts (old leaf, new leaf).
        let mut union = nodes[cur].union.clone();
        union.or_assign(&filter);
        let new_leaf = nodes.len();
        nodes.push(TreeNode {
            union: filter,
            kind: NodeKind::Leaf { doc },
        });
        let new_internal = nodes.len();
        nodes.push(TreeNode {
            union,
            kind: NodeKind::Internal {
                left: cur,
                right: new_leaf,
            },
        });
        match parent {
            None => root = Some(new_internal),
            Some((p, went_right)) => {
                if let NodeKind::Internal { left, right } = &mut nodes[p].kind {
                    if went_right {
                        *right = new_internal;
                    } else {
                        *left = new_internal;
                    }
                } else {
                    unreachable!("parent is always internal");
                }
            }
        }
    }
    (nodes, root)
}

/// The plain Sequence Bloom Tree.
#[derive(Debug, Clone)]
pub struct Sbt {
    nodes: Vec<TreeNode>,
    root: Option<usize>,
    m: usize,
    eta: u32,
    seed: u64,
    ndocs: usize,
}

impl Sbt {
    /// Build over a document batch. All filters share `m_bits`/`eta`/`seed`
    /// (required for unions to be meaningful — the SBT constraint the paper
    /// calls out as a memory overhead at every node).
    ///
    /// # Panics
    /// Panics if `m_bits == 0` or `eta == 0`.
    #[must_use]
    pub fn build(docs: &[(String, Vec<u64>)], m_bits: usize, eta: u32, seed: u64) -> Self {
        assert!(m_bits > 0 && eta > 0);
        let filters: Vec<BitVec> = docs
            .iter()
            .map(|(_, terms)| {
                let mut f = BitVec::zeros(m_bits);
                for &t in terms {
                    let pair = HashPair::of_u64(t, seed);
                    for i in 0..eta {
                        f.set(pair.index(i, m_bits as u64) as usize);
                    }
                }
                f
            })
            .collect();
        let (nodes, root) = build_greedy_tree(filters);
        Self {
            nodes,
            root,
            m: m_bits,
            eta,
            seed,
            ndocs: docs.len(),
        }
    }

    /// Bit positions a term probes.
    fn positions(&self, term: u64) -> Vec<usize> {
        let pair = HashPair::of_u64(term, self.seed);
        (0..self.eta)
            .map(|i| pair.index(i, self.m as u64) as usize)
            .collect()
    }

    /// Query with traversal accounting: returns `(hits, nodes_visited)`.
    /// The visit count is what Table 1's "best O(log K), worst O(K)" refers
    /// to; the benches report it directly.
    #[must_use]
    pub fn query_term_stats(&self, term: u64) -> (Vec<u32>, usize) {
        let Some(root) = self.root else {
            return (Vec::new(), 0);
        };
        let pos = self.positions(term);
        let mut hits = Vec::new();
        let mut visited = 0usize;
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            visited += 1;
            let node = &self.nodes[v];
            if !pos.iter().all(|&p| node.union.get(p)) {
                continue; // subtree pruned
            }
            match node.kind {
                NodeKind::Leaf { doc } => hits.push(doc),
                NodeKind::Internal { left, right } => {
                    stack.push(left);
                    stack.push(right);
                }
            }
        }
        hits.sort_unstable();
        (hits, visited)
    }

    /// θ-matching for sequence queries (the original SBT semantics): a node
    /// survives if at least `theta · terms.len()` of the query terms are
    /// fully present in its filter.
    ///
    /// # Panics
    /// Panics unless `0 < theta ≤ 1`.
    #[must_use]
    pub fn query_theta(&self, terms: &[u64], theta: f64) -> Vec<u32> {
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
        let Some(root) = self.root else {
            return Vec::new();
        };
        if terms.is_empty() {
            return Vec::new();
        }
        let needed = (theta * terms.len() as f64).ceil() as usize;
        let pos: Vec<Vec<usize>> = terms.iter().map(|&t| self.positions(t)).collect();
        let mut hits = Vec::new();
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            let node = &self.nodes[v];
            let present = pos
                .iter()
                .filter(|ps| ps.iter().all(|&p| node.union.get(p)))
                .count();
            if present < needed {
                continue;
            }
            match node.kind {
                NodeKind::Leaf { doc } => hits.push(doc),
                NodeKind::Internal { left, right } => {
                    stack.push(left);
                    stack.push(right);
                }
            }
        }
        hits.sort_unstable();
        hits
    }

    /// Number of tree nodes (≈ `2K − 1`).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

impl MembershipIndex for Sbt {
    fn label(&self) -> &'static str {
        "SBT"
    }

    fn num_documents(&self) -> usize {
        self.ndocs
    }

    fn query_term(&self, term: u64) -> Vec<u32> {
        self.query_term_stats(term).0
    }

    fn query_terms(&self, terms: &[u64]) -> Vec<u32> {
        self.query_theta(terms, 1.0)
    }

    fn size_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.union.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(k: usize, n: usize) -> Vec<(String, Vec<u64>)> {
        (0..k)
            .map(|d| {
                let base = (d as u64) << 24;
                (format!("doc{d}"), (0..n as u64).map(|t| base | t).collect())
            })
            .collect()
    }

    #[test]
    fn tree_has_2k_minus_1_nodes() {
        let sbt = Sbt::build(&docs(17, 20), 1 << 12, 2, 3);
        assert_eq!(sbt.num_nodes(), 2 * 17 - 1);
    }

    #[test]
    fn no_false_negatives() {
        let ds = docs(25, 40);
        let sbt = Sbt::build(&ds, 1 << 14, 2, 5);
        for (j, (_, terms)) in ds.iter().enumerate() {
            for &t in terms.iter().take(4) {
                assert!(sbt.query_term(t).contains(&(j as u32)), "doc {j}");
            }
        }
    }

    #[test]
    fn absent_terms_prune_near_root() {
        let ds = docs(64, 30);
        let sbt = Sbt::build(&ds, 1 << 15, 3, 7);
        let mut total_visits = 0usize;
        for probe in 0..100u64 {
            let (hits, visited) = sbt.query_term_stats(0xFFFF_0000_0000 + probe);
            assert!(hits.len() < 5);
            total_visits += visited;
        }
        // Absent terms should die high in the tree, far below visiting all
        // ~127 nodes each.
        assert!(
            total_visits < 100 * sbt.num_nodes() / 4,
            "visited {total_visits} nodes across 100 absent probes"
        );
    }

    #[test]
    fn present_terms_visit_at_least_depth() {
        let ds = docs(32, 30);
        let sbt = Sbt::build(&ds, 1 << 14, 2, 9);
        let (hits, visited) = sbt.query_term_stats(ds[5].1[0]);
        assert!(hits.contains(&5));
        assert!(visited >= 2, "must traverse root to leaf");
    }

    #[test]
    fn theta_one_is_conjunctive() {
        let ds = docs(20, 30);
        let sbt = Sbt::build(&ds, 1 << 14, 2, 11);
        let q = &ds[4].1[..5];
        let hits = sbt.query_theta(q, 1.0);
        assert!(hits.contains(&4));
        // Mixing two documents' exclusive terms: θ=1 finds nothing, θ=0.5
        // finds both.
        let mixed = [ds[4].1[0], ds[9].1[0]];
        assert!(sbt.query_theta(&mixed, 1.0).is_empty());
        let half = sbt.query_theta(&mixed, 0.5);
        assert!(half.contains(&4) && half.contains(&9));
    }

    #[test]
    fn empty_tree_and_empty_query() {
        let sbt = Sbt::build(&[], 1024, 2, 0);
        assert!(sbt.query_term(1).is_empty());
        let sbt = Sbt::build(&docs(3, 5), 1024, 2, 0);
        assert!(sbt.query_theta(&[], 1.0).is_empty());
    }

    #[test]
    fn size_counts_all_nodes() {
        let sbt = Sbt::build(&docs(10, 10), 1 << 10, 2, 1);
        // 19 nodes × 1024 bits = 2432 bytes.
        assert_eq!(sbt.size_bytes(), 19 * 128);
    }

    #[test]
    fn similar_documents_cluster() {
        // Two families of near-identical documents: the greedy insertion
        // should route family members into the same subtree, so a family
        // term's query visits far fewer nodes than 2K−1.
        let mut ds = Vec::new();
        for d in 0..16 {
            let family = if d < 8 { 0u64 } else { 1u64 << 40 };
            let terms: Vec<u64> = (0..30u64).map(|t| family | t).collect();
            ds.push((format!("doc{d}"), terms));
        }
        let sbt = Sbt::build(&ds, 1 << 13, 2, 13);
        let (hits, visited) = sbt.query_term_stats(5); // family-0 term
        assert_eq!(hits, (0..8).collect::<Vec<u32>>());
        assert!(visited < sbt.num_nodes(), "visited {visited}");
    }
}
