//! Baselines from the RAMBO paper's evaluation (Tables 1, 2, 3, 5).
//!
//! Every comparator the paper measures against is implemented here, from
//! scratch, behind one [`MembershipIndex`] trait so the bench harnesses can
//! sweep them uniformly:
//!
//! | Paper baseline | Type here | Notes |
//! |---|---|---|
//! | Inverted index (Table 1) | [`InvertedIndex`] | exact; doubles as the ground truth oracle for every FPR measurement |
//! | BIGSI (Bradley et al.) | [`BitSlicedIndex`] | uniform bit-sliced signature matrix: row = filter bit position, column = document |
//! | COBS (Bingmann et al.) | [`CompactBitSliced`] | the "compact" variant: documents sorted by cardinality and grouped into blocks with per-block filter sizes |
//! | SBT (Solomon–Kingsford) | [`Sbt`] | greedy-insertion union tree over equal-size Bloom filters |
//! | SSBT (Solomon–Kingsford 2017) | [`SplitSbt`] (dense) | split sim/rem filters — subtree-level resolution and pruning |
//! | HowDeSBT (Harris–Medvedev) | [`SplitSbt`] (compressed) | split filters stored as RRR vectors (see DESIGN.md, "Substitutions" item 4) |
//!
//! RAMBO itself (and RAMBO+) implement the same trait via adapters
//! ([`RamboIndex`], [`RamboPlusIndex`]), so a Table 2 row is literally a loop
//! over `Vec<Box<dyn MembershipIndex>>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitsliced;
mod inverted;
mod sbt;
mod split;
mod traits;

pub use bitsliced::{BitSlicedIndex, CompactBitSliced};
pub use inverted::InvertedIndex;
pub use sbt::Sbt;
pub use split::SplitSbt;
pub use traits::{intersect_sorted, MembershipIndex, RamboIndex, RamboPlusIndex};

/// A document ready for batch indexing: `(name, distinct terms)`.
///
/// All baselines consume pre-hashed/packed `u64` terms (packed k-mers, or
/// word ids / word hashes for text) — the same representation the RAMBO core
/// uses on its fast path.
pub type DocTerms = (String, Vec<u64>);
