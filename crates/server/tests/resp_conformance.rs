//! Golden wire-format conformance: checked-in request/response byte
//! transcripts replayed against live servers, so any drift in the RESP
//! command surface or the binary frame layout fails a byte diff instead of
//! a debugging session.
//!
//! Each transcript under `tests/transcripts/` is a sequence of steps:
//!
//! ```text
//! # comment
//! C: <escaped bytes the client sends>
//! S: <escaped bytes the server must answer, byte-exact>
//! E: eof            <the server must close; nothing further may arrive>
//! ```
//!
//! Escapes: `\r`, `\n`, `\t`, `\\`, `\xNN`. The scenarios that produced the
//! files live in this test as step lists; regenerate the goldens after an
//! *intentional* format change with
//! `RAMBO_REGEN_TRANSCRIPTS=1 cargo test -p rambo-server --test resp_conformance`
//! and review the diff like any other code change.

use rambo_core::{Rambo, RamboParams};
use rambo_server::{
    serve_tcp_with, serve_tenant_tcp, Catalog, ServeOptions, Server, ServerConfig, TenantQuotas,
    TenantRegistry, TenantServeOptions,
};
use rambo_workloads::TestClient;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

// ---------------------------------------------------------------------
// Transcript plumbing.
// ---------------------------------------------------------------------

/// One step of a conformance scenario. `Send` drives bytes at the server;
/// the expectation steps are *measured* in regen mode (recording what the
/// server actually answered) and *asserted* in replay mode (against the
/// checked-in bytes).
enum Step {
    /// Client sends these bytes.
    Send(Vec<u8>),
    /// Server owes this many RESP replies.
    ExpectResp(usize),
    /// Server owes this many binary frames (length prefix included in the
    /// recorded bytes).
    ExpectFrames(usize),
    /// Client half-closes; the server must flush and close with no further
    /// bytes.
    ExpectEof,
}

/// Encode one RESP array-of-bulks command (the `redis-cli` framing).
fn multibulk(args: &[&str]) -> Vec<u8> {
    let mut wire = format!("*{}\r\n", args.len()).into_bytes();
    for a in args {
        wire.extend_from_slice(format!("${}\r\n{a}\r\n", a.len()).as_bytes());
    }
    wire
}

/// Encode one inline command line (the `nc` framing).
fn inline(line: &str) -> Vec<u8> {
    format!("{line}\r\n").into_bytes()
}

fn escape(bytes: &[u8]) -> String {
    let mut s = String::new();
    for &b in bytes {
        match b {
            b'\r' => s.push_str("\\r"),
            b'\n' => s.push_str("\\n"),
            b'\t' => s.push_str("\\t"),
            b'\\' => s.push_str("\\\\"),
            0x20..=0x7E => s.push(char::from(b)),
            _ => s.push_str(&format!("\\x{b:02x}")),
        }
    }
    s
}

fn unescape(s: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(s.len());
    let mut chars = s.bytes();
    while let Some(b) = chars.next() {
        if b != b'\\' {
            out.push(b);
            continue;
        }
        match chars.next() {
            Some(b'r') => out.push(b'\r'),
            Some(b'n') => out.push(b'\n'),
            Some(b't') => out.push(b'\t'),
            Some(b'\\') => out.push(b'\\'),
            Some(b'x') => {
                let hi = chars.next().expect("hex digit");
                let lo = chars.next().expect("hex digit");
                let hex = [hi, lo];
                let hex = std::str::from_utf8(&hex).expect("ascii hex");
                out.push(u8::from_str_radix(hex, 16).expect("valid \\xNN escape"));
            }
            other => panic!("bad escape \\{other:?} in transcript"),
        }
    }
    out
}

fn transcript_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/transcripts")
        .join(format!("{name}.txt"))
}

fn regen() -> bool {
    std::env::var("RAMBO_REGEN_TRANSCRIPTS").is_ok_and(|v| v == "1")
}

/// Drive one scenario against a live server at `addr`. In regen mode the
/// server's actual replies are recorded into the transcript file; in replay
/// mode every expectation is asserted byte-exact against the checked-in
/// transcript.
fn run_scenario(name: &str, steps: &[Step], addr: SocketAddr) {
    let path = transcript_path(name);
    let mut client = TestClient::connect(addr).unwrap();
    if regen() {
        let mut lines = vec![format!(
            "# {name}: golden conformance transcript (regenerate with \
             RAMBO_REGEN_TRANSCRIPTS=1, then review the diff)"
        )];
        for step in steps {
            match step {
                Step::Send(bytes) => {
                    client.send(bytes).unwrap();
                    lines.push(format!("C: {}", escape(bytes)));
                }
                Step::ExpectResp(n) => {
                    let mut got = Vec::new();
                    for _ in 0..*n {
                        got.extend_from_slice(&client.read_resp_reply().unwrap());
                    }
                    lines.push(format!("S: {}", escape(&got)));
                }
                Step::ExpectFrames(n) => {
                    let mut got = Vec::new();
                    for _ in 0..*n {
                        let payload = client.read_frame(16 << 20).unwrap();
                        got.extend_from_slice(&u32::try_from(payload.len()).unwrap().to_le_bytes());
                        got.extend_from_slice(&payload);
                    }
                    lines.push(format!("S: {}", escape(&got)));
                }
                Step::ExpectEof => {
                    client.shutdown_write().unwrap();
                    let rest = client.read_until_close().unwrap();
                    assert!(
                        rest.is_empty(),
                        "{name}: unexpected trailing bytes at close: {rest:?}"
                    );
                    lines.push("E: eof".into());
                }
            }
        }
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing transcript {} ({e}); regenerate with RAMBO_REGEN_TRANSCRIPTS=1",
            path.display()
        )
    });
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(payload) = line.strip_prefix("C: ") {
            client.send(&unescape(payload)).unwrap();
        } else if let Some(payload) = line.strip_prefix("S: ") {
            let want = unescape(payload);
            let got = client
                .read_exact(want.len())
                .unwrap_or_else(|e| panic!("{name}:{lineno}: reply truncated: {e}"));
            assert_eq!(
                escape(&got),
                escape(&want),
                "{name}:{lineno}: wire drift (got vs transcript)"
            );
        } else if line == "E: eof" {
            client.shutdown_write().unwrap();
            let rest = client.read_until_close().unwrap();
            assert!(
                rest.is_empty(),
                "{name}:{lineno}: server sent unexpected bytes before close: {}",
                escape(&rest)
            );
        } else {
            panic!("{name}:{lineno}: unparseable transcript line: {line}");
        }
    }
}

// ---------------------------------------------------------------------
// Server fixtures (deterministic: transcripts are byte-exact).
// ---------------------------------------------------------------------

fn params() -> RamboParams {
    RamboParams::flat(8, 3, 1 << 10, 2, 7)
}

/// Fresh registry served over RESP for the scenario's duration.
fn with_tenant_server(f: impl FnOnce(SocketAddr)) {
    let registry = TenantRegistry::new(params(), TenantQuotas::default()).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let server = s.spawn(|| {
            serve_tenant_tcp(
                &registry,
                listener,
                None,
                &stop,
                &TenantServeOptions::default(),
            )
        });
        // Stop the reactor even if an assertion panics, so the failure
        // surfaces instead of the scope hanging on the join.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr)));
        stop.store(true, Ordering::Relaxed);
        let served = server.join().unwrap();
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
        served.unwrap();
    });
}

/// Fixed catalog server (the pre-tenant binary front) with a manifest, for
/// the byte-level transcript of the plain-text `STATS` and `HELLO` frames.
fn with_catalog_server(f: impl FnOnce(SocketAddr)) {
    let mut index = Rambo::new(params()).unwrap();
    for d in 0..6u64 {
        index
            .insert_document(&format!("doc-{d}"), (0..20).map(|t| d << 16 | t))
            .unwrap();
    }
    let catalog = Catalog::build_halving(&index, 1).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    let options = ServeOptions {
        manifest: Some(b"conformance-node".to_vec()),
    };
    let ((), _stats) = Server::scope(&catalog, ServerConfig::default(), |handle| {
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp_with(handle, listener, &stop, &options));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr)));
            stop.store(true, Ordering::Relaxed);
            let served = server.join().unwrap();
            if let Err(panic) = outcome {
                std::panic::resume_unwind(panic);
            }
            served.unwrap();
        });
    });
}

// ---------------------------------------------------------------------
// Scenarios.
// ---------------------------------------------------------------------

#[test]
fn resp_happy_paths() {
    // Both framings (multibulk and inline) on one connection, plus a
    // pipelined pair answered strictly in order.
    let steps = vec![
        Step::Send(multibulk(&["PING"])),
        Step::ExpectResp(1),
        Step::Send(inline("R.CREATE idx fpr=0.02")),
        Step::ExpectResp(1),
        Step::Send(multibulk(&[
            "R.INSERTDOC",
            "idx",
            "doc-a",
            "alpha",
            "beta",
            "42",
        ])),
        Step::ExpectResp(1),
        Step::Send(inline("R.INSERTDOC idx doc-b beta gamma")),
        Step::ExpectResp(1),
        Step::Send(multibulk(&["R.QUERYSEQ", "idx", "1.0", "beta"])),
        Step::ExpectResp(1),
        Step::Send(inline("R.QUERYSEQ idx 0.5 alpha gamma")),
        Step::ExpectResp(1),
        // Pipelined: two commands in one write, two replies in order.
        Step::Send([inline("R.LIST"), inline("R.DROP idx")].concat()),
        Step::ExpectResp(2),
        Step::Send(inline("R.DROP idx")),
        Step::ExpectResp(1),
        Step::ExpectEof,
    ];
    with_tenant_server(|addr| run_scenario("resp_happy", &steps, addr));
}

#[test]
fn resp_error_taxonomy() {
    let steps = vec![
        Step::Send(inline("NOSUCH thing")),
        Step::ExpectResp(1),
        Step::Send(inline("R.CREATE")),
        Step::ExpectResp(1),
        Step::Send(inline("R.CREATE idx fpr=2")),
        Step::ExpectResp(1),
        Step::Send(inline("R.CREATE idx")),
        Step::ExpectResp(1),
        Step::Send(inline("R.CREATE idx")),
        Step::ExpectResp(1),
        Step::Send(inline("R.INSERTDOC ghost doc alpha")),
        Step::ExpectResp(1),
        Step::Send(inline("R.QUERYSEQ idx 1.5 alpha")),
        Step::ExpectResp(1),
        Step::Send(inline("R.CREATE tiny docs=1")),
        Step::ExpectResp(1),
        Step::Send(inline("R.INSERTDOC tiny d0 alpha")),
        Step::ExpectResp(1),
        Step::Send(inline("R.INSERTDOC tiny d1 beta")),
        Step::ExpectResp(1),
        // Framing violation: the element is not a bulk string → in-protocol
        // error, then the server closes the untrustworthy stream.
        Step::Send(b"*2\r\nPING\r\n".to_vec()),
        Step::ExpectResp(1),
        Step::ExpectEof,
    ];
    with_tenant_server(|addr| run_scenario("resp_errors", &steps, addr));
}

#[test]
fn resp_bf_compatibility() {
    let steps = vec![
        Step::Send(multibulk(&["BF.RESERVE", "filter", "0.01", "1000"])),
        Step::ExpectResp(1),
        Step::Send(multibulk(&["BF.ADD", "filter", "apple"])),
        Step::ExpectResp(1),
        Step::Send(multibulk(&["BF.ADD", "filter", "apple"])),
        Step::ExpectResp(1),
        Step::Send(multibulk(&["BF.MADD", "filter", "pear", "plum", "apple"])),
        Step::ExpectResp(1),
        Step::Send(multibulk(&["BF.EXISTS", "filter", "pear"])),
        Step::ExpectResp(1),
        Step::Send(multibulk(&["BF.EXISTS", "filter", "durian"])),
        Step::ExpectResp(1),
        Step::Send(multibulk(&["BF.EXISTS", "missing", "pear"])),
        Step::ExpectResp(1),
        // Implicit create with defaults on first ADD.
        Step::Send(multibulk(&["BF.ADD", "fresh", "kiwi"])),
        Step::ExpectResp(1),
        Step::Send(multibulk(&["BF.RESERVE", "filter", "0.01", "10"])),
        Step::ExpectResp(1),
        Step::ExpectEof,
    ];
    with_tenant_server(|addr| run_scenario("resp_bf", &steps, addr));
}

#[test]
fn resp_stats_surface() {
    // Stats are taken on fresh tenants only (before any queries), where
    // every counter and histogram is deterministically zero.
    let steps = vec![
        Step::Send(inline("R.STATS")),
        Step::ExpectResp(1),
        Step::Send(inline("R.CREATE s1 fpr=0.05")),
        Step::ExpectResp(1),
        Step::Send(inline("R.STATS s1")),
        Step::ExpectResp(1),
        Step::Send(inline("R.STATS")),
        Step::ExpectResp(1),
        Step::Send(inline("R.STATS ghost")),
        Step::ExpectResp(1),
        Step::ExpectEof,
    ];
    with_tenant_server(|addr| run_scenario("resp_stats", &steps, addr));
}

#[test]
fn binary_stats_and_hello_frames() {
    // The pre-existing binary front's plain-text STATS payload and the
    // HELLO manifest, pinned at the byte level for the first time. A fresh
    // server's counters and histograms are deterministically zero.
    let stats_request = {
        let mut f = 1u32.to_le_bytes().to_vec();
        f.push(2); // OPCODE_STATS
        f
    };
    let hello_request = {
        let mut f = 1u32.to_le_bytes().to_vec();
        f.push(3); // OPCODE_HELLO
        f
    };
    let steps = vec![
        Step::Send(hello_request),
        Step::ExpectFrames(1),
        Step::Send(stats_request),
        Step::ExpectFrames(1),
        Step::ExpectEof,
    ];
    with_catalog_server(|addr| run_scenario("binary_stats", &steps, addr));
}

#[test]
fn transcript_escaping_roundtrips() {
    let bytes: Vec<u8> = (0u8..=255).collect();
    assert_eq!(unescape(&escape(&bytes)), bytes);
}
