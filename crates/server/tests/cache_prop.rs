//! Property tests for the result cache: under fuzzed query streams with
//! interleaved catalog-version bumps, a cached reply must always be
//! bit-identical to uncached evaluation — the cache may evict or miss, but
//! it must never serve a stale or wrong result.

use proptest::prelude::*;
use rambo_core::{canonical_query_key, QueryContext, QueryMode, Rambo, RamboParams};
use rambo_server::{Catalog, ResultCache, Server, ServerConfig};
use std::time::Duration;

/// Deterministic pseudo-result for a (tier, key, version) triple — the
/// "ground truth" an evaluator would produce at that catalog version.
fn truth(tier: u32, key: u128, version: u64) -> Vec<u32> {
    let mut h = (key as u64)
        ^ ((key >> 64) as u64).rotate_left(23)
        ^ version.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(tier).rotate_left(41);
    let len = (h % 6) as usize;
    (0..len)
        .map(|_| {
            h = h.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(17);
            h as u32
        })
        .collect()
}

/// A fuzzed term list drawn from a small universe so canonical keys repeat
/// (hits), permuted and duplicated by `salt` so canonicalization is
/// exercised too.
fn fuzz_terms(universe: u64, r: u64, salt: u8) -> Vec<u64> {
    let n = 1 + (r % 5) as usize;
    let mut terms: Vec<u64> = (0..n as u64)
        .map(|i| (r >> 8).wrapping_add(i) % universe)
        .collect();
    if salt & 1 != 0 {
        terms.reverse();
    }
    if salt & 2 != 0 {
        let dup = terms[0];
        terms.push(dup);
    }
    terms
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Model check on the cache itself: drive it with a fuzzed stream of
    /// gets/inserts over a tiny byte budget (heavy eviction) and random
    /// version bumps. Every hit must equal the ground truth *at the version
    /// read before the probe* — never a value inserted under an older
    /// version.
    #[test]
    fn cache_never_serves_stale_or_wrong_results(
        ops in proptest::collection::vec((0u8..16, any::<u64>()), 1..300),
        budget_kb in 1usize..8,
    ) {
        let cache = ResultCache::new(budget_kb << 10);
        let mut hits = 0u64;
        for (op, r) in ops {
            if op == 0 {
                cache.bump_version();
                continue;
            }
            let terms = fuzz_terms(24, r, op);
            let tier = u32::from(op % 3);
            let key = canonical_query_key(&terms);
            let version = cache.version();
            match cache.get(tier, key, version) {
                Some(docs) => {
                    hits += 1;
                    prop_assert_eq!(docs, truth(tier, key, version), "stale or corrupt hit");
                }
                None => {
                    cache.record_miss();
                    cache.insert(tier, key, version, &truth(tier, key, version));
                }
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.counters.hits, hits);
        prop_assert!(stats.counters.bytes <= (budget_kb << 10) as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end: a server with an aggressively small result cache answers
    /// a fuzzed repeat-heavy query stream with interleaved invalidations;
    /// every reply (inline, batched, cached, or freshly re-evaluated after
    /// a bump) must equal direct evaluation of the immutable tier.
    #[test]
    fn cached_replies_equal_uncached_evaluation(
        stream in proptest::collection::vec((0u8..8, any::<u64>()), 1..60),
        seed in any::<u64>(),
    ) {
        let mut index = Rambo::new(RamboParams::flat(16, 3, 1 << 12, 2, seed)).unwrap();
        for d in 0..12u64 {
            index
                .insert_document(&format!("doc-{d}"), (0..30).map(|t| (d << 16) | t))
                .unwrap();
        }
        let catalog = Catalog::build_halving(&index, 0).unwrap();
        let config = ServerConfig {
            result_cache_bytes: 2 << 10, // tiny: evictions under the stream
            ..ServerConfig::default()
        };
        let stream = &stream;
        let (checked, stats) = Server::scope(&catalog, config, |handle| {
            let mut ctx = QueryContext::new();
            let mut checked = 0usize;
            for &(op, r) in stream {
                if op == 0 {
                    handle.invalidate_result_cache();
                    continue;
                }
                // Terms over a 12-doc universe: (doc << 16) | term with
                // repeats and permutations, so the same canonical key
                // recurs across the stream.
                let terms: Vec<u64> = fuzz_terms(4, r, op)
                    .into_iter()
                    .map(|t| ((r % 12) << 16) | t)
                    .collect();
                let reply = handle
                    .query(&terms, 0.0, Duration::from_secs(5))
                    .expect("query failed");
                let direct = catalog
                    .tier(reply.tier)
                    .query_terms_with(&terms, QueryMode::Full, &mut ctx);
                prop_assert_eq!(&reply.docs, &direct, "cached path diverged from direct eval");
                checked += 1;
            }
            checked
        });
        prop_assert_eq!(stats.total_completed(), checked as u64);
    }
}
