//! End-to-end tests for the mutable-index server: live inserts under
//! concurrent background merges stay bit-identical to a monolithic
//! rebuild, the result cache never serves a stale answer across an
//! insert, the `MUTATE` TCP opcode round-trips, and the unified
//! [`CatalogBuilder`] matches every legacy constructor byte-for-byte.

use rambo_core::{GenerationConfig, QueryContext, QueryMode, Rambo, RamboParams, TierCompression};
use rambo_server::{
    serve_live_tcp, Catalog, LiveServer, ServeOptions, ServerConfig, TcpClient, TcpClientError,
};
use rambo_workloads::TestClient;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn params() -> RamboParams {
    RamboParams::flat(16, 3, 1 << 12, 2, 7)
}

/// Deterministic archive with per-document private terms + one shared term.
fn archive(k: usize) -> Vec<(String, Vec<u64>)> {
    (0..k)
        .map(|d| {
            let base = (d as u64) << 24;
            let mut ts: Vec<u64> = (0..40u64).map(|t| base | t).collect();
            ts.push(0xFFFF);
            (format!("doc-{d}"), ts)
        })
        .collect()
}

fn oracle(docs: &[(String, Vec<u64>)]) -> Rambo {
    let mut r = Rambo::new(params()).unwrap();
    for (name, terms) in docs {
        r.insert_document(name, terms.iter().copied()).unwrap();
    }
    r
}

/// Generation config that churns hard: seal every 4 docs, merge eagerly.
fn churny() -> GenerationConfig {
    GenerationConfig {
        memtable_max_docs: 4,
        tier_growth: 2,
        max_generations: 3,
        ..GenerationConfig::default()
    }
}

#[test]
fn live_inserts_match_monolith_while_background_merges_run() {
    let docs = archive(40);
    let config = ServerConfig::builder().generations(churny()).build();
    let ((), stats) = LiveServer::scope(params(), config, |handle| {
        for (i, (name, terms)) in docs.iter().enumerate() {
            let id = handle.insert_document(name, terms).unwrap();
            assert_eq!(id, i as u32, "ids must be dense and insertion-ordered");
        }
        // Concurrent readers while the merge thread churns the tail.
        std::thread::scope(|s| {
            for r in 0..4 {
                let handle = &handle;
                let docs = &docs;
                s.spawn(move || {
                    for (d, (_, terms)) in docs.iter().enumerate() {
                        let t = terms[r % terms.len()];
                        let got = handle.query(&[t], None);
                        assert!(
                            got.contains(&(d as u32)),
                            "reader {r}: doc {d} missing for {t:#x}"
                        );
                    }
                });
            }
        });
        handle.drain_merges().unwrap();
        // Bit-identity with the from-scratch monolith, both modes.
        let mono = oracle(&docs);
        let mut ctx = QueryContext::new();
        for (_, terms) in &docs {
            for &t in terms.iter().take(5) {
                for mode in [QueryMode::Full, QueryMode::Sparse] {
                    assert_eq!(
                        handle.query(&[t], Some(mode)),
                        mono.query_terms_with(&[t], mode, &mut ctx),
                        "divergence on {t:#x} ({mode:?})"
                    );
                }
            }
        }
        for (i, (name, _)) in docs.iter().enumerate() {
            assert_eq!(handle.document_id(name), Some(i as u32));
        }
    })
    .unwrap();
    assert_eq!(stats.inserts, 40);
    assert_eq!(stats.documents, 40);
    assert!(
        stats.seals >= 9,
        "doc cap 4 over 40 docs must seal: {stats:?}"
    );
    assert!(stats.merges > 0, "churny config must merge: {stats:?}");
    assert!(
        stats.generations <= churny().max_generations,
        "merge policy violated: {stats:?}"
    );
}

#[test]
fn result_cache_never_serves_stale_answers_across_inserts() {
    let config = ServerConfig::builder()
        .generations(churny())
        .result_cache_bytes(1 << 20)
        .build();
    let ((), stats) = LiveServer::scope(params(), config, |handle| {
        let shared = 0xFFFFu64;
        handle.insert_document("a", &[1, shared]).unwrap();
        // Prime the cache, then hit it.
        assert_eq!(handle.query(&[shared], None), vec![0]);
        assert_eq!(handle.query(&[shared], None), vec![0]);
        // The insert bumps the cache version: the cached answer for the
        // shared term must not mask the new document.
        let id = handle.insert_document("b", &[2, shared]).unwrap();
        assert_eq!(handle.query(&[shared], None), vec![0, id]);
    })
    .unwrap();
    let cache = stats.cache.expect("cache enabled");
    assert!(
        cache.counters.hits >= 1,
        "second lookup must hit: {cache:?}"
    );
}

#[test]
fn duplicate_insert_is_rejected_without_poisoning_the_index() {
    let ((), _) = LiveServer::scope(params(), ServerConfig::default(), |handle| {
        handle.insert_document("dup", &[10, 11]).unwrap();
        handle.force_seal().unwrap();
        // The name now lives in a sealed generation; the memtable must
        // still refuse it.
        assert!(handle.insert_document("dup", &[12]).is_err());
        handle.insert_document("other", &[13]).unwrap();
        assert_eq!(handle.query(&[10], None), vec![0]);
    })
    .unwrap();
}

#[test]
fn live_tcp_mutate_roundtrip() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    let docs = archive(12);
    let config = ServerConfig::builder().generations(churny()).build();
    LiveServer::scope(params(), config, |handle| {
        std::thread::scope(|s| {
            let server =
                s.spawn(|| serve_live_tcp(handle, listener, &stop, &ServeOptions::default()));
            let mut client = TcpClient::connect(addr).unwrap();
            let mut epochs = Vec::new();
            for (i, (name, terms)) in docs.iter().enumerate() {
                let (id, epoch) = client.insert_document(name, terms).unwrap();
                assert_eq!(id, i as u32);
                epochs.push(epoch);
            }
            assert!(
                epochs.last() > epochs.first(),
                "seals must advance the wire-visible epoch: {epochs:?}"
            );
            // Duplicate name → in-protocol rejection, connection intact.
            match client.insert_document(&docs[3].0, &[1]) {
                Err(TcpClientError::Rejected(msg)) => {
                    assert!(msg.contains("doc-3"), "reason should name the dup: {msg}")
                }
                other => panic!("expected rejection, got {other:?}"),
            }
            // Query over the same connection sees the inserted docs.
            let reply = client
                .query(&[(5u64 << 24) | 7], 1.0, Duration::from_secs(5))
                .unwrap();
            assert!(reply.docs.contains(&5));
            let stats = client.stats().unwrap();
            assert!(stats.contains("12 docs"), "stats frame: {stats}");
            stop.store(true, Ordering::Relaxed);
            server.join().unwrap().unwrap();
        });
    })
    .unwrap();
}

#[test]
fn malformed_mutate_frame_closes_the_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    LiveServer::scope(params(), ServerConfig::default(), |handle| {
        std::thread::scope(|s| {
            let server =
                s.spawn(|| serve_live_tcp(handle, listener, &stop, &ServeOptions::default()));
            let mut raw = TestClient::connect(addr).unwrap();
            // Opcode 4 with a lying name length.
            let mut frame = vec![4u8, 0, 0, 0];
            frame.extend_from_slice(&999u32.to_le_bytes());
            raw.send_framed(&frame).unwrap();
            // The server answers BAD_REQUEST, then closes.
            let reply = raw.read_until_close().unwrap();
            assert!(reply.len() >= 5);
            assert_eq!(reply[4], 3, "status must be BAD_REQUEST");
            stop.store(true, Ordering::Relaxed);
            server.join().unwrap().unwrap();
        });
    })
    .unwrap();
}

// ---------------------------------------------------------------------
// Unified builder vs legacy constructors.
// ---------------------------------------------------------------------

#[test]
fn builder_matches_legacy_build() {
    let index = oracle(&archive(24));
    let legacy = Catalog::build(&index, &[16, 8]).unwrap();
    let built = Catalog::builder()
        .base(&index)
        .tier_buckets(&[16, 8])
        .build()
        .unwrap();
    assert_eq!(legacy.buffer(), built.buffer(), "byte-identical catalogs");
    assert_eq!(legacy.len(), built.len());
}

#[test]
fn builder_matches_legacy_build_with() {
    let index = oracle(&archive(24));
    let tiers = [(16, TierCompression::Dense), (8, TierCompression::Rrr)];
    let legacy = Catalog::build_with(&index, &tiers).unwrap();
    let built = Catalog::builder()
        .base(&index)
        .tiers(&tiers)
        .build()
        .unwrap();
    assert_eq!(legacy.buffer(), built.buffer());
}

#[test]
fn builder_matches_legacy_build_halving() {
    let index = oracle(&archive(24));
    let legacy = Catalog::build_halving(&index, 2).unwrap();
    let built = Catalog::builder().base(&index).halving(2).build().unwrap();
    assert_eq!(legacy.buffer(), built.buffer());
    assert_eq!(legacy.len(), 3);
}

#[test]
fn builder_matches_legacy_open_and_open_paged() {
    let index = oracle(&archive(24));
    let buf = std::sync::Arc::clone(Catalog::build(&index, &[16, 8]).unwrap().buffer());

    let legacy = Catalog::open(std::sync::Arc::clone(&buf)).unwrap();
    let built = Catalog::builder()
        .buffer(std::sync::Arc::clone(&buf))
        .build()
        .unwrap();
    assert_eq!(legacy.buffer(), built.buffer());

    let dir = std::env::temp_dir().join(format!("rambo-live-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("catalog.rcat");
    std::fs::write(&path, &buf[..]).unwrap();
    let legacy = Catalog::open_paged(&path, 1 << 16).unwrap();
    let built = Catalog::builder()
        .file(&path)
        .cache_bytes(1 << 16)
        .build()
        .unwrap();
    assert_eq!(legacy.len(), built.len());
    let mut ctx = QueryContext::new();
    for t in [(3u64 << 24) | 1, 0xFFFF, 0xDEAD] {
        for tier in 0..legacy.len() {
            assert_eq!(
                legacy
                    .tier(tier)
                    .query_terms_with(&[t], QueryMode::Full, &mut ctx),
                built
                    .tier(tier)
                    .query_terms_with(&[t], QueryMode::Full, &mut ctx),
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn builder_freezes_a_generational_index() {
    let docs = archive(24);
    let mut live = rambo_core::GenerationalIndex::new(params(), churny()).unwrap();
    for (name, terms) in &docs {
        live.insert_document(name, terms).unwrap();
    }
    live.maintain().unwrap();
    let catalog = Catalog::builder()
        .generational(&live)
        .tier_buckets(&[16, 8])
        .build()
        .unwrap();
    let reference = Catalog::build(&oracle(&docs), &[16, 8]).unwrap();
    assert_eq!(catalog.buffer(), reference.buffer(), "snapshot ≡ monolith");
}

#[test]
fn builder_rejects_contradictory_sources() {
    let index = oracle(&archive(8));
    // Base source without tiers.
    assert!(Catalog::builder().base(&index).build().is_err());
    // Serialized source with tiers.
    let buf = std::sync::Arc::clone(Catalog::build(&index, &[16]).unwrap().buffer());
    assert!(Catalog::builder()
        .buffer(buf)
        .tier_buckets(&[16])
        .build()
        .is_err());
    // No source at all.
    assert!(Catalog::builder().build().is_err());
}
