//! Cross-tenant isolation property tests: under fuzzed interleavings of
//! `create` / `insert` / `query` / `drop` / maintenance across several
//! tenants, every tenant's answers must be **bit-identical** to an
//! isolated single-index oracle fed exactly that tenant's operations —
//! multi-tenancy must be unobservable from inside a tenant. The fuzzed
//! streams also cover the sharpest cache hazard: recreate-after-drop under
//! the same name must never serve an answer cached from the previous
//! incarnation.

use proptest::prelude::*;
use rambo_core::{QueryContext, QueryMode, Rambo, RamboParams};
use rambo_server::{TenantError, TenantOptions, TenantQuotas, TenantRegistry};
use std::collections::HashMap;

const TENANTS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn params() -> RamboParams {
    // Small BFUs on purpose: false positives are common, so bit-identity
    // with the oracle is a real check, not a triviality over empty answers.
    RamboParams::flat(8, 3, 1 << 9, 2, 7)
}

/// The oracle for one live tenant: an isolated index plus the number of
/// documents inserted in this incarnation (names must be unique per
/// incarnation on both sides).
struct Oracle {
    index: Rambo,
    inserted: u64,
}

/// Fuzzed term list over a small shared universe — the same terms recur
/// across tenants and across ops, so cache hits, repeated queries, and
/// cross-tenant term collisions all happen.
fn fuzz_terms(r: u64) -> Vec<u64> {
    let n = 1 + (r % 4) as usize;
    (0..n as u64)
        .map(|i| (r >> 8).wrapping_add(i * 7) % 24)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fuzzed_interleavings_match_isolated_oracles(
        ops in proptest::collection::vec((0u8..12, 0usize..TENANTS.len(), any::<u64>()), 1..80),
    ) {
        let registry = TenantRegistry::new(params(), TenantQuotas::default()).unwrap();
        let mut oracles: HashMap<&str, Oracle> = HashMap::new();
        let mut ctx = QueryContext::new();
        for (op, t, r) in ops {
            let name = TENANTS[t];
            match op {
                // Create: succeeds iff the name is free, on both sides.
                0 | 1 => {
                    let created = registry.create(name, TenantOptions::default());
                    if oracles.contains_key(name) {
                        prop_assert!(
                            matches!(created, Err(TenantError::DuplicateTenant(_))),
                            "{name}: duplicate create must be rejected"
                        );
                    } else {
                        prop_assert!(created.is_ok());
                        oracles.insert(name, Oracle {
                            index: Rambo::new(params()).unwrap(),
                            inserted: 0,
                        });
                    }
                }
                // Drop: presence must agree.
                2 => {
                    let dropped = registry.drop_tenant(name);
                    prop_assert_eq!(dropped, oracles.remove(name).is_some());
                }
                // Insert: same name, same terms, same resulting id.
                3..=5 => {
                    let terms = fuzz_terms(r);
                    match oracles.get_mut(name) {
                        Some(oracle) => {
                            let doc = format!("{name}-doc-{}", oracle.inserted);
                            let id = registry.insert_document(name, &doc, &terms).unwrap();
                            let want = oracle
                                .index
                                .insert_document(&doc, terms.iter().copied())
                                .unwrap();
                            oracle.inserted += 1;
                            prop_assert_eq!(id, want, "{}: id drift", name);
                        }
                        None => prop_assert!(
                            matches!(
                                registry.insert_document(name, "ghost", &terms),
                                Err(TenantError::UnknownTenant(_))
                            ),
                            "{name}: insert into missing tenant must fail"
                        ),
                    }
                }
                // Plain query: bit-identical to the isolated oracle,
                // including deterministic false positives.
                6..=8 => {
                    let terms = fuzz_terms(r);
                    match oracles.get(name) {
                        Some(oracle) => {
                            let got = registry.query(name, &terms, None).unwrap();
                            let want = oracle
                                .index
                                .query_terms_with(&terms, QueryMode::Full, &mut ctx);
                            prop_assert_eq!(got, want, "{}: query drift on {:?}", name, terms);
                        }
                        None => prop_assert!(registry.query(name, &terms, None).is_err()),
                    }
                }
                // Theta query through the theta cache lanes.
                9 | 10 => {
                    let terms = fuzz_terms(r);
                    let theta = match r % 3 {
                        0 => 0.34,
                        1 => 0.67,
                        _ => 1.0,
                    };
                    match oracles.get(name) {
                        Some(oracle) => {
                            let got = registry
                                .query_theta(name, &terms, theta, None)
                                .unwrap();
                            let want = oracle.index.query_sequence_theta(
                                &terms,
                                theta,
                                QueryMode::Full,
                                &mut ctx,
                            );
                            prop_assert_eq!(
                                got, want,
                                "{}: theta {} drift on {:?}", name, theta, terms
                            );
                        }
                        None => prop_assert!(
                            registry.query_theta(name, &terms, theta, None).is_err()
                        ),
                    }
                }
                // Maintenance: merges must be unobservable in answers.
                _ => {
                    registry.maintain_once();
                }
            }
        }
        // Final sweep: every surviving tenant still answers identically on
        // a fixed probe battery.
        for (name, oracle) in &oracles {
            for probe in 0..24u64 {
                let got = registry.query(name, &[probe], None).unwrap();
                let want = oracle.index.query_terms_with(&[probe], QueryMode::Full, &mut ctx);
                prop_assert_eq!(got, want, "{}: final probe {} drift", name, probe);
            }
        }
        prop_assert_eq!(registry.len(), oracles.len());
    }
}

#[test]
fn recreate_after_drop_never_serves_the_old_incarnation() {
    let registry = TenantRegistry::new(params(), TenantQuotas::default()).unwrap();
    registry
        .create("phoenix", TenantOptions::default())
        .unwrap();
    registry
        .insert_document("phoenix", "old-doc", &[7, 8, 9])
        .unwrap();
    // Prime the cache, then hit it — the second answer comes from cache.
    assert_eq!(registry.query("phoenix", &[7], None).unwrap(), vec![0]);
    assert_eq!(registry.query("phoenix", &[7], None).unwrap(), vec![0]);
    let cache = registry.stats("phoenix").unwrap().cache.expect("cache on");
    assert!(
        cache.counters.hits >= 1,
        "second lookup must hit the cache: {cache:?}"
    );

    // Drop and recreate under the same name: the new incarnation is empty
    // and must not inherit the old incarnation's cached answer.
    assert!(registry.drop_tenant("phoenix"));
    registry
        .create("phoenix", TenantOptions::default())
        .unwrap();
    assert!(
        registry.query("phoenix", &[7], None).unwrap().is_empty(),
        "stale cache entry served across drop/recreate"
    );

    // And the new incarnation's own content resolves under fresh names.
    registry
        .insert_document("phoenix", "new-doc", &[7])
        .unwrap();
    let ids = registry.query("phoenix", &[7], None).unwrap();
    assert_eq!(ids, vec![0]);
    assert_eq!(
        registry.resolve_names("phoenix", &ids).unwrap(),
        vec!["new-doc".to_string()]
    );
}
