//! Wire-level fuzz battery for the serving fronts.
//!
//! The reactor in `serve_tenant_tcp` multiplexes two protocols (RESP text
//! and length-prefixed binary frames) over one poll loop; this suite
//! attacks both with what real networks and hostile clients produce:
//! garbage bytes, truncated streams, frames fragmented across poll ticks,
//! lying length prefixes, and concurrent connections mixing the two
//! protocols. The invariants are uniform:
//!
//! * the server never panics or wedges — after every fuzz connection a
//!   fresh well-formed connection gets a correct answer (liveness probe);
//! * replies come back in request order, byte-exact, no matter how the
//!   requests were fragmented on the wire;
//! * a malformed stream is answered in-protocol where the protocol allows
//!   (`-ERR ...`, `BAD_REQUEST`) and then the connection closes cleanly.

use proptest::prelude::*;
use rambo_server::{
    serve_tenant_tcp, TcpClient, TenantOptions, TenantQuotas, TenantRegistry, TenantServeOptions,
};
use rambo_workloads::TestClient;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn params() -> rambo_core::RamboParams {
    rambo_core::RamboParams::flat(8, 3, 1 << 10, 2, 7)
}

fn registry() -> TenantRegistry {
    TenantRegistry::new(params(), TenantQuotas::default()).unwrap()
}

/// Serve `registry` on both fronts for the closure's duration, binding the
/// binary front to tenant `bin`.
fn with_dual_server(registry: &TenantRegistry, f: impl FnOnce(SocketAddr, SocketAddr)) {
    let resp_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let binary_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let resp_addr = resp_listener.local_addr().unwrap();
    let bin_addr = binary_listener.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    let options = TenantServeOptions {
        manifest: Some(b"fuzz-node".to_vec()),
        binary_tenant: Some("bin".to_string()),
    };
    std::thread::scope(|s| {
        let server = s.spawn(|| {
            serve_tenant_tcp(
                registry,
                resp_listener,
                Some(binary_listener),
                &stop,
                &options,
            )
        });
        // Stop the reactor even when the closure's assertions panic —
        // otherwise the scope would block forever joining the server thread
        // and the real failure would read as a hang.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f(resp_addr, bin_addr);
        }));
        stop.store(true, Ordering::Relaxed);
        let served = server.join().unwrap();
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
        served.unwrap();
    });
}

/// The liveness probe: a fresh RESP connection must still get `+PONG`.
fn assert_resp_alive(addr: SocketAddr) {
    let mut probe = TestClient::connect(addr).unwrap();
    probe.send_resp(&[b"PING"]).unwrap();
    assert_eq!(probe.read_resp_reply().unwrap(), b"+PONG\r\n");
}

/// The binary liveness probe: a fresh connection's STATS frame answers with
/// the registry summary.
fn assert_binary_alive(addr: SocketAddr) {
    let mut probe = TestClient::connect(addr).unwrap();
    probe.send_framed(&[2]).unwrap(); // OPCODE_STATS
    let payload = probe.read_frame(16 << 20).unwrap();
    // Frame payload: status byte (OK = 0) followed by the summary text.
    assert!(
        payload.first() == Some(&0) && payload[1..].starts_with(b"tenants:"),
        "stats probe got {payload:?}"
    );
}

/// Parse the bulk strings out of a RESP array reply.
fn resp_array_docs(reply: &[u8]) -> Vec<String> {
    let text = std::str::from_utf8(reply).expect("ascii reply");
    let mut lines = text.split("\r\n");
    let header = lines.next().expect("array header");
    assert!(header.starts_with('*'), "not an array: {text:?}");
    let n: usize = header[1..].parse().expect("array count");
    let mut docs = Vec::with_capacity(n);
    for _ in 0..n {
        let len_line = lines.next().expect("bulk header");
        assert!(len_line.starts_with('$'), "not a bulk: {text:?}");
        docs.push(lines.next().expect("bulk body").to_string());
    }
    docs
}

/// Deterministic byte soup derived from `r`.
fn garbage(r: u64, len: usize) -> Vec<u8> {
    let mut state = r | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(17);
            (state >> 32) as u8
        })
        .collect()
}

const VALID_LINES: &[&str] = &[
    "PING",
    "R.LIST",
    "R.STATS",
    "R.CREATE fz fpr=0.02",
    "R.INSERTDOC fz d0 alpha beta",
    "R.QUERYSEQ fz 1.0 alpha",
    "R.DROP fz",
    "BF.ADD bloomy pear",
    "BF.EXISTS bloomy pear",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fuzzed RESP streams: valid commands, multibulk framings, garbage,
    /// truncations and lying bulk lengths, dribbled onto the socket in
    /// fuzz-sized chunks. The server may answer or close, but it must do so
    /// cleanly and keep serving other connections.
    #[test]
    fn fuzzed_resp_streams_never_wedge_the_server(
        ops in proptest::collection::vec((0u8..6, any::<u64>()), 1..7),
        chunk in 1usize..48,
    ) {
        let reg = registry();
        with_dual_server(&reg, |resp_addr, _| {
            let mut client = TestClient::connect(resp_addr).unwrap();
            client.set_split(chunk, Duration::from_micros(300));
            let mut wire = Vec::new();
            for &(op, r) in &ops {
                let line = VALID_LINES[(r % VALID_LINES.len() as u64) as usize];
                match op {
                    0 => wire.extend_from_slice(format!("{line}\r\n").as_bytes()),
                    1 => {
                        // Multibulk framing of the same command.
                        let args: Vec<&str> = line.split(' ').collect();
                        wire.extend_from_slice(format!("*{}\r\n", args.len()).as_bytes());
                        for a in &args {
                            wire.extend_from_slice(
                                format!("${}\r\n{a}\r\n", a.len()).as_bytes(),
                            );
                        }
                    }
                    2 => wire.extend_from_slice(&garbage(r, (r % 40) as usize + 1)),
                    3 => {
                        // Truncated prefix of a valid command: starves the
                        // parser mid-token.
                        let full = format!("{line}\r\n");
                        let cut = 1 + (r as usize % (full.len() - 1));
                        wire.extend_from_slice(&full.as_bytes()[..cut]);
                    }
                    4 => {
                        // Lying bulk length: header promises more than the
                        // 1 MiB bulk cap allows.
                        wire.extend_from_slice(b"*1\r\n$99999999\r\n");
                    }
                    _ => {
                        // Bare CRLFs and empty arrays are no-ops, not errors.
                        wire.extend_from_slice(b"\r\n*0\r\n");
                    }
                }
            }
            // The server may close the stream mid-send after a protocol
            // error — a broken pipe here is the server doing its job.
            let _ = client.send(&wire);
            client.clear_split();
            let _ = client.shutdown_write();
            // Whatever the stream provoked, the server must end the
            // connection rather than wedge it.
            if let Ok(replies) = client.read_until_close() {
                // Any reply bytes must at least be RESP-typed.
                if let Some(&first) = replies.first() {
                    prop_assert!(
                        matches!(first, b'+' | b'-' | b':' | b'$' | b'*'),
                        "non-RESP reply bytes: {replies:?}"
                    );
                }
            }
            assert_resp_alive(resp_addr);
        });
    }

    /// Fuzzed binary frames: random payloads, random opcodes, truncated
    /// frames, and lying length prefixes (oversized and worst-case
    /// `u32::MAX`). The frame protocol has no in-band error channel for
    /// unparseable framing, so the server's contract is: answer
    /// `BAD_REQUEST` where a frame parses as a bad request, close otherwise,
    /// and never take the reactor down with it.
    #[test]
    fn fuzzed_binary_frames_never_wedge_the_server(
        ops in proptest::collection::vec((0u8..4, any::<u64>()), 1..5),
        chunk in 1usize..32,
    ) {
        let reg = registry();
        reg.create("bin", TenantOptions::default()).unwrap();
        with_dual_server(&reg, |resp_addr, bin_addr| {
            let mut client = TestClient::connect(bin_addr).unwrap();
            client.set_split(chunk, Duration::from_micros(300));
            let mut wire = Vec::new();
            for &(op, r) in &ops {
                match op {
                    0 => {
                        // Well-formed frame, fuzzed payload (random opcode).
                        let payload = garbage(r, (r % 24) as usize + 1);
                        wire.extend_from_slice(
                            &u32::try_from(payload.len()).unwrap().to_le_bytes(),
                        );
                        wire.extend_from_slice(&payload);
                    }
                    1 => {
                        // Oversized length prefix: above MAX_FRAME_BYTES.
                        let lie = (17 << 20) + (r as u32 % 1000);
                        wire.extend_from_slice(&lie.to_le_bytes());
                    }
                    2 => wire.extend_from_slice(&u32::MAX.to_le_bytes()),
                    _ => {
                        // Truncated frame: honest prefix, missing bytes.
                        wire.extend_from_slice(&64u32.to_le_bytes());
                        wire.extend_from_slice(&garbage(r, (r % 8) as usize));
                    }
                }
            }
            let _ = client.send(&wire);
            client.clear_split();
            let _ = client.shutdown_write();
            let _ = client.read_until_close();
            assert_binary_alive(bin_addr);
            assert_resp_alive(resp_addr);
        });
    }
}

#[test]
fn pipelined_replies_stay_in_order_under_fragmentation() {
    let reg = registry();
    with_dual_server(&reg, |resp_addr, _| {
        let mut client = TestClient::connect(resp_addr).unwrap();
        client.send_resp_inline("R.CREATE pipe fpr=0.02").unwrap();
        assert_eq!(client.read_resp_reply().unwrap(), b"+OK\r\n");
        // 40 pipelined inserts in one burst, dribbled 3 bytes per poll tick.
        let mut wire = Vec::new();
        for i in 0..40 {
            wire.extend_from_slice(format!("R.INSERTDOC pipe doc-{i} w{i} shared\r\n").as_bytes());
        }
        client.set_split(3, Duration::from_micros(200));
        client.send(&wire).unwrap();
        client.clear_split();
        // Replies must be the dense ids, strictly in request order.
        for i in 0..40 {
            assert_eq!(
                client.read_resp_reply().unwrap(),
                format!(":{i}\r\n").into_bytes(),
                "reply {i} out of order"
            );
        }
        // Queries across the same fragmented connection still line up.
        let mut wire = Vec::new();
        for i in (0..40).rev() {
            wire.extend_from_slice(format!("R.QUERYSEQ pipe 1.0 w{i}\r\n").as_bytes());
        }
        client.set_split(5, Duration::from_micros(200));
        client.send(&wire).unwrap();
        client.clear_split();
        // Replies must come back in request order. Bloom false positives may
        // add extra docs to an answer, but the planted doc must be present —
        // and because every insert/query pair is deterministic, the order of
        // the replies is the real invariant here.
        for i in (0..40).rev() {
            let docs = resp_array_docs(&client.read_resp_reply().unwrap());
            assert!(
                docs.contains(&format!("doc-{i}")),
                "query reply for w{i} missing its doc: {docs:?}"
            );
        }
    });
}

#[test]
fn interleaved_resp_and_binary_connections_serve_concurrently() {
    // The acceptance scenario: one process, one reactor, ≥3 named RAMBO
    // indexes served over RESP while the binary front mutates and queries a
    // fourth — concurrently, with per-tenant answers staying isolated.
    let reg = registry();
    reg.create("bin", TenantOptions::default()).unwrap();
    with_dual_server(&reg, |resp_addr, bin_addr| {
        std::thread::scope(|s| {
            // Three RESP tenants, one client thread each.
            for t in 0..3 {
                s.spawn(move || {
                    let name = format!("tenant-{t}");
                    let mut c = TestClient::connect(resp_addr).unwrap();
                    c.send_resp_inline(&format!("R.CREATE {name} fpr=0.02"))
                        .unwrap();
                    assert_eq!(c.read_resp_reply().unwrap(), b"+OK\r\n");
                    for d in 0..20 {
                        c.send_resp_inline(&format!(
                            "R.INSERTDOC {name} d{t}-{d} w{t}x{d} shared{t}"
                        ))
                        .unwrap();
                        assert_eq!(
                            c.read_resp_reply().unwrap(),
                            format!(":{d}\r\n").into_bytes()
                        );
                    }
                    // Per-doc probe: the planted doc answers, and — the
                    // isolation property — every answered name belongs to
                    // THIS tenant (false positives stay inside the tenant).
                    for d in 0..20 {
                        c.send_resp_inline(&format!("R.QUERYSEQ {name} 1.0 w{t}x{d}"))
                            .unwrap();
                        let docs = resp_array_docs(&c.read_resp_reply().unwrap());
                        assert!(docs.contains(&format!("d{t}-{d}")), "tenant {t}: {docs:?}");
                        assert!(
                            docs.iter().all(|n| n.starts_with(&format!("d{t}-"))),
                            "cross-tenant leak in {name}: {docs:?}"
                        );
                    }
                    // The shared term hits all 20 of this tenant's docs and
                    // nobody else's.
                    c.send_resp_inline(&format!("R.QUERYSEQ {name} 1.0 shared{t}"))
                        .unwrap();
                    let docs = resp_array_docs(&c.read_resp_reply().unwrap());
                    assert!(docs.len() >= 20, "tenant {t}: {docs:?}");
                    assert!(docs.iter().all(|n| n.starts_with(&format!("d{t}-"))));
                });
            }
            // Two binary clients hammering the bound tenant.
            for r in 0..2u64 {
                s.spawn(move || {
                    let mut c = TcpClient::connect(bin_addr).unwrap();
                    for d in 0..10u64 {
                        let doc = format!("bin-{r}-{d}");
                        let term = (r << 32) | (d << 8) | 1;
                        let (id, _epoch) = c.insert_document(&doc, &[term, 0xB1B1]).unwrap();
                        let reply = c.query(&[term], 1.0, Duration::from_secs(5)).unwrap();
                        assert!(
                            reply.docs.contains(&id),
                            "binary client {r} doc {d}: {:?}",
                            reply.docs
                        );
                    }
                });
            }
        });
        // Post-hoc: the registry really holds 4 tenants with the expected
        // document counts, and the shared binary tenant saw both writers.
        let list = reg.list();
        assert_eq!(list.len(), 4);
        for st in &list {
            assert_eq!(st.documents, 20, "tenant {}", st.name);
        }
    });
}

#[test]
fn resp_front_closes_cleanly_on_oversized_inline_lines() {
    let reg = registry();
    with_dual_server(&reg, |resp_addr, _| {
        let mut client = TestClient::connect(resp_addr).unwrap();
        // An inline line that can never terminate within the 64 KiB cap.
        client.send(&vec![b'A'; 80 << 10]).unwrap();
        let reply = client.read_until_close().unwrap();
        assert!(
            reply.starts_with(b"-ERR Protocol error"),
            "oversized inline line must be answered in-protocol: {reply:?}"
        );
        assert_resp_alive(resp_addr);
    });
}

#[test]
fn half_open_clients_do_not_block_shutdown() {
    // A client that sends half a multibulk and stalls forever must not
    // prevent the reactor from honoring the stop flag.
    let reg = registry();
    let resp_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = resp_listener.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let server = s.spawn(|| {
            serve_tenant_tcp(
                &reg,
                resp_listener,
                None,
                &stop,
                &TenantServeOptions::default(),
            )
        });
        let mut staller = TestClient::connect(addr).unwrap();
        staller.send(b"*3\r\n$4\r\nPING\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        stop.store(true, Ordering::Relaxed);
        server.join().unwrap().unwrap();
    });
}
