//! End-to-end tests for the serving engine: result parity with direct
//! evaluation, tier routing, batching, backpressure, deadlines, the TCP
//! front, and clean shutdown accounting.

use rambo_core::{QueryContext, QueryMode, Rambo, RamboParams};
use rambo_server::{
    serve_tcp, Catalog, QueryOptions, SchedulerMode, Server, ServerConfig, ServerError, TcpClient,
    TcpClientError,
};
use rambo_workloads::TestClient;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A deterministic archive: disjoint per-document term ranges plus one
/// shared term, mirroring the core test fixtures.
fn archive(k: usize, terms_per_doc: usize) -> Vec<(String, Vec<u64>)> {
    (0..k)
        .map(|d| {
            let base = (d as u64) << 24;
            let mut ts: Vec<u64> = (0..terms_per_doc as u64).map(|t| base | t).collect();
            ts.push(0xFFFF);
            (format!("doc-{d}"), ts)
        })
        .collect()
}

fn build_index(buckets: u64, k: usize, seed: u64) -> Rambo {
    let mut r = Rambo::new(RamboParams::flat(buckets, 3, 1 << 13, 2, seed)).unwrap();
    for (name, terms) in archive(k, 60) {
        r.insert_document(&name, terms).unwrap();
    }
    r
}

/// A mixed query load: one present term per covered document, plus absent
/// probes.
fn query_load(k: usize) -> Vec<Vec<u64>> {
    let mut queries: Vec<Vec<u64>> = (0..k)
        .map(|d| vec![((d as u64) << 24) | 7, ((d as u64) << 24) | 8])
        .collect();
    queries.extend((0..k / 2).map(|i| vec![0xDEAD_0000_0000 + i as u64]));
    queries
}

#[test]
fn served_results_match_direct_evaluation_on_every_tier() {
    let index = build_index(32, 50, 1);
    let catalog = Catalog::build_halving(&index, 2).unwrap();
    let queries = query_load(50);
    let budgets: Vec<f64> = (0..catalog.len())
        .map(|t| catalog.info(t).predicted_fpr)
        .collect();

    let (checked, stats) = Server::scope(&catalog, ServerConfig::default(), |handle| {
        let mut checked = 0usize;
        let mut ctx = QueryContext::new();
        for (i, q) in queries.iter().enumerate() {
            let budget = budgets[i % budgets.len()];
            let reply = handle.query(q, budget, Duration::from_secs(5)).unwrap();
            assert_eq!(reply.tier, catalog.select(budget));
            let direct = catalog
                .tier(reply.tier)
                .query_terms_with(q, QueryMode::Full, &mut ctx);
            assert_eq!(reply.docs, direct, "query {i} disagrees with direct eval");
            checked += 1;
        }
        checked
    });
    assert_eq!(checked, queries.len());
    assert_eq!(stats.total_completed(), queries.len() as u64);
    assert_eq!(stats.total_rejected(), 0);
    // Every tier served some share of the mixed-budget load.
    for tier in &stats.tiers {
        assert!(tier.completed > 0, "tier {} sat idle", tier.tier);
        assert!(tier.p99 >= tier.p50);
    }
}

#[test]
fn sparse_mode_and_explicit_tier_override() {
    let index = build_index(16, 30, 2);
    let catalog = Catalog::build_halving(&index, 1).unwrap();
    let (_, stats) = Server::scope(&catalog, ServerConfig::default(), |handle| {
        let term = (4u64 << 24) | 3;
        let full = handle
            .query_opts(
                &[term],
                &QueryOptions {
                    tier: Some(1),
                    mode: Some(QueryMode::Full),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        let sparse = handle
            .query_opts(
                &[term],
                &QueryOptions {
                    tier: Some(1),
                    mode: Some(QueryMode::Sparse),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        assert_eq!(full.tier, 1);
        assert_eq!(full.docs, sparse.docs);
        assert!(full.docs.contains(&4));
        assert!(matches!(
            handle.submit(
                &[term],
                &QueryOptions {
                    tier: Some(9),
                    ..QueryOptions::default()
                }
            ),
            Err(ServerError::UnknownTier(9))
        ));
    });
    assert_eq!(stats.tiers[0].completed, 0);
    assert_eq!(stats.tiers[1].completed, 2);
}

#[test]
fn concurrent_clients_get_batched() {
    let index = build_index(16, 40, 3);
    let catalog = Catalog::build_halving(&index, 0).unwrap();
    // Pin always-batch and disable the result cache: this test asserts the
    // *batching machinery* coalesces, so neither the adaptive inline bypass
    // nor cache hits may short-circuit the queue.
    let config = ServerConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(5),
        workers_per_tier: 1,
        scheduler: SchedulerMode::AlwaysBatch,
        result_cache_bytes: 0,
        ..ServerConfig::default()
    };
    let n_clients = 4;
    let per_client = 100usize;
    let (_, stats) = Server::scope(&catalog, config, |handle| {
        std::thread::scope(|s| {
            for c in 0..n_clients {
                let handle = &handle;
                s.spawn(move || {
                    for i in 0..per_client {
                        let term = (((i % 40) as u64) << 24) | (c as u64);
                        let reply = handle.query(&[term], 0.0, Duration::from_secs(5)).unwrap();
                        assert_eq!(reply.tier, 0);
                    }
                });
            }
        });
    });
    let total = (n_clients * per_client) as u64;
    assert_eq!(stats.total_completed(), total);
    // Micro-batching must have coalesced concurrent requests: strictly
    // fewer batches than queries, i.e. mean batch size above one.
    assert!(
        stats.tiers[0].batches < total,
        "no batching happened: {} batches for {total} queries",
        stats.tiers[0].batches
    );
    assert!(stats.tiers[0].mean_batch > 1.0);
    assert_eq!(stats.tiers[0].hits, total); // every term hits exactly one doc
}

#[test]
fn overload_rejects_when_the_queue_is_full() {
    // One document with a large term set: a query over all its terms keeps
    // the single worker busy evaluating for many milliseconds (every term
    // is present, so there is no early exit), while the tiny admission
    // queue fills deterministically behind it.
    let slow_terms: Vec<u64> = (0..200_000u64).collect();
    let mut index = Rambo::new(RamboParams::flat(8, 3, 1 << 16, 2, 4)).unwrap();
    index
        .insert_document("big", slow_terms.iter().copied())
        .unwrap();
    let catalog = Catalog::build_halving(&index, 0).unwrap();
    // Pin always-batch: under the adaptive scheduler the slow query would
    // evaluate inline on the submitting thread and the queue would never
    // fill — this test exercises the queue-full backpressure path.
    let config = ServerConfig {
        max_batch: 1, // no collection loop: the worker is either evaluating or idle
        queue_capacity: 2,
        workers_per_tier: 1,
        scheduler: SchedulerMode::AlwaysBatch,
        ..ServerConfig::default()
    };
    let ((accepted, rejected), stats) = Server::scope(&catalog, config, |handle| {
        let mut pending = vec![handle
            .submit(&slow_terms, &QueryOptions::default())
            .unwrap()];
        // Let the worker dequeue the slow query and start evaluating (the
        // sleep must end well inside the tens-of-ms evaluation).
        std::thread::sleep(Duration::from_millis(5));
        let mut rejected = 0usize;
        // The worker is mid-evaluation: the queue holds 2, the rest bounce.
        for i in 0..6u64 {
            match handle.submit(&[i], &QueryOptions::default()) {
                Ok(p) => pending.push(p),
                Err(ServerError::Overloaded { tier: 0 }) => rejected += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let accepted = pending.len();
        for p in pending {
            p.wait().unwrap();
        }
        (accepted, rejected)
    });
    assert!(rejected > 0, "queue never filled");
    assert_eq!(accepted + rejected, 7);
    assert_eq!(stats.tiers[0].rejected as usize, rejected);
    assert_eq!(stats.tiers[0].completed as usize, accepted);
}

#[test]
fn expired_requests_are_dropped_not_evaluated() {
    let index = build_index(16, 20, 5);
    let catalog = Catalog::build_halving(&index, 0).unwrap();
    let config = ServerConfig {
        workers_per_tier: 1,
        ..ServerConfig::default()
    };
    let (result, stats) = Server::scope(&catalog, config, |handle| {
        // A deadline of zero is already past when the worker dequeues.
        handle.query(&[42], 0.0, Duration::ZERO)
    });
    assert_eq!(result, Err(ServerError::DeadlineExceeded { tier: 0 }));
    assert_eq!(stats.tiers[0].expired, 1);
    assert_eq!(stats.tiers[0].completed, 0);
}

#[test]
fn deadline_caps_the_straggler_wait() {
    let index = build_index(16, 20, 6);
    let catalog = Catalog::build_halving(&index, 0).unwrap();
    // Collection window far beyond the request deadline: the scheduler must
    // cut the wait at the deadline and still answer in time.
    let config = ServerConfig {
        max_batch: 64,
        max_delay: Duration::from_secs(30),
        workers_per_tier: 1,
        ..ServerConfig::default()
    };
    let (reply, _) = Server::scope(&catalog, config, |handle| {
        let start = std::time::Instant::now();
        let reply = handle.query(&[(3u64 << 24) | 1], 0.0, Duration::from_millis(200));
        (reply, start.elapsed())
    });
    let (reply, elapsed) = reply;
    assert!(reply.is_ok(), "deadline-capped wait must still answer");
    assert!(
        elapsed < Duration::from_secs(5),
        "worker waited the full window: {elapsed:?}"
    );
}

#[test]
fn tcp_round_trip_matches_direct_evaluation() {
    let index = build_index(32, 40, 7);
    let catalog = Catalog::build_halving(&index, 2).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    let loose_budget = catalog.info(catalog.len() - 1).predicted_fpr;

    let (checked, stats) = Server::scope(&catalog, ServerConfig::default(), |handle| {
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp(handle, listener, &stop));
            let mut checked = 0usize;
            let mut ctx = QueryContext::new();
            // Two sequential client connections, mixed budgets.
            for round in 0..2 {
                let mut client = TcpClient::connect(addr).unwrap();
                for d in 0..40u64 {
                    let budget = if d % 2 == round { 0.0 } else { loose_budget };
                    let q = [(d << 24) | 5];
                    let reply = client.query(&q, budget, Duration::from_secs(5)).unwrap();
                    assert_eq!(reply.tier, catalog.select(budget));
                    let direct =
                        catalog
                            .tier(reply.tier)
                            .query_terms_with(&q, QueryMode::Full, &mut ctx);
                    assert_eq!(reply.docs, direct);
                    assert!(reply.docs.contains(&(d as u32)), "lost doc {d} over TCP");
                    checked += 1;
                }
            }
            stop.store(true, Ordering::Relaxed);
            server.join().unwrap().unwrap();
            checked
        })
    });
    assert_eq!(checked, 80);
    assert_eq!(stats.total_completed(), 80);
    // Both the accurate and the folded tier saw traffic.
    assert!(stats.tiers[0].completed > 0);
    assert!(stats.tiers[catalog.len() - 1].completed > 0);
}

#[test]
fn tcp_rejects_malformed_frames_without_dying() {
    let index = build_index(16, 10, 8);
    let catalog = Catalog::build_halving(&index, 0).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = AtomicBool::new(false);

    Server::scope(&catalog, ServerConfig::default(), |handle| {
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp(handle, listener, &stop));
            // Garbage opcode → status 3, connection closed by the server.
            let mut raw = TestClient::connect(addr).unwrap();
            raw.send_framed(&[9, 9, 9, 9, 9]).unwrap();
            let buf = raw.read_until_close().unwrap();
            assert!(buf.len() >= 5 && buf[4] == 3, "expected bad-request status");
            drop(raw);
            // The server still answers a well-formed client afterwards.
            let mut client = TcpClient::connect(addr).unwrap();
            let reply = client
                .query(&[(2u64 << 24) | 1], 0.0, Duration::from_secs(5))
                .unwrap();
            assert!(reply.docs.contains(&2));
            // And a budget outside [0,1] is a client-visible protocol error.
            let err = client.query(&[1], 7.5, Duration::from_secs(5));
            assert!(matches!(err, Err(TcpClientError::Protocol(_))));
            stop.store(true, Ordering::Relaxed);
            server.join().unwrap().unwrap();
        });
    });
}

#[test]
fn inline_path_is_bit_identical_to_batched_path() {
    let index = build_index(16, 30, 10);
    let catalog = Catalog::build_halving(&index, 1).unwrap();
    let queries = query_load(30);
    // Forced-inline arm: an unreachable batch threshold keeps every request
    // on the admitting thread. Forced-batch arm: the pre-adaptive path.
    // Cache off on both so every reply is a fresh evaluation.
    let run = |scheduler: SchedulerMode| {
        let config = ServerConfig {
            workers_per_tier: 1,
            scheduler,
            result_cache_bytes: 0,
            ..ServerConfig::default()
        };
        Server::scope(&catalog, config, |handle| {
            queries
                .iter()
                .flat_map(|q| {
                    (0..catalog.len()).map(|t| {
                        handle
                            .query_opts(
                                q,
                                &QueryOptions {
                                    tier: Some(t),
                                    deadline: Duration::from_secs(5),
                                    ..QueryOptions::default()
                                },
                            )
                            .unwrap()
                            .docs
                    })
                })
                .collect::<Vec<_>>()
        })
    };
    let (inline_docs, inline_stats) = run(SchedulerMode::Adaptive {
        batch_above: usize::MAX,
        inline_below: 0,
    });
    let (batched_docs, batched_stats) = run(SchedulerMode::AlwaysBatch);
    assert_eq!(inline_docs, batched_docs, "inline and batched paths differ");
    let total = (queries.len() * catalog.len()) as u64;
    assert_eq!(inline_stats.total_inline(), total, "not all inline");
    assert_eq!(inline_stats.total_batches(), 0);
    assert_eq!(batched_stats.total_inline(), 0, "always-batch went inline");
    assert_eq!(batched_stats.total_completed(), total);
}

#[test]
fn adaptive_scheduler_switches_to_batching_under_load() {
    // One huge-term-set document: queries over all its terms evaluate for
    // many milliseconds, so the inline lock stays held while fast queries
    // pile into the queue and trip the batching threshold.
    let slow_terms: Vec<u64> = (0..200_000u64).collect();
    let mut index = Rambo::new(RamboParams::flat(8, 3, 1 << 16, 2, 11)).unwrap();
    index
        .insert_document("big", slow_terms.iter().copied())
        .unwrap();
    let catalog = Catalog::build_halving(&index, 0).unwrap();
    let config = ServerConfig {
        workers_per_tier: 1,
        max_batch: 8,
        scheduler: SchedulerMode::Adaptive {
            batch_above: 2,
            inline_below: 0,
        },
        result_cache_bytes: 0,
        ..ServerConfig::default()
    };
    let (_, stats) = Server::scope(&catalog, config, |handle| {
        std::thread::scope(|s| {
            // Thread A grabs the inline evaluator for a long evaluation.
            let slow = &slow_terms;
            let handle_a = &handle;
            s.spawn(move || {
                handle_a.query(slow, 0.0, Duration::from_secs(30)).unwrap();
            });
            std::thread::sleep(Duration::from_millis(5));
            // Contended admissions fall through to the queue. The first is
            // another slow query so the worker stays busy while the fast
            // ones stack up past the threshold.
            let mut pending = vec![handle
                .submit(
                    slow,
                    &QueryOptions {
                        deadline: Duration::from_secs(30),
                        ..QueryOptions::default()
                    },
                )
                .unwrap()];
            // Generous deadlines: these sit behind a multi-hundred-ms (in
            // debug builds) slow evaluation and must not expire.
            for i in 0..4u64 {
                pending.push(
                    handle
                        .submit(
                            &[i],
                            &QueryOptions {
                                deadline: Duration::from_secs(30),
                                ..QueryOptions::default()
                            },
                        )
                        .unwrap(),
                );
            }
            for p in pending {
                p.wait().unwrap();
            }
            // Load gone: wait out the flip-back cooldown (the contended
            // phase stamped the lane as live), then a sequential
            // closed-loop trickle is nothing but quiet singleton batches,
            // so the worker's quiet streak builds up and flips the lane
            // back to inline; the tail of the trickle is then served
            // inline again.
            std::thread::sleep(Duration::from_millis(400));
            for i in 0..40u64 {
                handle
                    .query(&[100 + i], 0.0, Duration::from_secs(5))
                    .unwrap();
            }
        });
    });
    let t = &stats.tiers[0];
    assert!(
        t.inline_completed >= 2,
        "quiet traffic should run inline: {t:?}"
    );
    assert!(t.batched >= 1, "contended requests should queue");
    assert!(
        t.switched_to_batch >= 1,
        "queue depth {} never tripped batching: {t:?}",
        t.max_queue_depth
    );
    assert!(
        t.switched_to_inline >= 1,
        "a sustained quiet streak never flipped back: {t:?}"
    );
    assert!(t.max_queue_depth >= 2);
    assert_eq!(t.completed, 46);
}

#[test]
fn reset_stats_opens_a_fresh_measurement_window() {
    let index = build_index(16, 20, 17);
    let catalog = Catalog::build_halving(&index, 0).unwrap();
    let terms = [(2u64 << 24) | 1, (2u64 << 24) | 3];
    let (_, stats) = Server::scope(&catalog, ServerConfig::default(), |handle| {
        handle.query(&terms, 0.0, Duration::from_secs(5)).unwrap();
        let warm = handle.stats();
        assert_eq!(warm.total_completed(), 1);
        assert!(warm.latency.count() >= 1);
        assert!(!warm.slow_queries.is_empty());
        handle.reset_stats();
        let cleared = handle.stats();
        assert_eq!(cleared.total_completed(), 0);
        assert_eq!(cleared.latency.count(), 0);
        assert!(cleared.slow_queries.is_empty());
        // The server keeps serving across the window boundary, and only
        // post-reset traffic lands in the new window.
        handle.query(&terms, 0.0, Duration::from_secs(5)).unwrap();
    });
    assert_eq!(stats.total_completed(), 1);
    assert_eq!(stats.latency.count(), 1);
}

#[test]
fn result_cache_serves_repeats_and_invalidates_on_version_bump() {
    let index = build_index(16, 20, 12);
    let catalog = Catalog::build_halving(&index, 0).unwrap();
    let terms = [(3u64 << 24) | 7, (3u64 << 24) | 9];
    let mut ctx = QueryContext::new();
    let direct = catalog
        .tier(0)
        .query_terms_with(&terms, QueryMode::Full, &mut ctx);
    let (_, stats) = Server::scope(&catalog, ServerConfig::default(), |handle| {
        let first = handle.query(&terms, 0.0, Duration::from_secs(5)).unwrap();
        assert_eq!(first.docs, direct);
        // A permuted, duplicated term list canonicalizes to the same key.
        let shuffled = [(3u64 << 24) | 9, (3u64 << 24) | 7, (3u64 << 24) | 9];
        let second = handle
            .query(&shuffled, 0.0, Duration::from_secs(5))
            .unwrap();
        assert_eq!(second.docs, direct);
        let mid = handle.stats();
        assert_eq!(mid.total_cache_hits(), 1, "repeat did not hit the cache");
        // Invalidation: the next repeat must re-evaluate, not serve stale.
        handle.invalidate_result_cache();
        let third = handle.query(&terms, 0.0, Duration::from_secs(5)).unwrap();
        assert_eq!(third.docs, direct);
    });
    assert_eq!(stats.total_completed(), 3);
    assert_eq!(stats.total_cache_hits(), 1);
    let cache = stats.cache.expect("cache enabled by default");
    assert_eq!(cache.counters.hits, 1);
    assert_eq!(cache.counters.stale, 1, "stale entry not dropped");
    assert_eq!(cache.version, 1);
    // The slow-query log saw the evaluated (non-cached) requests, worst
    // first.
    assert!(!stats.slow_queries.is_empty());
    assert!(stats
        .slow_queries
        .windows(2)
        .all(|w| w[0].total >= w[1].total));
}

#[test]
fn tcp_stats_frame_dumps_counters() {
    let index = build_index(16, 20, 13);
    let catalog = Catalog::build_halving(&index, 0).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    Server::scope(&catalog, ServerConfig::default(), |handle| {
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp(handle, listener, &stop));
            let mut client = TcpClient::connect(addr).unwrap();
            let q = [(5u64 << 24) | 1];
            client.query(&q, 0.0, Duration::from_secs(5)).unwrap();
            client.query(&q, 0.0, Duration::from_secs(5)).unwrap();
            let dump = client.stats().unwrap();
            assert!(dump.contains("tier 0:"), "missing tier line: {dump}");
            assert!(dump.contains("completed=2"), "missing counters: {dump}");
            assert!(dump.contains("cache_hits=1"), "repeat not cached: {dump}");
            assert!(dump.contains("cache: hits=1"), "missing cache line: {dump}");
            assert!(dump.contains("slow 0:"), "missing slow-query log: {dump}");
            stop.store(true, Ordering::Relaxed);
            server.join().unwrap().unwrap();
        });
    });
}

#[test]
fn stalled_mid_frame_client_does_not_block_shutdown() {
    let index = build_index(16, 10, 14);
    let catalog = Catalog::build_halving(&index, 0).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    Server::scope(&catalog, ServerConfig::default(), |handle| {
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp(handle, listener, &stop));
            // A client that promises 100 bytes, sends 10, and stalls.
            let mut stalled = TestClient::connect(addr).unwrap();
            stalled.send(&100u32.to_le_bytes()).unwrap();
            stalled.send(&[0u8; 10]).unwrap();
            // The reactor still serves others around the stalled peer.
            let mut client = TcpClient::connect(addr).unwrap();
            let reply = client
                .query(&[(2u64 << 24) | 1], 0.0, Duration::from_secs(5))
                .unwrap();
            assert!(reply.docs.contains(&2));
            let start = std::time::Instant::now();
            stop.store(true, Ordering::Relaxed);
            server.join().unwrap().unwrap();
            assert!(
                start.elapsed() < Duration::from_secs(2),
                "stalled client blocked shutdown for {:?}",
                start.elapsed()
            );
            drop(stalled);
        });
    });
}

#[test]
fn shutdown_drains_admitted_requests() {
    let index = build_index(16, 30, 9);
    let catalog = Catalog::build_halving(&index, 1).unwrap();
    let config = ServerConfig {
        max_delay: Duration::from_millis(20),
        workers_per_tier: 1,
        ..ServerConfig::default()
    };
    // Submit and *abandon* pending replies, then leave the scope: every
    // admitted request must still be drained (evaluated or expired), and
    // the scope must not hang.
    let (submitted, stats) = Server::scope(&catalog, config, |handle| {
        let mut submitted = 0u64;
        for d in 0..30u64 {
            let opts = QueryOptions {
                fpr_budget: if d % 2 == 0 { 0.0 } else { 1.0 },
                ..QueryOptions::default()
            };
            if handle.submit(&[(d << 24) | 2], &opts).is_ok() {
                submitted += 1;
            }
        }
        submitted
    });
    let drained: u64 = stats.tiers.iter().map(|t| t.completed + t.expired).sum();
    assert_eq!(drained, submitted, "shutdown dropped admitted requests");
}
