//! # rambo-server — adaptive-scheduling, multi-core serving over a fold-over tier catalog
//!
//! The paper's operational story has two halves. Construction ends with
//! "a one-time processing allows us to create several versions of RAMBO
//! with varying sizes and FP rates" (§5.3, Table 4) — the fold-over
//! catalog. Serving 170TB "at interactive speed" to many concurrent
//! clients then requires a query path that picks the right version per
//! request and keeps every core busy without re-probing shared work. This
//! crate is that serving path, std-only:
//!
//! * [`Catalog`] — several fold-over versions of one index opened
//!   **zero-copy** out of a single shared `Arc<[u8]>` buffer
//!   ([`rambo_core::Rambo::open_view_at`]), each tier annotated with its
//!   metadata-predicted per-BFU FPR and its Lemma-4.1 query FPR. A
//!   request's FPR budget routes it to the *smallest* tier that satisfies
//!   the budget: loose budgets run in the folded, cache-friendlier
//!   versions, tight budgets in the full build.
//! * [`Server`] — per-core evaluator workers (scoped threads, one
//!   zero-copy tier view each) behind bounded per-tier admission queues,
//!   under a **load-adaptive scheduler** ([`SchedulerMode`], default
//!   `Adaptive`). At low load a request is evaluated *inline* on the
//!   submitting thread — no hand-off, no wake-up. Under concurrency
//!   (inline lock contention, queue depth, or distinct threads admitting
//!   within a 10 ms window) the lane flips to **micro-batching**: workers
//!   take whatever requests are queued (up to `max_batch`, waiting at
//!   most `max_delay` for stragglers) and evaluate the batch through a
//!   tier-local [`rambo_core::QueryBatch`], so the LRU per-term
//!   bucket-mask memo and the query scratch amortize across concurrent
//!   clients — sequence workloads share most terms between adjacent
//!   requests. Hysteresis (a quiet-streak plus a live-traffic cooldown)
//!   keeps the gate from thrashing; both paths share one evaluator, so
//!   results are bit-identical either way. Backpressure is explicit
//!   ([`ServerError::Overloaded`]), deadlines are enforced on both sides
//!   of the queue, and shutdown is structural: leaving [`Server::scope`]
//!   drains and joins everything, returning a final [`ServerStats`]
//!   snapshot of per-tier latency/throughput/hit/scheduler-decision
//!   counters and the slow-query log ([`SlowQuery`]).
//! * [`ResultCache`] — a sharded, byte-bounded LRU over answered queries,
//!   keyed by `(tier, canonical term-set key)` and invalidated by a
//!   catalog version stamp: hot §3.3.1 sequence windows are answered
//!   without touching an evaluator at all.
//! * [`serve_tcp`] — an optional length-prefixed TCP front over
//!   `std::net`, with [`TcpClient`] as the matching blocking client. The
//!   listener is a single **non-blocking poll loop**: a stalled client is
//!   timed out and aborted mid-frame instead of parking a server thread,
//!   and a plain-text `STATS` frame exposes live counters. A cluster shard
//!   node registers its identity via [`ServeOptions::manifest`], served to
//!   `HELLO` requests; [`TcpClient`] carries connect/read/write timeouts
//!   and a [`TcpClient::reconnect`] path so a dead peer can never block a
//!   caller indefinitely — the building blocks of the `rambo-cluster`
//!   coordinator's connection pools.
//!
//! Every tier evaluator probes through the runtime-dispatched SIMD kernels
//! of [`rambo_core::kernel`] (re-exported here as [`KernelBackend`] /
//! [`Kernel`]): the best backend the CPU supports is selected once at
//! startup, and the `RAMBO_KERNEL` environment variable (`scalar`, `avx2`,
//! `auto`) pins one for benchmarking — no server configuration required.
//!
//! ```
//! use rambo_core::{Rambo, RamboParams};
//! use rambo_server::{Catalog, Server, ServerConfig};
//! use std::time::Duration;
//!
//! // A small index: 16 buckets, 3 repetitions.
//! let mut index = Rambo::new(RamboParams::flat(16, 3, 1 << 12, 2, 7)).unwrap();
//! for d in 0..32u64 {
//!     index
//!         .insert_document(&format!("doc{d}"), (0..50).map(|t| d << 16 | t))
//!         .unwrap();
//! }
//! // Three fold-over tiers: 16, 8 and 4 buckets.
//! let catalog = Catalog::build_halving(&index, 2).unwrap();
//! let (reply, stats) = Server::scope(&catalog, ServerConfig::default(), |handle| {
//!     handle
//!         .query(&[3 << 16 | 9], 0.0, Duration::from_secs(1))
//!         .unwrap()
//! });
//! assert!(reply.docs.contains(&3));
//! assert_eq!(reply.tier, 0); // budget 0.0 → most accurate tier
//! assert_eq!(stats.total_completed(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod catalog;
mod live;
mod resp;
mod scheduler;
mod server;
mod stats;
mod tcp;
mod tenant;

pub use cache::{CacheStats, ResultCache};
pub use catalog::{Catalog, CatalogBuilder, CatalogError, TierInfo, DEFAULT_CACHE_BYTES};
pub use live::{serve_live_tcp, LiveHandle, LiveServer, LiveStats};
pub use rambo_core::kernel::{Backend as KernelBackend, Kernel};
pub use resp::{serve_tenant_tcp, term_of, TenantServeOptions};
pub use server::{
    PendingReply, QueryOptions, QueryReply, SchedulerMode, Server, ServerConfig,
    ServerConfigBuilder, ServerError, ServerHandle,
};
pub use stats::{ServerStats, SlowQuery, TierStats};
pub use tcp::{serve_tcp, serve_tcp_with, ServeOptions, TcpClient, TcpClientError};
pub use tenant::{
    TenantError, TenantKind, TenantOptions, TenantQuotas, TenantRegistry, TenantStats,
};
