//! The serving engine: scoped per-core evaluator workers over a tier
//! catalog, with bounded admission, an adaptive inline-bypass scheduler, a
//! hot-query result cache, and an in-process query API.
//!
//! Lifecycle is scope-shaped ([`Server::scope`]): workers are scoped
//! threads borrowing the catalog (no payload duplication — each worker's
//! evaluator borrows its tier's zero-copy view), the closure receives a
//! [`ServerHandle`] to submit queries (or to pass to
//! [`crate::serve_tcp`]), and when the closure returns the intake channels
//! close, workers drain every admitted request, and the joined, quiesced
//! counters come back as a [`ServerStats`] snapshot. There is no detached
//! state to leak and no shutdown flag to forget.
//!
//! ## The adaptive scheduler
//!
//! Micro-batching pays off when the queue is busy: the per-term mask memo
//! amortizes across a batch and dispatch overhead is shared. Under light
//! load it *loses* — staging a lone request through a channel, a worker
//! wake-up and a reply channel costs more than just evaluating it. The
//! scheduler therefore tracks each lane's instantaneous queue depth: while
//! the lane is quiet, [`ServerHandle::submit`] evaluates the request
//! **inline on the admitting thread** against the tier's shared evaluator
//! (same code path, bit-identical results) and returns an already-resolved
//! [`PendingReply`]. When admission finds the queued depth at or above
//! `batch_above` (or inline-lock contention proves concurrent admissions)
//! the lane flips to batching; a worker flips it back only after a
//! sustained streak of quiet batches *and* a cooldown with no fresh proof
//! of concurrency (hysteresis, so the gate does not flap on every request).
//! [`SchedulerMode::AlwaysBatch`] pins the old behavior for comparison
//! benchmarks.

use crate::cache::ResultCache;
use crate::catalog::Catalog;
use crate::scheduler::{run_worker, BatchKnobs, LaneGate, Reply, Request, INLINE_OVERLAP_WINDOW};
use crate::stats::{ServerStats, SlowQuery, SlowQueryLog, TierCounters};
use rambo_core::{
    canonical_query_key, default_threads, DocId, GenerationConfig, QueryBatch, QueryMode,
};
use rambo_workloads::stats::LatencyHistogram;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TryRecvError, TrySendError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How the server decides between inline evaluation and micro-batching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerMode {
    /// Load-aware bypass: evaluate inline on the admitting thread while the
    /// lane is quiet; switch to greedy-drain batching when the queued depth
    /// reaches `batch_above`, and back once a worker drains the queue to
    /// `inline_below`. `inline_below < batch_above` gives the hysteresis
    /// band that keeps the gate from flapping.
    Adaptive {
        /// Flip to batching when admission observes this many queued
        /// requests.
        batch_above: usize,
        /// Flip back to inline when a worker observes the queue at or below
        /// this depth.
        inline_below: usize,
    },
    /// Always stage through the micro-batch queue (the pre-adaptive
    /// behavior; the `serve_load` bench's comparison arm).
    AlwaysBatch,
}

impl Default for SchedulerMode {
    fn default() -> Self {
        Self::Adaptive {
            batch_above: 3,
            inline_below: 0,
        }
    }
}

/// Serving configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Largest micro-batch a worker evaluates in one pass. `1` disables
    /// batching (the one-query-at-a-time baseline).
    pub max_batch: usize,
    /// How long a worker with a short batch waits for stragglers once the
    /// queue runs empty. `0` means greedy adaptive batching: evaluate
    /// whatever accumulated while the previous batch ran, never wait.
    pub max_delay: Duration,
    /// Bounded admission queue depth per tier; a full queue rejects with
    /// [`ServerError::Overloaded`] instead of buffering without limit.
    pub queue_capacity: usize,
    /// Evaluator workers per tier (defaults to the machine's available
    /// parallelism — one evaluator per core).
    pub workers_per_tier: usize,
    /// Evaluation mode for requests that do not specify one.
    pub default_mode: QueryMode,
    /// Inline-bypass vs batching policy (see [`SchedulerMode`]).
    pub scheduler: SchedulerMode,
    /// Capacity, in resident terms, of each evaluator's per-term bucket-mask
    /// memo: `None` uses the engine default (an LLC-sized byte budget, see
    /// [`rambo_core::QueryBatch::new`]); `Some(n)` pins it (clamped to at
    /// least 1, where the memo degenerates to per-request evaluation — the
    /// `serve_load` bench's one-at-a-time arm, and the right setting for
    /// memory-constrained deployments that would rather re-probe).
    pub mask_memo_terms: Option<usize>,
    /// Byte budget of the hot-query result cache; `0` disables it.
    pub result_cache_bytes: usize,
    /// Retain this many worst-latency requests in the slow-query log; `0`
    /// disables it.
    pub slow_log: usize,
    /// Memtable sealing / generation merging policy for the mutable-index
    /// server ([`crate::LiveServer`]). Ignored by the read-only catalog
    /// server.
    pub generations: GenerationConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_micros(100),
            queue_capacity: 1024,
            workers_per_tier: default_threads(),
            default_mode: QueryMode::Full,
            scheduler: SchedulerMode::default(),
            mask_memo_terms: None,
            result_cache_bytes: 16 << 20,
            slow_log: 32,
            generations: GenerationConfig::default(),
        }
    }
}

impl ServerConfig {
    /// Start a [`ServerConfigBuilder`] whose defaults are exactly
    /// [`ServerConfig::default`] — the one place to set every serving knob,
    /// including the mutable-index [`GenerationConfig`].
    #[must_use]
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder::new()
    }
}

/// Builder for [`ServerConfig`]: every scattered serving knob (scheduler
/// mode, batching, admission, caching, slow log) plus the mutable-index
/// generation policy in one place. Unset knobs keep today's defaults.
///
/// ```
/// use rambo_server::{SchedulerMode, ServerConfig};
///
/// let config = ServerConfig::builder()
///     .max_batch(32)
///     .scheduler(SchedulerMode::AlwaysBatch)
///     .result_cache_bytes(0)
///     .build();
/// assert_eq!(config.max_batch, 32);
/// assert_eq!(config.queue_capacity, ServerConfig::default().queue_capacity);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Fresh builder seeded with [`ServerConfig::default`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// See [`ServerConfig::max_batch`].
    #[must_use]
    pub fn max_batch(mut self, n: usize) -> Self {
        self.config.max_batch = n;
        self
    }

    /// See [`ServerConfig::max_delay`].
    #[must_use]
    pub fn max_delay(mut self, d: Duration) -> Self {
        self.config.max_delay = d;
        self
    }

    /// See [`ServerConfig::queue_capacity`].
    #[must_use]
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.config.queue_capacity = n;
        self
    }

    /// See [`ServerConfig::workers_per_tier`].
    #[must_use]
    pub fn workers_per_tier(mut self, n: usize) -> Self {
        self.config.workers_per_tier = n;
        self
    }

    /// See [`ServerConfig::default_mode`].
    #[must_use]
    pub fn default_mode(mut self, mode: QueryMode) -> Self {
        self.config.default_mode = mode;
        self
    }

    /// See [`ServerConfig::scheduler`].
    #[must_use]
    pub fn scheduler(mut self, mode: SchedulerMode) -> Self {
        self.config.scheduler = mode;
        self
    }

    /// See [`ServerConfig::mask_memo_terms`].
    #[must_use]
    pub fn mask_memo_terms(mut self, terms: Option<usize>) -> Self {
        self.config.mask_memo_terms = terms;
        self
    }

    /// See [`ServerConfig::result_cache_bytes`].
    #[must_use]
    pub fn result_cache_bytes(mut self, bytes: usize) -> Self {
        self.config.result_cache_bytes = bytes;
        self
    }

    /// See [`ServerConfig::slow_log`].
    #[must_use]
    pub fn slow_log(mut self, depth: usize) -> Self {
        self.config.slow_log = depth;
        self
    }

    /// See [`ServerConfig::generations`].
    #[must_use]
    pub fn generations(mut self, config: GenerationConfig) -> Self {
        self.config.generations = config;
        self
    }

    /// Finish: the assembled [`ServerConfig`].
    #[must_use]
    pub fn build(self) -> ServerConfig {
        self.config
    }
}

/// Why the server could not answer a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The selected tier's admission queue was full (backpressure): retry
    /// later, shed the request, or widen `queue_capacity`.
    Overloaded {
        /// Tier whose queue was full.
        tier: usize,
    },
    /// The deadline passed before the request was evaluated (either dropped
    /// unevaluated by a worker or timed out waiting for the reply).
    DeadlineExceeded {
        /// Tier the request was routed to.
        tier: usize,
    },
    /// An explicitly requested tier does not exist in the catalog.
    UnknownTier(usize),
    /// The server is shutting down (intake closed).
    Disconnected,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { tier } => write!(f, "tier {tier} admission queue is full"),
            Self::DeadlineExceeded { tier } => {
                write!(f, "deadline passed before tier {tier} answered")
            }
            Self::UnknownTier(tier) => write!(f, "catalog has no tier {tier}"),
            Self::Disconnected => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Per-query options for [`ServerHandle::submit`].
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Acceptable per-document false-positive rate; the request is routed to
    /// the smallest catalog tier satisfying it ([`Catalog::select`]). The
    /// default `0.0` always picks tier 0, the most accurate version.
    pub fpr_budget: f64,
    /// Give-up horizon measured from submission.
    pub deadline: Duration,
    /// Evaluation mode; `None` uses the server's default.
    pub mode: Option<QueryMode>,
    /// Bypass budget routing and hit this tier directly.
    pub tier: Option<usize>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            fpr_budget: 0.0,
            deadline: Duration::from_secs(1),
            mode: None,
            tier: None,
        }
    }
}

/// A successfully answered query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// Matching document ids, ascending (zero false negatives, per-tier
    /// false-positive rate as catalogued).
    pub docs: Vec<DocId>,
    /// The tier that evaluated the query.
    pub tier: usize,
}

/// How a [`PendingReply`] resolves: already answered at admission (inline
/// evaluation or a cache hit), or waiting on a worker's reply channel.
#[derive(Debug)]
enum PendingInner {
    /// `Some` until consumed by `wait`/`try_wait`.
    Ready(Option<Result<QueryReply, ServerError>>),
    Waiting(Receiver<Reply>),
}

/// An admitted, not-yet-consumed query result (from
/// [`ServerHandle::submit`]). Inline and cache-hit completions come back
/// already resolved; queued requests resolve when a worker answers.
#[derive(Debug)]
pub struct PendingReply {
    inner: PendingInner,
    tier: usize,
    deadline: Instant,
}

impl PendingReply {
    fn ready(result: Result<QueryReply, ServerError>, tier: usize, deadline: Instant) -> Self {
        Self {
            inner: PendingInner::Ready(Some(result)),
            tier,
            deadline,
        }
    }

    /// The tier the request was routed to.
    #[must_use]
    pub fn tier(&self) -> usize {
        self.tier
    }

    /// Block until the reply arrives or the request's deadline passes.
    ///
    /// # Errors
    /// [`ServerError::DeadlineExceeded`] on timeout or worker-side expiry,
    /// [`ServerError::Disconnected`] when the server dropped the request
    /// during shutdown.
    pub fn wait(self) -> Result<QueryReply, ServerError> {
        match self.inner {
            PendingInner::Ready(result) => result.unwrap_or(Err(ServerError::Disconnected)),
            PendingInner::Waiting(rx) => {
                let timeout = self.deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(timeout) {
                    Ok(Reply::Docs(docs)) => Ok(QueryReply {
                        docs,
                        tier: self.tier,
                    }),
                    Ok(Reply::Expired) | Err(RecvTimeoutError::Timeout) => {
                        Err(ServerError::DeadlineExceeded { tier: self.tier })
                    }
                    Err(RecvTimeoutError::Disconnected) => Err(ServerError::Disconnected),
                }
            }
        }
    }

    /// Non-blocking poll: `Some` once the result is available (at most once
    /// — the result is consumed), `None` while still pending. A pending
    /// request past its deadline resolves to
    /// [`ServerError::DeadlineExceeded`]. This is what lets the TCP
    /// reactor multiplex many in-flight requests on one thread.
    pub fn try_wait(&mut self) -> Option<Result<QueryReply, ServerError>> {
        match &mut self.inner {
            PendingInner::Ready(slot) => slot.take(),
            PendingInner::Waiting(rx) => {
                let resolved = match rx.try_recv() {
                    Ok(Reply::Docs(docs)) => Ok(QueryReply {
                        docs,
                        tier: self.tier,
                    }),
                    Ok(Reply::Expired) => Err(ServerError::DeadlineExceeded { tier: self.tier }),
                    Err(TryRecvError::Empty) => {
                        if Instant::now() >= self.deadline {
                            Err(ServerError::DeadlineExceeded { tier: self.tier })
                        } else {
                            return None;
                        }
                    }
                    Err(TryRecvError::Disconnected) => Err(ServerError::Disconnected),
                };
                // Consumed: later polls report nothing new.
                self.inner = PendingInner::Ready(None);
                Some(resolved)
            }
        }
    }
}

/// One tier's intake lane as seen by the handle.
struct Lane<'env> {
    tx: SyncSender<Request>,
    counters: &'env TierCounters,
    gate: &'env LaneGate,
    /// The tier's shared inline evaluator. `try_lock` contention simply
    /// falls through to the queue — the bypass must never block admission.
    inline: &'env Mutex<QueryBatch<'env>>,
}

/// A nonzero identity for the calling thread, cheap enough for the admission
/// hot path: the address of a thread-local byte. Distinct per live thread;
/// an address may be reused after a thread exits, which at worst delays one
/// overlap detection (see [`INLINE_OVERLAP_WINDOW`]).
fn admit_token() -> u64 {
    thread_local! {
        static TOKEN: u8 = const { 0 };
    }
    TOKEN.with(|t| std::ptr::from_ref(t) as u64)
}

/// The in-process client surface of a running server. `Sync`: any number of
/// threads may submit queries through one handle (the TCP front does).
pub struct ServerHandle<'env> {
    catalog: &'env Catalog,
    lanes: Vec<Lane<'env>>,
    default_mode: QueryMode,
    scheduler: SchedulerMode,
    cache: Option<&'env ResultCache>,
    slow: &'env SlowQueryLog,
    /// Server start instant; `LaneGate::last_live` stamps are nanoseconds
    /// since this epoch.
    epoch: Instant,
}

impl<'env> ServerHandle<'env> {
    /// The catalog being served.
    #[must_use]
    pub fn catalog(&self) -> &'env Catalog {
        self.catalog
    }

    /// Submit a query without blocking for its answer.
    ///
    /// Under the adaptive scheduler a quiet lane evaluates the query inline
    /// (or answers it from the result cache) and returns an
    /// already-resolved [`PendingReply`]; a busy lane stages it through the
    /// micro-batch queue.
    ///
    /// # Errors
    /// [`ServerError::Overloaded`] when the routed tier's queue is full,
    /// [`ServerError::UnknownTier`] for an out-of-range explicit tier,
    /// [`ServerError::Disconnected`] during shutdown.
    pub fn submit(&self, terms: &[u64], opts: &QueryOptions) -> Result<PendingReply, ServerError> {
        let tier = match opts.tier {
            Some(t) if t < self.lanes.len() => t,
            Some(t) => return Err(ServerError::UnknownTier(t)),
            None => self.catalog.select(opts.fpr_budget),
        };
        let lane = &self.lanes[tier];
        let submitted = Instant::now();
        let deadline = submitted + opts.deadline;
        let mode = opts.mode.unwrap_or(self.default_mode);

        // Result-cache probe. The version stamp is read *before* lookup and
        // evaluation and travels with the request, so a catalog-version bump
        // racing a slow evaluation invalidates the eventual insert.
        let (key, version) = match self.cache {
            Some(cache) => {
                let key = canonical_query_key(terms);
                let version = cache.version();
                if let Some(docs) = cache.get(tier as u32, key, version) {
                    lane.counters
                        .hits
                        .fetch_add(docs.len() as u64, Ordering::Relaxed);
                    lane.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    lane.counters.completed.fetch_add(1, Ordering::Relaxed);
                    lane.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    lane.counters.latency.record(submitted.elapsed());
                    return Ok(PendingReply::ready(
                        Ok(QueryReply { docs, tier }),
                        tier,
                        deadline,
                    ));
                }
                cache.record_miss();
                (key, version)
            }
            None => (0, 0),
        };

        // Adaptive bypass: while the lane is quiet, evaluate inline on this
        // thread. Lock contention (another thread mid-inline-evaluation)
        // flips the lane to batching and falls through to the queue: inline
        // admissions serialize on this one mutex anyway, so batching loses
        // no parallelism under contention — and contention is a far earlier
        // (and at low client counts, the only reachable) load signal than
        // the queue-depth threshold.
        if matches!(self.scheduler, SchedulerMode::Adaptive { .. }) {
            // Concurrency is also proven by *who* is admitting: admissions
            // from two different threads inside a short window mean at
            // least two live clients, even if the inline lock never
            // contends. On a single-core host concurrent clients execute
            // serialized — each one's try_lock succeeds in turn — so
            // without this check a fully loaded lane could stay inline
            // until a preemption happens to land mid-evaluation. The check
            // runs on *every* adaptive admission (not just inline ones):
            // while batching it refreshes the liveness stamp, so a lane
            // with two live clients never drifts back to inline on quiet
            // singleton batches alone, only to flip again two requests
            // later through a cold inline evaluator.
            let token = admit_token();
            let now_ns = self.epoch.elapsed().as_nanos() as u64;
            let prev_token = lane.gate.last_admit_token.swap(token, Ordering::AcqRel);
            let prev_ns = lane.gate.last_admit_ns.swap(now_ns, Ordering::AcqRel);
            let overlapping = prev_token != 0
                && prev_token != token
                && now_ns.saturating_sub(prev_ns) < INLINE_OVERLAP_WINDOW.as_nanos() as u64;
            if overlapping {
                lane.gate.last_live.store(now_ns, Ordering::Release);
            }
            if lane.gate.batching.load(Ordering::Acquire) {
                // Fall through to the queue path below.
            } else if overlapping {
                if !lane.gate.batching.swap(true, Ordering::AcqRel) {
                    lane.counters
                        .switched_to_batch
                        .fetch_add(1, Ordering::Relaxed);
                }
            } else if let Ok(mut evaluator) = lane.inline.try_lock() {
                lane.counters.accepted.fetch_add(1, Ordering::Relaxed);
                if Instant::now() >= deadline {
                    lane.counters.expired.fetch_add(1, Ordering::Relaxed);
                    return Ok(PendingReply::ready(
                        Err(ServerError::DeadlineExceeded { tier }),
                        tier,
                        deadline,
                    ));
                }
                let eval_start = Instant::now();
                let docs = evaluator.query_terms(terms, mode);
                drop(evaluator);
                let eval = eval_start.elapsed();
                let total = submitted.elapsed();
                lane.counters
                    .hits
                    .fetch_add(docs.len() as u64, Ordering::Relaxed);
                lane.counters.completed.fetch_add(1, Ordering::Relaxed);
                lane.counters.inline.fetch_add(1, Ordering::Relaxed);
                lane.counters.latency.record(total);
                self.slow.record(SlowQuery {
                    tier,
                    terms: terms.len(),
                    queue_wait: Duration::ZERO,
                    eval,
                    total,
                    batched: false,
                });
                if let Some(cache) = self.cache {
                    cache.insert(tier as u32, key, version, &docs);
                }
                return Ok(PendingReply::ready(
                    Ok(QueryReply { docs, tier }),
                    tier,
                    deadline,
                ));
            } else {
                lane.gate
                    .last_live
                    .store(self.epoch.elapsed().as_nanos() as u64, Ordering::Release);
                if !lane.gate.batching.swap(true, Ordering::AcqRel) {
                    lane.counters
                        .switched_to_batch
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // Queue path. The depth gauge is incremented *before* the send so a
        // worker's decrement can never land first and wrap it; send failure
        // undoes the increment.
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let request = Request {
            terms: terms.to_vec(),
            mode,
            deadline,
            submitted,
            key,
            version,
            reply: reply_tx,
        };
        let depth = lane.gate.queued.fetch_add(1, Ordering::AcqRel) + 1;
        match lane.tx.try_send(request) {
            Ok(()) => {
                lane.counters.accepted.fetch_add(1, Ordering::Relaxed);
                lane.counters
                    .queue_depth_max
                    .fetch_max(depth, Ordering::Relaxed);
                if let SchedulerMode::Adaptive { batch_above, .. } = self.scheduler {
                    if depth >= batch_above as u64 {
                        lane.gate
                            .last_live
                            .store(self.epoch.elapsed().as_nanos() as u64, Ordering::Release);
                        if !lane.gate.batching.swap(true, Ordering::AcqRel) {
                            lane.counters
                                .switched_to_batch
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Ok(PendingReply {
                    inner: PendingInner::Waiting(reply_rx),
                    tier,
                    deadline,
                })
            }
            Err(TrySendError::Full(_)) => {
                lane.gate.queued.fetch_sub(1, Ordering::AcqRel);
                lane.counters.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServerError::Overloaded { tier })
            }
            Err(TrySendError::Disconnected(_)) => {
                lane.gate.queued.fetch_sub(1, Ordering::AcqRel);
                Err(ServerError::Disconnected)
            }
        }
    }

    /// Submit and block for the answer: route by `fpr_budget`, wait at most
    /// `deadline`.
    ///
    /// # Errors
    /// See [`ServerHandle::submit`] and [`PendingReply::wait`].
    pub fn query(
        &self,
        terms: &[u64],
        fpr_budget: f64,
        deadline: Duration,
    ) -> Result<QueryReply, ServerError> {
        self.query_opts(
            terms,
            &QueryOptions {
                fpr_budget,
                deadline,
                ..QueryOptions::default()
            },
        )
    }

    /// [`ServerHandle::query`] with full per-query options.
    ///
    /// # Errors
    /// See [`ServerHandle::submit`] and [`PendingReply::wait`].
    pub fn query_opts(
        &self,
        terms: &[u64],
        opts: &QueryOptions,
    ) -> Result<QueryReply, ServerError> {
        self.submit(terms, opts)?.wait()
    }

    /// Invalidate every result-cache entry (O(1) version bump). Call after
    /// swapping or re-building the catalog contents. No-op when the cache
    /// is disabled.
    pub fn invalidate_result_cache(&self) {
        if let Some(cache) = self.cache {
            cache.bump_version();
        }
    }

    /// Zero the per-tier counters, latency histograms and slow-query log —
    /// a monitoring-window boundary (steady-state benchmark start after
    /// warmup, or a periodic scrape). Scheduler gate state, evaluator memos
    /// and the result cache (whose counters are cumulative by design, see
    /// [`crate::cache::CacheStats`]) are untouched: the point of a window
    /// boundary is fresh *measurements* of the same warmed server.
    pub fn reset_stats(&self) {
        for lane in &self.lanes {
            lane.counters.clear();
        }
        self.slow.clear();
    }

    /// The result cache, when enabled (tests and diagnostics).
    #[must_use]
    pub fn result_cache(&self) -> Option<&'env ResultCache> {
        self.cache
    }

    /// Snapshot of the per-tier counters, slow-query log and cache counters
    /// (safe while serving; counts may trail in-flight work by a few
    /// relaxed stores).
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let latency = LatencyHistogram::new();
        for lane in &self.lanes {
            latency.merge(&lane.counters.latency);
        }
        ServerStats {
            tiers: self
                .lanes
                .iter()
                .enumerate()
                .map(|(t, lane)| {
                    lane.counters
                        .snapshot(self.catalog.info(t), self.catalog.block_cache_stats(t))
                })
                .collect(),
            slow_queries: self.slow.snapshot(),
            cache: self.cache.map(ResultCache::stats),
            latency,
        }
    }
}

/// The serving engine. See [`Server::scope`].
pub struct Server;

impl Server {
    /// Run a server over `catalog` for the duration of `f`.
    ///
    /// Spawns `workers_per_tier` scoped evaluator threads per catalog tier
    /// (each borrowing its tier's zero-copy view), hands `f` a
    /// [`ServerHandle`], and on return closes the intakes, lets the workers
    /// drain every admitted request, joins them, and returns `f`'s output
    /// together with the final [`ServerStats`].
    ///
    /// # Panics
    /// Panics if `max_batch`, `queue_capacity` or `workers_per_tier` is
    /// zero, or if a worker thread panics.
    pub fn scope<T>(
        catalog: &Catalog,
        config: ServerConfig,
        f: impl FnOnce(&ServerHandle<'_>) -> T,
    ) -> (T, ServerStats) {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(
            config.queue_capacity >= 1,
            "queue_capacity must be at least 1"
        );
        assert!(
            config.workers_per_tier >= 1,
            "workers_per_tier must be at least 1"
        );
        let knobs = BatchKnobs {
            max_batch: config.max_batch,
            max_delay: config.max_delay,
            inline_below: match config.scheduler {
                SchedulerMode::Adaptive { inline_below, .. } => Some(inline_below),
                SchedulerMode::AlwaysBatch => None,
            },
            memo_terms: config.mask_memo_terms,
            batch_above: match config.scheduler {
                SchedulerMode::Adaptive { batch_above, .. } => batch_above,
                SchedulerMode::AlwaysBatch => 0,
            },
        };
        let make_evaluator = |index| match config.mask_memo_terms {
            None => QueryBatch::new(index),
            Some(n) => QueryBatch::with_mask_capacity(index, n),
        };
        let counters: Vec<TierCounters> = (0..catalog.len()).map(|_| TierCounters::new()).collect();
        // Always-batch lanes start (and stay) gated closed; adaptive lanes
        // start open for inline bypass.
        let gates: Vec<LaneGate> = (0..catalog.len())
            .map(|_| LaneGate::new(matches!(config.scheduler, SchedulerMode::AlwaysBatch)))
            .collect();
        let inline_evaluators: Vec<Mutex<QueryBatch<'_>>> = (0..catalog.len())
            .map(|t| Mutex::new(make_evaluator(catalog.tier(t))))
            .collect();
        let cache =
            (config.result_cache_bytes > 0).then(|| ResultCache::new(config.result_cache_bytes));
        let slow = SlowQueryLog::new(config.slow_log);
        let mut intakes = Vec::with_capacity(catalog.len());
        let mut receivers = Vec::with_capacity(catalog.len());
        for _ in 0..catalog.len() {
            let (tx, rx) = mpsc::sync_channel::<Request>(config.queue_capacity);
            intakes.push(tx);
            receivers.push(Mutex::new(rx));
        }
        let epoch = Instant::now();
        let out = std::thread::scope(|scope| {
            for (tier, intake) in receivers.iter().enumerate() {
                let index = catalog.tier(tier);
                let tier_counters = &counters[tier];
                let gate = &gates[tier];
                let cache = cache.as_ref();
                let slow = &slow;
                for w in 0..config.workers_per_tier {
                    std::thread::Builder::new()
                        .name(format!("rambo-serve-t{tier}-w{w}"))
                        .spawn_scoped(scope, move || {
                            run_worker(
                                tier,
                                index,
                                intake,
                                knobs,
                                tier_counters,
                                gate,
                                cache,
                                slow,
                                epoch,
                            );
                        })
                        .expect("spawn evaluator worker");
                }
            }
            let handle = ServerHandle {
                catalog,
                lanes: intakes
                    .into_iter()
                    .zip(counters.iter().zip(gates.iter().zip(&inline_evaluators)))
                    .map(|(tx, (counters, (gate, inline)))| Lane {
                        tx,
                        counters,
                        gate,
                        inline,
                    })
                    .collect(),
                default_mode: config.default_mode,
                scheduler: config.scheduler,
                cache: cache.as_ref(),
                slow: &slow,
                epoch,
            };
            // `handle` (and with it every intake sender) drops here, which
            // disconnects the lanes; workers drain and exit, and the scope
            // joins them before returning.
            f(&handle)
        });
        let latency = LatencyHistogram::new();
        for c in &counters {
            latency.merge(&c.latency);
        }
        let stats = ServerStats {
            tiers: counters
                .iter()
                .enumerate()
                .map(|(t, c)| c.snapshot(catalog.info(t), catalog.block_cache_stats(t)))
                .collect(),
            slow_queries: slow.snapshot(),
            cache: cache.as_ref().map(ResultCache::stats),
            latency,
        };
        (out, stats)
    }
}
