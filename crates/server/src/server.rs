//! The serving engine: scoped per-core evaluator workers over a tier
//! catalog, with bounded admission and an in-process query API.
//!
//! Lifecycle is scope-shaped ([`Server::scope`]): workers are scoped
//! threads borrowing the catalog (no payload duplication — each worker's
//! evaluator borrows its tier's zero-copy view), the closure receives a
//! [`ServerHandle`] to submit queries (or to pass to
//! [`crate::serve_tcp`]), and when the closure returns the intake channels
//! close, workers drain every admitted request, and the joined, quiesced
//! counters come back as a [`ServerStats`] snapshot. There is no detached
//! state to leak and no shutdown flag to forget.

use crate::catalog::Catalog;
use crate::scheduler::{run_worker, BatchKnobs, Reply, Request};
use crate::stats::{ServerStats, TierCounters};
use rambo_core::{default_threads, DocId, QueryMode};
use std::fmt;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serving configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Largest micro-batch a worker evaluates in one pass. `1` disables
    /// batching (the one-query-at-a-time baseline).
    pub max_batch: usize,
    /// How long a worker with a short batch waits for stragglers once the
    /// queue runs empty. `0` means greedy adaptive batching: evaluate
    /// whatever accumulated while the previous batch ran, never wait.
    pub max_delay: Duration,
    /// Bounded admission queue depth per tier; a full queue rejects with
    /// [`ServerError::Overloaded`] instead of buffering without limit.
    pub queue_capacity: usize,
    /// Evaluator workers per tier (defaults to the machine's available
    /// parallelism — one evaluator per core).
    pub workers_per_tier: usize,
    /// Evaluation mode for requests that do not specify one.
    pub default_mode: QueryMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_micros(100),
            queue_capacity: 1024,
            workers_per_tier: default_threads(),
            default_mode: QueryMode::Full,
        }
    }
}

/// Why the server could not answer a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The selected tier's admission queue was full (backpressure): retry
    /// later, shed the request, or widen `queue_capacity`.
    Overloaded {
        /// Tier whose queue was full.
        tier: usize,
    },
    /// The deadline passed before the request was evaluated (either dropped
    /// unevaluated by a worker or timed out waiting for the reply).
    DeadlineExceeded {
        /// Tier the request was routed to.
        tier: usize,
    },
    /// An explicitly requested tier does not exist in the catalog.
    UnknownTier(usize),
    /// The server is shutting down (intake closed).
    Disconnected,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { tier } => write!(f, "tier {tier} admission queue is full"),
            Self::DeadlineExceeded { tier } => {
                write!(f, "deadline passed before tier {tier} answered")
            }
            Self::UnknownTier(tier) => write!(f, "catalog has no tier {tier}"),
            Self::Disconnected => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Per-query options for [`ServerHandle::submit`].
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Acceptable per-document false-positive rate; the request is routed to
    /// the smallest catalog tier satisfying it ([`Catalog::select`]). The
    /// default `0.0` always picks tier 0, the most accurate version.
    pub fpr_budget: f64,
    /// Give-up horizon measured from submission.
    pub deadline: Duration,
    /// Evaluation mode; `None` uses the server's default.
    pub mode: Option<QueryMode>,
    /// Bypass budget routing and hit this tier directly.
    pub tier: Option<usize>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            fpr_budget: 0.0,
            deadline: Duration::from_secs(1),
            mode: None,
            tier: None,
        }
    }
}

/// A successfully answered query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// Matching document ids, ascending (zero false negatives, per-tier
    /// false-positive rate as catalogued).
    pub docs: Vec<DocId>,
    /// The tier that evaluated the query.
    pub tier: usize,
}

/// An admitted, not-yet-answered query (from [`ServerHandle::submit`]).
#[derive(Debug)]
pub struct PendingReply {
    rx: Receiver<Reply>,
    tier: usize,
    deadline: Instant,
}

impl PendingReply {
    /// The tier the request was routed to.
    #[must_use]
    pub fn tier(&self) -> usize {
        self.tier
    }

    /// Block until the reply arrives or the request's deadline passes.
    ///
    /// # Errors
    /// [`ServerError::DeadlineExceeded`] on timeout or worker-side expiry,
    /// [`ServerError::Disconnected`] when the server dropped the request
    /// during shutdown.
    pub fn wait(self) -> Result<QueryReply, ServerError> {
        let timeout = self.deadline.saturating_duration_since(Instant::now());
        match self.rx.recv_timeout(timeout) {
            Ok(Reply::Docs(docs)) => Ok(QueryReply {
                docs,
                tier: self.tier,
            }),
            Ok(Reply::Expired) | Err(RecvTimeoutError::Timeout) => {
                Err(ServerError::DeadlineExceeded { tier: self.tier })
            }
            Err(RecvTimeoutError::Disconnected) => Err(ServerError::Disconnected),
        }
    }
}

/// One tier's intake lane as seen by the handle.
struct Lane<'env> {
    tx: SyncSender<Request>,
    counters: &'env TierCounters,
}

/// The in-process client surface of a running server. `Sync`: any number of
/// threads may submit queries through one handle (the TCP front does).
pub struct ServerHandle<'env> {
    catalog: &'env Catalog,
    lanes: Vec<Lane<'env>>,
    default_mode: QueryMode,
}

impl<'env> ServerHandle<'env> {
    /// The catalog being served.
    #[must_use]
    pub fn catalog(&self) -> &'env Catalog {
        self.catalog
    }

    /// Submit a query without blocking for its answer.
    ///
    /// # Errors
    /// [`ServerError::Overloaded`] when the routed tier's queue is full,
    /// [`ServerError::UnknownTier`] for an out-of-range explicit tier,
    /// [`ServerError::Disconnected`] during shutdown.
    pub fn submit(&self, terms: &[u64], opts: &QueryOptions) -> Result<PendingReply, ServerError> {
        let tier = match opts.tier {
            Some(t) if t < self.lanes.len() => t,
            Some(t) => return Err(ServerError::UnknownTier(t)),
            None => self.catalog.select(opts.fpr_budget),
        };
        let lane = &self.lanes[tier];
        let submitted = Instant::now();
        let deadline = submitted + opts.deadline;
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let request = Request {
            terms: terms.to_vec(),
            mode: opts.mode.unwrap_or(self.default_mode),
            deadline,
            submitted,
            reply: reply_tx,
        };
        match lane.tx.try_send(request) {
            Ok(()) => {
                lane.counters
                    .accepted
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Ok(PendingReply {
                    rx: reply_rx,
                    tier,
                    deadline,
                })
            }
            Err(TrySendError::Full(_)) => {
                lane.counters
                    .rejected
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Err(ServerError::Overloaded { tier })
            }
            Err(TrySendError::Disconnected(_)) => Err(ServerError::Disconnected),
        }
    }

    /// Submit and block for the answer: route by `fpr_budget`, wait at most
    /// `deadline`.
    ///
    /// # Errors
    /// See [`ServerHandle::submit`] and [`PendingReply::wait`].
    pub fn query(
        &self,
        terms: &[u64],
        fpr_budget: f64,
        deadline: Duration,
    ) -> Result<QueryReply, ServerError> {
        self.query_opts(
            terms,
            &QueryOptions {
                fpr_budget,
                deadline,
                ..QueryOptions::default()
            },
        )
    }

    /// [`ServerHandle::query`] with full per-query options.
    ///
    /// # Errors
    /// See [`ServerHandle::submit`] and [`PendingReply::wait`].
    pub fn query_opts(
        &self,
        terms: &[u64],
        opts: &QueryOptions,
    ) -> Result<QueryReply, ServerError> {
        self.submit(terms, opts)?.wait()
    }

    /// Snapshot of the per-tier counters (safe while serving; counts may
    /// trail in-flight work by a few relaxed stores).
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            tiers: self
                .lanes
                .iter()
                .enumerate()
                .map(|(t, lane)| lane.counters.snapshot(self.catalog.info(t)))
                .collect(),
        }
    }
}

/// The serving engine. See [`Server::scope`].
pub struct Server;

impl Server {
    /// Run a server over `catalog` for the duration of `f`.
    ///
    /// Spawns `workers_per_tier` scoped evaluator threads per catalog tier
    /// (each borrowing its tier's zero-copy view), hands `f` a
    /// [`ServerHandle`], and on return closes the intakes, lets the workers
    /// drain every admitted request, joins them, and returns `f`'s output
    /// together with the final [`ServerStats`].
    ///
    /// # Panics
    /// Panics if `max_batch`, `queue_capacity` or `workers_per_tier` is
    /// zero, or if a worker thread panics.
    pub fn scope<T>(
        catalog: &Catalog,
        config: ServerConfig,
        f: impl FnOnce(&ServerHandle<'_>) -> T,
    ) -> (T, ServerStats) {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(
            config.queue_capacity >= 1,
            "queue_capacity must be at least 1"
        );
        assert!(
            config.workers_per_tier >= 1,
            "workers_per_tier must be at least 1"
        );
        let knobs = BatchKnobs {
            max_batch: config.max_batch,
            max_delay: config.max_delay,
        };
        let counters: Vec<TierCounters> = (0..catalog.len()).map(|_| TierCounters::new()).collect();
        let mut intakes = Vec::with_capacity(catalog.len());
        let mut receivers = Vec::with_capacity(catalog.len());
        for _ in 0..catalog.len() {
            let (tx, rx) = mpsc::sync_channel::<Request>(config.queue_capacity);
            intakes.push(tx);
            receivers.push(Mutex::new(rx));
        }
        let out = std::thread::scope(|scope| {
            for (tier, intake) in receivers.iter().enumerate() {
                let index = catalog.tier(tier);
                let tier_counters = &counters[tier];
                for w in 0..config.workers_per_tier {
                    std::thread::Builder::new()
                        .name(format!("rambo-serve-t{tier}-w{w}"))
                        .spawn_scoped(scope, move || {
                            run_worker(index, intake, knobs, tier_counters);
                        })
                        .expect("spawn evaluator worker");
                }
            }
            let handle = ServerHandle {
                catalog,
                lanes: intakes
                    .into_iter()
                    .zip(&counters)
                    .map(|(tx, counters)| Lane { tx, counters })
                    .collect(),
                default_mode: config.default_mode,
            };
            // `handle` (and with it every intake sender) drops here, which
            // disconnects the lanes; workers drain and exit, and the scope
            // joins them before returning.
            f(&handle)
        });
        let stats = ServerStats {
            tiers: counters
                .iter()
                .enumerate()
                .map(|(t, c)| c.snapshot(catalog.info(t)))
                .collect(),
        };
        (out, stats)
    }
}
