//! Hot-query result cache: a sharded, byte-bounded LRU over answered
//! queries, invalidated by a catalog version stamp.
//!
//! Sequence workloads (§3.3.1) re-issue the same window queries from many
//! clients; re-probing `B×R` filters for a term set the server answered
//! microseconds ago is pure waste. Entries are keyed by
//! `(tier, canonical term-set key)` — the key is
//! [`rambo_core::canonical_query_key`], order- and multiplicity-insensitive,
//! so permuted or duplicated term lists hit the same entry. Evaluation mode
//! is deliberately *not* part of the key: `Full` and `Sparse` are
//! result-identical by construction (Algorithm 2 ∩/∪ semantics; asserted in
//! the serve tests), so either mode may consume a hit produced by the other.
//!
//! The cache is sized in **bytes, not entries** — one broad-tier hit list
//! can outweigh a thousand point lookups — and reuses the intrusive-LRU
//! shape proven in `QueryBatch`'s mask memo: a [`FastMap`] indexes into a
//! slot arena that doubles as a doubly-linked recency list, so hit, insert
//! and evict are all O(1) under one short shard lock.
//!
//! Invalidation is O(1): [`ResultCache::bump_version`] increments an atomic
//! stamp; entries carry the version current when their query was *admitted*
//! (not when its evaluation finished, so a bump racing a slow evaluation can
//! never be masked), and a lookup that finds a stale entry removes it and
//! reports a miss. Stale entries that are never touched again age out
//! through the LRU tail like any cold entry.

use rambo_core::DocId;
use rambo_hash::FastMap;
use rambo_workloads::{CacheSnapshot, CacheTelemetry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sentinel link for the intrusive LRU lists.
const NIL: u32 = u32::MAX;

/// Lock shards. Eight is plenty: the critical section is a hash probe plus
/// a few link writes, and admission concurrency is bounded by core count.
const SHARDS: usize = 8;

/// Accounting overhead charged per resident entry on top of its doc-id
/// payload: key, version stamp, LRU links and the map slot.
const ENTRY_OVERHEAD_BYTES: usize = 64;

/// One cached result with its LRU links.
struct Slot {
    tier: u32,
    key: u128,
    version: u64,
    docs: Box<[DocId]>,
    bytes: usize,
    prev: u32,
    next: u32,
}

/// One lock shard: an intrusive-LRU arena with a byte budget.
struct Shard {
    map: FastMap<(u32, u128), u32>,
    slots: Vec<Slot>,
    /// Recycled arena indices (stale removals / evictions free slots).
    free: Vec<u32>,
    head: u32,
    tail: u32,
    bytes: usize,
}

impl Shard {
    fn new() -> Self {
        Self {
            map: FastMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn unlink(&mut self, s: u32) {
        let (prev, next) = (self.slots[s as usize].prev, self.slots[s as usize].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    fn push_front(&mut self, s: u32) {
        self.slots[s as usize].prev = NIL;
        self.slots[s as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = s;
        }
        self.head = s;
        if self.tail == NIL {
            self.tail = s;
        }
    }

    /// Unlink + unmap + free a slot, returning its payload bytes.
    fn remove(&mut self, s: u32) -> usize {
        self.unlink(s);
        let slot = &mut self.slots[s as usize];
        self.map.remove(&(slot.tier, slot.key));
        slot.docs = Box::new([]);
        let bytes = slot.bytes;
        self.bytes -= bytes;
        self.free.push(s);
        bytes
    }
}

/// Point-in-time view of a [`ResultCache`]: counters, byte budget and the
/// current invalidation version.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Hit/miss/insert/evict/stale counters and the resident-byte gauge.
    pub counters: CacheSnapshot,
    /// Configured byte budget across all shards.
    pub capacity_bytes: u64,
    /// Invalidation stamp at snapshot time (starts at 0, +1 per
    /// [`ResultCache::bump_version`]).
    pub version: u64,
}

impl CacheStats {
    /// Hits over total lookups; 0.0 when no lookups happened.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        self.counters.hit_ratio()
    }
}

/// Sharded, byte-bounded, version-invalidated LRU of answered queries.
///
/// All methods take `&self`; sharded `Mutex`es make it safe to probe from
/// every admission thread and insert from every worker concurrently.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget (total / SHARDS).
    shard_cap: usize,
    version: AtomicU64,
    telemetry: CacheTelemetry,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("capacity_bytes", &(self.shard_cap * SHARDS))
            .field("version", &self.version.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ResultCache {
    /// A cache holding at most ~`capacity_bytes` of result payload
    /// (apportioned evenly across lock shards; floored so every shard can
    /// hold at least one small entry).
    #[must_use]
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            shard_cap: (capacity_bytes / SHARDS).max(ENTRY_OVERHEAD_BYTES),
            version: AtomicU64::new(0),
            telemetry: CacheTelemetry::new(),
        }
    }

    /// The current invalidation stamp. Read it **before** looking up or
    /// evaluating; pass the same value to [`ResultCache::get`] /
    /// [`ResultCache::insert`] so a bump racing the evaluation invalidates
    /// the entry rather than being masked by it.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Invalidate every cached result in O(1): bump the stamp so existing
    /// entries fail their version check on next touch (and age out of the
    /// LRU otherwise). Call after re-opening / swapping the catalog.
    pub fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::Release);
    }

    fn shard_of(&self, tier: u32, key: u128) -> &Mutex<Shard> {
        // The key is two mix64 images — its low bits are already uniform.
        let h = (key as u64) ^ ((key >> 64) as u64).rotate_left(17) ^ u64::from(tier);
        &self.shards[(h as usize) & (SHARDS - 1)]
    }

    /// Look up a cached result, bumping it to most-recently-used. A hit
    /// whose stamp differs from `version` is removed, counted stale, and
    /// reported as a miss — the cache never serves across a version bump.
    #[must_use]
    pub fn get(&self, tier: u32, key: u128, version: u64) -> Option<Vec<DocId>> {
        let mut shard = self.shard_of(tier, key).lock().expect("cache shard");
        let s = *shard.map.get(&(tier, key))?;
        if shard.slots[s as usize].version != version {
            let bytes = shard.remove(s);
            self.telemetry.record_stale(bytes as u64);
            return None;
        }
        if shard.head != s {
            shard.unlink(s);
            shard.push_front(s);
        }
        self.telemetry.record_hit();
        Some(shard.slots[s as usize].docs.to_vec())
    }

    /// Count a lookup that fell through to evaluation. (Kept separate from
    /// [`ResultCache::get`] so a `None` caused by a disabled probe path is
    /// not miscounted.)
    pub fn record_miss(&self) {
        self.telemetry.record_miss();
    }

    /// Insert an answered query, evicting least-recently-used entries until
    /// the shard fits its budget. `version` must be the stamp read at
    /// admission. Oversized results (larger than a whole shard) and
    /// downgrades (an entry for the key already carries a newer stamp) are
    /// skipped.
    pub fn insert(&self, tier: u32, key: u128, version: u64, docs: &[DocId]) {
        let bytes = std::mem::size_of_val(docs) + ENTRY_OVERHEAD_BYTES;
        if bytes > self.shard_cap {
            return;
        }
        let mut shard = self.shard_of(tier, key).lock().expect("cache shard");
        if let Some(&s) = shard.map.get(&(tier, key)) {
            if shard.slots[s as usize].version > version {
                return;
            }
            let freed = shard.remove(s);
            self.telemetry.record_evict(freed as u64);
        }
        while shard.bytes + bytes > self.shard_cap {
            let victim = shard.tail;
            debug_assert_ne!(victim, NIL, "budget admits at least one entry");
            let freed = shard.remove(victim);
            self.telemetry.record_evict(freed as u64);
        }
        let s = if let Some(s) = shard.free.pop() {
            let slot = &mut shard.slots[s as usize];
            slot.tier = tier;
            slot.key = key;
            slot.version = version;
            slot.docs = docs.into();
            slot.bytes = bytes;
            s
        } else {
            let s = u32::try_from(shard.slots.len()).expect("cache slots exceed u32");
            shard.slots.push(Slot {
                tier,
                key,
                version,
                docs: docs.into(),
                bytes,
                prev: NIL,
                next: NIL,
            });
            s
        };
        shard.map.insert((tier, key), s);
        shard.push_front(s);
        shard.bytes += bytes;
        self.telemetry.record_insert(bytes as u64);
    }

    /// Counter snapshot plus capacity and the current version stamp.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            counters: self.telemetry.snapshot(),
            capacity_bytes: (self.shard_cap * SHARDS) as u64,
            version: self.version.load(Ordering::Relaxed),
        }
    }

    /// Resident entries across all shards (tests/diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").map.len())
            .sum()
    }

    /// True when no entries are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambo_core::canonical_query_key;

    fn key(terms: &[u64]) -> u128 {
        canonical_query_key(terms)
    }

    #[test]
    fn hit_returns_inserted_docs_and_counts() {
        let cache = ResultCache::new(1 << 16);
        let k = key(&[1, 2, 3]);
        let v = cache.version();
        assert!(cache.get(0, k, v).is_none());
        cache.record_miss();
        cache.insert(0, k, v, &[7, 9]);
        assert_eq!(cache.get(0, k, v), Some(vec![7, 9]));
        // Same terms, different tier: distinct entry.
        assert!(cache.get(1, k, v).is_none());
        let s = cache.stats();
        assert_eq!(s.counters.hits, 1);
        assert_eq!(s.counters.misses, 1);
        assert_eq!(s.counters.insertions, 1);
        assert!(s.counters.bytes > 0);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bump_version_invalidates_without_serving_stale() {
        let cache = ResultCache::new(1 << 16);
        let k = key(&[10, 20]);
        let v0 = cache.version();
        cache.insert(0, k, v0, &[1]);
        cache.bump_version();
        let v1 = cache.version();
        assert_eq!(v1, v0 + 1);
        // The stale entry is removed on touch and reported as a miss.
        assert!(cache.get(0, k, v1).is_none());
        assert_eq!(cache.stats().counters.stale, 1);
        assert!(cache.is_empty());
        // Re-insert under the new version serves again.
        cache.insert(0, k, v1, &[2]);
        assert_eq!(cache.get(0, k, v1), Some(vec![2]));
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        // One shard's budget fits ~3 small entries; keys landing in the same
        // shard evict oldest-first.
        let cache = ResultCache::new(SHARDS * (3 * ENTRY_OVERHEAD_BYTES + 64));
        let v = cache.version();
        let keys: Vec<u128> = (0..32u64).map(|i| key(&[i])).collect();
        for (i, &k) in keys.iter().enumerate() {
            cache.insert(0, k, v, &[i as DocId]);
        }
        let s = cache.stats();
        assert!(s.counters.evictions > 0, "budget must force evictions");
        assert!(s.counters.bytes as usize <= SHARDS * (3 * ENTRY_OVERHEAD_BYTES + 64) * SHARDS);
        // The most recent insertion is still resident.
        assert_eq!(
            cache.get(0, *keys.last().unwrap(), v),
            Some(vec![31 as DocId])
        );
        // Oversized entries are skipped outright.
        let big = vec![0 as DocId; 1 << 20];
        cache.insert(0, key(&[999]), v, &big);
        assert!(cache.get(0, key(&[999]), v).is_none());
    }

    #[test]
    fn reinsert_replaces_and_downgrades_are_skipped() {
        let cache = ResultCache::new(1 << 16);
        let k = key(&[5]);
        let v0 = cache.version();
        cache.insert(0, k, v0, &[1, 2]);
        cache.bump_version();
        let v1 = cache.version();
        cache.insert(0, k, v1, &[3]);
        // A straggler finishing an old-version evaluation must not clobber
        // the fresher entry.
        cache.insert(0, k, v0, &[1, 2]);
        assert_eq!(cache.get(0, k, v1), Some(vec![3]));
        // Same-version re-insert replaces the payload (idempotent refresh).
        cache.insert(0, k, v1, &[4]);
        assert_eq!(cache.get(0, k, v1), Some(vec![4]));
    }
}
