//! The micro-batching evaluator worker and the adaptive-scheduler gate.
//!
//! One tier lane = one bounded [`std::sync::mpsc`] intake shared by the
//! tier's workers, plus a [`LaneGate`]: the lane's live queue depth and its
//! current scheduling mode. Under low load the admission path bypasses the
//! queue entirely (see `ServerHandle::submit` — the request is evaluated
//! inline on the admitting thread); the gate flips to batching when the
//! inline evaluator is found locked (contention is proof of concurrent
//! admissions, and inline serializes on that lock anyway), when two
//! *different* threads admit inline requests within
//! [`INLINE_OVERLAP_WINDOW`] (on a single-core host serialized execution
//! means the lock alone rarely contends), or when the
//! queued depth crosses the `batch_above` hysteresis threshold, and a worker
//! flips it back once it observes a sustained streak of quiet batches — the
//! queue drained to `inline_below` *and* the batch no bigger than a
//! singleton, several times in a row — *and* the lane has gone a full
//! [`QUIET_COOLDOWN`] without any proof of concurrency (a multi-request
//! batch or an inline-lock contention refreshes that stamp; one quiet batch
//! is routine noise under load).
//!
//! A batching worker takes the intake lock, blocks for the first request,
//! then *collects*: it greedily drains whatever else is queued and — while
//! the batch is still short of `max_batch` — waits up to `max_delay` for
//! stragglers (never past the earliest pending deadline). An adaptive lane
//! additionally caps collection at a *singleton* while the queue is
//! shallower than `batch_above`: wide batches amplify the latency tail (one
//! preemption inside a joint evaluation delays every request in the batch)
//! and only win once queue wait dominates. It then releases
//! the lock (handing the intake to a sibling worker) and evaluates the whole
//! batch through its tier-local [`QueryBatch`], so the per-term bucket-mask
//! memo and the query scratch stay hot across every request in the batch —
//! the §3.3.1 sequence workloads this engine targets share most of their
//! terms between adjacent requests.
//!
//! `max_delay = 0` degenerates to greedy adaptive batching (evaluate
//! whatever accumulated while the previous batch ran — no added latency);
//! `max_batch = 1` degenerates to one-query-at-a-time serving, which is the
//! baseline the `serve_load` bench compares against.

use crate::cache::ResultCache;
use crate::stats::{SlowQuery, SlowQueryLog, TierCounters};
use rambo_core::{DocId, QueryBatch, QueryMode, Rambo};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One in-flight query.
pub(crate) struct Request {
    /// Query terms (Algorithm 2 all-terms semantics).
    pub terms: Vec<u64>,
    /// Evaluation mode.
    pub mode: QueryMode,
    /// Instant after which the request must not be evaluated.
    pub deadline: Instant,
    /// Submission instant (latency accounting).
    pub submitted: Instant,
    /// Canonical term-set key for the result cache (0 when disabled).
    pub key: u128,
    /// Cache version stamp read at admission — inserting with the
    /// *admission* stamp means a bump racing the evaluation invalidates the
    /// entry instead of being masked by it.
    pub version: u64,
    /// Oneshot reply channel (capacity 1; the send never blocks).
    pub reply: SyncSender<Reply>,
}

/// Worker → client reply.
pub(crate) enum Reply {
    /// Matching document ids, ascending.
    Docs(Vec<DocId>),
    /// The request's deadline passed before a worker reached it.
    Expired,
}

/// Live scheduling state of one tier lane, shared between the admission
/// path and the lane's workers.
#[derive(Debug, Default)]
pub(crate) struct LaneGate {
    /// Requests currently sitting in the intake queue (incremented *before*
    /// the send and decremented on send failure, so it can only over-count
    /// transiently — an under-count could wrap).
    pub queued: AtomicU64,
    /// True while the lane is in batching mode; false while admission may
    /// bypass the queue and evaluate inline.
    pub batching: AtomicBool,
    /// Last time (nanoseconds since the server's epoch) the lane saw proof
    /// of concurrency: an inline-lock contention at admission, two distinct
    /// admitting threads inside [`INLINE_OVERLAP_WINDOW`], or a worker
    /// batch that was not quiet. Flip-back to inline requires this to be
    /// stale (see [`QUIET_COOLDOWN`]) — on a busy machine a momentarily
    /// empty queue is a scheduling artifact, not evidence the load is gone.
    pub last_live: AtomicU64,
    /// Identity of the thread that last admitted a request (the address of
    /// a thread-local, so nonzero and distinct per live thread), paired
    /// with [`LaneGate::last_admit_ns`]. Two *different* tokens within
    /// [`INLINE_OVERLAP_WINDOW`] are proof of concurrent clients even when
    /// the inline lock never contends — on a single-core host execution is
    /// serialized, so `try_lock` succeeds for every client in turn and
    /// contention alone would leave the lane inline under full multi-client
    /// load. Checked on every adaptive admission: with the gate open it
    /// flips the lane to batching, and while batching it refreshes
    /// [`LaneGate::last_live`] so a multi-client lane never drifts back to
    /// inline on quiet singleton batches alone.
    pub last_admit_token: AtomicU64,
    /// When (nanoseconds since the server's epoch) that admission happened.
    pub last_admit_ns: AtomicU64,
}

impl LaneGate {
    pub(crate) fn new(batching: bool) -> Self {
        Self {
            queued: AtomicU64::new(0),
            batching: AtomicBool::new(batching),
            last_live: AtomicU64::new(0),
            last_admit_token: AtomicU64::new(0),
            last_admit_ns: AtomicU64::new(0),
        }
    }
}

/// How long a lane must go without any proof of concurrency before a quiet
/// streak may flip it back to inline. Sized in hundreds of milliseconds:
/// flip-back is a latency optimization for genuinely idle lanes, and
/// flipping eagerly under live load costs an inline-mutex convoy plus a
/// re-flip every time.
pub(crate) const QUIET_COOLDOWN: Duration = Duration::from_millis(250);

/// Window within which two inline admissions from *different* threads count
/// as proof of concurrent clients. Sized to a few preemption timeslices: on
/// an oversubscribed single-core host, concurrently-running clients are
/// interleaved at timeslice granularity (roughly 1–10 ms), so their inline
/// admissions land well inside 10 ms of each other, while requests that
/// merely *happen* to come from different threads of a lone sequential
/// client (a connection pool, consecutive bench chunks) are separated by
/// that client's think time and almost never land this close.
pub(crate) const INLINE_OVERLAP_WINDOW: Duration = Duration::from_millis(10);

/// Batching knobs, copied per worker.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchKnobs {
    pub max_batch: usize,
    pub max_delay: Duration,
    /// `Some(depth)`: adaptive mode — after a batch, flip the gate back to
    /// inline when the queue has drained to `depth` or fewer. `None`:
    /// always-batch mode, never flip.
    pub inline_below: Option<usize>,
    /// The admission-path depth threshold that flips the gate to batching,
    /// reused by adaptive workers as the depth below which collection is
    /// capped at a singleton (see [`collect_batch`]). Unused in always-batch
    /// mode.
    pub batch_above: usize,
    /// Evaluator mask-memo capacity override
    /// (see `ServerConfig::mask_memo_terms`).
    pub memo_terms: Option<usize>,
}

/// Run one evaluator worker until the intake disconnects (all request
/// senders dropped — the scope-exit shutdown path). Pending requests are
/// drained, not dropped: disconnection only stops the *collection* of new
/// batches.
#[allow(clippy::too_many_arguments)] // one call site, in Server::scope
pub(crate) fn run_worker(
    tier: usize,
    index: &Rambo,
    intake: &Mutex<Receiver<Request>>,
    knobs: BatchKnobs,
    counters: &TierCounters,
    gate: &LaneGate,
    cache: Option<&ResultCache>,
    slow: &SlowQueryLog,
    epoch: Instant,
) {
    /// Consecutive quiet batches (singleton, queue drained) a worker must
    /// observe before flipping the lane back to inline. One quiet batch is
    /// routine noise under sustained two-client load — roughly half of all
    /// batches there are singletons with a momentarily empty queue, and
    /// flipping back on each one thrashes inline↔batch through the slow
    /// contended-mutex regime. A genuinely lone client produces nothing
    /// *but* quiet batches, so it converges in `QUIET_STREAK` requests
    /// (well under a millisecond of extra batched mode).
    const QUIET_STREAK: u32 = 16;
    let mut evaluator = match knobs.memo_terms {
        None => QueryBatch::new(index),
        Some(n) => QueryBatch::with_mask_capacity(index, n),
    };
    let mut batch: Vec<Request> = Vec::with_capacity(knobs.max_batch.max(1));
    let mut quiet_batches = 0u32;
    let mut last_batch_end = Instant::now();
    loop {
        let disconnected = {
            // Collection happens under the intake lock; evaluation (below)
            // does not, so sibling workers pipeline: one collects while
            // another evaluates.
            let rx = intake.lock().expect("a sibling worker panicked");
            collect_batch(&rx, &knobs, gate, &mut batch)
        };
        let batch_len = batch.len();
        if batch_len > 0 {
            counters.batches.fetch_add(1, Ordering::Relaxed);
            counters
                .batched
                .fetch_add(batch_len as u64, Ordering::Relaxed);
            // A quiet streak must be *contiguous in time*: after an idle gap
            // the streak restarts, so 16 stray singletons spread across
            // bursts of a bursty workload never read as sustained quiet.
            // (An idle lane also ages `last_live`, so without this a lane
            // would flip to inline on the first few requests of every burst
            // — the worst moment to do so.)
            if last_batch_end.elapsed() > QUIET_COOLDOWN {
                quiet_batches = 0;
            }
        }
        // Quiet unless a sibling request arrived while this batch was being
        // served. The queue is sampled *before* each reply goes out: the
        // reply wakes this request's own closed-loop client, whose
        // immediate resubmission would otherwise read as concurrent load.
        let mut quiet = batch_len <= 1;
        let threshold = knobs.inline_below.unwrap_or(0) as u64;
        for req in batch.drain(..) {
            let dequeued = Instant::now();
            if dequeued >= req.deadline {
                counters.expired.fetch_add(1, Ordering::Relaxed);
                quiet &= gate.queued.load(Ordering::Acquire) <= threshold;
                let _ = req.reply.try_send(Reply::Expired);
                continue;
            }
            let docs = evaluator.query_terms(&req.terms, req.mode);
            let eval = dequeued.elapsed();
            counters
                .hits
                .fetch_add(docs.len() as u64, Ordering::Relaxed);
            counters.completed.fetch_add(1, Ordering::Relaxed);
            let total = req.submitted.elapsed();
            counters.latency.record(total);
            slow.record(SlowQuery {
                tier,
                terms: req.terms.len(),
                queue_wait: dequeued.saturating_duration_since(req.submitted),
                eval,
                total,
                batched: true,
            });
            if let Some(cache) = cache {
                cache.insert(tier as u32, req.key, req.version, &docs);
            }
            quiet &= gate.queued.load(Ordering::Acquire) <= threshold;
            // A client that gave up (dropped its reply receiver) is not an
            // error; the result is simply discarded.
            let _ = req.reply.try_send(Reply::Docs(docs));
        }
        // Hysteresis flip-back: only after a *streak* of demonstrably quiet
        // batches, and only once the lane's last proof of concurrency has
        // aged past the cooldown. A single quiet batch is routine noise
        // under sustained load (closed-loop clients empty the queue every
        // time they block on a reply), and a multi-request batch or a
        // mid-evaluation arrival is proof of live concurrency, so either
        // resets the streak and refreshes the liveness stamp.
        if knobs.inline_below.is_some() && batch_len > 0 {
            if quiet {
                quiet_batches += 1;
                let since_live = epoch
                    .elapsed()
                    .as_nanos()
                    .saturating_sub(u128::from(gate.last_live.load(Ordering::Acquire)));
                if quiet_batches >= QUIET_STREAK && since_live >= QUIET_COOLDOWN.as_nanos() {
                    quiet_batches = 0;
                    if gate.batching.swap(false, Ordering::AcqRel) {
                        counters.switched_to_inline.fetch_add(1, Ordering::Relaxed);
                    }
                }
            } else {
                quiet_batches = 0;
                gate.last_live
                    .store(epoch.elapsed().as_nanos() as u64, Ordering::Release);
            }
        }
        if batch_len > 0 {
            last_batch_end = Instant::now();
        }
        if disconnected {
            return;
        }
    }
}

/// Fill `batch` from the intake: block for the first request, drain eagerly,
/// then wait up to `max_delay` (capped by the earliest pending deadline) for
/// more. Adaptive lanes cap the batch at a singleton while the queue is
/// shallower than `batch_above` (see the tail-amplification note inline).
/// Decrements the gate's queue-depth gauge per dequeued request. Returns
/// true when the channel disconnected.
fn collect_batch(
    rx: &Receiver<Request>,
    knobs: &BatchKnobs,
    gate: &LaneGate,
    batch: &mut Vec<Request>,
) -> bool {
    let take = |req: Request, batch: &mut Vec<Request>| {
        gate.queued.fetch_sub(1, Ordering::AcqRel);
        batch.push(req);
    };
    match rx.recv() {
        Err(_) => return true,
        Ok(first) => take(first, batch),
    }
    // Tail-amplification guard: one preemption landing inside a joint batch
    // evaluation delays every request sharing the batch, so wide batches
    // only pay for themselves once queue wait dominates. While the queue is
    // shallow an adaptive lane feeds singletons — the per-term mask memo
    // still amortizes across batches because the evaluator is
    // worker-persistent — and drains greedily only at depths where waiting
    // in the queue costs more than sharing a preemption.
    let max_take = match knobs.inline_below {
        Some(_) if (gate.queued.load(Ordering::Acquire) as usize) < knobs.batch_above => 1,
        _ => knobs.max_batch,
    };
    let collect_until = Instant::now() + knobs.max_delay;
    while batch.len() < max_take {
        match rx.try_recv() {
            Ok(req) => {
                take(req, batch);
                continue;
            }
            Err(TryRecvError::Disconnected) => return true,
            Err(TryRecvError::Empty) => {}
        }
        // Queue empty: wait for stragglers, but never past the collection
        // window, and never deep into a pending deadline — waking *at* the
        // deadline would expire the very request the wait was serving, so
        // the cap leaves half the tightest request's remaining budget for
        // evaluation.
        let earliest_deadline = batch
            .iter()
            .map(|r| r.deadline)
            .min()
            .expect("batch holds at least the first request");
        let now = Instant::now();
        let deadline_cap = now + earliest_deadline.saturating_duration_since(now) / 2;
        let wait_until = collect_until.min(deadline_cap);
        if now >= wait_until {
            return false;
        }
        match rx.recv_timeout(wait_until - now) {
            Ok(req) => take(req, batch),
            Err(RecvTimeoutError::Timeout) => return false,
            Err(RecvTimeoutError::Disconnected) => return true,
        }
    }
    false
}
