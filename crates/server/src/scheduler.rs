//! The micro-batching evaluator worker.
//!
//! One tier lane = one bounded [`std::sync::mpsc`] intake shared by the
//! tier's workers. A worker takes the intake lock, blocks for the first
//! request, then *collects*: it greedily drains whatever else is queued and
//! — while the batch is still short of `max_batch` — waits up to `max_delay`
//! for stragglers (never past the earliest pending deadline). It then
//! releases the lock (handing the intake to a sibling worker) and evaluates
//! the whole batch through its tier-local [`QueryBatch`], so the per-term
//! bucket-mask memo and the query scratch stay hot across every request in
//! the batch — the §3.3.1 sequence workloads this engine targets share most
//! of their terms between adjacent requests.
//!
//! `max_delay = 0` degenerates to greedy adaptive batching (evaluate
//! whatever accumulated while the previous batch ran — no added latency);
//! `max_batch = 1` degenerates to one-query-at-a-time serving, which is the
//! baseline the `serve_load` bench compares against.

use crate::stats::TierCounters;
use rambo_core::{DocId, QueryBatch, QueryMode, Rambo};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One in-flight query.
pub(crate) struct Request {
    /// Query terms (Algorithm 2 all-terms semantics).
    pub terms: Vec<u64>,
    /// Evaluation mode.
    pub mode: QueryMode,
    /// Instant after which the request must not be evaluated.
    pub deadline: Instant,
    /// Submission instant (latency accounting).
    pub submitted: Instant,
    /// Oneshot reply channel (capacity 1; the send never blocks).
    pub reply: SyncSender<Reply>,
}

/// Worker → client reply.
pub(crate) enum Reply {
    /// Matching document ids, ascending.
    Docs(Vec<DocId>),
    /// The request's deadline passed before a worker reached it.
    Expired,
}

/// Batching knobs, copied per worker.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchKnobs {
    pub max_batch: usize,
    pub max_delay: Duration,
}

/// Run one evaluator worker until the intake disconnects (all request
/// senders dropped — the scope-exit shutdown path). Pending requests are
/// drained, not dropped: disconnection only stops the *collection* of new
/// batches.
pub(crate) fn run_worker(
    index: &Rambo,
    intake: &Mutex<Receiver<Request>>,
    knobs: BatchKnobs,
    counters: &TierCounters,
) {
    let mut evaluator = QueryBatch::new(index);
    let mut batch: Vec<Request> = Vec::with_capacity(knobs.max_batch.max(1));
    loop {
        let disconnected = {
            // Collection happens under the intake lock; evaluation (below)
            // does not, so sibling workers pipeline: one collects while
            // another evaluates.
            let rx = intake.lock().expect("a sibling worker panicked");
            collect_batch(&rx, &knobs, &mut batch)
        };
        if !batch.is_empty() {
            counters.batches.fetch_add(1, Ordering::Relaxed);
        }
        for req in batch.drain(..) {
            if Instant::now() >= req.deadline {
                counters.expired.fetch_add(1, Ordering::Relaxed);
                let _ = req.reply.try_send(Reply::Expired);
                continue;
            }
            let docs = evaluator.query_terms(&req.terms, req.mode);
            counters
                .hits
                .fetch_add(docs.len() as u64, Ordering::Relaxed);
            counters.completed.fetch_add(1, Ordering::Relaxed);
            counters.latency.record(req.submitted.elapsed());
            // A client that gave up (dropped its reply receiver) is not an
            // error; the result is simply discarded.
            let _ = req.reply.try_send(Reply::Docs(docs));
        }
        if disconnected {
            return;
        }
    }
}

/// Fill `batch` from the intake: block for the first request, drain eagerly,
/// then wait up to `max_delay` (capped by the earliest pending deadline) for
/// more. Returns true when the channel disconnected.
fn collect_batch(rx: &Receiver<Request>, knobs: &BatchKnobs, batch: &mut Vec<Request>) -> bool {
    match rx.recv() {
        Err(_) => return true,
        Ok(first) => batch.push(first),
    }
    let collect_until = Instant::now() + knobs.max_delay;
    while batch.len() < knobs.max_batch {
        match rx.try_recv() {
            Ok(req) => {
                batch.push(req);
                continue;
            }
            Err(TryRecvError::Disconnected) => return true,
            Err(TryRecvError::Empty) => {}
        }
        // Queue empty: wait for stragglers, but never past the collection
        // window, and never deep into a pending deadline — waking *at* the
        // deadline would expire the very request the wait was serving, so
        // the cap leaves half the tightest request's remaining budget for
        // evaluation.
        let earliest_deadline = batch
            .iter()
            .map(|r| r.deadline)
            .min()
            .expect("batch holds at least the first request");
        let now = Instant::now();
        let deadline_cap = now + earliest_deadline.saturating_duration_since(now) / 2;
        let wait_until = collect_until.min(deadline_cap);
        if now >= wait_until {
            return false;
        }
        match rx.recv_timeout(wait_until - now) {
            Ok(req) => batch.push(req),
            Err(RecvTimeoutError::Timeout) => return false,
            Err(RecvTimeoutError::Disconnected) => return true,
        }
    }
    false
}
