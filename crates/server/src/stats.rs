//! Per-tier serving counters, the slow-query log, and their exported
//! snapshot.
//!
//! Workers and the admission path record into lock-free atomics (one relaxed
//! increment per event, a [`LatencyHistogram`] bucket bump per completion);
//! [`ServerStats`] is the read side — a plain-data snapshot safe to take
//! while the server runs and returned after it drains. The slow-query log is
//! the one non-atomic recorder: a small mutex-guarded keep-the-worst buffer
//! whose fast path (request faster than the current floor) is a single
//! relaxed load.

use crate::cache::CacheStats;
use crate::catalog::TierInfo;
use rambo_bitvec::BlockCacheSnapshot;
use rambo_workloads::stats::LatencyHistogram;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Live counters for one tier lane. All increments are relaxed: counters are
/// monotone event counts with no cross-counter invariant to order.
#[derive(Debug, Default)]
pub(crate) struct TierCounters {
    /// Requests admitted (queued or evaluated inline).
    pub accepted: AtomicU64,
    /// Requests rejected at admission (queue full → `Overloaded`).
    pub rejected: AtomicU64,
    /// Requests evaluated and answered (inline, batched or from cache).
    pub completed: AtomicU64,
    /// Requests dropped unevaluated because their deadline had passed by the
    /// time a worker dequeued them (or the inline path reached them).
    pub expired: AtomicU64,
    /// Micro-batches evaluated.
    pub batches: AtomicU64,
    /// Requests that went through the batch path (batched / batches gives
    /// the mean batch size; inline and cache-hit completions never inflate
    /// it).
    pub batched: AtomicU64,
    /// Requests the adaptive scheduler evaluated inline on the admitting
    /// thread, bypassing the queue.
    pub inline: AtomicU64,
    /// Requests answered from the result cache without any evaluation.
    pub cache_hits: AtomicU64,
    /// Inline→batch mode transitions (queue depth crossed the threshold).
    pub switched_to_batch: AtomicU64,
    /// Batch→inline mode transitions (queue drained back down).
    pub switched_to_inline: AtomicU64,
    /// Highest instantaneous queue depth observed at admission.
    pub queue_depth_max: AtomicU64,
    /// Total documents returned (hit counter).
    pub hits: AtomicU64,
    /// Submit→completion latency of answered requests.
    pub latency: LatencyHistogram,
}

impl TierCounters {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Zero every counter (monitoring-window boundary). Not atomic across
    /// counters; concurrent recording simply lands in the new window.
    pub(crate) fn clear(&self) {
        for c in [
            &self.accepted,
            &self.rejected,
            &self.completed,
            &self.expired,
            &self.batches,
            &self.batched,
            &self.inline,
            &self.cache_hits,
            &self.switched_to_batch,
            &self.switched_to_inline,
            &self.queue_depth_max,
            &self.hits,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        self.latency.clear();
    }

    pub(crate) fn snapshot(
        &self,
        info: &TierInfo,
        block_cache: Option<BlockCacheSnapshot>,
    ) -> TierStats {
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched.load(Ordering::Relaxed);
        TierStats {
            block_cache,
            tier: info.tier,
            buckets: info.buckets,
            predicted_fpr: info.predicted_fpr,
            size_bytes: info.size_bytes,
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            batches,
            batched,
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            inline_completed: self.inline.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            switched_to_batch: self.switched_to_batch.load(Ordering::Relaxed),
            switched_to_inline: self.switched_to_inline.load(Ordering::Relaxed),
            max_queue_depth: self.queue_depth_max.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            mean: self.latency.mean(),
            p50: self.latency.quantile(0.50),
            p99: self.latency.quantile(0.99),
            max: self.latency.max(),
        }
    }
}

/// Snapshot of one tier's serving counters.
#[derive(Debug, Clone)]
pub struct TierStats {
    /// Tier position in the catalog (0 = most accurate).
    pub tier: usize,
    /// Bucket count of the tier's index version.
    pub buckets: u64,
    /// The tier's predicted per-document FPR (the selection key).
    pub predicted_fpr: f64,
    /// In-memory payload size of the tier.
    pub size_bytes: usize,
    /// Requests admitted (queued or evaluated inline).
    pub accepted: u64,
    /// Requests rejected with `Overloaded`.
    pub rejected: u64,
    /// Requests evaluated and answered (inline, batched or from cache).
    pub completed: u64,
    /// Requests dropped past their deadline without evaluation.
    pub expired: u64,
    /// Micro-batches evaluated.
    pub batches: u64,
    /// Requests that went through the batch path.
    pub batched: u64,
    /// Mean requests per micro-batch (batch-path requests only).
    pub mean_batch: f64,
    /// Requests the adaptive scheduler evaluated inline, bypassing the
    /// queue entirely.
    pub inline_completed: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Inline→batch scheduler transitions.
    pub switched_to_batch: u64,
    /// Batch→inline scheduler transitions.
    pub switched_to_inline: u64,
    /// Highest instantaneous queue depth observed at admission.
    pub max_queue_depth: u64,
    /// Total documents returned.
    pub hits: u64,
    /// Block-cache traffic of this tier's file-backed payload (hits,
    /// misses, evictions); `None` when the tier serves from memory.
    pub block_cache: Option<BlockCacheSnapshot>,
    /// Mean submit→completion latency.
    pub mean: Duration,
    /// Median submit→completion latency (log-linear histogram, ≤12.5% off).
    pub p50: Duration,
    /// 99th-percentile submit→completion latency.
    pub p99: Duration,
    /// Worst observed latency (exact).
    pub max: Duration,
}

/// One entry of the slow-query log: where the worst requests spent their
/// time. `queue_wait` vs `eval` splits scheduling debt from evaluation
/// cost — a log full of long waits wants more workers (or a lower batch
/// threshold); long evals want a smaller tier or fewer terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// Tier that served the request.
    pub tier: usize,
    /// Number of query terms (as submitted, before dedup).
    pub terms: usize,
    /// Submission → dequeue (zero for inline and cache-hit completions).
    pub queue_wait: Duration,
    /// Evaluation time proper.
    pub eval: Duration,
    /// Submission → completion.
    pub total: Duration,
    /// True when the request went through the micro-batch path.
    pub batched: bool,
}

/// Keep-the-worst ring of the `cap` highest-latency requests.
///
/// Recording is O(cap) only when the new request actually displaces an
/// entry; the common case — a request faster than the slowest retained one
/// while the log is full — is rejected by a single relaxed atomic load of
/// the current floor.
#[derive(Debug)]
pub(crate) struct SlowQueryLog {
    cap: usize,
    /// Smallest `total` (ns) in a *full* log; 0 while the log has room, so
    /// the fast path never rejects a request that would fit.
    floor_ns: AtomicU64,
    entries: Mutex<Vec<SlowQuery>>,
}

impl SlowQueryLog {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            cap,
            floor_ns: AtomicU64::new(0),
            entries: Mutex::new(Vec::with_capacity(cap)),
        }
    }

    pub(crate) fn record(&self, entry: SlowQuery) {
        if self.cap == 0 {
            return;
        }
        let total_ns = u64::try_from(entry.total.as_nanos()).unwrap_or(u64::MAX);
        if total_ns <= self.floor_ns.load(Ordering::Relaxed) {
            return;
        }
        let mut entries = self.entries.lock().expect("slow-query log");
        if entries.len() < self.cap {
            entries.push(entry);
        } else {
            let (slot, floor) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.total)
                .map(|(i, e)| (i, e.total))
                .expect("full log is non-empty");
            if entry.total <= floor {
                return; // raced below the floor between load and lock
            }
            entries[slot] = entry;
        }
        if entries.len() == self.cap {
            let floor = entries.iter().map(|e| e.total).min().expect("non-empty");
            self.floor_ns.store(
                u64::try_from(floor.as_nanos()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
        }
    }

    /// Forget every retained entry (monitoring-window boundary).
    pub(crate) fn clear(&self) {
        let mut entries = self.entries.lock().expect("slow-query log");
        entries.clear();
        self.floor_ns.store(0, Ordering::Relaxed);
    }

    /// The retained entries, worst first.
    pub(crate) fn snapshot(&self) -> Vec<SlowQuery> {
        let mut entries = self.entries.lock().expect("slow-query log").clone();
        entries.sort_by_key(|e| std::cmp::Reverse(e.total));
        entries
    }
}

/// Snapshot of every tier's counters, tier 0 first, plus the slow-query log
/// and (when enabled) the result-cache counters.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Per-tier counters.
    pub tiers: Vec<TierStats>,
    /// The worst-latency requests observed, worst first (empty when the log
    /// is disabled).
    pub slow_queries: Vec<SlowQuery>,
    /// Result-cache counters; `None` when the cache is disabled.
    pub cache: Option<CacheStats>,
    /// Submit→completion latency aggregated over every tier (bucket-exact
    /// merge of the per-tier histograms). This is the serving boundary:
    /// queue wait and evaluation are inside, the client's wake-up is not —
    /// which is what makes it comparable across scheduler designs on an
    /// oversubscribed host, where client-side tails measure the OS
    /// scheduler instead.
    pub latency: LatencyHistogram,
}

impl ServerStats {
    /// Total requests answered across tiers.
    #[must_use]
    pub fn total_completed(&self) -> u64 {
        self.tiers.iter().map(|t| t.completed).sum()
    }

    /// Total requests rejected at admission across tiers.
    #[must_use]
    pub fn total_rejected(&self) -> u64 {
        self.tiers.iter().map(|t| t.rejected).sum()
    }

    /// Total micro-batches evaluated across tiers.
    #[must_use]
    pub fn total_batches(&self) -> u64 {
        self.tiers.iter().map(|t| t.batches).sum()
    }

    /// Total inline (queue-bypass) completions across tiers.
    #[must_use]
    pub fn total_inline(&self) -> u64 {
        self.tiers.iter().map(|t| t.inline_completed).sum()
    }

    /// Total result-cache hits across tiers.
    #[must_use]
    pub fn total_cache_hits(&self) -> u64 {
        self.tiers.iter().map(|t| t.cache_hits).sum()
    }
}

/// Plain-text rendering — one line per tier, one for the cache, one per
/// slow-query entry. This is the payload of the TCP front's `STATS` frame.
impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tiers {
            writeln!(
                f,
                "tier {}: buckets={} fpr={:.3e} accepted={} rejected={} completed={} \
                 expired={} inline={} cache_hits={} batched={} batches={} mean_batch={:.2} \
                 switches(batch/inline)={}/{} depth_max={} docs={}",
                t.tier,
                t.buckets,
                t.predicted_fpr,
                t.accepted,
                t.rejected,
                t.completed,
                t.expired,
                t.inline_completed,
                t.cache_hits,
                t.batched,
                t.batches,
                t.mean_batch,
                t.switched_to_batch,
                t.switched_to_inline,
                t.max_queue_depth,
                t.hits,
            )?;
            writeln!(
                f,
                "tier {}: latency mean={}us p50={}us p99={}us max={}us",
                t.tier,
                t.mean.as_micros(),
                t.p50.as_micros(),
                t.p99.as_micros(),
                t.max.as_micros(),
            )?;
            if let Some(b) = &t.block_cache {
                writeln!(
                    f,
                    "tier {}: blocks hits={} misses={} evictions={} hit_ratio={:.3}",
                    t.tier,
                    b.hits,
                    b.misses,
                    b.evictions,
                    b.hit_ratio(),
                )?;
            }
        }
        writeln!(
            f,
            "overall: latency mean={}us p50={}us p99={}us max={}us",
            self.latency.mean().as_micros(),
            self.latency.quantile(0.50).as_micros(),
            self.latency.quantile(0.99).as_micros(),
            self.latency.max().as_micros(),
        )?;
        match &self.cache {
            Some(c) => writeln!(
                f,
                "cache: hits={} misses={} hit_ratio={:.3} insertions={} evictions={} \
                 stale={} bytes={}/{} version={}",
                c.counters.hits,
                c.counters.misses,
                c.hit_ratio(),
                c.counters.insertions,
                c.counters.evictions,
                c.counters.stale,
                c.counters.bytes,
                c.capacity_bytes,
                c.version,
            )?,
            None => writeln!(f, "cache: disabled")?,
        }
        for (i, q) in self.slow_queries.iter().enumerate() {
            writeln!(
                f,
                "slow {i}: tier={} terms={} wait={}us eval={}us total={}us batched={}",
                q.tier,
                q.terms,
                q.queue_wait.as_micros(),
                q.eval.as_micros(),
                q.total.as_micros(),
                q.batched,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(total_us: u64) -> SlowQuery {
        SlowQuery {
            tier: 0,
            terms: 3,
            queue_wait: Duration::ZERO,
            eval: Duration::from_micros(total_us),
            total: Duration::from_micros(total_us),
            batched: false,
        }
    }

    #[test]
    fn slow_log_keeps_the_worst_n() {
        let log = SlowQueryLog::new(3);
        for us in [10, 50, 20, 5, 80, 40, 1] {
            log.record(entry(us));
        }
        let worst: Vec<u64> = log
            .snapshot()
            .iter()
            .map(|e| e.total.as_micros() as u64)
            .collect();
        assert_eq!(worst, vec![80, 50, 40]);
    }

    #[test]
    fn slow_log_disabled_records_nothing() {
        let log = SlowQueryLog::new(0);
        log.record(entry(100));
        assert!(log.snapshot().is_empty());
    }
}
