//! Per-tier serving counters and their exported snapshot.
//!
//! Workers and the admission path record into lock-free atomics (one relaxed
//! increment per event, a [`LatencyHistogram`] bucket bump per completion);
//! [`ServerStats`] is the read side — a plain-data snapshot safe to take
//! while the server runs and returned after it drains.

use crate::catalog::TierInfo;
use rambo_workloads::stats::LatencyHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Live counters for one tier lane. All increments are relaxed: counters are
/// monotone event counts with no cross-counter invariant to order.
#[derive(Debug, Default)]
pub(crate) struct TierCounters {
    /// Requests admitted to the tier's queue.
    pub accepted: AtomicU64,
    /// Requests rejected at admission (queue full → `Overloaded`).
    pub rejected: AtomicU64,
    /// Requests evaluated and answered.
    pub completed: AtomicU64,
    /// Requests dropped unevaluated because their deadline had passed by the
    /// time a worker dequeued them.
    pub expired: AtomicU64,
    /// Micro-batches evaluated (`completed + expired` over `batches` gives
    /// the mean batch size).
    pub batches: AtomicU64,
    /// Total documents returned (hit counter).
    pub hits: AtomicU64,
    /// Submit→completion latency of answered requests.
    pub latency: LatencyHistogram,
}

impl TierCounters {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn snapshot(&self, info: &TierInfo) -> TierStats {
        let completed = self.completed.load(Ordering::Relaxed);
        let expired = self.expired.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        TierStats {
            tier: info.tier,
            buckets: info.buckets,
            predicted_fpr: info.predicted_fpr,
            size_bytes: info.size_bytes,
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            expired,
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                (completed + expired) as f64 / batches as f64
            },
            hits: self.hits.load(Ordering::Relaxed),
            mean: self.latency.mean(),
            p50: self.latency.quantile(0.50),
            p99: self.latency.quantile(0.99),
            max: self.latency.max(),
        }
    }
}

/// Snapshot of one tier's serving counters.
#[derive(Debug, Clone)]
pub struct TierStats {
    /// Tier position in the catalog (0 = most accurate).
    pub tier: usize,
    /// Bucket count of the tier's index version.
    pub buckets: u64,
    /// The tier's predicted per-document FPR (the selection key).
    pub predicted_fpr: f64,
    /// In-memory payload size of the tier.
    pub size_bytes: usize,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests rejected with `Overloaded`.
    pub rejected: u64,
    /// Requests evaluated and answered.
    pub completed: u64,
    /// Requests dropped past their deadline without evaluation.
    pub expired: u64,
    /// Micro-batches evaluated.
    pub batches: u64,
    /// Mean requests per micro-batch.
    pub mean_batch: f64,
    /// Total documents returned.
    pub hits: u64,
    /// Mean submit→completion latency.
    pub mean: Duration,
    /// Median submit→completion latency (log-linear histogram, ≤12.5% off).
    pub p50: Duration,
    /// 99th-percentile submit→completion latency.
    pub p99: Duration,
    /// Worst observed latency (exact).
    pub max: Duration,
}

/// Snapshot of every tier's counters, tier 0 first.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Per-tier counters.
    pub tiers: Vec<TierStats>,
}

impl ServerStats {
    /// Total requests answered across tiers.
    #[must_use]
    pub fn total_completed(&self) -> u64 {
        self.tiers.iter().map(|t| t.completed).sum()
    }

    /// Total requests rejected at admission across tiers.
    #[must_use]
    pub fn total_rejected(&self) -> u64 {
        self.tiers.iter().map(|t| t.rejected).sum()
    }

    /// Total micro-batches evaluated across tiers.
    #[must_use]
    pub fn total_batches(&self) -> u64 {
        self.tiers.iter().map(|t| t.batches).sum()
    }
}
