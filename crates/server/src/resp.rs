//! RESP2-compatible text protocol front over a [`TenantRegistry`] — the
//! multi-tenant command surface, served alongside the binary frames by one
//! poll-loop reactor.
//!
//! ## Command surface
//!
//! RAMBO verbs (one named index per tenant):
//!
//! ```text
//! R.CREATE    <name> [fpr=<budget>] [docs=<n>] [bytes=<n>] [tiers=<n>]   → +OK
//! R.INSERTDOC <name> <doc> <term...>                                    → :id
//! R.QUERYSEQ  <name> <theta> <term...>                                  → *N doc names
//! R.DROP      <name>                                                    → :1 / :0
//! R.STATS     [<name>]                                                  → $text
//! R.LIST                                                                → *N tenant names
//! ```
//!
//! `BF.*` compatibility (SpinelDB/RedisBloom shape), mapped onto a
//! degenerate single-repetition index where every item is its own
//! single-term document — classic Bloom-filter membership semantics (no
//! false negatives, tunable false positives) under the same engine:
//!
//! ```text
//! BF.RESERVE <key> <error_rate> <capacity>   → +OK
//! BF.ADD     <key> <item>                    → :1 new / :0 already present
//! BF.MADD    <key> <item...>                 → *N of :1 / :0
//! BF.EXISTS  <key> <item>                    → :1 / :0
//! ```
//!
//! A `<term>` token that parses as a decimal `u64` is taken as a raw term
//! hash (the binary front's currency); any other token is hashed with
//! [`term_of`] — the same convention the text-corpus pipeline uses, so a
//! corpus can be loaded over the wire and queried by word.
//!
//! ## Framing
//!
//! Both RESP2 framings are accepted on every connection: arrays of bulk
//! strings (`*2\r\n$4\r\nPING\r\n…`, what `redis-cli` sends) and
//! space-separated inline commands (`R.LIST\r\n`, what `nc` sends).
//! Replies use simple strings (`+OK`), errors (`-ERR …`), integers
//! (`:1`), bulk strings and arrays. Errors follow Redis taxonomy: unknown
//! command, wrong arity, invalid argument, and the registry's own
//! admission errors (`quota exceeded`, duplicate/unknown tenant) are all
//! answered **in-protocol** with the connection left open; only a framing
//! violation (bad type byte, oversized or malformed length) earns an
//! error reply followed by a close, because the stream can no longer be
//! trusted.
//!
//! ## Reactor
//!
//! [`serve_tenant_tcp`] multiplexes the RESP listener and (optionally) a
//! second listener speaking the existing binary frame protocol — same
//! non-blocking single-thread readiness design as [`crate::serve_tcp`],
//! sharing its connection plumbing. Binary `QUERY`/`MUTATE` frames carry
//! no tenant name, so they are routed to the configured
//! [`TenantServeOptions::binary_tenant`]; `STATS` dumps the registry
//! summary. Poll ticks with no I/O run one step of generation-merge
//! maintenance across the registry instead of napping, so background index
//! upkeep rides the serving thread's idle gaps.

use crate::tcp::{
    conn_flush, conn_read, encode_mutate_ok, encode_mutate_rejected, encode_response, parse_mutate,
    parse_request, Conn, MAX_FRAME_BYTES, OPCODE_HELLO, OPCODE_MUTATE, OPCODE_STATS,
    REACTOR_BUSY_SLEEP, REACTOR_IDLE_SLEEP, STATUS_BAD_REQUEST, STATUS_OK,
};
use crate::tenant::{TenantKind, TenantOptions, TenantRegistry};
use rambo_core::{RamboError, RamboParams};
use rambo_hash::murmur3_x64_64;
use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};

/// Most array elements accepted in one command.
const MAX_ARGS: usize = 1 << 10;
/// Largest accepted bulk-string payload (1 MiB — a document insert with
/// tens of thousands of terms still fits in many bulks).
const MAX_BULK: usize = 1 << 20;
/// Longest accepted inline line before the parser gives up waiting for a
/// newline.
const MAX_INLINE: usize = 64 << 10;

/// Implicit-create defaults for `BF.ADD` on a missing key, matching the
/// conventional RedisBloom reserve defaults.
const BF_DEFAULT_CAPACITY: u64 = 100;
const BF_DEFAULT_FPR: f64 = 0.01;
/// Seed for the degenerate Bloom tenants (fixed: `BF.*` answers must not
/// depend on the registry's base geometry).
const BF_SEED: u64 = 0xB10F;

/// Hash a textual term token the way the text-corpus pipeline does, so
/// wire-inserted documents and corpus-built oracles agree on term hashes.
#[must_use]
pub fn term_of(word: &str) -> u64 {
    murmur3_x64_64(word.as_bytes(), 1)
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

/// Outcome of one incremental parse attempt against the head of a
/// connection's input buffer.
pub(crate) enum RespParse {
    /// Not enough bytes yet; read more and retry with the same prefix.
    Incomplete,
    /// One complete command (`args` possibly empty for a blank inline
    /// line); `consumed` bytes are done with.
    Command { args: Vec<Vec<u8>>, consumed: usize },
    /// The stream violated the framing and cannot be resynchronized; the
    /// front answers `-ERR message` and closes.
    Protocol { message: String },
}

/// Incremental RESP2 request parser: arrays of bulk strings, or inline
/// commands split on spaces/tabs. Never consumes a partial command.
pub(crate) fn parse_resp(buf: &[u8]) -> RespParse {
    let Some(&first) = buf.first() else {
        return RespParse::Incomplete;
    };
    if first == b'*' {
        return parse_multibulk(buf);
    }
    parse_inline(buf)
}

/// Find the next CRLF-terminated line starting at `pos`: returns the line
/// content (CRLF excluded) and the index just past the CRLF.
fn crlf_line(buf: &[u8], pos: usize) -> Result<Option<(&[u8], usize)>, String> {
    let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') else {
        return Ok(None);
    };
    let nl = pos + nl;
    if nl == pos || buf[nl - 1] != b'\r' {
        return Err("Protocol error: expected CRLF line terminator".into());
    }
    Ok(Some((&buf[pos..nl - 1], nl + 1)))
}

/// Strict non-negative decimal parse for protocol length fields.
fn parse_len(digits: &[u8]) -> Option<usize> {
    if digits.is_empty() || digits.len() > 10 || !digits.iter().all(u8::is_ascii_digit) {
        return None;
    }
    std::str::from_utf8(digits).ok()?.parse().ok()
}

fn parse_multibulk(buf: &[u8]) -> RespParse {
    let header = match crlf_line(buf, 1) {
        Err(message) => return RespParse::Protocol { message },
        Ok(None) if buf.len() > MAX_INLINE => {
            return RespParse::Protocol {
                message: "Protocol error: too big mbulk count string".into(),
            }
        }
        Ok(None) => return RespParse::Incomplete,
        Ok(Some(line)) => line,
    };
    let (count_digits, mut pos) = header;
    // `*-1` / `*0` are tolerated as no-ops (some clients send them as
    // keepalives); anything else non-numeric is a framing violation.
    if count_digits == b"-1" || count_digits == b"0" {
        return RespParse::Command {
            args: Vec::new(),
            consumed: pos,
        };
    }
    let count = match parse_len(count_digits) {
        Some(n) if (1..=MAX_ARGS).contains(&n) => n,
        _ => {
            return RespParse::Protocol {
                message: "Protocol error: invalid multibulk length".into(),
            }
        }
    };
    let mut args = Vec::with_capacity(count);
    for _ in 0..count {
        let Some(&marker) = buf.get(pos) else {
            return RespParse::Incomplete;
        };
        if marker != b'$' {
            return RespParse::Protocol {
                message: format!(
                    "Protocol error: expected '$', got '{}'",
                    char::from(marker.clamp(0x20, 0x7E))
                ),
            };
        }
        let (len_digits, body) = match crlf_line(buf, pos + 1) {
            Err(message) => return RespParse::Protocol { message },
            Ok(None) if buf.len() - pos > 32 => {
                return RespParse::Protocol {
                    message: "Protocol error: invalid bulk length".into(),
                }
            }
            Ok(None) => return RespParse::Incomplete,
            Ok(Some(line)) => line,
        };
        let len = match parse_len(len_digits) {
            Some(n) if n <= MAX_BULK => n,
            _ => {
                return RespParse::Protocol {
                    message: "Protocol error: invalid bulk length".into(),
                }
            }
        };
        if buf.len() < body + len + 2 {
            return RespParse::Incomplete;
        }
        if &buf[body + len..body + len + 2] != b"\r\n" {
            return RespParse::Protocol {
                message: "Protocol error: bulk payload not CRLF terminated".into(),
            };
        }
        args.push(buf[body..body + len].to_vec());
        pos = body + len + 2;
    }
    RespParse::Command {
        args,
        consumed: pos,
    }
}

fn parse_inline(buf: &[u8]) -> RespParse {
    let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
        if buf.len() > MAX_INLINE {
            return RespParse::Protocol {
                message: "Protocol error: too big inline request".into(),
            };
        }
        return RespParse::Incomplete;
    };
    let line = &buf[..nl];
    let line = line.strip_suffix(b"\r").unwrap_or(line);
    let args = line
        .split(|&b| b == b' ' || b == b'\t')
        .filter(|tok| !tok.is_empty())
        .map(<[u8]>::to_vec)
        .collect();
    RespParse::Command {
        args,
        consumed: nl + 1,
    }
}

// ---------------------------------------------------------------------
// Encoders.
// ---------------------------------------------------------------------

pub(crate) fn resp_simple(s: &str) -> Vec<u8> {
    format!("+{s}\r\n").into_bytes()
}

pub(crate) fn resp_error(message: &str) -> Vec<u8> {
    format!("-ERR {message}\r\n").into_bytes()
}

pub(crate) fn resp_integer(n: i64) -> Vec<u8> {
    format!(":{n}\r\n").into_bytes()
}

pub(crate) fn resp_bulk(payload: &[u8]) -> Vec<u8> {
    let mut out = format!("${}\r\n", payload.len()).into_bytes();
    out.extend_from_slice(payload);
    out.extend_from_slice(b"\r\n");
    out
}

/// Array whose elements are already-encoded RESP values.
pub(crate) fn resp_array(elements: &[Vec<u8>]) -> Vec<u8> {
    let mut out = format!("*{}\r\n", elements.len()).into_bytes();
    for e in elements {
        out.extend_from_slice(e);
    }
    out
}

// ---------------------------------------------------------------------
// Command execution.
// ---------------------------------------------------------------------

fn lossy(arg: &[u8]) -> String {
    String::from_utf8_lossy(arg).into_owned()
}

fn wrong_arity(canonical: &str) -> Vec<u8> {
    resp_error(&format!("wrong number of arguments for '{canonical}'"))
}

/// A term token: a decimal `u64` is a raw hash, anything else is a word.
fn parse_term(tok: &[u8]) -> u64 {
    let s = String::from_utf8_lossy(tok);
    s.parse::<u64>().unwrap_or_else(|_| term_of(&s))
}

/// Degenerate single-repetition geometry for a `BF.*` tenant: 2 buckets
/// (the engine's minimum — items partition across them by hash, which
/// preserves no-false-negative membership), classic Bloom sizing per
/// bucket, `k = round(−ln p / ln 2)` probes.
fn bloom_params(capacity: u64, fpr: f64) -> RamboParams {
    let ln2 = std::f64::consts::LN_2;
    let bits_per_key = -fpr.ln() / (ln2 * ln2);
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let per_bucket =
        (((capacity as f64) / 2.0 * bits_per_key).ceil().max(64.0) as usize).next_power_of_two();
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let eta = (-fpr.ln() / ln2).round().clamp(1.0, 30.0) as u32;
    RamboParams::flat(2, 1, per_bucket, eta, BF_SEED)
}

fn bloom_options(capacity: u64, fpr: f64) -> TenantOptions {
    TenantOptions {
        fpr,
        params: Some(bloom_params(capacity, fpr)),
        max_docs: Some(usize::try_from(capacity).unwrap_or(usize::MAX)),
        kind: TenantKind::Bloom,
        ..TenantOptions::default()
    }
}

/// Execute one parsed command against the registry, returning the encoded
/// reply. Always answers in-protocol — the caller never closes over an
/// executed command, only over framing violations.
pub(crate) fn execute(registry: &TenantRegistry, args: &[Vec<u8>]) -> Vec<u8> {
    let cmd = lossy(&args[0]).to_ascii_uppercase();
    match cmd.as_str() {
        "PING" => match args.len() {
            1 => resp_simple("PONG"),
            2 => resp_bulk(&args[1]),
            _ => wrong_arity("ping"),
        },
        "R.CREATE" => cmd_create(registry, args),
        "R.INSERTDOC" => cmd_insertdoc(registry, args),
        "R.QUERYSEQ" => cmd_queryseq(registry, args),
        "R.DROP" => match args.len() {
            2 => resp_integer(i64::from(registry.drop_tenant(&lossy(&args[1])))),
            _ => wrong_arity("r.drop"),
        },
        "R.STATS" => match args.len() {
            1 => resp_bulk(registry.summary().as_bytes()),
            2 => match registry.stats(&lossy(&args[1])) {
                Ok(stats) => resp_bulk(stats.to_string().as_bytes()),
                Err(e) => resp_error(&e.to_string()),
            },
            _ => wrong_arity("r.stats"),
        },
        "R.LIST" => match args.len() {
            1 => {
                let names: Vec<Vec<u8>> = registry
                    .list()
                    .into_iter()
                    .map(|t| resp_bulk(t.name.as_bytes()))
                    .collect();
                resp_array(&names)
            }
            _ => wrong_arity("r.list"),
        },
        "BF.RESERVE" => cmd_bf_reserve(registry, args),
        "BF.ADD" => match args.len() {
            3 => bf_add_one(registry, &lossy(&args[1]), &args[2]),
            _ => wrong_arity("bf.add"),
        },
        "BF.MADD" => {
            if args.len() < 3 {
                return wrong_arity("bf.madd");
            }
            let key = lossy(&args[1]);
            let replies: Vec<Vec<u8>> = args[2..]
                .iter()
                .map(|item| bf_add_one(registry, &key, item))
                .collect();
            resp_array(&replies)
        }
        "BF.EXISTS" => match args.len() {
            3 => {
                let key = lossy(&args[1]);
                let term = parse_term(&args[2]);
                match registry.query(&key, &[term], None) {
                    Ok(docs) => resp_integer(i64::from(!docs.is_empty())),
                    // A missing filter holds nothing.
                    Err(_) => resp_integer(0),
                }
            }
            _ => wrong_arity("bf.exists"),
        },
        _ => resp_error(&format!("unknown command '{}'", lossy(&args[0]))),
    }
}

fn cmd_create(registry: &TenantRegistry, args: &[Vec<u8>]) -> Vec<u8> {
    if args.len() < 2 {
        return wrong_arity("r.create");
    }
    let name = lossy(&args[1]);
    let mut opts = TenantOptions::default();
    for tok in &args[2..] {
        let tok = lossy(tok);
        let (key, value) = match tok.split_once('=') {
            Some(kv) => kv,
            None => (tok.as_str(), ""),
        };
        match key.to_ascii_lowercase().as_str() {
            "fpr" => match value.parse::<f64>() {
                Ok(f) if f > 0.0 && f < 1.0 => opts.fpr = f,
                _ => return resp_error(&format!("invalid FPR '{value}' (want 0 < fpr < 1)")),
            },
            "docs" => match value.parse::<usize>() {
                Ok(n) if n > 0 => opts.max_docs = Some(n),
                _ => return resp_error(&format!("invalid value '{value}' for option 'docs'")),
            },
            "bytes" => match value.parse::<usize>() {
                Ok(n) if n > 0 => opts.max_bytes = Some(n),
                _ => return resp_error(&format!("invalid value '{value}' for option 'bytes'")),
            },
            "tiers" => match value.parse::<usize>() {
                Ok(n) if n > 0 => opts.max_generations = Some(n),
                _ => return resp_error(&format!("invalid value '{value}' for option 'tiers'")),
            },
            _ => return resp_error(&format!("unknown option '{key}' for 'r.create'")),
        }
    }
    match registry.create(&name, opts) {
        Ok(()) => resp_simple("OK"),
        Err(e) => resp_error(&e.to_string()),
    }
}

fn cmd_insertdoc(registry: &TenantRegistry, args: &[Vec<u8>]) -> Vec<u8> {
    if args.len() < 4 {
        return wrong_arity("r.insertdoc");
    }
    let name = lossy(&args[1]);
    let doc = lossy(&args[2]);
    let terms: Vec<u64> = args[3..].iter().map(|t| parse_term(t)).collect();
    match registry.insert_document(&name, &doc, &terms) {
        Ok(id) => resp_integer(i64::from(id)),
        Err(e) => resp_error(&e.to_string()),
    }
}

fn cmd_queryseq(registry: &TenantRegistry, args: &[Vec<u8>]) -> Vec<u8> {
    if args.len() < 4 {
        return wrong_arity("r.queryseq");
    }
    let name = lossy(&args[1]);
    let theta_tok = lossy(&args[2]);
    let theta = match theta_tok.parse::<f64>() {
        Ok(t) if t > 0.0 && t <= 1.0 => t,
        _ => {
            return resp_error(&format!(
                "invalid theta '{theta_tok}' (want 0 < theta <= 1)"
            ))
        }
    };
    let terms: Vec<u64> = args[3..].iter().map(|t| parse_term(t)).collect();
    match registry.query_theta(&name, &terms, theta, None) {
        Ok(docs) => match registry.resolve_names(&name, &docs) {
            Ok(names) => {
                let bulks: Vec<Vec<u8>> = names.iter().map(|n| resp_bulk(n.as_bytes())).collect();
                resp_array(&bulks)
            }
            // The tenant vanished between query and resolve.
            Err(e) => resp_error(&e.to_string()),
        },
        Err(e) => resp_error(&e.to_string()),
    }
}

fn cmd_bf_reserve(registry: &TenantRegistry, args: &[Vec<u8>]) -> Vec<u8> {
    if args.len() != 4 {
        return wrong_arity("bf.reserve");
    }
    let key = lossy(&args[1]);
    let fpr_tok = lossy(&args[2]);
    let fpr = match fpr_tok.parse::<f64>() {
        Ok(f) if f > 0.0 && f < 1.0 => f,
        _ => return resp_error(&format!("invalid FPR '{fpr_tok}' (want 0 < fpr < 1)")),
    };
    let cap_tok = lossy(&args[3]);
    let capacity = match cap_tok.parse::<u64>() {
        Ok(n) if n > 0 => n,
        _ => return resp_error(&format!("invalid capacity '{cap_tok}'")),
    };
    match registry.create(&key, bloom_options(capacity, fpr)) {
        Ok(()) => resp_simple("OK"),
        Err(e) => resp_error(&e.to_string()),
    }
}

/// `BF.ADD` semantics for one item: implicit-create the filter, insert the
/// item as its own single-term document; a duplicate answers `:0` (already
/// present), admission failures answer in-protocol errors.
fn bf_add_one(registry: &TenantRegistry, key: &str, item: &[u8]) -> Vec<u8> {
    if !registry.contains(key) {
        if let Err(e) = registry.create(key, bloom_options(BF_DEFAULT_CAPACITY, BF_DEFAULT_FPR)) {
            // A concurrent create of the same key is fine; anything else
            // (bad name, tenant cap) is the caller's answer.
            if !matches!(e, crate::tenant::TenantError::DuplicateTenant(_)) {
                return resp_error(&e.to_string());
            }
        }
    }
    let doc = lossy(item);
    match registry.insert_document(key, &doc, &[parse_term(item)]) {
        Ok(_) => resp_integer(1),
        Err(crate::tenant::TenantError::Index(RamboError::DuplicateDocument(_))) => resp_integer(0),
        Err(e) => resp_error(&e.to_string()),
    }
}

// ---------------------------------------------------------------------
// Reactor.
// ---------------------------------------------------------------------

/// Options for [`serve_tenant_tcp`].
#[derive(Debug, Clone, Default)]
pub struct TenantServeOptions {
    /// `HELLO` manifest for the binary front (see
    /// [`crate::ServeOptions::manifest`]); `None` answers with the
    /// bad-request status, connection kept open.
    pub manifest: Option<Vec<u8>>,
    /// Tenant served to binary `QUERY`/`MUTATE` frames, which carry no
    /// tenant name. `None` (or a name that is not live) answers queries
    /// with the bad-request status and mutates with an in-protocol
    /// rejection, both keeping the connection open.
    pub binary_tenant: Option<String>,
}

/// Which protocol a connection speaks, fixed by the listener it arrived on.
enum Front {
    Resp,
    Binary,
}

/// Serve a [`TenantRegistry`] until `stop` is set: the RESP front on
/// `resp_listener` and, when given, the existing binary frame protocol on
/// `binary_listener`, both multiplexed by one non-blocking readiness
/// reactor on the calling thread. Idle poll ticks run one step of
/// generation-merge maintenance across the registry instead of sleeping.
///
/// # Errors
/// Propagates listener configuration errors and fatal accept failures (which
/// also raise `stop`); per-connection I/O errors only end that connection.
pub fn serve_tenant_tcp(
    registry: &TenantRegistry,
    resp_listener: TcpListener,
    binary_listener: Option<TcpListener>,
    stop: &AtomicBool,
    options: &TenantServeOptions,
) -> io::Result<()> {
    resp_listener.set_nonblocking(true)?;
    if let Some(l) = &binary_listener {
        l.set_nonblocking(true)?;
    }
    let mut conns: Vec<(Front, Conn)> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let mut progress = false;
        match accept_into(&resp_listener, &mut conns, Front::Resp) {
            Ok(p) => progress |= p,
            Err(e) => {
                stop.store(true, Ordering::Relaxed);
                return Err(e);
            }
        }
        if let Some(l) = &binary_listener {
            match accept_into(l, &mut conns, Front::Binary) {
                Ok(p) => progress |= p,
                Err(e) => {
                    stop.store(true, Ordering::Relaxed);
                    return Err(e);
                }
            }
        }
        for (front, conn) in &mut conns {
            progress |= match front {
                Front::Resp => pump_resp(conn, registry),
                Front::Binary => pump_binary(conn, registry, options),
            };
        }
        conns.retain(|(_, c)| !c.dead);
        if !progress {
            // Nothing on the wire: spend the tick on index upkeep. A merge
            // counts as progress, so a busy registry keeps the loop hot.
            if registry.maintain_once() {
                continue;
            }
            let inflight = conns.iter().any(|(_, c)| !c.outbuf.is_empty());
            std::thread::sleep(if inflight {
                REACTOR_BUSY_SLEEP
            } else {
                REACTOR_IDLE_SLEEP
            });
        }
    }
    Ok(())
}

/// Drain one listener's accept backlog into the connection list.
fn accept_into(
    listener: &TcpListener,
    conns: &mut Vec<(Front, Conn)>,
    front: Front,
) -> io::Result<bool> {
    let mut progress = false;
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Ok(conn) = Conn::new(stream) {
                    conns.push((
                        match front {
                            Front::Resp => Front::Resp,
                            Front::Binary => Front::Binary,
                        },
                        conn,
                    ));
                    progress = true;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(progress),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// One reactor pass over a RESP connection: commands are executed the
/// moment they decode (registry calls are lock-bounded), replies flow in
/// request order by construction.
fn pump_resp(conn: &mut Conn, registry: &TenantRegistry) -> bool {
    let mut progress = conn_read(conn);
    if conn.dead {
        return progress;
    }
    let mut consumed = 0;
    while !conn.closing {
        match parse_resp(&conn.inbuf[consumed..]) {
            RespParse::Incomplete => {
                // A "command" that can never fit the input ceiling will sit
                // incomplete forever; evict it as a framing violation.
                if conn.inbuf.len() - consumed >= MAX_FRAME_BYTES {
                    conn.outbuf
                        .extend_from_slice(&resp_error("Protocol error: request too large"));
                    conn.closing = true;
                    progress = true;
                }
                break;
            }
            RespParse::Protocol { message } => {
                conn.outbuf.extend_from_slice(&resp_error(&message));
                conn.closing = true;
                progress = true;
            }
            RespParse::Command { args, consumed: n } => {
                consumed += n;
                if !args.is_empty() {
                    let reply = execute(registry, &args);
                    conn.outbuf.extend_from_slice(&reply);
                }
                progress = true;
            }
        }
    }
    if consumed > 0 {
        conn.inbuf.drain(..consumed);
    }
    progress | conn_flush(conn)
}

/// One reactor pass over a binary-front connection: same framing as the
/// live server's front, dispatched against the registry's
/// [`TenantServeOptions::binary_tenant`].
fn pump_binary(conn: &mut Conn, registry: &TenantRegistry, options: &TenantServeOptions) -> bool {
    let mut progress = conn_read(conn);
    if conn.dead {
        return progress;
    }
    let mut consumed = 0;
    while !conn.closing {
        let avail = &conn.inbuf[consumed..];
        if avail.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_BYTES {
            conn.outbuf
                .extend_from_slice(&encode_response(STATUS_BAD_REQUEST, 0, &[]));
            conn.closing = true;
            progress = true;
            break;
        }
        if avail.len() < 4 + len {
            break;
        }
        let frame = dispatch_binary(conn, registry, options, consumed + 4, len);
        conn.outbuf.extend_from_slice(&frame);
        consumed += 4 + len;
        progress = true;
    }
    if consumed > 0 {
        conn.inbuf.drain(..consumed);
    }
    progress | conn_flush(conn)
}

/// Dispatch one complete binary frame against the registry, returning the
/// encoded reply. Mirrors the live front's dispatch: every answer is
/// immediate, and only unparseable frames close the connection.
fn dispatch_binary(
    conn: &mut Conn,
    registry: &TenantRegistry,
    options: &TenantServeOptions,
    offset: usize,
    len: usize,
) -> Vec<u8> {
    let payload = &conn.inbuf[offset..offset + len];
    if len == 1 && payload[0] == OPCODE_STATS {
        let text = registry.summary();
        let mut frame = Vec::with_capacity(4 + 1 + text.len());
        frame.extend_from_slice(&(1 + text.len() as u32).to_le_bytes());
        frame.push(STATUS_OK);
        frame.extend_from_slice(text.as_bytes());
        return frame;
    }
    if len == 1 && payload[0] == OPCODE_HELLO {
        return match &options.manifest {
            Some(manifest) => {
                let mut frame = Vec::with_capacity(4 + 1 + manifest.len());
                frame.extend_from_slice(&(1 + manifest.len() as u32).to_le_bytes());
                frame.push(STATUS_OK);
                frame.extend_from_slice(manifest);
                frame
            }
            None => {
                let mut frame = Vec::with_capacity(5);
                frame.extend_from_slice(&1u32.to_le_bytes());
                frame.push(STATUS_BAD_REQUEST);
                frame
            }
        };
    }
    if !payload.is_empty() && payload[0] == OPCODE_MUTATE {
        return match parse_mutate(payload) {
            None => {
                conn.closing = true;
                encode_response(STATUS_BAD_REQUEST, 0, &[])
            }
            Some((name, terms)) => {
                let Some(tenant) = options.binary_tenant.as_deref() else {
                    return encode_mutate_rejected("no tenant bound to the binary front");
                };
                match registry.insert_document(tenant, &name, &terms) {
                    Ok(id) => {
                        let epoch = registry.stats(tenant).map_or(0, |s| s.epoch);
                        encode_mutate_ok(id, epoch)
                    }
                    // Every registry refusal — duplicate, quota, or the
                    // tenant having been dropped mid-session — is a clean
                    // in-protocol rejection; the stream stays intact.
                    Err(e) => encode_mutate_rejected(&e.to_string()),
                }
            }
        };
    }
    match parse_request(payload) {
        None => {
            conn.closing = true;
            encode_response(STATUS_BAD_REQUEST, 0, &[])
        }
        Some((terms, opts)) => {
            let answer = options
                .binary_tenant
                .as_deref()
                .and_then(|tenant| registry.query(tenant, &terms, opts.mode).ok());
            match answer {
                // A well-formed query with no tenant bound (or dropped) is
                // answered bad-request but keeps the connection open, like
                // HELLO on a manifest-less server.
                None => encode_response(STATUS_BAD_REQUEST, 0, &[]),
                Some(docs) => encode_response(STATUS_OK, 0, &docs),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantQuotas;

    fn registry() -> TenantRegistry {
        TenantRegistry::new(
            RamboParams::flat(8, 3, 1 << 10, 2, 7),
            TenantQuotas::default(),
        )
        .unwrap()
    }

    fn run(reg: &TenantRegistry, line: &str) -> Vec<u8> {
        let mut wire = line.as_bytes().to_vec();
        wire.extend_from_slice(b"\r\n");
        match parse_resp(&wire) {
            RespParse::Command { args, consumed } => {
                assert_eq!(consumed, wire.len());
                execute(reg, &args)
            }
            _ => panic!("inline command must parse: {line}"),
        }
    }

    #[test]
    fn multibulk_roundtrip_and_fragmentation() {
        let wire = b"*2\r\n$4\r\nPING\r\n$5\r\nhello\r\n";
        // Every strict prefix is Incomplete, never an error.
        for cut in 0..wire.len() {
            match parse_resp(&wire[..cut]) {
                RespParse::Incomplete => {}
                RespParse::Command { .. } => panic!("prefix {cut} cannot be complete"),
                RespParse::Protocol { message } => panic!("prefix {cut}: {message}"),
            }
        }
        match parse_resp(wire) {
            RespParse::Command { args, consumed } => {
                assert_eq!(consumed, wire.len());
                assert_eq!(args, vec![b"PING".to_vec(), b"hello".to_vec()]);
            }
            _ => panic!("complete frame must parse"),
        }
    }

    #[test]
    fn inline_parsing_splits_on_whitespace() {
        let wire = b"  R.CREATE  idx \t fpr=0.02 \r\nrest";
        match parse_resp(wire) {
            RespParse::Command { args, consumed } => {
                assert_eq!(consumed, wire.len() - 4);
                assert_eq!(args.len(), 3);
                assert_eq!(args[0], b"R.CREATE");
                assert_eq!(args[2], b"fpr=0.02");
            }
            _ => panic!("inline must parse"),
        }
    }

    #[test]
    fn framing_violations_are_protocol_errors() {
        for bad in [
            &b"*abc\r\n"[..],
            b"*2\r\nPING\r\n",
            b"*1\r\n$abc\r\n",
            b"*1\r\n$3\r\nabcX\r\n",
            b"*9999999\r\n",
        ] {
            assert!(
                matches!(parse_resp(bad), RespParse::Protocol { .. }),
                "{bad:?} must be a protocol error"
            );
        }
    }

    #[test]
    fn lone_lf_line_terminator_is_rejected() {
        assert!(matches!(
            parse_resp(b"*1\n$4\nPING\n"),
            RespParse::Protocol { .. }
        ));
    }

    #[test]
    fn command_surface_happy_paths() {
        let reg = registry();
        assert_eq!(run(&reg, "PING"), b"+PONG\r\n");
        assert_eq!(run(&reg, "R.CREATE idx fpr=0.02"), b"+OK\r\n");
        assert_eq!(run(&reg, "R.INSERTDOC idx doc-a alpha beta 42"), b":0\r\n");
        assert_eq!(run(&reg, "R.INSERTDOC idx doc-b beta gamma"), b":1\r\n");
        assert_eq!(
            run(&reg, "R.QUERYSEQ idx 1.0 beta"),
            b"*2\r\n$5\r\ndoc-a\r\n$5\r\ndoc-b\r\n"
        );
        assert_eq!(
            run(&reg, "R.QUERYSEQ idx 1.0 alpha 42"),
            b"*1\r\n$5\r\ndoc-a\r\n"
        );
        assert_eq!(run(&reg, "R.LIST"), b"*1\r\n$3\r\nidx\r\n");
        assert_eq!(run(&reg, "R.DROP idx"), b":1\r\n");
        assert_eq!(run(&reg, "R.DROP idx"), b":0\r\n");
    }

    #[test]
    fn error_taxonomy_is_stable() {
        let reg = registry();
        assert_eq!(run(&reg, "NOSUCH x"), b"-ERR unknown command 'NOSUCH'\r\n");
        assert_eq!(
            run(&reg, "R.CREATE"),
            b"-ERR wrong number of arguments for 'r.create'\r\n"
        );
        assert_eq!(
            run(&reg, "R.CREATE idx fpr=2"),
            b"-ERR invalid FPR '2' (want 0 < fpr < 1)\r\n"
        );
        assert_eq!(run(&reg, "R.CREATE idx"), b"+OK\r\n");
        assert_eq!(
            run(&reg, "R.CREATE idx"),
            b"-ERR tenant 'idx' already exists\r\n"
        );
        assert_eq!(
            run(&reg, "R.INSERTDOC ghost d a b"),
            b"-ERR no such tenant 'ghost'\r\n"
        );
        assert_eq!(
            run(&reg, "R.QUERYSEQ idx 0 a"),
            b"-ERR invalid theta '0' (want 0 < theta <= 1)\r\n"
        );
    }

    #[test]
    fn bf_surface_maps_onto_degenerate_tenants() {
        let reg = registry();
        assert_eq!(run(&reg, "BF.RESERVE filter 0.01 1000"), b"+OK\r\n");
        assert_eq!(run(&reg, "BF.ADD filter apple"), b":1\r\n");
        assert_eq!(run(&reg, "BF.ADD filter apple"), b":0\r\n");
        assert_eq!(
            run(&reg, "BF.MADD filter pear plum apple"),
            b"*3\r\n:1\r\n:1\r\n:0\r\n"
        );
        assert_eq!(run(&reg, "BF.EXISTS filter pear"), b":1\r\n");
        assert_eq!(run(&reg, "BF.EXISTS filter durian"), b":0\r\n");
        assert_eq!(run(&reg, "BF.EXISTS missing pear"), b":0\r\n");
        // Implicit create on first ADD.
        assert_eq!(run(&reg, "BF.ADD fresh kiwi"), b":1\r\n");
        assert_eq!(run(&reg, "BF.EXISTS fresh kiwi"), b":1\r\n");
    }

    #[test]
    fn bf_capacity_maps_to_doc_quota() {
        let reg = registry();
        assert_eq!(run(&reg, "BF.RESERVE small 0.01 2"), b"+OK\r\n");
        assert_eq!(run(&reg, "BF.ADD small a"), b":1\r\n");
        assert_eq!(run(&reg, "BF.ADD small b"), b":1\r\n");
        let reply = run(&reg, "BF.ADD small c");
        let text = String::from_utf8(reply).unwrap();
        assert!(
            text.starts_with("-ERR quota exceeded"),
            "full filter must reject in-protocol: {text}"
        );
    }

    #[test]
    fn queryseq_theta_counts_fractions() {
        let reg = registry();
        assert_eq!(run(&reg, "R.CREATE idx"), b"+OK\r\n");
        assert_eq!(run(&reg, "R.INSERTDOC idx d0 a b c d"), b":0\r\n");
        assert_eq!(run(&reg, "R.INSERTDOC idx d1 a b x y"), b":1\r\n");
        // All four terms: only d0.
        assert_eq!(
            run(&reg, "R.QUERYSEQ idx 1.0 a b c d"),
            b"*1\r\n$2\r\nd0\r\n"
        );
        // Half the terms: both.
        assert_eq!(
            run(&reg, "R.QUERYSEQ idx 0.5 a b c d"),
            b"*2\r\n$2\r\nd0\r\n$2\r\nd1\r\n"
        );
    }
}
