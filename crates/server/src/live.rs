//! The mutable-index server: live inserts over an LSM-style
//! [`GenerationalIndex`], with a background merge thread and a TCP front
//! that accepts the `MUTATE` opcode.
//!
//! Where [`crate::Server`] serves a frozen tier [`crate::Catalog`],
//! [`LiveServer`] owns a [`GenerationalIndex`] behind one `RwLock`:
//!
//! * **Inserts** take the write lock briefly — the memtable is small by
//!   construction (it seals at the [`rambo_core::GenerationConfig`]
//!   budget), so even an insert that triggers an auto-seal serializes only
//!   the memtable.
//! * **Queries** take the read lock and OR-fold answers across memtable +
//!   generations — bit-identical to a monolithic rebuild, so a reader never
//!   observes a half-merged state.
//! * **Merges** run on a background thread in three phases: *plan* under
//!   the read lock (cloning the two generations' `Arc`s into a
//!   [`rambo_core::MergeJob`]), the heavy OR-fold + serialize **off-lock**,
//!   then *install* under a brief write lock that validates the job is
//!   still current before splicing. Writers and readers proceed during the
//!   fold; only the splice excludes them.
//!
//! Every structural change advances the index **epoch**; every insert bumps
//! the [`ResultCache`] version (a new document can match any cached query),
//! while merge installs do not (they are answer-preserving by the
//! bit-identity property, so cached entries stay correct).

use crate::cache::ResultCache;
use crate::server::ServerConfig;
use crate::tcp::{
    conn_flush, conn_read, encode_mutate_ok, encode_mutate_rejected, encode_response, parse_mutate,
    parse_request, Conn, PendingFrame, ServeOptions, MAX_FRAME_BYTES, MAX_PIPELINED, OPCODE_HELLO,
    OPCODE_MUTATE, OPCODE_STATS, REACTOR_BUSY_SLEEP, REACTOR_IDLE_SLEEP, STATUS_BAD_REQUEST,
    STATUS_OK,
};
use rambo_core::{
    canonical_query_key, DocId, GenerationalIndex, QueryContext, QueryMode, RamboError, RamboParams,
};
use rambo_workloads::stats::LatencyHistogram;
use std::fmt;
use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Cap on pooled query scratch contexts (more concurrent queries than this
/// allocate a fresh context and drop it).
const CTX_POOL_CAP: usize = 16;

/// Merge-thread poll cadence when idle: seals signal the thread promptly
/// via the condvar; the timeout only bounds how stale a missed signal goes.
const MERGE_POLL: Duration = Duration::from_millis(2);

/// State shared between handles and the merge thread.
struct LiveShared {
    index: RwLock<GenerationalIndex>,
    cache: Option<ResultCache>,
    default_mode: QueryMode,
    stop: AtomicBool,
    /// Set under the mutex when a seal makes merge work likely; the merge
    /// thread clears it before scanning.
    merge_due: Mutex<bool>,
    merge_cv: Condvar,
    inserts: AtomicU64,
    queries: AtomicU64,
    seals: AtomicU64,
    merges: AtomicU64,
    read_latency: LatencyHistogram,
    write_latency: LatencyHistogram,
    ctx_pool: Mutex<Vec<QueryContext>>,
}

/// Counters and shape of a [`LiveServer`] run, snapshotted by
/// [`LiveHandle::stats`] and returned by [`LiveServer::scope`].
#[derive(Debug, Clone)]
pub struct LiveStats {
    /// Documents inserted.
    pub inserts: u64,
    /// Queries answered (cache hits included).
    pub queries: u64,
    /// Memtable seals (auto + forced).
    pub seals: u64,
    /// Generation merges installed.
    pub merges: u64,
    /// Structural epoch at snapshot time.
    pub epoch: u64,
    /// Total documents indexed.
    pub documents: usize,
    /// Live immutable generations.
    pub generations: usize,
    /// Documents in the mutable memtable.
    pub memtable_documents: usize,
    /// Read-path latency: p50.
    pub read_p50: Duration,
    /// Read-path latency: p99.
    pub read_p99: Duration,
    /// Write-path latency: p99 (includes auto-seal inserts).
    pub write_p99: Duration,
    /// Result-cache counters, when the cache is enabled.
    pub cache: Option<crate::cache::CacheStats>,
}

impl fmt::Display for LiveStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "live index: {} docs ({} generations + {} memtable), epoch {}",
            self.documents, self.generations, self.memtable_documents, self.epoch
        )?;
        writeln!(
            f,
            "  inserts {} (seals {}, merges {}), queries {}",
            self.inserts, self.seals, self.merges, self.queries
        )?;
        writeln!(
            f,
            "  read p50 {:?} p99 {:?}, write p99 {:?}",
            self.read_p50, self.read_p99, self.write_p99
        )?;
        if let Some(cache) = &self.cache {
            writeln!(
                f,
                "  result cache: {:.1}% hit, version {}",
                cache.hit_ratio() * 100.0,
                cache.version
            )?;
        }
        Ok(())
    }
}

/// The mutable-index server. Scope-shaped like [`crate::Server`]:
/// [`LiveServer::scope`] owns the index and the background merge thread for
/// the duration of the closure, hands out a [`LiveHandle`], and returns the
/// final [`LiveStats`] after the merge thread has quiesced.
///
/// ```
/// use rambo_core::RamboParams;
/// use rambo_server::{LiveServer, ServerConfig};
///
/// let params = RamboParams::flat(64, 3, 1 << 10, 2, 7);
/// let ((), stats) = LiveServer::scope(params, ServerConfig::default(), |handle| {
///     let id = handle.insert_document("genome-1", &[1, 2, 3]).unwrap();
///     assert!(handle.query(&[2], None).contains(&id));
/// })
/// .unwrap();
/// assert_eq!(stats.inserts, 1);
/// ```
pub struct LiveServer;

impl LiveServer {
    /// Run `f` against a fresh mutable index configured by
    /// `config.generations`, with the background merge thread live for the
    /// closure's duration. Returns the closure's value and the final stats.
    ///
    /// # Errors
    /// [`RamboError::InvalidParams`] when `params` or the generation config
    /// are degenerate.
    pub fn scope<T>(
        params: RamboParams,
        config: ServerConfig,
        f: impl FnOnce(&LiveHandle<'_>) -> T,
    ) -> Result<(T, LiveStats), RamboError> {
        let shared = LiveShared {
            index: RwLock::new(GenerationalIndex::new(params, config.generations)?),
            cache: (config.result_cache_bytes > 0)
                .then(|| ResultCache::new(config.result_cache_bytes)),
            default_mode: config.default_mode,
            stop: AtomicBool::new(false),
            merge_due: Mutex::new(false),
            merge_cv: Condvar::new(),
            inserts: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            seals: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            read_latency: LatencyHistogram::new(),
            write_latency: LatencyHistogram::new(),
            ctx_pool: Mutex::new(Vec::new()),
        };
        let out = std::thread::scope(|s| {
            let merger = s.spawn(|| merge_loop(&shared));
            let handle = LiveHandle { shared: &shared };
            let out = f(&handle);
            shared.stop.store(true, Ordering::Relaxed);
            shared.merge_cv.notify_all();
            merger.join().expect("merge thread must not panic");
            out
        });
        let stats = snapshot(&shared);
        Ok((out, stats))
    }
}

/// Handle to a running [`LiveServer`]: thread-safe inserts, queries, stats
/// and maintenance nudges. Clone-free — share by reference (it is `Sync`).
pub struct LiveHandle<'scope> {
    shared: &'scope LiveShared,
}

impl LiveHandle<'_> {
    /// Insert a document with its term set, returning its global id
    /// (stable across all future seals and merges). Takes the write lock
    /// briefly; an insert that pushes the memtable over budget seals it
    /// inline (still cheap — the memtable is small by construction) and
    /// wakes the merge thread. Bumps the result-cache version: a new
    /// document can match any cached query.
    ///
    /// # Errors
    /// [`RamboError::DuplicateDocument`] when the name exists in any
    /// component; sealing errors propagate.
    pub fn insert_document(&self, name: &str, terms: &[u64]) -> Result<DocId, RamboError> {
        let start = Instant::now();
        let (id, sealed) = {
            let mut index = self.shared.index.write().expect("index lock");
            let epoch_before = index.epoch();
            let id = index.insert_document(name, terms)?;
            (id, index.epoch() != epoch_before)
        };
        self.shared.inserts.fetch_add(1, Ordering::Relaxed);
        if sealed {
            self.shared.seals.fetch_add(1, Ordering::Relaxed);
            self.nudge_merger();
        }
        if let Some(cache) = &self.shared.cache {
            cache.bump_version();
        }
        self.shared.write_latency.record(start.elapsed());
        Ok(id)
    }

    /// Query across memtable + generations (bit-identical to a monolithic
    /// rebuild), via the result cache when enabled. `None` uses the
    /// configured default mode.
    #[must_use]
    pub fn query(&self, terms: &[u64], mode: Option<QueryMode>) -> Vec<DocId> {
        let start = Instant::now();
        let mode = mode.unwrap_or(self.shared.default_mode);
        let mode_lane = match mode {
            QueryMode::Full => 0,
            QueryMode::Sparse => 1,
        };
        let key = canonical_query_key(terms);
        let mut version = 0;
        if let Some(cache) = &self.shared.cache {
            version = cache.version();
            if let Some(docs) = cache.get(mode_lane, key, version) {
                self.shared.queries.fetch_add(1, Ordering::Relaxed);
                self.shared.read_latency.record(start.elapsed());
                return docs;
            }
            cache.record_miss();
        }
        let mut ctx = self
            .shared
            .ctx_pool
            .lock()
            .expect("ctx pool")
            .pop()
            .unwrap_or_default();
        let docs = {
            let index = self.shared.index.read().expect("index lock");
            index.query_terms_with(terms, mode, &mut ctx)
        };
        {
            let mut pool = self.shared.ctx_pool.lock().expect("ctx pool");
            if pool.len() < CTX_POOL_CAP {
                pool.push(ctx);
            }
        }
        if let Some(cache) = &self.shared.cache {
            // Keyed to the version read before evaluation: an insert that
            // raced this query bumped the version, so the entry can never
            // serve a reader who should see the new document.
            cache.insert(mode_lane, key, version, &docs);
        }
        self.shared.queries.fetch_add(1, Ordering::Relaxed);
        self.shared.read_latency.record(start.elapsed());
        docs
    }

    /// Seal the memtable now regardless of budget (no-op when empty) and
    /// wake the merge thread. Returns whether a seal happened.
    ///
    /// # Errors
    /// Serialization failures propagate.
    pub fn force_seal(&self) -> Result<bool, RamboError> {
        let sealed = self
            .shared
            .index
            .write()
            .expect("index lock")
            .seal_memtable()?;
        if sealed {
            self.shared.seals.fetch_add(1, Ordering::Relaxed);
            self.nudge_merger();
        }
        Ok(sealed)
    }

    /// Block until no merge is due (the background thread may be mid-fold;
    /// this runs the merges inline instead of waiting for it). Test and
    /// benchmark hook.
    ///
    /// # Errors
    /// Merge failures propagate.
    pub fn drain_merges(&self) -> Result<(), RamboError> {
        loop {
            let job = {
                let index = self.shared.index.read().expect("index lock");
                index.merge_job()
            };
            let Some(job) = job else { return Ok(()) };
            let merged = job.run()?;
            let installed = self
                .shared
                .index
                .write()
                .expect("index lock")
                .install_merged(&job, merged);
            if installed {
                self.shared.merges.fetch_add(1, Ordering::Relaxed);
            }
            // Not installed: the background thread won the race; loop and
            // re-plan against the new shape.
        }
    }

    /// Current structural epoch (advances on every seal and merge install).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.shared.index.read().expect("index lock").epoch()
    }

    /// Total documents indexed.
    #[must_use]
    pub fn num_documents(&self) -> usize {
        self.shared
            .index
            .read()
            .expect("index lock")
            .num_documents()
    }

    /// Global id of `name`, if indexed.
    #[must_use]
    pub fn document_id(&self, name: &str) -> Option<DocId> {
        self.shared
            .index
            .read()
            .expect("index lock")
            .document_id(name)
    }

    /// Collapse the live index into one monolithic [`rambo_core::Rambo`]
    /// snapshot — the bridge back to the batch pipeline: feed the result
    /// to [`Catalog::builder`](crate::Catalog::builder) (via
    /// [`CatalogBuilder::base`](crate::CatalogBuilder::base)) to freeze
    /// the accumulated documents into fold-over serving tiers.
    ///
    /// # Errors
    /// Merge failures propagate.
    pub fn freeze(&self) -> Result<rambo_core::Rambo, RamboError> {
        self.shared
            .index
            .read()
            .expect("index lock")
            .to_monolithic()
    }

    /// Point-in-time stats snapshot.
    #[must_use]
    pub fn stats(&self) -> LiveStats {
        snapshot(self.shared)
    }

    fn nudge_merger(&self) {
        *self.shared.merge_due.lock().expect("merge signal") = true;
        self.shared.merge_cv.notify_all();
    }
}

fn snapshot(shared: &LiveShared) -> LiveStats {
    let (epoch, documents, generations, memtable_documents) = {
        let index = shared.index.read().expect("index lock");
        (
            index.epoch(),
            index.num_documents(),
            index.num_generations(),
            index.memtable_documents(),
        )
    };
    LiveStats {
        inserts: shared.inserts.load(Ordering::Relaxed),
        queries: shared.queries.load(Ordering::Relaxed),
        seals: shared.seals.load(Ordering::Relaxed),
        merges: shared.merges.load(Ordering::Relaxed),
        epoch,
        documents,
        generations,
        memtable_documents,
        read_p50: shared.read_latency.quantile(0.50),
        read_p99: shared.read_latency.quantile(0.99),
        write_p99: shared.write_latency.quantile(0.99),
        cache: shared.cache.as_ref().map(ResultCache::stats),
    }
}

/// Background merge thread: wait for a seal signal (or the poll timeout),
/// then plan under the read lock, OR-fold off-lock, and install under a
/// brief validated write lock, until the tiers are quiescent.
fn merge_loop(shared: &LiveShared) {
    while !shared.stop.load(Ordering::Relaxed) {
        {
            let due = shared.merge_due.lock().expect("merge signal");
            let (mut due, _) = shared
                .merge_cv
                .wait_timeout_while(due, MERGE_POLL, |due| {
                    !*due && !shared.stop.load(Ordering::Relaxed)
                })
                .expect("merge signal");
            *due = false;
        }
        loop {
            if shared.stop.load(Ordering::Relaxed) {
                return;
            }
            let job = {
                let index = shared.index.read().expect("index lock");
                index.merge_job()
            };
            let Some(job) = job else { break };
            // The heavy OR-fold + serialize runs with no lock held; readers
            // and writers proceed against the old shape.
            let Ok(merged) = job.run() else { break };
            let installed = shared
                .index
                .write()
                .expect("index lock")
                .install_merged(&job, merged);
            if installed {
                shared.merges.fetch_add(1, Ordering::Relaxed);
                // No cache bump: a merge is answer-preserving (bit-identity
                // with the monolith holds before and after), so cached
                // entries remain correct.
            }
        }
    }
}

/// Serve a [`LiveHandle`] over TCP until `stop` is set: the same
/// single-threaded readiness reactor as [`crate::serve_tcp`] (same framing,
/// `QUERY`/`STATS`/`HELLO` opcodes), plus the `MUTATE` opcode for live
/// inserts. Replies are computed inline during dispatch — inserts and
/// OR-fold queries are lock-bounded, not queue-bounded — so every pending
/// frame is ready the moment it is decoded.
///
/// # Errors
/// Propagates listener configuration errors and fatal accept failures;
/// per-connection I/O errors only end that connection.
pub fn serve_live_tcp(
    handle: &LiveHandle<'_>,
    listener: TcpListener,
    stop: &AtomicBool,
    options: &ServeOptions,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<Conn> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let mut progress = false;
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if let Ok(conn) = Conn::new(stream) {
                        conns.push(conn);
                        progress = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    stop.store(true, Ordering::Relaxed);
                    return Err(e);
                }
            }
        }
        for conn in &mut conns {
            progress |= pump_live(conn, handle, options);
        }
        conns.retain(|c| !c.dead);
        if !progress {
            let inflight = conns.iter().any(|c| !c.pending.is_empty());
            std::thread::sleep(if inflight {
                REACTOR_BUSY_SLEEP
            } else {
                REACTOR_IDLE_SLEEP
            });
        }
    }
    Ok(())
}

/// One reactor pass over a live-server connection. Mirrors the catalog
/// front's `pump`, minus reply polling: live dispatch answers immediately.
fn pump_live(conn: &mut Conn, handle: &LiveHandle<'_>, options: &ServeOptions) -> bool {
    let mut progress = conn_read(conn);
    if conn.dead {
        return progress;
    }

    let mut consumed = 0;
    while !conn.closing && conn.pending.len() < MAX_PIPELINED {
        let avail = &conn.inbuf[consumed..];
        if avail.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_BYTES {
            conn.pending.push_back(PendingFrame::Ready(encode_response(
                STATUS_BAD_REQUEST,
                0,
                &[],
            )));
            conn.closing = true;
            break;
        }
        if avail.len() < 4 + len {
            break;
        }
        let frame = dispatch_live(conn, handle, options, consumed + 4, len);
        conn.pending.push_back(PendingFrame::Ready(frame));
        consumed += 4 + len;
        progress = true;
    }
    if consumed > 0 {
        conn.inbuf.drain(..consumed);
    }

    // Every live reply is already encoded; drain them in order.
    let mut pending = std::mem::take(&mut conn.pending);
    for front in pending.drain(..) {
        if let PendingFrame::Ready(bytes) = front {
            conn.outbuf.extend_from_slice(&bytes);
            progress = true;
        }
    }
    conn.pending = pending;

    progress | conn_flush(conn)
}

/// Dispatch one complete frame against the live handle, returning the
/// encoded reply.
fn dispatch_live(
    conn: &mut Conn,
    handle: &LiveHandle<'_>,
    options: &ServeOptions,
    offset: usize,
    len: usize,
) -> Vec<u8> {
    let payload = &conn.inbuf[offset..offset + len];
    if len == 1 && payload[0] == OPCODE_STATS {
        let text = handle.stats().to_string();
        let mut frame = Vec::with_capacity(4 + 1 + text.len());
        frame.extend_from_slice(&(1 + text.len() as u32).to_le_bytes());
        frame.push(STATUS_OK);
        frame.extend_from_slice(text.as_bytes());
        return frame;
    }
    if len == 1 && payload[0] == OPCODE_HELLO {
        return match &options.manifest {
            Some(manifest) => {
                let mut frame = Vec::with_capacity(4 + 1 + manifest.len());
                frame.extend_from_slice(&(1 + manifest.len() as u32).to_le_bytes());
                frame.push(STATUS_OK);
                frame.extend_from_slice(manifest);
                frame
            }
            None => {
                let mut frame = Vec::with_capacity(5);
                frame.extend_from_slice(&1u32.to_le_bytes());
                frame.push(STATUS_BAD_REQUEST);
                frame
            }
        };
    }
    if !payload.is_empty() && payload[0] == OPCODE_MUTATE {
        return match parse_mutate(payload) {
            None => {
                conn.closing = true;
                encode_response(STATUS_BAD_REQUEST, 0, &[])
            }
            Some((name, terms)) => match handle.insert_document(&name, &terms) {
                Ok(id) => encode_mutate_ok(id, handle.epoch()),
                // A refused insert (duplicate) is a clean, in-protocol
                // answer: the stream is intact, the connection stays open.
                Err(e) => encode_mutate_rejected(&e.to_string()),
            },
        };
    }
    match parse_request(payload) {
        None => {
            conn.closing = true;
            encode_response(STATUS_BAD_REQUEST, 0, &[])
        }
        Some((terms, opts)) => {
            let docs = handle.query(&terms, opts.mode);
            // The live index has no fold tiers; report tier 0.
            encode_response(STATUS_OK, 0, &docs)
        }
    }
}
