//! The fold-over tier catalog: several serialized versions of one RAMBO
//! index — the base build plus progressively folded copies — opened
//! zero-copy out of a single shared buffer, with an FPR-budget routing rule.
//!
//! This is the serving-side half of the paper's §5.3 / Table 4 workflow:
//! "a one-time processing allows us to create several versions of RAMBO
//! with varying sizes and FP rates". Construction writes the versions
//! back-to-back ([`rambo_core::Rambo::fold_catalog_bytes`]); the catalog
//! walks the concatenation with [`Rambo::open_view_at`], so all tiers
//! *borrow* their filter payloads from one `Arc<[u8]>` — opening a catalog
//! costs metadata, not payload, no matter how many tiers it holds.

use rambo_bitvec::{BlockCacheCounters, BlockCacheSnapshot, PagedFile};
use rambo_core::{theory, GenerationalIndex, Rambo, RamboError, TierCompression};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Default block-cache budget for file-backed catalogs opened through
/// [`CatalogBuilder`] when [`CatalogBuilder::cache_bytes`] is not called.
pub const DEFAULT_CACHE_BYTES: usize = 64 << 20;

/// Errors from catalog construction — one typed enum instead of the ad-hoc
/// `InvalidParams(String)`/`Decode(..)` stuffing the legacy constructors
/// did. Converts into [`RamboError`] (preserving the legacy constructors'
/// error shapes) so either error type flows through `?`.
#[derive(Debug)]
pub enum CatalogError {
    /// [`CatalogBuilder::build`] was called without a source.
    MissingSource,
    /// A live-index source ([`CatalogBuilder::base`] /
    /// [`CatalogBuilder::generational`]) needs a tier spec
    /// ([`CatalogBuilder::tier_buckets`], [`CatalogBuilder::tiers`] or
    /// [`CatalogBuilder::halving`]) to know what to fold.
    MissingTiers,
    /// A tier spec was combined with an already-serialized source
    /// (buffer/file) — those carry their tier layout in-band.
    TiersWithSerializedSource,
    /// The buffer or file held no serialized tiers.
    Empty,
    /// Tier bucket counts must strictly shrink (the FPR-routing rule
    /// depends on that order).
    NotShrinking {
        /// Position of the offending tier.
        tier: usize,
        /// Its bucket count.
        buckets: u64,
        /// The preceding tier's bucket count.
        prev: u64,
    },
    /// I/O failure opening a catalog file.
    Io(std::io::Error),
    /// Core index failure (decode, fold, parameter validation).
    Index(RamboError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingSource => write!(f, "catalog builder needs a source"),
            Self::MissingTiers => write!(
                f,
                "folding a live index needs a tier spec (tier_buckets/tiers/halving)"
            ),
            Self::TiersWithSerializedSource => write!(
                f,
                "tier specs only apply to live-index sources; serialized catalogs carry their tiers"
            ),
            Self::Empty => write!(f, "catalog source holds no tiers"),
            Self::NotShrinking {
                tier,
                buckets,
                prev,
            } => write!(
                f,
                "catalog tiers must shrink: tier {tier} has {buckets} buckets after {prev}"
            ),
            Self::Io(e) => write!(f, "catalog file: {e}"),
            Self::Index(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Index(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RamboError> for CatalogError {
    fn from(e: RamboError) -> Self {
        Self::Index(e)
    }
}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// The legacy constructors promised [`RamboError`]; this conversion keeps
/// their error shapes exactly (shape errors → `InvalidParams`, I/O →
/// `Decode`, core errors pass through) while the builder reports the richer
/// [`CatalogError`].
impl From<CatalogError> for RamboError {
    fn from(e: CatalogError) -> Self {
        match e {
            CatalogError::Index(inner) => inner,
            CatalogError::Io(io) => RamboError::Decode(rambo_bitvec::DecodeError::new(format!(
                "catalog open: {io}"
            ))),
            other => RamboError::InvalidParams(other.to_string()),
        }
    }
}

/// Term multiplicity assumed when predicting a tier's false-positive rate.
/// Serving cannot know each query term's true document multiplicity `V`, so
/// the catalog quotes Lemma 4.1 at `V = 1` (the rare-term case the paper's
/// k-mer workloads are dominated by); the prediction is used for *relative*
/// tier ordering, which is unaffected by the choice of `V`.
const CATALOG_FPR_V: u32 = 1;

/// Description of one catalog tier (one fold-over version of the index).
#[derive(Debug, Clone, PartialEq)]
pub struct TierInfo {
    /// Position in the catalog: 0 is the unfolded (largest, most accurate)
    /// version; higher tiers are smaller and less accurate.
    pub tier: usize,
    /// How many times this version was folded from the base build.
    pub fold_factor: u32,
    /// Bucket count `B` of this version.
    pub buckets: u64,
    /// Byte offset of the serialized version inside the catalog buffer.
    pub offset: usize,
    /// Serialized length in bytes.
    pub encoded_len: usize,
    /// In-memory payload size ([`Rambo::size_bytes`]).
    pub size_bytes: usize,
    /// Predicted per-BFU false-positive rate: the §2.1 estimate
    /// `(1 − e^{−ηn/m})^η` at the tier's geometry and mean per-bucket key
    /// count derived from the recorded insertion total. Computed from
    /// **metadata only** — opening a catalog never scans filter payloads
    /// (that would defeat the zero-copy open; the measured alternative is
    /// [`Rambo::estimated_bfu_fpr`] on demand). Conservative: the insertion
    /// total counts duplicates that Bloom insertion dedupes.
    pub bfu_fpr: f64,
    /// Predicted per-document query FPR — Lemma 4.1 at the predicted
    /// per-BFU rate and `V = 1`. Strictly grows with the fold factor
    /// (folding doubles per-bucket keys and shrinks `B`); tier selection
    /// compares budgets to this.
    pub predicted_fpr: f64,
}

/// One tier: the opened index plus its description. Paged tiers also carry
/// the block-cache counters their payload faults are charged to.
#[derive(Debug)]
struct Tier {
    index: Rambo,
    info: TierInfo,
    block_counters: Option<Arc<BlockCacheCounters>>,
}

/// Where a catalog's tier payloads live.
#[derive(Debug)]
enum Source {
    /// One shared in-memory buffer; tiers borrow their payloads zero-copy.
    Buffer(Arc<[u8]>),
    /// A file on disk; dense tier payloads fault through the shared block
    /// cache on demand. The `Arc` is held only to pin the file (and its
    /// block cache) to the catalog's lifetime — every paged tier carries
    /// its own clone, so nothing reads this field directly.
    Paged(#[allow(dead_code)] Arc<PagedFile>),
}

/// An ordered set of fold-over versions of one index, sharing a single
/// backing buffer, with FPR-budget tier selection.
///
/// Tier 0 is the most accurate (lowest FPR, largest footprint); each
/// subsequent tier is a further-folded, strictly smaller version. A request
/// carrying an FPR budget is routed to the *smallest* tier whose predicted
/// FPR still satisfies the budget — loosening the budget frees memory
/// bandwidth, tightening it buys accuracy, exactly the trade Table 4
/// quantifies.
#[derive(Debug)]
pub struct Catalog {
    source: Source,
    tiers: Vec<Tier>,
}

impl Catalog {
    /// Start a [`CatalogBuilder`] — the one entry point behind every way of
    /// making a catalog (in-memory buffer, file-backed paged open, folding a
    /// live [`Rambo`], or snapshotting a [`GenerationalIndex`]).
    ///
    /// ```
    /// use rambo_core::{Rambo, RamboParams};
    /// use rambo_server::Catalog;
    ///
    /// let mut index = Rambo::new(RamboParams::flat(16, 3, 1 << 12, 2, 7)).unwrap();
    /// for d in 0..24u64 {
    ///     index
    ///         .insert_document(&format!("doc{d}"), (0..40).map(|t| d << 16 | t))
    ///         .unwrap();
    /// }
    /// let catalog = Catalog::builder().base(&index).halving(1).build().unwrap();
    /// assert_eq!(catalog.len(), 2);
    /// ```
    #[must_use]
    pub fn builder<'a>() -> CatalogBuilder<'a> {
        CatalogBuilder::new()
    }

    /// Build a catalog from a live index: serialize `base` folded to each
    /// geometry in `tier_buckets` (strictly decreasing; see
    /// [`Rambo::fold_catalog_bytes`]) and re-open every version zero-copy
    /// from the concatenated buffer.
    ///
    /// Deprecated: prefer [`Catalog::builder`] —
    /// `Catalog::builder().base(base).tier_buckets(tier_buckets).build()`.
    /// Kept as a thin wrapper for source compatibility.
    ///
    /// # Errors
    /// Everything [`Rambo::fold_catalog_bytes`] and [`Catalog::open`] can
    /// raise.
    pub fn build(base: &Rambo, tier_buckets: &[u64]) -> Result<Self, RamboError> {
        Self::builder()
            .base(base)
            .tier_buckets(tier_buckets)
            .build()
            .map_err(RamboError::from)
    }

    /// [`Catalog::build`] with a per-tier compression flag
    /// ([`rambo_core::Rambo::fold_catalog_bytes_with`]): `Rrr` tiers
    /// serialize and serve RRR-compressed, `Dense` tiers keep the zero-copy
    /// word layout. The usual serving shape compresses the cold unfolded
    /// tier 0 (large and sparse — where RRR wins) and keeps hot folded
    /// tiers dense on the kernel fast path.
    ///
    /// Deprecated: prefer [`Catalog::builder`] —
    /// `Catalog::builder().base(base).tiers(tiers).build()`.
    ///
    /// # Errors
    /// Everything [`Catalog::build`] can raise.
    pub fn build_with(base: &Rambo, tiers: &[(u64, TierCompression)]) -> Result<Self, RamboError> {
        Self::builder()
            .base(base)
            .tiers(tiers)
            .build()
            .map_err(RamboError::from)
    }

    /// [`Catalog::build`] with `levels` halvings from the base geometry:
    /// tiers `B, B/2, …, B/2^levels`.
    ///
    /// Deprecated: prefer [`Catalog::builder`] —
    /// `Catalog::builder().base(base).halving(levels).build()`.
    ///
    /// # Errors
    /// [`RamboError::FoldUnavailable`] when a halving is unreachable, plus
    /// everything [`Catalog::build`] can raise.
    pub fn build_halving(base: &Rambo, levels: u32) -> Result<Self, RamboError> {
        Self::builder()
            .base(base)
            .halving(levels)
            .build()
            .map_err(RamboError::from)
    }

    /// Open a catalog from its serialized form: a buffer holding one or
    /// more concatenated index versions (the [`Rambo::fold_catalog_bytes`]
    /// layout — typically a memory-mapped catalog file). Every tier borrows
    /// its payload from `buf`.
    ///
    /// ```
    /// use rambo_core::{Rambo, RamboParams};
    /// use rambo_server::Catalog;
    /// use std::sync::Arc;
    ///
    /// let mut index = Rambo::new(RamboParams::flat(16, 3, 1 << 12, 2, 7)).unwrap();
    /// for d in 0..24u64 {
    ///     index
    ///         .insert_document(&format!("doc{d}"), (0..40).map(|t| d << 16 | t))
    ///         .unwrap();
    /// }
    /// // Serialize tiers B = 16 and B = 8 back-to-back, then re-open them
    /// // zero-copy from one shared buffer (persist `bytes` to make a file).
    /// let bytes: Arc<[u8]> = index.fold_catalog_bytes(&[16, 8]).unwrap().into();
    /// let catalog = Catalog::open(bytes).unwrap();
    /// assert_eq!(catalog.len(), 2);
    /// assert_eq!(catalog.tier(0).buckets(), 16);
    /// assert!(catalog.info(1).predicted_fpr > catalog.info(0).predicted_fpr);
    /// ```
    ///
    /// Deprecated: prefer [`Catalog::builder`] —
    /// `Catalog::builder().buffer(buf).build()`.
    ///
    /// # Errors
    /// [`RamboError::Decode`] on malformed bytes, and
    /// [`RamboError::InvalidParams`] when the versions are not strictly
    /// shrinking in bucket count (the selection rule needs that order).
    pub fn open(buf: Arc<[u8]>) -> Result<Self, RamboError> {
        Self::open_inner(buf).map_err(RamboError::from)
    }

    fn open_inner(buf: Arc<[u8]>) -> Result<Self, CatalogError> {
        let mut tiers = Vec::new();
        let mut offset = 0;
        while offset < buf.len() {
            let (index, used) = Rambo::open_view_at(&buf, offset)?;
            check_shrinking(&tiers, &index)?;
            let info = tier_info(&index, tiers.len(), offset, used);
            tiers.push(Tier {
                index,
                info,
                block_counters: None,
            });
            offset += used;
        }
        if tiers.is_empty() {
            return Err(CatalogError::Empty);
        }
        Ok(Self {
            source: Source::Buffer(buf),
            tiers,
        })
    }

    /// Open a catalog **file** reading only metadata: each tier's prelude,
    /// assignment vectors and matrix headers are parsed, while dense filter
    /// payloads stay on disk and are faulted in row-aligned blocks through
    /// one shared, byte-budgeted block cache (`cache_bytes` total) on first
    /// probe. Open time is O(metadata) — independent of how many gigabytes
    /// of filter payload the tiers hold. Per-tier cache traffic is
    /// observable via [`Catalog::block_cache_stats`].
    ///
    /// RRR-compressed tiers in the file decode eagerly at open (they are
    /// small by construction) and serve from memory, uncached.
    ///
    /// Deprecated: prefer [`Catalog::builder`] —
    /// `Catalog::builder().file(path).cache_bytes(n).build()`.
    ///
    /// # Errors
    /// I/O failures surface as [`RamboError::Decode`], plus everything
    /// [`Catalog::open`] can raise on malformed metadata.
    pub fn open_paged(path: impl AsRef<Path>, cache_bytes: usize) -> Result<Self, RamboError> {
        Self::open_paged_inner(path.as_ref(), cache_bytes).map_err(RamboError::from)
    }

    fn open_paged_inner(path: &Path, cache_bytes: usize) -> Result<Self, CatalogError> {
        let file = PagedFile::open(path, cache_bytes)?;
        let mut tiers = Vec::new();
        let mut offset = 0u64;
        while offset < file.len() {
            let counters = Arc::new(BlockCacheCounters::new());
            let (index, used) = Rambo::open_paged_at(&file, offset, &counters)?;
            check_shrinking(&tiers, &index)?;
            let info = tier_info(&index, tiers.len(), offset as usize, used as usize);
            // A tier that decoded eagerly (RRR) never touches the cache;
            // only paged tiers report counters.
            let block_counters = index.tables_paged().then_some(counters);
            tiers.push(Tier {
                index,
                info,
                block_counters,
            });
            offset += used;
        }
        if tiers.is_empty() {
            return Err(CatalogError::Empty);
        }
        Ok(Self {
            source: Source::Paged(file),
            tiers,
        })
    }

    /// Number of tiers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// Always false — [`Catalog::open`] rejects empty buffers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// The shared backing buffer (for persisting: write these bytes to disk
    /// and re-open them with [`Catalog::open`] or [`Catalog::open_paged`]).
    ///
    /// # Panics
    /// Panics for a paged catalog — its payloads live in the file, not in
    /// memory; persist by copying the file.
    #[must_use]
    pub fn buffer(&self) -> &Arc<[u8]> {
        match &self.source {
            Source::Buffer(buf) => buf,
            Source::Paged(_) => panic!("paged catalogs have no in-memory buffer"),
        }
    }

    /// True when this catalog serves payloads from a file through the
    /// block cache ([`Catalog::open_paged`]).
    #[must_use]
    pub fn is_paged(&self) -> bool {
        matches!(self.source, Source::Paged(_))
    }

    /// Block-cache traffic charged to one tier's payload faults, or `None`
    /// for tiers that serve from memory (buffer-backed catalogs, and
    /// RRR-compressed tiers of a paged catalog).
    ///
    /// # Panics
    /// Panics when `tier` is out of range.
    #[must_use]
    pub fn block_cache_stats(&self, tier: usize) -> Option<BlockCacheSnapshot> {
        self.tiers[tier]
            .block_counters
            .as_ref()
            .map(|c| c.snapshot())
    }

    /// A tier's index.
    ///
    /// # Panics
    /// Panics when `tier` is out of range.
    #[must_use]
    pub fn tier(&self, tier: usize) -> &Rambo {
        &self.tiers[tier].index
    }

    /// A tier's description.
    ///
    /// # Panics
    /// Panics when `tier` is out of range.
    #[must_use]
    pub fn info(&self, tier: usize) -> &TierInfo {
        &self.tiers[tier].info
    }

    /// All tier descriptions, tier 0 first.
    #[must_use]
    pub fn infos(&self) -> Vec<TierInfo> {
        self.tiers.iter().map(|t| t.info.clone()).collect()
    }

    /// Route an FPR budget to a tier: the **smallest** (highest-numbered)
    /// tier whose predicted FPR is at most `fpr_budget`. A budget tighter
    /// than every tier falls back to tier 0, the most accurate version —
    /// the server can not do better than its best index.
    #[must_use]
    pub fn select(&self, fpr_budget: f64) -> usize {
        self.tiers
            .iter()
            .rposition(|t| t.info.predicted_fpr <= fpr_budget)
            .unwrap_or(0)
    }
}

/// How a [`CatalogBuilder`] derives tier geometries from a live index.
#[derive(Debug, Clone)]
enum TierSpec {
    /// Explicit `(buckets, compression)` list.
    Explicit(Vec<(u64, TierCompression)>),
    /// `levels` halvings from the base geometry, all dense.
    Halving(u32),
}

/// Where a [`CatalogBuilder`]'s tiers come from.
#[derive(Debug)]
enum BuilderSource<'a> {
    /// An already-serialized catalog held in memory (tiers open zero-copy).
    Buffer(Arc<[u8]>),
    /// An already-serialized catalog file (tiers open paged through the
    /// block cache).
    File(PathBuf),
    /// A live index to fold per the tier spec.
    Base(&'a Rambo),
    /// A generational index to snapshot (monolithic rebuild) and fold.
    Generational(&'a GenerationalIndex),
}

/// The one entry point for catalog construction, collapsing the legacy
/// `open` / `open_paged` / `build` / `build_with` / `build_halving` family:
/// pick exactly one **source**, optionally a **tier spec** (required for
/// live-index sources, rejected for serialized ones — those carry their tier
/// layout in-band), and for file sources a block-cache budget.
///
/// ```no_run
/// use rambo_server::Catalog;
///
/// let catalog = Catalog::builder()
///     .file("/data/genomes.cat")
///     .cache_bytes(128 << 20)
///     .build()?;
/// # Ok::<(), rambo_server::CatalogError>(())
/// ```
#[derive(Debug)]
pub struct CatalogBuilder<'a> {
    source: Option<BuilderSource<'a>>,
    tiers: Option<TierSpec>,
    cache_bytes: usize,
}

impl Default for CatalogBuilder<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> CatalogBuilder<'a> {
    /// Fresh builder: no source, no tier spec,
    /// [`DEFAULT_CACHE_BYTES`] of block cache for file sources.
    #[must_use]
    pub fn new() -> Self {
        Self {
            source: None,
            tiers: None,
            cache_bytes: DEFAULT_CACHE_BYTES,
        }
    }

    /// Source: an already-serialized catalog buffer (the
    /// [`Rambo::fold_catalog_bytes`] concatenation layout). Tiers open
    /// zero-copy, borrowing their payloads from `buf`.
    #[must_use]
    pub fn buffer(mut self, buf: Arc<[u8]>) -> Self {
        self.source = Some(BuilderSource::Buffer(buf));
        self
    }

    /// Source: a serialized catalog file. Only metadata is read at build;
    /// dense payloads fault through a shared block cache sized by
    /// [`CatalogBuilder::cache_bytes`].
    #[must_use]
    pub fn file(mut self, path: impl Into<PathBuf>) -> Self {
        self.source = Some(BuilderSource::File(path.into()));
        self
    }

    /// Source: a live index to fold into tiers (a tier spec is required).
    #[must_use]
    pub fn base(mut self, base: &'a Rambo) -> Self {
        self.source = Some(BuilderSource::Base(base));
        self
    }

    /// Source: a [`GenerationalIndex`] — snapshotted via
    /// [`GenerationalIndex::to_monolithic`] (bit-identical to a from-scratch
    /// build over the same documents) and then folded like
    /// [`CatalogBuilder::base`]. A tier spec is required.
    #[must_use]
    pub fn generational(mut self, live: &'a GenerationalIndex) -> Self {
        self.source = Some(BuilderSource::Generational(live));
        self
    }

    /// Tier spec: explicit strictly-decreasing bucket counts, all dense.
    #[must_use]
    pub fn tier_buckets(mut self, buckets: &[u64]) -> Self {
        self.tiers = Some(TierSpec::Explicit(
            buckets
                .iter()
                .map(|&b| (b, TierCompression::Dense))
                .collect(),
        ));
        self
    }

    /// Tier spec: explicit bucket counts with per-tier compression.
    #[must_use]
    pub fn tiers(mut self, tiers: &[(u64, TierCompression)]) -> Self {
        self.tiers = Some(TierSpec::Explicit(tiers.to_vec()));
        self
    }

    /// Tier spec: `levels` halvings from the base geometry
    /// (`B, B/2, …, B/2^levels`), all dense.
    #[must_use]
    pub fn halving(mut self, levels: u32) -> Self {
        self.tiers = Some(TierSpec::Halving(levels));
        self
    }

    /// Block-cache budget (total bytes) for file sources. Ignored for other
    /// sources. Defaults to [`DEFAULT_CACHE_BYTES`].
    #[must_use]
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Build the catalog.
    ///
    /// # Errors
    /// [`CatalogError::MissingSource`] / [`CatalogError::MissingTiers`] /
    /// [`CatalogError::TiersWithSerializedSource`] on inconsistent builder
    /// state, and the underlying fold/decode/I-O failures otherwise.
    pub fn build(self) -> Result<Catalog, CatalogError> {
        let source = self.source.ok_or(CatalogError::MissingSource)?;
        match source {
            BuilderSource::Buffer(buf) => {
                if self.tiers.is_some() {
                    return Err(CatalogError::TiersWithSerializedSource);
                }
                Catalog::open_inner(buf)
            }
            BuilderSource::File(path) => {
                if self.tiers.is_some() {
                    return Err(CatalogError::TiersWithSerializedSource);
                }
                Catalog::open_paged_inner(&path, self.cache_bytes)
            }
            BuilderSource::Base(base) => {
                let spec = self.tiers.ok_or(CatalogError::MissingTiers)?;
                Catalog::open_inner(fold_spec(base, &spec)?.into())
            }
            BuilderSource::Generational(live) => {
                let spec = self.tiers.ok_or(CatalogError::MissingTiers)?;
                let mono = live.to_monolithic()?;
                Catalog::open_inner(fold_spec(&mono, &spec)?.into())
            }
        }
    }
}

/// Serialize `base` folded per `spec` (the concatenated catalog layout).
fn fold_spec(base: &Rambo, spec: &TierSpec) -> Result<Vec<u8>, CatalogError> {
    let bytes = match spec {
        TierSpec::Explicit(tiers) => base.fold_catalog_bytes_with(tiers)?,
        TierSpec::Halving(levels) => {
            let tiers: Vec<u64> = (0..=*levels).map(|l| base.buckets() >> l).collect();
            base.fold_catalog_bytes(&tiers)?
        }
    };
    Ok(bytes)
}

/// Reject a tier that does not strictly shrink the bucket count.
fn check_shrinking(tiers: &[Tier], index: &Rambo) -> Result<(), CatalogError> {
    if let Some(prev) = tiers.last() {
        if index.buckets() >= prev.info.buckets {
            return Err(CatalogError::NotShrinking {
                tier: tiers.len(),
                buckets: index.buckets(),
                prev: prev.info.buckets,
            });
        }
    }
    Ok(())
}

/// Describe one opened tier. Metadata-only FPR prediction (see
/// [`TierInfo::bfu_fpr`]): mean keys per BFU ≈ recorded insertions /
/// current buckets.
fn tier_info(index: &Rambo, tier: usize, offset: usize, encoded_len: usize) -> TierInfo {
    let keys_per_bucket = (index.total_inserts() / index.buckets().max(1)) as usize;
    let bfu_fpr = theory::bfu_fpr(index.params().bfu_bits, keys_per_bucket, index.params().eta);
    TierInfo {
        tier,
        fold_factor: index.fold_factor(),
        buckets: index.buckets(),
        offset,
        encoded_len,
        size_bytes: index.size_bytes(),
        bfu_fpr,
        predicted_fpr: theory::per_doc_fpr(
            bfu_fpr,
            index.buckets(),
            CATALOG_FPR_V,
            index.repetitions(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambo_core::RamboParams;

    fn build_base(buckets: u64, docs: usize, seed: u64) -> Rambo {
        let mut r = Rambo::new(RamboParams::flat(buckets, 3, 1 << 12, 2, seed)).unwrap();
        for d in 0..docs {
            let base = (d as u64) << 24;
            r.insert_document(&format!("doc{d}"), (0..60u64).map(|t| base | t))
                .unwrap();
        }
        r
    }

    #[test]
    fn tiers_shrink_and_fpr_grows() {
        // Buckets must stay above word granularity (64 columns per matrix
        // row) for folding to actually narrow the rows.
        let base = build_base(256, 120, 1);
        let cat = Catalog::build_halving(&base, 2).unwrap();
        assert_eq!(cat.len(), 3);
        let infos = cat.infos();
        for w in infos.windows(2) {
            assert!(w[1].size_bytes < w[0].size_bytes, "tiers must shrink");
            assert!(w[1].encoded_len < w[0].encoded_len);
            assert!(
                w[1].predicted_fpr > w[0].predicted_fpr,
                "folding must raise predicted FPR"
            );
        }
        assert_eq!(infos[0].buckets, 256);
        assert_eq!(infos[2].buckets, 64);
        assert_eq!(infos[2].fold_factor, 2);
        // Every tier is a zero-copy view of the shared buffer.
        for t in 0..cat.len() {
            assert!(cat.tier(t).payload_borrows(cat.buffer()));
        }
    }

    #[test]
    fn loosening_the_budget_selects_strictly_smaller_tiers() {
        let base = build_base(256, 120, 2);
        let cat = Catalog::build_halving(&base, 2).unwrap();
        let infos = cat.infos();
        // A budget exactly at a tier's predicted FPR admits that tier.
        for info in &infos {
            assert_eq!(cat.select(info.predicted_fpr), info.tier);
        }
        // Budgets between consecutive tiers' FPRs pick the larger tier;
        // crossing a tier's FPR strictly shrinks the selected size.
        let tight = cat.select(infos[0].predicted_fpr);
        let loose = cat.select(infos[1].predicted_fpr);
        let loosest = cat.select(1.0);
        assert!(loose > tight);
        assert!(loosest > loose || loosest == cat.len() - 1);
        assert!(cat.info(loose).size_bytes < cat.info(tight).size_bytes);
        // Impossible budget → most accurate tier.
        assert_eq!(cat.select(0.0), 0);
        assert_eq!(cat.select(infos[0].predicted_fpr / 2.0), 0);
    }

    #[test]
    fn open_roundtrips_the_buffer() {
        let base = build_base(16, 40, 3);
        let cat = Catalog::build_halving(&base, 1).unwrap();
        let reopened = Catalog::open(cat.buffer().clone()).unwrap();
        assert_eq!(reopened.len(), cat.len());
        for t in 0..cat.len() {
            assert_eq!(reopened.tier(t), cat.tier(t));
            assert_eq!(reopened.info(t), cat.info(t));
        }
    }

    #[test]
    fn every_tier_answers_queries_without_false_negatives() {
        let base = build_base(32, 60, 4);
        let cat = Catalog::build_halving(&base, 2).unwrap();
        for t in 0..cat.len() {
            for d in [0usize, 17, 59] {
                let term = ((d as u64) << 24) | 5;
                assert!(
                    cat.tier(t).query_u64(term).contains(&(d as u32)),
                    "tier {t} lost doc {d}"
                );
            }
        }
    }

    fn temp_catalog_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rambo-catalog-{tag}-{}.cat", std::process::id()))
    }

    #[test]
    fn open_paged_matches_buffer_catalog() {
        let base = build_base(256, 120, 6);
        let cat = Catalog::build_halving(&base, 2).unwrap();
        let path = temp_catalog_path("paged");
        std::fs::write(&path, cat.buffer()).unwrap();
        let paged = Catalog::open_paged(&path, 1 << 20).unwrap();
        assert!(paged.is_paged());
        assert_eq!(paged.len(), cat.len());
        for t in 0..cat.len() {
            assert_eq!(paged.info(t), cat.info(t), "tier {t} info");
            // Nothing faulted at open.
            assert_eq!(paged.block_cache_stats(t).unwrap().misses, 0);
        }
        // Queries answer identically and fault blocks as they go.
        for d in [0usize, 33, 119] {
            let term = ((d as u64) << 24) | 7;
            for t in 0..cat.len() {
                assert_eq!(
                    paged.tier(t).query_u64(term),
                    cat.tier(t).query_u64(term),
                    "tier {t} doc {d}"
                );
            }
        }
        assert!(paged.block_cache_stats(0).unwrap().misses > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn paged_catalog_with_compressed_cold_tier() {
        let base = build_base(256, 120, 7);
        let bytes = base
            .fold_catalog_bytes_with(&[(256, TierCompression::Rrr), (64, TierCompression::Dense)])
            .unwrap();
        let path = temp_catalog_path("mixed");
        std::fs::write(&path, &bytes).unwrap();
        let paged = Catalog::open_paged(&path, 1 << 20).unwrap();
        assert_eq!(paged.len(), 2);
        // RRR tier decoded eagerly → no block counters; dense tier paged.
        assert!(paged.tier(0).is_compressed());
        assert!(paged.block_cache_stats(0).is_none());
        assert!(paged.tier(1).tables_paged());
        assert!(paged.block_cache_stats(1).is_some());
        let buffered = Catalog::open(bytes.into()).unwrap();
        for d in [3usize, 77] {
            let term = ((d as u64) << 24) | 2;
            for t in 0..2 {
                assert_eq!(
                    paged.tier(t).query_u64(term),
                    buffered.tier(t).query_u64(term)
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn build_with_compresses_requested_tiers() {
        let base = build_base(256, 120, 8);
        let cat = Catalog::build_with(
            &base,
            &[(256, TierCompression::Rrr), (64, TierCompression::Dense)],
        )
        .unwrap();
        assert!(cat.tier(0).is_compressed());
        assert!(!cat.tier(1).is_compressed());
        let dense = Catalog::build(&base, &[256, 64]).unwrap();
        assert!(
            cat.info(0).encoded_len < dense.info(0).encoded_len,
            "compressed tier must encode smaller"
        );
        assert_eq!(cat.info(1).encoded_len, dense.info(1).encoded_len);
    }

    #[test]
    fn rejects_malformed_catalogs() {
        assert!(Catalog::open(Vec::new().into()).is_err());
        let base = build_base(16, 20, 5);
        let mut bytes = base.to_bytes().unwrap();
        let good_len = bytes.len();
        bytes.extend(base.to_bytes().unwrap()); // equal buckets: not shrinking
        assert!(matches!(
            Catalog::open(bytes.clone().into()),
            Err(RamboError::InvalidParams(_))
        ));
        bytes.truncate(good_len + 10); // trailing garbage
        assert!(Catalog::open(bytes.into()).is_err());
    }
}
