//! Non-blocking, length-prefixed TCP front over the in-process serving
//! engine.
//!
//! Wire format (all little-endian):
//!
//! ```text
//! request  := u32 len | u8 opcode(=1) | u8 mode(0 default,1 Full,2 Sparse)
//!             | u16 reserved(=0) | f64 fpr_budget | u32 deadline_ms(0=1s)
//!             | u32 n_terms | n_terms × u64
//! response := u32 len | u8 status | u32 tier | u32 n_docs | n_docs × u32
//! status   := 0 ok | 1 overloaded | 2 deadline exceeded | 3 bad request
//!
//! stats-request  := u32 len(=1) | u8 opcode(=2)
//! stats-response := u32 len | u8 status(=0) | utf8 text
//!
//! hello-request  := u32 len(=1) | u8 opcode(=3)
//! hello-response := u32 len | u8 status(=0) | manifest bytes
//!
//! mutate-request  := u32 len | u8 opcode(=4) | 3 × u8 reserved(=0)
//!                    | u32 name_len | name utf8 | u32 n_terms | n_terms × u64
//! mutate-response := u32 len | u8 status(=0) | u32 doc_id | u64 epoch
//!                  | u32 len | u8 status(=5) | utf8 reason   (rejected)
//! ```
//!
//! `len` counts the bytes after the length field. One connection carries any
//! number of request/response pairs in order; closing the write side (or the
//! whole socket) ends the session. The `STATS` opcode dumps the live
//! [`crate::ServerStats`] (tier counters, result-cache counters, slow-query
//! log) as plain text — `printf`-debuggable with `nc`. The `HELLO` opcode
//! returns the opaque node manifest registered via [`ServeOptions`] (a
//! cluster shard announces its shard id, replica id, doc-id range and
//! catalog fingerprint this way); a server with no manifest answers `HELLO`
//! with the bad-request status but keeps the connection open.
//!
//! [`serve_tcp`] is a single-threaded **readiness reactor**, not a
//! thread-per-connection accept loop: every socket is non-blocking, and one
//! thread multiplexes accepts, frame decode, admission (through the same
//! [`ServerHandle`] the in-process API uses — quiet lanes answer inline
//! during the dispatch call itself), reply polling
//! ([`crate::PendingReply::try_wait`]) and writes across all connections.
//! Thousands of idle clients cost a few hundred bytes of buffer each, not a
//! pinned thread. Replies on one connection always flow in request order.
//! When `stop` is raised the reactor returns promptly, dropping every
//! connection — including ones stalled mid-frame, which therefore cannot
//! block shutdown.

use crate::server::{PendingReply, QueryOptions, QueryReply, ServerError, ServerHandle};
use rambo_core::QueryMode;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Upper bound on a frame payload (16 MiB ≈ two million query terms): a
/// corrupt or hostile length prefix must not become an allocation.
pub(crate) const MAX_FRAME_BYTES: usize = 16 << 20;

pub(crate) const OPCODE_QUERY: u8 = 1;
pub(crate) const OPCODE_STATS: u8 = 2;
pub(crate) const OPCODE_HELLO: u8 = 3;
/// Live-insert opcode, served only by the mutable-index front
/// ([`crate::serve_live_tcp`]); the read-only catalog front answers it with
/// the bad-request status.
pub(crate) const OPCODE_MUTATE: u8 = 4;

pub(crate) const STATUS_OK: u8 = 0;
pub(crate) const STATUS_OVERLOADED: u8 = 1;
pub(crate) const STATUS_DEADLINE: u8 = 2;
pub(crate) const STATUS_BAD_REQUEST: u8 = 3;
/// A well-formed mutate the index refused (duplicate name, id space
/// exhausted). Unlike `STATUS_BAD_REQUEST` the stream is not
/// desynchronized, so the connection stays open.
pub(crate) const STATUS_MUTATE_REJECTED: u8 = 5;

/// Reactor nap with replies in flight: short, so a worker's answer is
/// picked up within ~a batch collection window.
pub(crate) const REACTOR_BUSY_SLEEP: Duration = Duration::from_micros(50);
/// Reactor nap with nothing in flight: the stop-flag/accept poll cadence.
pub(crate) const REACTOR_IDLE_SLEEP: Duration = Duration::from_millis(1);
/// Per-read chunk size.
pub(crate) const READ_CHUNK: usize = 16 << 10;
/// Per-connection cap on decoded-but-unanswered frames: a client that
/// pipelines faster than the server drains stops being read (TCP
/// backpressure) instead of growing an unbounded reply queue.
pub(crate) const MAX_PIPELINED: usize = 1024;

/// A reply owed to the client, in request order.
pub(crate) enum PendingFrame {
    /// Already encoded (errors, stats dumps, inline/cached completions).
    Ready(Vec<u8>),
    /// Waiting on an evaluator worker.
    Query(PendingReply),
}

/// One multiplexed connection's state. Shared with the mutable-index front
/// (`crate::live`), whose reactor reuses the same read/decode/write
/// plumbing with an always-immediate dispatch.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    /// Raw bytes read but not yet parsed into frames.
    pub(crate) inbuf: Vec<u8>,
    /// Replies owed, in request order.
    pub(crate) pending: VecDeque<PendingFrame>,
    /// Encoded bytes not yet accepted by the socket.
    pub(crate) outbuf: Vec<u8>,
    /// Prefix of `outbuf` already written.
    pub(crate) sent: usize,
    /// Close after flushing what is owed (protocol error path).
    pub(crate) closing: bool,
    /// Peer closed its write side.
    pub(crate) read_closed: bool,
    /// Ready to be dropped.
    pub(crate) dead: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            inbuf: Vec::new(),
            pending: VecDeque::new(),
            outbuf: Vec::new(),
            sent: 0,
            closing: false,
            read_closed: false,
            dead: false,
        })
    }
}

/// Shared read phase of every reactor pump (catalog, live and tenant
/// fronts): pull what the socket has into `inbuf`, bounded by the pipeline
/// cap and the frame-size ceiling (backpressure by unread socket). Marks
/// the connection dead on hard I/O errors. Returns whether bytes moved.
pub(crate) fn conn_read(conn: &mut Conn) -> bool {
    let mut progress = false;
    while !conn.read_closed
        && !conn.closing
        && !conn.dead
        && conn.pending.len() < MAX_PIPELINED
        && conn.inbuf.len() < MAX_FRAME_BYTES + 4
    {
        let start = conn.inbuf.len();
        conn.inbuf.resize(start + READ_CHUNK, 0);
        match conn.stream.read(&mut conn.inbuf[start..]) {
            Ok(0) => {
                conn.inbuf.truncate(start);
                conn.read_closed = true;
            }
            Ok(n) => {
                conn.inbuf.truncate(start + n);
                progress = true;
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => conn.inbuf.truncate(start),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                conn.inbuf.truncate(start);
                continue;
            }
            Err(_) => {
                conn.inbuf.truncate(start);
                conn.dead = true;
                return progress;
            }
        }
        break;
    }
    progress
}

/// Shared write/teardown phase of every reactor pump: push `outbuf` until
/// the socket stops taking bytes, then retire the connection once
/// everything owed is flushed after a protocol error (`closing`) or a
/// half-closed peer. Returns whether bytes moved.
pub(crate) fn conn_flush(conn: &mut Conn) -> bool {
    let mut progress = false;
    while conn.sent < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.sent..]) {
            Ok(0) => {
                conn.dead = true;
                return progress;
            }
            Ok(n) => {
                conn.sent += n;
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return progress;
            }
        }
    }
    if conn.sent == conn.outbuf.len() && conn.sent > 0 {
        conn.outbuf.clear();
        conn.sent = 0;
    }
    let flushed = conn.pending.is_empty() && conn.sent == conn.outbuf.len();
    if flushed && (conn.closing || conn.read_closed) {
        conn.dead = true;
    }
    progress
}

/// Optional behaviors of the TCP front ([`serve_tcp_with`]).
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Opaque manifest bytes returned to `HELLO` requests. A cluster shard
    /// node announces its identity (shard id, replica id, doc-id range,
    /// catalog fingerprint — see the `rambo-cluster` crate's
    /// `NodeManifest`) this way; `None` answers `HELLO` with the
    /// bad-request status.
    pub manifest: Option<Vec<u8>>,
}

/// Serve the handle over TCP until `stop` is set, multiplexing every
/// connection on the calling thread (see the module docs for the reactor
/// design). Returns after the stop flag is observed; all connections —
/// idle, mid-frame, or stalled — are dropped at that point, so a dead
/// client can never block shutdown.
///
/// # Errors
/// Propagates listener configuration errors and fatal accept failures (the
/// latter also raise `stop`, so a co-running in-process workload winds down
/// instead of serving a listener-less process forever); per-connection I/O
/// errors only end that connection.
pub fn serve_tcp(
    handle: &ServerHandle<'_>,
    listener: TcpListener,
    stop: &AtomicBool,
) -> io::Result<()> {
    serve_tcp_with(handle, listener, stop, &ServeOptions::default())
}

/// [`serve_tcp`] with front options — currently the `HELLO` manifest a
/// cluster shard node registers so a coordinator can discover its identity.
///
/// # Errors
/// See [`serve_tcp`].
pub fn serve_tcp_with(
    handle: &ServerHandle<'_>,
    listener: TcpListener,
    stop: &AtomicBool,
    options: &ServeOptions,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<Conn> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let mut progress = false;
        // Drain the accept backlog.
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if let Ok(conn) = Conn::new(stream) {
                        conns.push(conn);
                        progress = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    stop.store(true, Ordering::Relaxed);
                    return Err(e);
                }
            }
        }
        for conn in &mut conns {
            progress |= pump(conn, handle, options);
        }
        conns.retain(|c| !c.dead);
        if !progress {
            let inflight = conns.iter().any(|c| !c.pending.is_empty());
            std::thread::sleep(if inflight {
                REACTOR_BUSY_SLEEP
            } else {
                REACTOR_IDLE_SLEEP
            });
        }
    }
    Ok(())
}

/// One reactor pass over a connection: read what is available, decode and
/// dispatch complete frames, poll owed replies in order, write what is
/// flushed. Returns true when any byte or frame moved.
fn pump(conn: &mut Conn, handle: &ServerHandle<'_>, options: &ServeOptions) -> bool {
    // Read until the socket runs dry — but stop decoding ahead of a client
    // that has MAX_PIPELINED answers outstanding (backpressure by unread
    // socket, mirroring the admission queue's own bound).
    let mut progress = conn_read(conn);
    if conn.dead {
        return progress;
    }

    // Decode complete frames and dispatch them.
    let mut consumed = 0;
    while !conn.closing && conn.pending.len() < MAX_PIPELINED {
        let avail = &conn.inbuf[consumed..];
        if avail.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_BYTES {
            conn.pending.push_back(PendingFrame::Ready(encode_response(
                STATUS_BAD_REQUEST,
                0,
                &[],
            )));
            conn.closing = true;
            break;
        }
        if avail.len() < 4 + len {
            break;
        }
        dispatch(conn, handle, options, consumed + 4, len);
        consumed += 4 + len;
        progress = true;
    }
    if consumed > 0 {
        conn.inbuf.drain(..consumed);
    }

    // Poll owed replies strictly in request order.
    while let Some(front) = conn.pending.front_mut() {
        let frame = match front {
            PendingFrame::Ready(bytes) => std::mem::take(bytes),
            PendingFrame::Query(reply) => match reply.try_wait() {
                None => break,
                Some(Ok(QueryReply { docs, tier })) => {
                    encode_response(STATUS_OK, tier as u32, &docs)
                }
                Some(Err(ServerError::Overloaded { tier })) => {
                    encode_response(STATUS_OVERLOADED, tier as u32, &[])
                }
                Some(Err(ServerError::DeadlineExceeded { tier })) => {
                    encode_response(STATUS_DEADLINE, tier as u32, &[])
                }
                Some(Err(ServerError::UnknownTier(_) | ServerError::Disconnected)) => {
                    conn.closing = true;
                    encode_response(STATUS_BAD_REQUEST, 0, &[])
                }
            },
        };
        conn.outbuf.extend_from_slice(&frame);
        conn.pending.pop_front();
        progress = true;
    }

    // Write what the socket will take, then close once everything owed is
    // flushed after a protocol error or a half-closed peer.
    progress | conn_flush(conn)
}

/// Dispatch one complete frame (`len` bytes at `offset` in the inbuf).
fn dispatch(
    conn: &mut Conn,
    handle: &ServerHandle<'_>,
    options: &ServeOptions,
    offset: usize,
    len: usize,
) {
    let payload = &conn.inbuf[offset..offset + len];
    if len == 1 && payload[0] == OPCODE_STATS {
        let text = handle.stats().to_string();
        let mut frame = Vec::with_capacity(4 + 1 + text.len());
        frame.extend_from_slice(&(1 + text.len() as u32).to_le_bytes());
        frame.push(STATUS_OK);
        frame.extend_from_slice(text.as_bytes());
        conn.pending.push_back(PendingFrame::Ready(frame));
        return;
    }
    if len == 1 && payload[0] == OPCODE_HELLO {
        // A well-formed HELLO on a manifest-less server is answered with
        // the bad-request status but does NOT desynchronize the stream, so
        // the connection stays open (unlike the parse-failure path below).
        let frame = match &options.manifest {
            Some(manifest) => {
                let mut frame = Vec::with_capacity(4 + 1 + manifest.len());
                frame.extend_from_slice(&(1 + manifest.len() as u32).to_le_bytes());
                frame.push(STATUS_OK);
                frame.extend_from_slice(manifest);
                frame
            }
            None => {
                let mut frame = Vec::with_capacity(5);
                frame.extend_from_slice(&1u32.to_le_bytes());
                frame.push(STATUS_BAD_REQUEST);
                frame
            }
        };
        conn.pending.push_back(PendingFrame::Ready(frame));
        return;
    }
    match parse_request(payload) {
        None => {
            // A frame that fails to parse may have desynchronized the
            // stream; answer and close rather than guess at recovery.
            conn.pending.push_back(PendingFrame::Ready(encode_response(
                STATUS_BAD_REQUEST,
                0,
                &[],
            )));
            conn.closing = true;
        }
        Some((terms, opts)) => match handle.submit(&terms, &opts) {
            Ok(reply) => conn.pending.push_back(PendingFrame::Query(reply)),
            Err(ServerError::Overloaded { tier }) => {
                conn.pending.push_back(PendingFrame::Ready(encode_response(
                    STATUS_OVERLOADED,
                    tier as u32,
                    &[],
                )));
            }
            Err(ServerError::DeadlineExceeded { tier }) => {
                conn.pending.push_back(PendingFrame::Ready(encode_response(
                    STATUS_DEADLINE,
                    tier as u32,
                    &[],
                )));
            }
            Err(ServerError::UnknownTier(_) | ServerError::Disconnected) => {
                conn.pending.push_back(PendingFrame::Ready(encode_response(
                    STATUS_BAD_REQUEST,
                    0,
                    &[],
                )));
                conn.closing = true;
            }
        },
    }
}

/// Decode a request payload into terms and options.
pub(crate) fn parse_request(payload: &[u8]) -> Option<(Vec<u64>, QueryOptions)> {
    if payload.len() < 20 {
        return None;
    }
    let opcode = payload[0];
    let mode = match payload[1] {
        0 => None,
        1 => Some(QueryMode::Full),
        2 => Some(QueryMode::Sparse),
        _ => return None,
    };
    if opcode != OPCODE_QUERY || payload[2] != 0 || payload[3] != 0 {
        return None;
    }
    let fpr_budget = f64::from_le_bytes(payload[4..12].try_into().ok()?);
    if !(0.0..=1.0).contains(&fpr_budget) {
        return None;
    }
    let deadline_ms = u32::from_le_bytes(payload[12..16].try_into().ok()?);
    let n_terms = u32::from_le_bytes(payload[16..20].try_into().ok()?) as usize;
    let body = &payload[20..];
    if body.len() != n_terms * 8 {
        return None;
    }
    let terms = body
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect();
    let opts = QueryOptions {
        fpr_budget,
        deadline: if deadline_ms == 0 {
            Duration::from_secs(1)
        } else {
            Duration::from_millis(u64::from(deadline_ms))
        },
        mode,
        tier: None,
    };
    Some((terms, opts))
}

/// Decode a mutate payload into a document name and its terms.
pub(crate) fn parse_mutate(payload: &[u8]) -> Option<(String, Vec<u64>)> {
    if payload.len() < 12 || payload[0] != OPCODE_MUTATE {
        return None;
    }
    if payload[1] != 0 || payload[2] != 0 || payload[3] != 0 {
        return None;
    }
    let name_len = u32::from_le_bytes(payload[4..8].try_into().ok()?) as usize;
    let rest = &payload[8..];
    if rest.len() < name_len + 4 {
        return None;
    }
    let name = std::str::from_utf8(&rest[..name_len]).ok()?.to_owned();
    if name.is_empty() {
        return None;
    }
    let n_terms = u32::from_le_bytes(rest[name_len..name_len + 4].try_into().ok()?) as usize;
    let body = &rest[name_len + 4..];
    if body.len() != n_terms * 8 {
        return None;
    }
    let terms = body
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect();
    Some((name, terms))
}

/// Encode a successful mutate response (document id + structural epoch).
pub(crate) fn encode_mutate_ok(doc_id: u32, epoch: u64) -> Vec<u8> {
    let len = 1 + 4 + 8;
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_le_bytes());
    frame.push(STATUS_OK);
    frame.extend_from_slice(&doc_id.to_le_bytes());
    frame.extend_from_slice(&epoch.to_le_bytes());
    frame
}

/// Encode a mutate rejection (the index refused; connection stays open).
pub(crate) fn encode_mutate_rejected(reason: &str) -> Vec<u8> {
    let len = 1 + reason.len();
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_le_bytes());
    frame.push(STATUS_MUTATE_REJECTED);
    frame.extend_from_slice(reason.as_bytes());
    frame
}

/// Encode one response frame.
pub(crate) fn encode_response(status: u8, tier: u32, docs: &[u32]) -> Vec<u8> {
    let len = 1 + 4 + 4 + docs.len() * 4;
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_le_bytes());
    frame.push(status);
    frame.extend_from_slice(&tier.to_le_bytes());
    frame.extend_from_slice(&(docs.len() as u32).to_le_bytes());
    for &d in docs {
        frame.extend_from_slice(&d.to_le_bytes());
    }
    frame
}

/// Client-side error for [`TcpClient`].
#[derive(Debug)]
pub enum TcpClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered with a non-OK status.
    Server(ServerError),
    /// A well-formed mutate the server's index refused (duplicate document
    /// name, exhausted id space). The connection remains usable.
    Rejected(String),
    /// The server sent a malformed or unknown frame.
    Protocol(String),
}

impl std::fmt::Display for TcpClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Server(e) => write!(f, "server rejected the query: {e}"),
            Self::Rejected(msg) => write!(f, "server rejected the mutation: {msg}"),
            Self::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for TcpClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Server(e) => Some(e),
            Self::Rejected(_) | Self::Protocol(_) => None,
        }
    }
}

impl From<io::Error> for TcpClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Minimal blocking client for the wire protocol (one in-flight query per
/// connection; open several clients for concurrency).
///
/// The client remembers its peer address and timeouts, so a dead peer can
/// neither block a caller indefinitely (connect/read/write timeouts, see
/// [`TcpClient::connect_with_timeout`] and [`TcpClient::set_io_timeout`])
/// nor strand the client permanently ([`TcpClient::reconnect`] opens a
/// fresh connection to the same peer with the same timeouts). This is what
/// a cluster coordinator's per-shard connection pools are built from.
#[derive(Debug)]
pub struct TcpClient {
    stream: TcpStream,
    /// Peer as resolved at connect time — the `reconnect` target.
    peer: SocketAddr,
    /// Connect timeout to reuse on `reconnect` (`None` = OS default).
    connect_timeout: Option<Duration>,
    /// Read+write timeout to reapply on `reconnect` (`None` = block).
    io_timeout: Option<Duration>,
}

impl TcpClient {
    /// Connect to a serving endpoint with the OS default connect timeout
    /// and blocking (unbounded) reads and writes.
    ///
    /// # Errors
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        Ok(Self {
            stream,
            peer,
            connect_timeout: None,
            io_timeout: None,
        })
    }

    /// Connect with an upper bound on connection establishment (tried
    /// against each resolved address in turn) — an unreachable or
    /// black-holed peer fails within `timeout` per address instead of
    /// hanging in the kernel's default SYN retry schedule.
    ///
    /// # Errors
    /// Propagates resolution failures and the last address's connect error.
    pub fn connect_with_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    let peer = stream.peer_addr()?;
                    return Ok(Self {
                        stream,
                        peer,
                        connect_timeout: Some(timeout),
                        io_timeout: None,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    /// Bound every read and write on the connection: a peer that accepts a
    /// request but never answers (or stops draining its socket) turns into
    /// a timed-out [`TcpClientError::Io`] instead of blocking the caller
    /// forever. `None` restores unbounded blocking I/O. The setting is
    /// remembered and reapplied across [`TcpClient::reconnect`].
    ///
    /// # Errors
    /// Propagates the socket option errors (`Some(Duration::ZERO)` is
    /// rejected by the standard library).
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        self.io_timeout = timeout;
        Ok(())
    }

    /// The peer address this client connected (and reconnects) to.
    #[must_use]
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Drop the current connection and open a fresh one to the same peer,
    /// reusing the remembered connect and I/O timeouts. Any in-flight
    /// request on the old connection is abandoned — after a timed-out
    /// [`TcpClient::query`] the stream may hold a stale half-frame, so
    /// reconnecting is the only way to make the client usable again.
    ///
    /// # Errors
    /// Propagates connection errors; on error the client keeps the old
    /// (dead) stream and may be retried.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = match self.connect_timeout {
            Some(t) => TcpStream::connect_timeout(&self.peer, t)?,
            None => TcpStream::connect(self.peer)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.io_timeout)?;
        stream.set_write_timeout(self.io_timeout)?;
        self.stream = stream;
        Ok(())
    }

    /// Fetch the server's `HELLO` manifest (the opaque bytes registered via
    /// [`ServeOptions::manifest`] — a cluster shard's identity announcement).
    ///
    /// # Errors
    /// [`TcpClientError::Protocol`] when the server has no manifest,
    /// [`TcpClientError::Io`] on transport failures.
    pub fn hello(&mut self) -> Result<Vec<u8>, TcpClientError> {
        let mut frame = Vec::with_capacity(5);
        frame.extend_from_slice(&1u32.to_le_bytes());
        frame.push(OPCODE_HELLO);
        self.stream.write_all(&frame)?;
        let payload = self.read_frame()?;
        if payload.is_empty() || payload[0] != STATUS_OK {
            return Err(TcpClientError::Protocol(
                "server has no HELLO manifest".into(),
            ));
        }
        Ok(payload[1..].to_vec())
    }

    /// Query with an FPR budget and a deadline.
    ///
    /// # Errors
    /// [`TcpClientError::Server`] for overload/deadline rejections,
    /// [`TcpClientError::Io`]/[`TcpClientError::Protocol`] on transport or
    /// framing failures.
    pub fn query(
        &mut self,
        terms: &[u64],
        fpr_budget: f64,
        deadline: Duration,
    ) -> Result<QueryReply, TcpClientError> {
        self.query_mode(terms, fpr_budget, deadline, None)
    }

    /// [`TcpClient::query`] with an explicit evaluation mode.
    ///
    /// # Errors
    /// See [`TcpClient::query`].
    pub fn query_mode(
        &mut self,
        terms: &[u64],
        fpr_budget: f64,
        deadline: Duration,
        mode: Option<QueryMode>,
    ) -> Result<QueryReply, TcpClientError> {
        let deadline_ms = u32::try_from(deadline.as_millis().max(1)).unwrap_or(u32::MAX);
        let len = 20 + terms.len() * 8;
        let mut frame = Vec::with_capacity(4 + len);
        frame.extend_from_slice(&(len as u32).to_le_bytes());
        frame.push(OPCODE_QUERY);
        frame.push(match mode {
            None => 0,
            Some(QueryMode::Full) => 1,
            Some(QueryMode::Sparse) => 2,
        });
        frame.extend_from_slice(&[0, 0]); // reserved
        frame.extend_from_slice(&fpr_budget.to_le_bytes());
        frame.extend_from_slice(&deadline_ms.to_le_bytes());
        frame.extend_from_slice(&(terms.len() as u32).to_le_bytes());
        for &t in terms {
            frame.extend_from_slice(&t.to_le_bytes());
        }
        self.stream.write_all(&frame)?;

        let payload = self.read_frame()?;
        if payload.len() < 9 {
            return Err(TcpClientError::Protocol(format!(
                "response frame length {} out of range",
                payload.len()
            )));
        }
        let status = payload[0];
        let tier = u32::from_le_bytes(payload[1..5].try_into().expect("4 bytes")) as usize;
        let n_docs = u32::from_le_bytes(payload[5..9].try_into().expect("4 bytes")) as usize;
        match status {
            STATUS_OK => {}
            STATUS_OVERLOADED => {
                return Err(TcpClientError::Server(ServerError::Overloaded { tier }))
            }
            STATUS_DEADLINE => {
                return Err(TcpClientError::Server(ServerError::DeadlineExceeded {
                    tier,
                }))
            }
            STATUS_BAD_REQUEST => {
                return Err(TcpClientError::Protocol(
                    "server reported a bad request".into(),
                ))
            }
            other => {
                return Err(TcpClientError::Protocol(format!(
                    "unknown response status {other}"
                )))
            }
        }
        if payload.len() != 9 + n_docs * 4 {
            return Err(TcpClientError::Protocol(
                "response length disagrees with document count".into(),
            ));
        }
        let docs = payload[9..]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
            .collect();
        Ok(QueryReply { docs, tier })
    }

    /// Insert a document with its term set into a **mutable-index** server
    /// ([`crate::serve_live_tcp`]); the read-only catalog front answers the
    /// mutate opcode with the bad-request status. Returns the issued global
    /// document id and the index's structural epoch after the insert (which
    /// advances when the insert triggered a memtable seal).
    ///
    /// # Errors
    /// [`TcpClientError::Rejected`] when the index refuses (duplicate name —
    /// the connection stays open), [`TcpClientError::Io`] /
    /// [`TcpClientError::Protocol`] on transport or framing failures.
    pub fn insert_document(
        &mut self,
        name: &str,
        terms: &[u64],
    ) -> Result<(u32, u64), TcpClientError> {
        let len = 4 + 4 + name.len() + 4 + terms.len() * 8;
        let mut frame = Vec::with_capacity(4 + len);
        frame.extend_from_slice(&(len as u32).to_le_bytes());
        frame.push(OPCODE_MUTATE);
        frame.extend_from_slice(&[0, 0, 0]); // reserved
        frame.extend_from_slice(&(name.len() as u32).to_le_bytes());
        frame.extend_from_slice(name.as_bytes());
        frame.extend_from_slice(&(terms.len() as u32).to_le_bytes());
        for &t in terms {
            frame.extend_from_slice(&t.to_le_bytes());
        }
        self.stream.write_all(&frame)?;
        let payload = self.read_frame()?;
        match payload[0] {
            STATUS_OK if payload.len() == 13 => {
                let doc_id = u32::from_le_bytes(payload[1..5].try_into().expect("4 bytes"));
                let epoch = u64::from_le_bytes(payload[5..13].try_into().expect("8 bytes"));
                Ok((doc_id, epoch))
            }
            STATUS_OK => Err(TcpClientError::Protocol(
                "mutate response length disagrees with layout".into(),
            )),
            STATUS_MUTATE_REJECTED => Err(TcpClientError::Rejected(
                String::from_utf8_lossy(&payload[1..]).into_owned(),
            )),
            STATUS_BAD_REQUEST => Err(TcpClientError::Protocol(
                "server does not accept mutations".into(),
            )),
            other => Err(TcpClientError::Protocol(format!(
                "unknown response status {other}"
            ))),
        }
    }

    /// Send one raw, pre-framed request (length prefix included) and read
    /// back one response frame's payload. This is the extension point for
    /// protocol-extending wrappers — the cluster client uses it to speak
    /// the degraded-response extension over a plain [`TcpClient`].
    ///
    /// # Errors
    /// [`TcpClientError::Io`] on transport failures,
    /// [`TcpClientError::Protocol`] on a malformed response length.
    pub fn exchange(&mut self, frame: &[u8]) -> Result<Vec<u8>, TcpClientError> {
        self.stream.write_all(frame)?;
        self.read_frame()
    }

    /// Fetch the server's plain-text stats dump (the `STATS` opcode): tier
    /// counters, result-cache counters and the slow-query log.
    ///
    /// # Errors
    /// [`TcpClientError::Io`]/[`TcpClientError::Protocol`] on transport or
    /// framing failures.
    pub fn stats(&mut self) -> Result<String, TcpClientError> {
        let mut frame = Vec::with_capacity(5);
        frame.extend_from_slice(&1u32.to_le_bytes());
        frame.push(OPCODE_STATS);
        self.stream.write_all(&frame)?;
        let payload = self.read_frame()?;
        if payload.is_empty() || payload[0] != STATUS_OK {
            return Err(TcpClientError::Protocol(
                "server rejected the stats request".into(),
            ));
        }
        String::from_utf8(payload[1..].to_vec())
            .map_err(|_| TcpClientError::Protocol("stats dump is not UTF-8".into()))
    }

    /// Read one length-prefixed frame payload.
    fn read_frame(&mut self) -> Result<Vec<u8>, TcpClientError> {
        let mut len_buf = [0u8; 4];
        self.stream.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if !(1..=MAX_FRAME_BYTES).contains(&len) {
            return Err(TcpClientError::Protocol(format!(
                "response frame length {len} out of range"
            )));
        }
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload)?;
        Ok(payload)
    }
}
