//! Length-prefixed TCP front over the in-process serving engine.
//!
//! Wire format (all little-endian):
//!
//! ```text
//! request  := u32 len | u8 opcode(=1) | u8 mode(0 default,1 Full,2 Sparse)
//!             | u16 reserved(=0) | f64 fpr_budget | u32 deadline_ms(0=1s)
//!             | u32 n_terms | n_terms × u64
//! response := u32 len | u8 status | u32 tier | u32 n_docs | n_docs × u32
//! status   := 0 ok | 1 overloaded | 2 deadline exceeded | 3 bad request
//! ```
//!
//! `len` counts the bytes after the length field. One connection carries any
//! number of request/response pairs in order; closing the write side (or the
//! whole socket) ends the session. The accept loop and per-connection
//! handlers are scoped threads, so [`serve_tcp`] returns only after every
//! connection has drained — pair it with the [`crate::Server::scope`]
//! lifetime and a stop flag for clean shutdown.

use crate::server::{QueryOptions, QueryReply, ServerError, ServerHandle};
use rambo_core::QueryMode;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Upper bound on a frame payload (16 MiB ≈ two million query terms): a
/// corrupt or hostile length prefix must not become an allocation.
const MAX_FRAME_BYTES: usize = 16 << 20;
/// How often blocked reads wake to check the stop flag.
const STOP_POLL: Duration = Duration::from_millis(25);

const STATUS_OK: u8 = 0;
const STATUS_OVERLOADED: u8 = 1;
const STATUS_DEADLINE: u8 = 2;
const STATUS_BAD_REQUEST: u8 = 3;

/// Serve the handle over TCP until `stop` is set. Each accepted connection
/// gets a scoped handler thread; the function returns after the accept loop
/// stops and every handler has finished. Once `stop` is set, idle
/// connections close at their next poll and connections stalled mid-frame
/// are aborted (a dead client must not be able to block shutdown).
///
/// # Errors
/// Propagates listener configuration errors and fatal accept failures (the
/// latter also raise `stop`, so live handlers wind down instead of serving
/// a listener-less process forever); per-connection I/O errors only end
/// that connection.
pub fn serve_tcp(
    handle: &ServerHandle<'_>,
    listener: TcpListener,
    stop: &AtomicBool,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|scope| {
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    scope.spawn(move || {
                        // Connection errors are not server errors.
                        let _ = handle_connection(handle, stream, stop);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(STOP_POLL);
                }
                Err(e) => {
                    stop.store(true, Ordering::Relaxed);
                    return Err(e);
                }
            }
        }
        Ok(())
    })
}

/// Serve one connection: read frames, answer them in order, stop at EOF or
/// when `stop` is set between frames.
fn handle_connection(
    handle: &ServerHandle<'_>,
    mut stream: TcpStream,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(STOP_POLL))?;
    let mut payload = Vec::new();
    loop {
        let Some(len) = read_frame_len(&mut stream, stop)? else {
            return Ok(()); // clean EOF or stop
        };
        if len > MAX_FRAME_BYTES {
            write_response(&mut stream, STATUS_BAD_REQUEST, 0, &[])?;
            return Ok(());
        }
        payload.resize(len, 0);
        read_exact_patient(&mut stream, &mut payload, stop)?;
        match parse_request(&payload) {
            None => {
                // A frame that fails to parse may have desynchronized the
                // stream; answer and close rather than guess at recovery.
                write_response(&mut stream, STATUS_BAD_REQUEST, 0, &[])?;
                return Ok(());
            }
            Some((terms, opts)) => match handle.query_opts(&terms, &opts) {
                Ok(QueryReply { docs, tier }) => {
                    write_response(&mut stream, STATUS_OK, tier as u32, &docs)?;
                }
                Err(ServerError::Overloaded { tier }) => {
                    write_response(&mut stream, STATUS_OVERLOADED, tier as u32, &[])?;
                }
                Err(ServerError::DeadlineExceeded { tier }) => {
                    write_response(&mut stream, STATUS_DEADLINE, tier as u32, &[])?;
                }
                Err(ServerError::UnknownTier(_) | ServerError::Disconnected) => {
                    write_response(&mut stream, STATUS_BAD_REQUEST, 0, &[])?;
                    return Ok(());
                }
            },
        }
    }
}

/// Read the 4-byte frame length, tolerating read timeouts between frames.
/// Returns `None` on clean EOF before any byte, or when `stop` is set while
/// idle.
fn read_frame_len(stream: &mut TcpStream, stop: &AtomicBool) -> io::Result<Option<usize>> {
    let mut buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => {
                // Idle between frames: the stop flag ends the session
                // cleanly. Mid-prefix: keep waiting while serving, but a
                // stalled sender must not outlive shutdown.
                if stop.load(Ordering::Relaxed) {
                    return if got == 0 { Ok(None) } else { Err(aborted()) };
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(u32::from_le_bytes(buf) as usize))
}

/// `read_exact` that retries through the read-timeout wakeups — until
/// `stop` is set, at which point a stalled sender is aborted so shutdown
/// can join the handler.
fn read_exact_patient(
    stream: &mut TcpStream,
    mut buf: &mut [u8],
    stop: &AtomicBool,
) -> io::Result<()> {
    while !buf.is_empty() {
        match stream.read(buf) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => buf = &mut buf[n..],
            Err(e) if is_timeout(&e) => {
                if stop.load(Ordering::Relaxed) {
                    return Err(aborted());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The error a mid-frame connection is cut off with during shutdown.
fn aborted() -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionAborted,
        "connection aborted by server shutdown",
    )
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Decode a request payload into terms and options.
fn parse_request(payload: &[u8]) -> Option<(Vec<u64>, QueryOptions)> {
    if payload.len() < 20 {
        return None;
    }
    let opcode = payload[0];
    let mode = match payload[1] {
        0 => None,
        1 => Some(QueryMode::Full),
        2 => Some(QueryMode::Sparse),
        _ => return None,
    };
    if opcode != 1 || payload[2] != 0 || payload[3] != 0 {
        return None;
    }
    let fpr_budget = f64::from_le_bytes(payload[4..12].try_into().ok()?);
    if !(0.0..=1.0).contains(&fpr_budget) {
        return None;
    }
    let deadline_ms = u32::from_le_bytes(payload[12..16].try_into().ok()?);
    let n_terms = u32::from_le_bytes(payload[16..20].try_into().ok()?) as usize;
    let body = &payload[20..];
    if body.len() != n_terms * 8 {
        return None;
    }
    let terms = body
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect();
    let opts = QueryOptions {
        fpr_budget,
        deadline: if deadline_ms == 0 {
            Duration::from_secs(1)
        } else {
            Duration::from_millis(u64::from(deadline_ms))
        },
        mode,
        tier: None,
    };
    Some((terms, opts))
}

/// Encode and send one response frame.
fn write_response(stream: &mut TcpStream, status: u8, tier: u32, docs: &[u32]) -> io::Result<()> {
    let len = 1 + 4 + 4 + docs.len() * 4;
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_le_bytes());
    frame.push(status);
    frame.extend_from_slice(&tier.to_le_bytes());
    frame.extend_from_slice(&(docs.len() as u32).to_le_bytes());
    for &d in docs {
        frame.extend_from_slice(&d.to_le_bytes());
    }
    stream.write_all(&frame)
}

/// Client-side error for [`TcpClient`].
#[derive(Debug)]
pub enum TcpClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered with a non-OK status.
    Server(ServerError),
    /// The server sent a malformed or unknown frame.
    Protocol(String),
}

impl std::fmt::Display for TcpClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Server(e) => write!(f, "server rejected the query: {e}"),
            Self::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for TcpClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Server(e) => Some(e),
            Self::Protocol(_) => None,
        }
    }
}

impl From<io::Error> for TcpClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Minimal blocking client for the wire protocol (one in-flight query per
/// connection; open several clients for concurrency).
#[derive(Debug)]
pub struct TcpClient {
    stream: TcpStream,
}

impl TcpClient {
    /// Connect to a serving endpoint.
    ///
    /// # Errors
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Query with an FPR budget and a deadline.
    ///
    /// # Errors
    /// [`TcpClientError::Server`] for overload/deadline rejections,
    /// [`TcpClientError::Io`]/[`TcpClientError::Protocol`] on transport or
    /// framing failures.
    pub fn query(
        &mut self,
        terms: &[u64],
        fpr_budget: f64,
        deadline: Duration,
    ) -> Result<QueryReply, TcpClientError> {
        self.query_mode(terms, fpr_budget, deadline, None)
    }

    /// [`TcpClient::query`] with an explicit evaluation mode.
    ///
    /// # Errors
    /// See [`TcpClient::query`].
    pub fn query_mode(
        &mut self,
        terms: &[u64],
        fpr_budget: f64,
        deadline: Duration,
        mode: Option<QueryMode>,
    ) -> Result<QueryReply, TcpClientError> {
        let deadline_ms = u32::try_from(deadline.as_millis().max(1)).unwrap_or(u32::MAX);
        let len = 20 + terms.len() * 8;
        let mut frame = Vec::with_capacity(4 + len);
        frame.extend_from_slice(&(len as u32).to_le_bytes());
        frame.push(1); // opcode: query
        frame.push(match mode {
            None => 0,
            Some(QueryMode::Full) => 1,
            Some(QueryMode::Sparse) => 2,
        });
        frame.extend_from_slice(&[0, 0]); // reserved
        frame.extend_from_slice(&fpr_budget.to_le_bytes());
        frame.extend_from_slice(&deadline_ms.to_le_bytes());
        frame.extend_from_slice(&(terms.len() as u32).to_le_bytes());
        for &t in terms {
            frame.extend_from_slice(&t.to_le_bytes());
        }
        self.stream.write_all(&frame)?;

        let mut len_buf = [0u8; 4];
        self.stream.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if !(9..=MAX_FRAME_BYTES).contains(&len) {
            return Err(TcpClientError::Protocol(format!(
                "response frame length {len} out of range"
            )));
        }
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload)?;
        let status = payload[0];
        let tier = u32::from_le_bytes(payload[1..5].try_into().expect("4 bytes")) as usize;
        let n_docs = u32::from_le_bytes(payload[5..9].try_into().expect("4 bytes")) as usize;
        match status {
            STATUS_OK => {}
            STATUS_OVERLOADED => {
                return Err(TcpClientError::Server(ServerError::Overloaded { tier }))
            }
            STATUS_DEADLINE => {
                return Err(TcpClientError::Server(ServerError::DeadlineExceeded {
                    tier,
                }))
            }
            STATUS_BAD_REQUEST => {
                return Err(TcpClientError::Protocol(
                    "server reported a bad request".into(),
                ))
            }
            other => {
                return Err(TcpClientError::Protocol(format!(
                    "unknown response status {other}"
                )))
            }
        }
        if payload.len() != 9 + n_docs * 4 {
            return Err(TcpClientError::Protocol(
                "response length disagrees with document count".into(),
            ));
        }
        let docs = payload[9..]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
            .collect();
        Ok(QueryReply { docs, tier })
    }
}
