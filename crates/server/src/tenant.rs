//! Multi-tenant registry: many named live indexes in one process, with
//! per-tenant admission quotas and byte budgets.
//!
//! The paper pitches RAMBO as a general sub-linear multiple-set-membership
//! service, not a single-index appliance. [`TenantRegistry`] is that
//! service's core: it owns any number of **named** mutable indexes (each a
//! [`GenerationalIndex`] behind the same `RwLock` + result-cache machinery
//! as [`crate::LiveServer`]), created and dropped at runtime, each with its
//! own memtable FPR budget, document quota and index byte budget.
//!
//! **Quotas are enforced at admission**, mirroring the bounded-admission
//! layer of the catalog server: an insert that would exceed the tenant's
//! document quota or arrives after the index has filled its byte budget is
//! rejected *before* touching the index, with a typed
//! [`TenantError`] the protocol fronts map to an in-band error reply
//! (`-ERR quota exceeded …` on the RESP front). Rejections are counted per
//! tenant ([`TenantStats::quota_rejections`]).
//!
//! **Isolation** is structural: tenants share no index state — each has its
//! own `GenerationalIndex`, its own [`ResultCache`] and its own latency
//! histograms — so one tenant's answers are bit-identical to a
//! single-index process holding only that tenant's documents (property
//! tested in `tests/tenant_prop.rs`). Dropping a tenant drops its cache
//! with it; a recreated tenant of the same name starts from a fresh cache
//! and a fresh creation stamp, so a drop/create cycle can never serve a
//! stale cached answer.
//!
//! Merging is cooperative: inserts seal over-budget memtables inline
//! (exactly as the live server does), and [`TenantRegistry::maintain_once`]
//! runs at most one pending generation merge — planned under a read lock,
//! folded off-lock, installed under a brief validated write lock. The
//! RESP/binary reactor ([`crate::serve_tenant_tcp`]) calls it whenever a
//! poll tick has no I/O to do, so merge work rides the serving thread's
//! idle gaps instead of needing a dedicated thread per tenant.

use crate::cache::{CacheStats, ResultCache};
use rambo_core::{
    canonical_query_key, DocId, GenerationConfig, GenerationalIndex, QueryContext, QueryMode,
    RamboError, RamboParams,
};
use rambo_hash::mix64;
use rambo_workloads::stats::LatencyHistogram;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Cap on pooled query scratch contexts shared by all tenants.
const CTX_POOL_CAP: usize = 16;

/// Registry-wide and per-tenant admission limits. Every limit is enforced
/// *at admission* — a rejected request never touches the index.
#[derive(Debug, Clone, Copy)]
pub struct TenantQuotas {
    /// Maximum live tenants; `R.CREATE`/`BF.RESERVE` beyond it is rejected.
    pub max_tenants: usize,
    /// Default per-tenant document cap (overridable per tenant at create).
    pub max_docs: usize,
    /// Default per-tenant index byte budget (overridable per tenant at
    /// create): once [`GenerationalIndex::size_bytes`] reaches it, further
    /// inserts are rejected. The budget bounds *admission*, so the index
    /// can overshoot by at most the in-flight memtable.
    pub max_bytes: usize,
    /// Largest accepted term set per document insert.
    pub max_terms_per_doc: usize,
    /// Per-tenant result-cache byte budget; `0` disables caching.
    pub cache_bytes: usize,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        Self {
            max_tenants: 64,
            max_docs: 1 << 20,
            max_bytes: 256 << 20,
            max_terms_per_doc: 1 << 16,
            cache_bytes: 1 << 20,
        }
    }
}

/// What flavor of index a tenant serves — only a display/bookkeeping tag;
/// both kinds share the same engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantKind {
    /// A full RAMBO index created via `R.CREATE`.
    Rambo,
    /// A degenerate single-repetition index backing the `BF.*` compatibility
    /// verbs (each item is its own single-term document).
    Bloom,
}

impl fmt::Display for TenantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Rambo => write!(f, "rambo"),
            Self::Bloom => write!(f, "bloom"),
        }
    }
}

/// Per-tenant creation options ([`TenantRegistry::create`]).
#[derive(Debug, Clone)]
pub struct TenantOptions {
    /// Memtable seal budget (the generational index seals when its
    /// metadata-predicted FPR exceeds this). Must lie in `(0, 1]`.
    pub fpr: f64,
    /// Index geometry override; `None` uses the registry's base params.
    pub params: Option<RamboParams>,
    /// Document-quota override; `None` uses [`TenantQuotas::max_docs`].
    pub max_docs: Option<usize>,
    /// Byte-budget override; `None` uses [`TenantQuotas::max_bytes`].
    pub max_bytes: Option<usize>,
    /// Generation-cap override (`R.CREATE … tiers=N`): the LSM tier count
    /// beyond which adjacent generations merge eagerly.
    pub max_generations: Option<usize>,
    /// Display/bookkeeping kind tag.
    pub kind: TenantKind,
}

impl Default for TenantOptions {
    fn default() -> Self {
        Self {
            fpr: 0.01,
            params: None,
            max_docs: None,
            max_bytes: None,
            max_generations: None,
            kind: TenantKind::Rambo,
        }
    }
}

/// Typed failure of a registry operation. The protocol fronts map each
/// variant onto one entry of the wire error taxonomy.
#[derive(Debug)]
pub enum TenantError {
    /// No tenant with this name is live.
    UnknownTenant(String),
    /// A tenant with this name already exists.
    DuplicateTenant(String),
    /// A tenant name failed validation (empty, too long, or non-graphic
    /// ASCII — names travel on the inline text protocol, so they must not
    /// contain whitespace or control bytes).
    BadName(String),
    /// The registry is at its live-tenant cap.
    TenantQuota {
        /// The configured [`TenantQuotas::max_tenants`].
        limit: usize,
    },
    /// The tenant is at its document cap.
    DocQuota {
        /// The tenant's document cap.
        limit: usize,
    },
    /// The tenant's index has filled its byte budget.
    ByteQuota {
        /// The tenant's byte budget.
        limit: usize,
    },
    /// The insert's term set exceeds [`TenantQuotas::max_terms_per_doc`].
    TermQuota {
        /// The configured per-document term cap.
        limit: usize,
    },
    /// The underlying index refused (duplicate document, bad parameters).
    Index(RamboError),
}

impl TenantError {
    /// Whether this error is an admission-quota rejection (vs a lookup or
    /// index failure) — the RESP front prefixes these `quota exceeded`.
    #[must_use]
    pub fn is_quota(&self) -> bool {
        matches!(
            self,
            Self::TenantQuota { .. }
                | Self::DocQuota { .. }
                | Self::ByteQuota { .. }
                | Self::TermQuota { .. }
        )
    }
}

impl fmt::Display for TenantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTenant(name) => write!(f, "no such tenant '{name}'"),
            Self::DuplicateTenant(name) => write!(f, "tenant '{name}' already exists"),
            Self::BadName(name) => write!(
                f,
                "invalid tenant name '{name}' (want 1..=128 graphic ASCII chars)"
            ),
            Self::TenantQuota { limit } => {
                write!(f, "quota exceeded: registry holds {limit} tenants")
            }
            Self::DocQuota { limit } => {
                write!(f, "quota exceeded: tenant at its document cap ({limit})")
            }
            Self::ByteQuota { limit } => {
                write!(f, "quota exceeded: tenant filled its byte budget ({limit})")
            }
            Self::TermQuota { limit } => {
                write!(f, "quota exceeded: term set larger than {limit}")
            }
            Self::Index(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TenantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Index(e) => Some(e),
            _ => None,
        }
    }
}

/// One live tenant: its index, cache, limits and counters.
pub(crate) struct TenantState {
    pub(crate) name: String,
    kind: TenantKind,
    pub(crate) index: RwLock<GenerationalIndex>,
    cache: Option<ResultCache>,
    max_docs: usize,
    max_bytes: usize,
    /// Registry-wide creation stamp: strictly increasing across every
    /// create, so a drop/recreate cycle is observable (and a recreated
    /// tenant can never be confused with its previous incarnation).
    created: u64,
    inserts: AtomicU64,
    queries: AtomicU64,
    quota_rejections: AtomicU64,
    read_latency: LatencyHistogram,
    write_latency: LatencyHistogram,
}

/// Point-in-time counters and shape of one tenant
/// ([`TenantRegistry::stats`], [`TenantRegistry::list`]).
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Index flavor tag.
    pub kind: TenantKind,
    /// Registry-wide creation stamp (strictly increasing across creates).
    pub created: u64,
    /// Documents indexed.
    pub documents: usize,
    /// Live immutable generations.
    pub generations: usize,
    /// Documents in the mutable memtable.
    pub memtable_documents: usize,
    /// Structural epoch of the index.
    pub epoch: u64,
    /// Current index payload size.
    pub size_bytes: usize,
    /// The tenant's byte budget.
    pub max_bytes: usize,
    /// Documents inserted.
    pub inserts: u64,
    /// Queries answered (cache hits included).
    pub queries: u64,
    /// Admission rejections (document/byte/term quota).
    pub quota_rejections: u64,
    /// Read-path p50.
    pub read_p50: Duration,
    /// Read-path p99.
    pub read_p99: Duration,
    /// Write-path p99.
    pub write_p99: Duration,
    /// Result-cache counters, when caching is enabled.
    pub cache: Option<CacheStats>,
}

impl fmt::Display for TenantStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tenant '{}' [{}]: {} docs ({} generations + {} memtable), epoch {}, {} bytes",
            self.name,
            self.kind,
            self.documents,
            self.generations,
            self.memtable_documents,
            self.epoch,
            self.size_bytes,
        )?;
        writeln!(
            f,
            "  inserts {}, queries {}, quota rejections {}",
            self.inserts, self.queries, self.quota_rejections
        )?;
        writeln!(
            f,
            "  read p50 {}us p99 {}us, write p99 {}us",
            self.read_p50.as_micros(),
            self.read_p99.as_micros(),
            self.write_p99.as_micros(),
        )?;
        if let Some(cache) = &self.cache {
            writeln!(
                f,
                "  cache: hits {} misses {} version {}",
                cache.counters.hits, cache.counters.misses, cache.version
            )?;
        }
        Ok(())
    }
}

/// The registry: many named live indexes behind one handle. `Sync` — share
/// by reference between the serving reactor and in-process callers.
pub struct TenantRegistry {
    tenants: RwLock<HashMap<String, Arc<TenantState>>>,
    quotas: TenantQuotas,
    params: RamboParams,
    default_mode: QueryMode,
    /// Creation-stamp source; also the "tenants ever created" counter.
    creations: AtomicU64,
    drops: AtomicU64,
    /// `R.CREATE`/`BF.RESERVE` rejections at the registry tenant cap.
    tenant_quota_rejections: AtomicU64,
    ctx_pool: Mutex<Vec<QueryContext>>,
}

impl TenantRegistry {
    /// Create an empty registry. `params` is the default geometry for
    /// tenants created without an explicit override.
    ///
    /// # Errors
    /// [`RamboError::InvalidParams`] when `params` is degenerate.
    pub fn new(params: RamboParams, quotas: TenantQuotas) -> Result<Self, RamboError> {
        params.validate()?;
        Ok(Self {
            tenants: RwLock::new(HashMap::new()),
            quotas,
            params,
            default_mode: QueryMode::Full,
            creations: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            tenant_quota_rejections: AtomicU64::new(0),
            ctx_pool: Mutex::new(Vec::new()),
        })
    }

    /// The registry's quota configuration.
    #[must_use]
    pub fn quotas(&self) -> &TenantQuotas {
        &self.quotas
    }

    /// The default index geometry for created tenants.
    #[must_use]
    pub fn base_params(&self) -> &RamboParams {
        &self.params
    }

    /// Number of live tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants.read().expect("tenant map").len()
    }

    /// Whether no tenants are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a tenant with this name is live.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.tenants.read().expect("tenant map").contains_key(name)
    }

    fn get(&self, name: &str) -> Result<Arc<TenantState>, TenantError> {
        self.tenants
            .read()
            .expect("tenant map")
            .get(name)
            .cloned()
            .ok_or_else(|| TenantError::UnknownTenant(name.to_owned()))
    }

    /// Create a named tenant.
    ///
    /// # Errors
    /// [`TenantError::BadName`], [`TenantError::DuplicateTenant`],
    /// [`TenantError::TenantQuota`] at the live-tenant cap, and
    /// [`TenantError::Index`] when the FPR budget or geometry is invalid.
    pub fn create(&self, name: &str, opts: TenantOptions) -> Result<(), TenantError> {
        validate_name(name)?;
        let params = opts.params.unwrap_or(self.params);
        let mut config = GenerationConfig {
            memtable_fpr_budget: opts.fpr,
            ..GenerationConfig::default()
        };
        if let Some(tiers) = opts.max_generations {
            config.max_generations = tiers;
        }
        let index = GenerationalIndex::new(params, config).map_err(TenantError::Index)?;
        let mut map = self.tenants.write().expect("tenant map");
        if map.contains_key(name) {
            return Err(TenantError::DuplicateTenant(name.to_owned()));
        }
        if map.len() >= self.quotas.max_tenants {
            self.tenant_quota_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(TenantError::TenantQuota {
                limit: self.quotas.max_tenants,
            });
        }
        let created = self.creations.fetch_add(1, Ordering::Relaxed) + 1;
        map.insert(
            name.to_owned(),
            Arc::new(TenantState {
                name: name.to_owned(),
                kind: opts.kind,
                index: RwLock::new(index),
                cache: (self.quotas.cache_bytes > 0)
                    .then(|| ResultCache::new(self.quotas.cache_bytes)),
                max_docs: opts.max_docs.unwrap_or(self.quotas.max_docs),
                max_bytes: opts.max_bytes.unwrap_or(self.quotas.max_bytes),
                created,
                inserts: AtomicU64::new(0),
                queries: AtomicU64::new(0),
                quota_rejections: AtomicU64::new(0),
                read_latency: LatencyHistogram::new(),
                write_latency: LatencyHistogram::new(),
            }),
        );
        Ok(())
    }

    /// Drop a tenant, releasing its index and result cache. Returns whether
    /// the name was live. A subsequent [`TenantRegistry::create`] of the
    /// same name starts from an empty index, a fresh cache and a new
    /// creation stamp — nothing of the dropped incarnation can leak into
    /// answers.
    pub fn drop_tenant(&self, name: &str) -> bool {
        let removed = self
            .tenants
            .write()
            .expect("tenant map")
            .remove(name)
            .is_some();
        if removed {
            self.drops.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Insert a document into a tenant, returning its tenant-local id.
    /// Quotas (term cap, document cap, byte budget) are checked at
    /// admission, before the index is touched; rejections are counted in
    /// the tenant's [`TenantStats::quota_rejections`].
    ///
    /// # Errors
    /// [`TenantError::UnknownTenant`], the quota variants, and
    /// [`TenantError::Index`] for duplicate document names.
    pub fn insert_document(
        &self,
        tenant: &str,
        doc: &str,
        terms: &[u64],
    ) -> Result<DocId, TenantError> {
        let t = self.get(tenant)?;
        let start = Instant::now();
        if terms.len() > self.quotas.max_terms_per_doc {
            t.quota_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(TenantError::TermQuota {
                limit: self.quotas.max_terms_per_doc,
            });
        }
        let id = {
            let mut index = t.index.write().expect("tenant index");
            if index.num_documents() >= t.max_docs {
                drop(index);
                t.quota_rejections.fetch_add(1, Ordering::Relaxed);
                return Err(TenantError::DocQuota { limit: t.max_docs });
            }
            if index.size_bytes() >= t.max_bytes {
                drop(index);
                t.quota_rejections.fetch_add(1, Ordering::Relaxed);
                return Err(TenantError::ByteQuota { limit: t.max_bytes });
            }
            index
                .insert_document(doc, terms)
                .map_err(TenantError::Index)?
        };
        t.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(cache) = &t.cache {
            // A new document can match any cached query of this tenant.
            cache.bump_version();
        }
        t.write_latency.record(start.elapsed());
        Ok(id)
    }

    /// Multi-term AND query against one tenant (bit-identical to a
    /// single-index process holding only this tenant's documents), through
    /// the tenant's result cache. `None` mode uses the registry default.
    ///
    /// # Errors
    /// [`TenantError::UnknownTenant`].
    pub fn query(
        &self,
        tenant: &str,
        terms: &[u64],
        mode: Option<QueryMode>,
    ) -> Result<Vec<DocId>, TenantError> {
        self.query_inner(tenant, terms, None, mode)
    }

    /// θ-fraction sequence query against one tenant (documents matching at
    /// least `theta · terms.len()` query terms), through the tenant's
    /// result cache.
    ///
    /// # Errors
    /// [`TenantError::UnknownTenant`].
    ///
    /// # Panics
    /// Panics unless `0 < theta ≤ 1` (the RESP front validates before
    /// calling).
    pub fn query_theta(
        &self,
        tenant: &str,
        terms: &[u64],
        theta: f64,
        mode: Option<QueryMode>,
    ) -> Result<Vec<DocId>, TenantError> {
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
        self.query_inner(tenant, terms, Some(theta), mode)
    }

    fn query_inner(
        &self,
        tenant: &str,
        terms: &[u64],
        theta: Option<f64>,
        mode: Option<QueryMode>,
    ) -> Result<Vec<DocId>, TenantError> {
        let t = self.get(tenant)?;
        let start = Instant::now();
        let mode = mode.unwrap_or(self.default_mode);
        let mode_lane = match mode {
            QueryMode::Full => 0u32,
            QueryMode::Sparse => 1,
        };
        // θ queries live in their own cache lanes with the threshold mixed
        // into the key: the same term set at a different θ is a different
        // answer.
        let (lane, key) = match theta {
            None => (mode_lane, canonical_query_key(terms)),
            Some(th) => (2 + mode_lane, canonical_query_key(terms) ^ theta_salt(th)),
        };
        let mut version = 0;
        if let Some(cache) = &t.cache {
            version = cache.version();
            if let Some(docs) = cache.get(lane, key, version) {
                t.queries.fetch_add(1, Ordering::Relaxed);
                t.read_latency.record(start.elapsed());
                return Ok(docs);
            }
            cache.record_miss();
        }
        let mut ctx = self
            .ctx_pool
            .lock()
            .expect("ctx pool")
            .pop()
            .unwrap_or_default();
        let docs = {
            let index = t.index.read().expect("tenant index");
            match theta {
                None => index.query_terms_with(terms, mode, &mut ctx),
                Some(th) => index.query_sequence_theta_with(terms, th, mode, &mut ctx),
            }
        };
        {
            let mut pool = self.ctx_pool.lock().expect("ctx pool");
            if pool.len() < CTX_POOL_CAP {
                pool.push(ctx);
            }
        }
        if let Some(cache) = &t.cache {
            // Keyed to the version read before evaluation: an insert that
            // raced this query bumped the version, so the entry can never
            // mask the new document.
            cache.insert(lane, key, version, &docs);
        }
        t.queries.fetch_add(1, Ordering::Relaxed);
        t.read_latency.record(start.elapsed());
        Ok(docs)
    }

    /// Resolve tenant-local document ids (as returned by the query methods)
    /// to document names.
    ///
    /// # Errors
    /// [`TenantError::UnknownTenant`].
    ///
    /// # Panics
    /// Panics on an id the tenant never issued.
    pub fn resolve_names(&self, tenant: &str, ids: &[DocId]) -> Result<Vec<String>, TenantError> {
        let t = self.get(tenant)?;
        let index = t.index.read().expect("tenant index");
        Ok(ids
            .iter()
            .map(|&d| index.document_name(d).to_owned())
            .collect())
    }

    /// Point-in-time stats for one tenant.
    ///
    /// # Errors
    /// [`TenantError::UnknownTenant`].
    pub fn stats(&self, tenant: &str) -> Result<TenantStats, TenantError> {
        self.get(tenant).map(|t| snapshot(&t))
    }

    /// Stats for every live tenant, sorted by name.
    #[must_use]
    pub fn list(&self) -> Vec<TenantStats> {
        let mut all: Vec<TenantStats> = self
            .tenants
            .read()
            .expect("tenant map")
            .values()
            .map(|t| snapshot(t))
            .collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// Registry-level counters: tenants ever created, dropped, and
    /// creations rejected at the tenant cap.
    #[must_use]
    pub fn registry_counters(&self) -> (u64, u64, u64) {
        (
            self.creations.load(Ordering::Relaxed),
            self.drops.load(Ordering::Relaxed),
            self.tenant_quota_rejections.load(Ordering::Relaxed),
        )
    }

    /// Plain-text summary of the registry and every tenant — the payload of
    /// the binary front's `STATS` frame and of `R.STATS` without a tenant
    /// argument.
    #[must_use]
    pub fn summary(&self) -> String {
        use fmt::Write;
        let (created, dropped, rejected) = self.registry_counters();
        let all = self.list();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "tenants: {} live ({} created, {} dropped, {} create-rejections)",
            all.len(),
            created,
            dropped,
            rejected,
        );
        for stats in &all {
            let _ = write!(out, "{stats}");
        }
        out
    }

    /// Run at most one pending generation merge across all tenants: plan
    /// under a read lock, OR-fold off-lock, install under a brief validated
    /// write lock. Returns whether a merge was installed — callers (the
    /// serving reactor's idle path, tests, benches) loop while it returns
    /// `true` to quiesce. Merges are answer-preserving, so no cache bump.
    pub fn maintain_once(&self) -> bool {
        let tenants: Vec<Arc<TenantState>> = self
            .tenants
            .read()
            .expect("tenant map")
            .values()
            .cloned()
            .collect();
        for t in tenants {
            let job = {
                let index = t.index.read().expect("tenant index");
                index.merge_job()
            };
            let Some(job) = job else { continue };
            let Ok(merged) = job.run() else { continue };
            if t.index
                .write()
                .expect("tenant index")
                .install_merged(&job, merged)
            {
                return true;
            }
        }
        false
    }

    /// Run merges until every tenant's tiers are quiescent.
    pub fn drain_maintenance(&self) {
        while self.maintain_once() {}
    }
}

fn snapshot(t: &TenantState) -> TenantStats {
    let (documents, generations, memtable_documents, epoch, size_bytes) = {
        let index = t.index.read().expect("tenant index");
        (
            index.num_documents(),
            index.num_generations(),
            index.memtable_documents(),
            index.epoch(),
            index.size_bytes(),
        )
    };
    TenantStats {
        name: t.name.clone(),
        kind: t.kind,
        created: t.created,
        documents,
        generations,
        memtable_documents,
        epoch,
        size_bytes,
        max_bytes: t.max_bytes,
        inserts: t.inserts.load(Ordering::Relaxed),
        queries: t.queries.load(Ordering::Relaxed),
        quota_rejections: t.quota_rejections.load(Ordering::Relaxed),
        read_p50: t.read_latency.quantile(0.50),
        read_p99: t.read_latency.quantile(0.99),
        write_p99: t.write_latency.quantile(0.99),
        cache: t.cache.as_ref().map(ResultCache::stats),
    }
}

/// Tenant names travel on the inline text protocol: 1..=128 graphic ASCII
/// characters (no whitespace, no control bytes).
fn validate_name(name: &str) -> Result<(), TenantError> {
    if name.is_empty() || name.len() > 128 || !name.bytes().all(|b| b.is_ascii_graphic()) {
        return Err(TenantError::BadName(name.to_owned()));
    }
    Ok(())
}

/// Mix a θ threshold into a 128-bit cache key so the same term set at a
/// different θ occupies a different cache slot.
fn theta_salt(theta: f64) -> u128 {
    let bits = theta.to_bits();
    (u128::from(mix64(bits)) << 64) | u128::from(mix64(bits ^ 0xA076_1D64_78BD_642F))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RamboParams {
        RamboParams::flat(8, 3, 1 << 10, 2, 7)
    }

    fn registry() -> TenantRegistry {
        TenantRegistry::new(params(), TenantQuotas::default()).unwrap()
    }

    #[test]
    fn create_insert_query_drop_roundtrip() {
        let reg = registry();
        reg.create("a", TenantOptions::default()).unwrap();
        assert_eq!(reg.insert_document("a", "d0", &[1, 2, 3]).unwrap(), 0);
        assert_eq!(reg.query("a", &[2], None).unwrap(), vec![0]);
        assert_eq!(reg.resolve_names("a", &[0]).unwrap(), vec!["d0"]);
        assert!(reg.drop_tenant("a"));
        assert!(!reg.drop_tenant("a"));
        assert!(matches!(
            reg.query("a", &[2], None),
            Err(TenantError::UnknownTenant(_))
        ));
    }

    #[test]
    fn tenants_are_isolated() {
        let reg = registry();
        reg.create("a", TenantOptions::default()).unwrap();
        reg.create("b", TenantOptions::default()).unwrap();
        reg.insert_document("a", "d", &[10, 11]).unwrap();
        reg.insert_document("b", "d", &[20, 21]).unwrap();
        assert_eq!(reg.query("a", &[10], None).unwrap(), vec![0]);
        assert!(reg.query("b", &[10], None).unwrap().is_empty());
    }

    #[test]
    fn duplicate_and_bad_names_are_rejected() {
        let reg = registry();
        reg.create("a", TenantOptions::default()).unwrap();
        assert!(matches!(
            reg.create("a", TenantOptions::default()),
            Err(TenantError::DuplicateTenant(_))
        ));
        for bad in ["", "has space", "ctrl\x07", &"x".repeat(129)] {
            assert!(
                matches!(
                    reg.create(bad, TenantOptions::default()),
                    Err(TenantError::BadName(_))
                ),
                "name {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn tenant_cap_is_enforced() {
        let quotas = TenantQuotas {
            max_tenants: 2,
            ..TenantQuotas::default()
        };
        let reg = TenantRegistry::new(params(), quotas).unwrap();
        reg.create("a", TenantOptions::default()).unwrap();
        reg.create("b", TenantOptions::default()).unwrap();
        assert!(matches!(
            reg.create("c", TenantOptions::default()),
            Err(TenantError::TenantQuota { limit: 2 })
        ));
        // Dropping frees a slot.
        assert!(reg.drop_tenant("a"));
        reg.create("c", TenantOptions::default()).unwrap();
        assert_eq!(reg.registry_counters().2, 1);
    }

    #[test]
    fn document_and_term_quotas_are_enforced_and_counted() {
        let quotas = TenantQuotas {
            max_docs: 2,
            max_terms_per_doc: 4,
            ..TenantQuotas::default()
        };
        let reg = TenantRegistry::new(params(), quotas).unwrap();
        reg.create("a", TenantOptions::default()).unwrap();
        reg.insert_document("a", "d0", &[1]).unwrap();
        assert!(matches!(
            reg.insert_document("a", "big", &[1, 2, 3, 4, 5]),
            Err(TenantError::TermQuota { limit: 4 })
        ));
        reg.insert_document("a", "d1", &[2]).unwrap();
        assert!(matches!(
            reg.insert_document("a", "d2", &[3]),
            Err(TenantError::DocQuota { limit: 2 })
        ));
        let stats = reg.stats("a").unwrap();
        assert_eq!(stats.quota_rejections, 2);
        assert_eq!(stats.documents, 2);
    }

    #[test]
    fn byte_budget_bounds_admission() {
        let reg = registry();
        reg.create(
            "tiny",
            TenantOptions {
                max_bytes: Some(1),
                ..TenantOptions::default()
            },
        )
        .unwrap();
        // The empty index already exceeds a 1-byte budget, so the very
        // first insert is rejected at admission.
        assert!(matches!(
            reg.insert_document("tiny", "d", &[1]),
            Err(TenantError::ByteQuota { limit: 1 })
        ));
    }

    #[test]
    fn recreate_after_drop_serves_fresh_answers_not_stale_cache() {
        let reg = registry();
        reg.create("a", TenantOptions::default()).unwrap();
        reg.insert_document("a", "old", &[42]).unwrap();
        // Prime and hit the cache.
        assert_eq!(reg.query("a", &[42], None).unwrap(), vec![0]);
        assert_eq!(reg.query("a", &[42], None).unwrap(), vec![0]);
        let first_created = reg.stats("a").unwrap().created;
        assert!(reg.drop_tenant("a"));
        reg.create("a", TenantOptions::default()).unwrap();
        // The recreated tenant must answer from its own (empty) index.
        assert!(reg.query("a", &[42], None).unwrap().is_empty());
        assert!(reg.stats("a").unwrap().created > first_created);
    }

    #[test]
    fn maintenance_merges_generations() {
        let reg = registry();
        reg.create("a", TenantOptions::default()).unwrap();
        let small = GenerationConfig::default();
        assert!(small.memtable_max_docs >= 4, "default cap sanity");
        // Force seals via many docs with rich term sets to cross the FPR
        // budget quickly at the tiny geometry.
        for d in 0..64 {
            let base = (d as u64) << 16;
            let terms: Vec<u64> = (0..64).map(|t| base | t).collect();
            reg.insert_document("a", &format!("d{d}"), &terms).unwrap();
        }
        reg.drain_maintenance();
        let stats = reg.stats("a").unwrap();
        assert_eq!(stats.documents, 64);
        // Every doc still answers after merging.
        for d in [0u64, 31, 63] {
            let got = reg.query("a", &[(d << 16) | 5], None).unwrap();
            assert!(got.contains(&(d as u32)), "doc {d} lost after merges");
        }
    }
}
