//! Sliding-window k-mer extraction (Figure 1 of the paper).
//!
//! The iterator maintains a rolling packed k-mer: each new base shifts the
//! window by one (`O(1)` per position, `O(n)` per sequence). Ambiguous bases
//! (anything outside ACGT) reset the window, so no emitted k-mer spans an
//! `N` — matching how BIGSI/COBS/McCortex treat ambiguity codes.

use crate::encode::{canonical_kmer, encode_base, kmer_mask};
use crate::MAX_K;

/// Iterator over the packed k-mers of a sequence. See [`kmers_of`].
pub struct KmerIter<'a> {
    seq: &'a [u8],
    k: usize,
    mask: u64,
    pos: usize,
    current: u64,
    /// Number of consecutive valid bases ending just before `pos`.
    run: usize,
    canonical: bool,
}

impl<'a> KmerIter<'a> {
    fn new(seq: &'a [u8], k: usize, canonical: bool) -> Self {
        assert!((1..=MAX_K).contains(&k), "k must be in 1..={MAX_K}");
        Self {
            seq,
            k,
            mask: kmer_mask(k),
            pos: 0,
            current: 0,
            run: 0,
            canonical,
        }
    }
}

impl Iterator for KmerIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.pos < self.seq.len() {
            let b = self.seq[self.pos];
            self.pos += 1;
            match encode_base(b) {
                Some(code) => {
                    self.current = ((self.current << 2) | u64::from(code)) & self.mask;
                    self.run += 1;
                    if self.run >= self.k {
                        return Some(if self.canonical {
                            canonical_kmer(self.current, self.k)
                        } else {
                            self.current
                        });
                    }
                }
                None => {
                    self.run = 0;
                    self.current = 0;
                }
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.seq.len() - self.pos;
        (0, Some(remaining + self.run.saturating_sub(self.k - 1)))
    }
}

/// All packed k-mers of `seq` in order, one per window position.
///
/// ```
/// use rambo_kmer::kmers_of;
/// let kmers: Vec<u64> = kmers_of(b"ACGTA", 3, false).collect();
/// assert_eq!(kmers.len(), 3); // ACG, CGT, GTA
/// ```
#[must_use]
pub fn kmers_of(seq: &[u8], k: usize, canonical: bool) -> KmerIter<'_> {
    KmerIter::new(seq, k, canonical)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::pack_kmer;

    fn naive(seq: &[u8], k: usize) -> Vec<u64> {
        seq.windows(k).filter_map(pack_kmer).collect()
    }

    #[test]
    fn matches_naive_extraction() {
        let seq = b"GATTACAGATTACACCGGTT";
        for k in [1usize, 3, 5, 11] {
            let got: Vec<u64> = kmers_of(seq, k, false).collect();
            assert_eq!(got, naive(seq, k), "k={k}");
        }
    }

    #[test]
    fn window_count_formula() {
        // n - k + 1 windows on a clean sequence (the paper's "length-31
        // strings each shifted by 1 character").
        let seq = vec![b'A'; 100];
        assert_eq!(kmers_of(&seq, 31, false).count(), 70);
    }

    #[test]
    fn ambiguity_resets_window() {
        // No k-mer may span the N: "ACGNTAC" with k=3 yields ACG and TAC.
        let got: Vec<u64> = kmers_of(b"ACGNTAC", 3, false).collect();
        assert_eq!(
            got,
            vec![pack_kmer(b"ACG").unwrap(), pack_kmer(b"TAC").unwrap()]
        );
    }

    #[test]
    fn sequence_shorter_than_k_yields_nothing() {
        assert_eq!(kmers_of(b"ACG", 5, false).count(), 0);
        assert_eq!(kmers_of(b"", 3, false).count(), 0);
    }

    #[test]
    fn canonical_mode_strand_invariant() {
        let seq = b"GATTACAGATTACA";
        let rc = crate::encode::revcomp_seq(seq);
        let mut fwd: Vec<u64> = kmers_of(seq, 5, true).collect();
        let mut rev: Vec<u64> = kmers_of(&rc, 5, true).collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        assert_eq!(fwd, rev, "canonical k-mer multisets must match strands");
    }

    #[test]
    fn lowercase_sequences_accepted() {
        let upper: Vec<u64> = kmers_of(b"ACGTACGT", 4, false).collect();
        let lower: Vec<u64> = kmers_of(b"acgtacgt", 4, false).collect();
        assert_eq!(upper, lower);
    }
}
