//! Minimal streaming FASTA parser and writer.
//!
//! FASTA is the paper's "assembled genomes" input format (§1). Records are a
//! `>` header line followed by any number of sequence lines; we concatenate
//! the sequence lines and keep the full header (minus `>`) as the record id.

use std::io::{self, BufRead, Write};

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header text after `>` (including any description).
    pub id: String,
    /// Concatenated sequence bytes (whitespace stripped).
    pub seq: Vec<u8>,
}

/// Streaming reader yielding [`FastaRecord`]s from any `BufRead`.
pub struct FastaReader<R: BufRead> {
    input: R,
    /// Header of the record currently being accumulated.
    pending: Option<String>,
    line: String,
    done: bool,
}

impl<R: BufRead> FastaReader<R> {
    /// Wrap a buffered reader.
    pub fn new(input: R) -> Self {
        Self {
            input,
            pending: None,
            line: String::new(),
            done: false,
        }
    }
}

impl<R: BufRead> Iterator for FastaReader<R> {
    type Item = io::Result<FastaRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut seq: Vec<u8> = Vec::new();
        loop {
            self.line.clear();
            let n = match self.input.read_line(&mut self.line) {
                Ok(n) => n,
                Err(e) => return Some(Err(e)),
            };
            if n == 0 {
                // EOF: flush the pending record if any.
                self.done = true;
                return self.pending.take().map(|id| Ok(FastaRecord { id, seq }));
            }
            let line = self.line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('>') {
                let header = header.to_string();
                match self.pending.replace(header) {
                    Some(id) => return Some(Ok(FastaRecord { id, seq })),
                    None => {
                        if !seq.is_empty() {
                            self.done = true;
                            return Some(Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "sequence data before first FASTA header",
                            )));
                        }
                    }
                }
            } else {
                if self.pending.is_none() {
                    self.done = true;
                    return Some(Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "sequence data before first FASTA header",
                    )));
                }
                seq.extend(line.bytes().filter(|b| !b.is_ascii_whitespace()));
            }
        }
    }
}

/// Write records in FASTA format with 70-column sequence wrapping.
///
/// # Errors
/// Propagates I/O errors from the underlying writer.
pub fn write_fasta<'a, W: Write>(
    mut out: W,
    records: impl IntoIterator<Item = &'a FastaRecord>,
) -> io::Result<()> {
    for rec in records {
        writeln!(out, ">{}", rec.id)?;
        for chunk in rec.seq.chunks(70) {
            out.write_all(chunk)?;
            out.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> Vec<FastaRecord> {
        FastaReader::new(Cursor::new(text))
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
    }

    #[test]
    fn single_record() {
        let recs = parse(">genome1 desc\nACGT\nTTAA\n");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, "genome1 desc");
        assert_eq!(recs[0].seq, b"ACGTTTAA");
    }

    #[test]
    fn multiple_records_and_blank_lines() {
        let recs = parse(">a\nAC\n\n>b\nGG\nTT\n\n>c\nA\n");
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[1].id, "b");
        assert_eq!(recs[1].seq, b"GGTT");
        assert_eq!(recs[2].seq, b"A");
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(parse("").is_empty());
    }

    #[test]
    fn record_with_empty_sequence_is_kept() {
        let recs = parse(">only-header\n");
        assert_eq!(recs.len(), 1);
        assert!(recs[0].seq.is_empty());
    }

    #[test]
    fn data_before_header_is_an_error() {
        let mut rdr = FastaReader::new(Cursor::new("ACGT\n>late\nAC\n"));
        assert!(rdr.next().unwrap().is_err());
        assert!(rdr.next().is_none(), "reader stops after error");
    }

    #[test]
    fn roundtrip_through_writer() {
        let original = vec![
            FastaRecord {
                id: "r1".into(),
                seq: b"ACGT".repeat(50),
            },
            FastaRecord {
                id: "r2 with description".into(),
                seq: b"TTT".to_vec(),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &original).unwrap();
        let parsed = parse(std::str::from_utf8(&buf).unwrap());
        assert_eq!(parsed, original);
    }

    #[test]
    fn crlf_line_endings_handled() {
        let recs = parse(">a\r\nACGT\r\nAC\r\n");
        assert_eq!(recs[0].seq, b"ACGTAC");
    }
}
