//! Sequencing simulator: the stand-in for the paper's 170TB ENA archive.
//!
//! The index algorithms only ever observe *sets of k-mers*; the data
//! properties they are sensitive to are (a) per-document cardinality, (b)
//! inter-document overlap (the multiplicity `V` in Lemmas 4.1/4.2), and (c)
//! error noise in raw reads (why FASTQ ingestion is slower and bigger than
//! McCortex, Table 2). This module reproduces all three:
//!
//! * [`GenomeSimulator::random_genome`] — i.i.d. uniform base genomes;
//! * [`GenomeSimulator::mutate`] / [`GenomeSimulator::derive_family`] —
//!   shared-ancestry copies with point mutations, giving documents the kind
//!   of k-mer overlap real microbial strains have;
//! * [`GenomeSimulator::simulate_reads`] — fixed-length reads at a target
//!   coverage with per-base substitution errors and phred-style qualities,
//!   i.e. synthetic FASTQ.

use crate::fastq::FastqRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Deterministic genome & read generator.
pub struct GenomeSimulator {
    rng: StdRng,
}

impl GenomeSimulator {
    /// Create a simulator; identical seeds replay identical archives.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniform random genome of `len` bases.
    pub fn random_genome(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| BASES[self.rng.gen_range(0..4)]).collect()
    }

    /// Copy `seq` with i.i.d. point substitutions at `rate` (each mutated
    /// base is redrawn among the three alternatives).
    ///
    /// # Panics
    /// Panics unless `0 ≤ rate ≤ 1`.
    pub fn mutate(&mut self, seq: &[u8], rate: f64) -> Vec<u8> {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        seq.iter()
            .map(|&b| {
                if self.rng.gen_bool(rate) {
                    // Substitute with one of the three *other* bases.
                    let current = BASES.iter().position(|&x| x == b).unwrap_or(0);
                    BASES[(current + self.rng.gen_range(1..4)) % 4]
                } else {
                    b
                }
            })
            .collect()
    }

    /// Derive `children` genomes from one ancestor by independent mutation —
    /// a one-level star phylogeny. Children share ≈`(1−rate)^k` of their
    /// k-mers with the ancestor and with each other, which is how the
    /// synthetic archives obtain realistic term multiplicities.
    pub fn derive_family(&mut self, ancestor: &[u8], children: usize, rate: f64) -> Vec<Vec<u8>> {
        (0..children).map(|_| self.mutate(ancestor, rate)).collect()
    }

    /// Shotgun reads: `⌈coverage · len / read_len⌉` reads of `read_len`
    /// bases drawn uniformly over the genome, with per-base substitution
    /// errors at `error_rate` and a quality string reflecting the error rate
    /// (constant phred score, Sanger +33 encoding).
    ///
    /// # Panics
    /// Panics if `read_len` is zero or longer than the genome.
    pub fn simulate_reads(
        &mut self,
        genome: &[u8],
        read_len: usize,
        coverage: f64,
        error_rate: f64,
    ) -> Vec<FastqRecord> {
        assert!(read_len > 0 && read_len <= genome.len());
        let n_reads = ((coverage * genome.len() as f64) / read_len as f64).ceil() as usize;
        let phred = if error_rate > 0.0 {
            (-10.0 * error_rate.log10()).round().clamp(2.0, 41.0) as u8
        } else {
            41
        };
        let qual_char = b'!' + phred;
        (0..n_reads)
            .map(|i| {
                let start = self.rng.gen_range(0..=genome.len() - read_len);
                let seq = self.mutate(&genome[start..start + read_len], error_rate);
                FastqRecord {
                    id: format!("read-{i} pos={start}"),
                    qual: vec![qual_char; seq.len()],
                    seq,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genomes_are_deterministic_per_seed() {
        let g1 = GenomeSimulator::new(7).random_genome(500);
        let g2 = GenomeSimulator::new(7).random_genome(500);
        let g3 = GenomeSimulator::new(8).random_genome(500);
        assert_eq!(g1, g2);
        assert_ne!(g1, g3);
        assert!(g1.iter().all(|b| BASES.contains(b)));
    }

    #[test]
    fn base_composition_roughly_uniform() {
        let g = GenomeSimulator::new(1).random_genome(40_000);
        for &b in &BASES {
            let frac = g.iter().filter(|&&x| x == b).count() as f64 / g.len() as f64;
            assert!((0.22..0.28).contains(&frac), "base {b} frac {frac}");
        }
    }

    #[test]
    fn mutation_rate_is_respected() {
        let mut sim = GenomeSimulator::new(2);
        let g = sim.random_genome(50_000);
        let m = sim.mutate(&g, 0.05);
        assert_eq!(g.len(), m.len());
        let diffs = g.iter().zip(&m).filter(|(a, b)| a != b).count();
        let rate = diffs as f64 / g.len() as f64;
        assert!((0.04..0.06).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn zero_rate_mutation_is_identity() {
        let mut sim = GenomeSimulator::new(3);
        let g = sim.random_genome(1000);
        assert_eq!(sim.mutate(&g, 0.0), g);
    }

    #[test]
    fn family_members_share_kmers_with_ancestor() {
        use crate::cortex::KmerSet;
        let mut sim = GenomeSimulator::new(4);
        let anc = sim.random_genome(5000);
        let kids = sim.derive_family(&anc, 3, 0.01);
        let anc_set = KmerSet::from_sequence(&anc, 15, false);
        for kid in &kids {
            let kid_set = KmerSet::from_sequence(kid, 15, false);
            let shared = kid_set
                .kmers()
                .iter()
                .filter(|&&k| anc_set.contains(k))
                .count();
            let frac = shared as f64 / kid_set.len() as f64;
            // (1 - 0.01)^15 ≈ 0.86 expected overlap.
            assert!(frac > 0.7, "overlap only {frac}");
        }
    }

    #[test]
    fn reads_cover_genome_at_requested_depth() {
        let mut sim = GenomeSimulator::new(5);
        let g = sim.random_genome(2000);
        let reads = sim.simulate_reads(&g, 100, 10.0, 0.0);
        assert_eq!(reads.len(), 200); // 10x * 2000 / 100
        for r in &reads {
            assert_eq!(r.seq.len(), 100);
            assert_eq!(r.qual.len(), 100);
            // Error-free reads must be exact substrings.
            let pos: usize = r.id.split("pos=").nth(1).unwrap().parse().unwrap();
            assert_eq!(&g[pos..pos + 100], &r.seq[..]);
        }
    }

    #[test]
    fn read_errors_inject_noise() {
        let mut sim = GenomeSimulator::new(6);
        let g = sim.random_genome(5000);
        let reads = sim.simulate_reads(&g, 100, 5.0, 0.02);
        let mut diffs = 0usize;
        let mut total = 0usize;
        for r in &reads {
            let pos: usize = r.id.split("pos=").nth(1).unwrap().parse().unwrap();
            diffs += g[pos..pos + 100]
                .iter()
                .zip(&r.seq)
                .filter(|(a, b)| a != b)
                .count();
            total += 100;
        }
        let rate = diffs as f64 / total as f64;
        assert!((0.012..0.03).contains(&rate), "observed error rate {rate}");
        // Phred for 2% error ≈ 17 → '2'.
        assert_eq!(reads[0].qual[0], b'!' + 17);
    }
}
