//! Genomics ingestion glue: FASTA / FASTQ / k-mer sets → a RAMBO index,
//! through the batch engine.
//!
//! The paper's pipeline treats one sequencing run or assembled genome as one
//! document and its distinct 31-mers as the term set. These helpers connect
//! the parsers in this crate to [`Rambo::insert_document_batch`]: terms
//! arrive as whole per-document batches (already distinct when they come
//! from a [`KmerSet`]), so the index hashes each unique k-mer once per
//! repetition and writes the filter bits row-grouped instead of paying the
//! term-at-a-time insertion path per k-mer.
//!
//! For streaming inputs the `pipeline_*` variants go one level further:
//! they feed the parser straight into [`IngestPipeline`], so parsing and
//! k-mer hashing of the next record overlap the previous record's bucket
//! writes (bit-identical output, same error contract).

use crate::cortex::KmerSet;
use crate::fasta::FastaReader;
use crate::fastq::FastqReader;
use crate::iter::kmers_of;
use rambo_core::{DocId, IngestPipeline, PipelineReport, Rambo, RamboError};
use std::fmt;
use std::io::{self, BufRead};

/// Errors from streaming ingestion: parser I/O or index-level failures.
#[derive(Debug)]
pub enum IngestError {
    /// The underlying reader failed or the input was malformed.
    Io(io::Error),
    /// The index rejected a document (duplicate name, …).
    Index(RamboError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "ingestion I/O error: {e}"),
            Self::Index(e) => write!(f, "ingestion index error: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Index(e) => Some(e),
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<RamboError> for IngestError {
    fn from(e: RamboError) -> Self {
        Self::Index(e)
    }
}

/// Insert a pre-extracted distinct k-mer set (one McCortex-style `.ctx`
/// file) as one document.
///
/// # Errors
/// [`RamboError::DuplicateDocument`] when the name is already indexed.
pub fn insert_kmer_set(index: &mut Rambo, name: &str, set: &KmerSet) -> Result<DocId, RamboError> {
    index.insert_document_batch(name, set.kmers())
}

/// Insert one raw sequence (an assembled genome) as one document: extract
/// its k-mers and batch-insert them.
///
/// # Errors
/// [`RamboError::DuplicateDocument`] when the name is already indexed.
pub fn insert_sequence(
    index: &mut Rambo,
    name: &str,
    seq: &[u8],
    k: usize,
    canonical: bool,
) -> Result<DocId, RamboError> {
    let terms: Vec<u64> = kmers_of(seq, k, canonical).collect();
    index.insert_document_batch(name, &terms)
}

/// Ingest a FASTA stream: every record becomes one document named by its
/// header, with the record's k-mers as terms.
///
/// # Errors
/// [`IngestError::Io`] on malformed FASTA or reader failure,
/// [`IngestError::Index`] on duplicate headers. Documents ingested before
/// the failure remain in the index.
pub fn insert_fasta_documents<R: BufRead>(
    index: &mut Rambo,
    reader: FastaReader<R>,
    k: usize,
    canonical: bool,
) -> Result<Vec<DocId>, IngestError> {
    let mut ids = Vec::new();
    for record in reader {
        let record = record?;
        ids.push(insert_sequence(
            index,
            &record.id,
            &record.seq,
            k,
            canonical,
        )?);
    }
    Ok(ids)
}

/// Ingest a FASTQ stream as **one** document (the genomics convention: one
/// sequencing run per file): the distinct k-mers across all reads become the
/// document's term set.
///
/// # Errors
/// [`IngestError::Io`] on malformed FASTQ or reader failure,
/// [`IngestError::Index`] on a duplicate document name.
pub fn insert_fastq_document<R: BufRead>(
    index: &mut Rambo,
    name: &str,
    reader: FastqReader<R>,
    k: usize,
    canonical: bool,
) -> Result<DocId, IngestError> {
    let mut kmers: Vec<u64> = Vec::new();
    for record in reader {
        let record = record?;
        kmers.extend(kmers_of(&record.seq, k, canonical));
    }
    Ok(index.insert_document_batch(name, &kmers)?)
}

/// Outcome of a pipelined streaming ingestion: the ids issued plus the
/// pipeline's stall/queue telemetry.
#[derive(Debug, Clone)]
pub struct PipelinedIngest {
    /// Ids of the documents ingested, in stream order.
    pub ids: Vec<DocId>,
    /// Queue/stall counters from the pipeline run.
    pub report: PipelineReport,
}

/// Ingest a FASTA stream through the bounded-queue ingestion pipeline:
/// while the write stage sets document *n*'s filter bits, the calling
/// thread is already parsing record *n+1* and hashing its k-mers — the
/// overlap that matters when records stream off storage or a decompressor.
///
/// Produces an index bit-identical to [`insert_fasta_documents`].
///
/// # Errors
/// [`IngestError::Io`] on malformed FASTA or reader failure,
/// [`IngestError::Index`] on duplicate headers. Documents fully written
/// before the failure remain in the index; in-flight ones are dropped.
pub fn pipeline_fasta_documents<R: BufRead>(
    index: &mut Rambo,
    reader: FastaReader<R>,
    k: usize,
    canonical: bool,
    pipeline: &IngestPipeline,
) -> Result<PipelinedIngest, IngestError> {
    let start = index.num_documents() as DocId;
    let mut parse_err: Option<io::Error> = None;
    let mut records = reader;
    let report = pipeline.ingest(
        index,
        std::iter::from_fn(|| match records.next() {
            None => None,
            Some(Ok(rec)) => {
                let terms: Vec<u64> = kmers_of(&rec.seq, k, canonical).collect();
                Some((rec.id, terms))
            }
            Some(Err(e)) => {
                // Stop producing; the writer drains what's queued. The I/O
                // error is surfaced after the index error check below.
                parse_err = Some(e);
                None
            }
        }),
    )?;
    if let Some(e) = parse_err {
        return Err(e.into());
    }
    Ok(PipelinedIngest {
        ids: (start..index.num_documents() as DocId).collect(),
        report,
    })
}

/// Ingest several FASTQ runs (one document each, per the genomics
/// convention) through the pipeline: run *n+1* is parsed and hashed while
/// run *n*'s bits are written.
///
/// Produces an index bit-identical to calling [`insert_fastq_document`]
/// per run in order.
///
/// # Errors
/// As [`pipeline_fasta_documents`]; the first malformed run stops the
/// stream.
pub fn pipeline_fastq_documents<R: BufRead>(
    index: &mut Rambo,
    runs: impl IntoIterator<Item = (String, FastqReader<R>)>,
    k: usize,
    canonical: bool,
    pipeline: &IngestPipeline,
) -> Result<PipelinedIngest, IngestError> {
    let start = index.num_documents() as DocId;
    let mut parse_err: Option<io::Error> = None;
    let mut runs = runs.into_iter();
    let report = pipeline.ingest(
        index,
        std::iter::from_fn(|| {
            let (name, reader) = runs.next()?;
            let mut kmers: Vec<u64> = Vec::new();
            for record in reader {
                match record {
                    Ok(rec) => kmers.extend(kmers_of(&rec.seq, k, canonical)),
                    Err(e) => {
                        parse_err = Some(e);
                        return None;
                    }
                }
            }
            Some((name, kmers))
        }),
    )?;
    if let Some(e) = parse_err {
        return Err(e.into());
    }
    Ok(PipelinedIngest {
        ids: (start..index.num_documents() as DocId).collect(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambo_core::RamboParams;
    use std::io::Cursor;

    fn index() -> Rambo {
        Rambo::new(RamboParams::flat(8, 3, 1 << 12, 2, 5)).unwrap()
    }

    #[test]
    fn fasta_records_become_documents() {
        let fasta = ">g1\nACGTACGTACGT\n>g2\nTTTTGGGGCCCC\n";
        let mut idx = index();
        let ids = insert_fasta_documents(&mut idx, FastaReader::new(Cursor::new(fasta)), 5, false)
            .unwrap();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(idx.document_name(0), "g1");
        // A k-mer of g1 finds g1.
        let probe = kmers_of(b"ACGTACGTACGT", 5, false).next().unwrap();
        assert!(idx.query_u64(probe).contains(&0));
    }

    #[test]
    fn fasta_errors_propagate() {
        let bad = "ACGT\n>late\nAC\n"; // data before first header
        let mut idx = index();
        let err = insert_fasta_documents(&mut idx, FastaReader::new(Cursor::new(bad)), 4, false);
        assert!(matches!(err, Err(IngestError::Io(_))));
    }

    #[test]
    fn fastq_file_is_one_document() {
        let fastq = "@r1\nACGTACGT\n+\nFFFFFFFF\n@r2\nGGGGCCCC\n+\nFFFFFFFF\n";
        let mut idx = index();
        let d = insert_fastq_document(
            &mut idx,
            "run-1",
            FastqReader::new(Cursor::new(fastq)),
            4,
            false,
        )
        .unwrap();
        assert_eq!(idx.num_documents(), 1);
        let probe = kmers_of(b"ACGTACGT", 4, false).next().unwrap();
        assert!(idx.query_u64(probe).contains(&d));
    }

    #[test]
    fn kmer_set_ingestion_matches_sequence_ingestion() {
        let seq = b"ACGTTGCAACGTGGGTACCA";
        let set = KmerSet::from_sequence(seq, 7, true);
        let mut via_set = index();
        let mut via_seq = index();
        insert_kmer_set(&mut via_set, "doc", &set).unwrap();
        insert_sequence(&mut via_seq, "doc", seq, 7, true).unwrap();
        // Same distinct k-mers → same filter bits; only the multiplicity
        // accounting may differ (the raw sequence repeats k-mers).
        for kmer in set.kmers() {
            assert_eq!(via_set.query_u64(*kmer), via_seq.query_u64(*kmer));
        }
    }

    #[test]
    fn pipelined_fasta_is_bit_identical_to_eager() {
        let fasta = ">g1\nACGTACGTACGTTTAA\n>g2\nTTTTGGGGCCCCAAAA\n>g3\nACACACACGTGTGTGT\n";
        let mut eager = index();
        let eager_ids =
            insert_fasta_documents(&mut eager, FastaReader::new(Cursor::new(fasta)), 5, true)
                .unwrap();
        let mut piped = index();
        let out = pipeline_fasta_documents(
            &mut piped,
            FastaReader::new(Cursor::new(fasta)),
            5,
            true,
            &IngestPipeline::new(),
        )
        .unwrap();
        assert_eq!(eager, piped, "pipelined FASTA ingest must be lossless");
        assert_eq!(out.ids, eager_ids);
        assert_eq!(out.report.docs, 3);
    }

    #[test]
    fn pipelined_fasta_surfaces_parse_errors() {
        let bad = "ACGT\n>late\nAC\n"; // data before first header
        let mut idx = index();
        let err = pipeline_fasta_documents(
            &mut idx,
            FastaReader::new(Cursor::new(bad)),
            4,
            false,
            &IngestPipeline::new(),
        );
        assert!(matches!(err, Err(IngestError::Io(_))));
    }

    #[test]
    fn pipelined_fastq_runs_match_eager_per_run_ingest() {
        let run = |tag: u8| {
            format!("@r1-{tag}\nACGTACGT\n+\nFFFFFFFF\n@r2-{tag}\nGGGGCCCC\n+\nFFFFFFFF\n")
        };
        let mut eager = index();
        for t in 0..3u8 {
            insert_fastq_document(
                &mut eager,
                &format!("run-{t}"),
                FastqReader::new(Cursor::new(run(t))),
                4,
                false,
            )
            .unwrap();
        }
        let mut piped = index();
        let out = pipeline_fastq_documents(
            &mut piped,
            (0..3u8).map(|t| (format!("run-{t}"), FastqReader::new(Cursor::new(run(t))))),
            4,
            false,
            &IngestPipeline::new().queue_depth(2),
        )
        .unwrap();
        assert_eq!(eager, piped, "pipelined FASTQ ingest must be lossless");
        assert_eq!(out.ids, vec![0, 1, 2]);
    }

    #[test]
    fn pipelined_fastq_stops_on_malformed_run() {
        let good = "@r\nACGT\n+\nIIII\n";
        let bad = "@r\nACGT\n+\nII\n"; // length mismatch
        let mut idx = index();
        let err = pipeline_fastq_documents(
            &mut idx,
            vec![
                ("good".to_string(), FastqReader::new(Cursor::new(good))),
                ("bad".to_string(), FastqReader::new(Cursor::new(bad))),
                ("never".to_string(), FastqReader::new(Cursor::new(good))),
            ],
            4,
            false,
            &IngestPipeline::new(),
        );
        assert!(matches!(err, Err(IngestError::Io(_))));
        assert!(idx.document_id("never").is_none(), "stream stops at error");
    }

    #[test]
    fn duplicate_names_surface_as_index_errors() {
        let mut idx = index();
        insert_kmer_set(
            &mut idx,
            "dup",
            &KmerSet::from_sequence(b"ACGTACGT", 4, false),
        )
        .unwrap();
        let err = insert_kmer_set(&mut idx, "dup", &KmerSet::from_sequence(b"TTTT", 4, false));
        assert!(matches!(err, Err(RamboError::DuplicateDocument(_))));
    }
}
