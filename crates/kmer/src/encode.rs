//! 2-bit DNA encoding and packed-k-mer arithmetic.
//!
//! Nucleotides map to `A=0, C=1, G=2, T=3`. A k-mer (k ≤ 31) packs into the
//! low `2k` bits of a `u64` with the **first** base in the most significant
//! position, so the rolling-window update used by [`crate::KmerIter`] is
//! `kmer = ((kmer << 2) | code) & mask`.
//!
//! The complement permutation is `code ^ 0b11` (A↔T, C↔G), which makes the
//! reverse complement of a packed k-mer a bit-reversal-by-pairs plus an XOR —
//! branch-free and allocation-free.

use crate::MAX_K;

/// Encode one nucleotide (case-insensitive). Returns `None` for anything
/// outside `ACGTacgt` (e.g. the `N` ambiguity code), which k-mer extraction
/// treats as a window break — the same convention as the McCortex tooling.
#[inline]
#[must_use]
pub const fn encode_base(b: u8) -> Option<u8> {
    match b {
        b'A' | b'a' => Some(0),
        b'C' | b'c' => Some(1),
        b'G' | b'g' => Some(2),
        b'T' | b't' => Some(3),
        _ => None,
    }
}

/// Decode a 2-bit code back to an uppercase nucleotide.
///
/// # Panics
/// Panics if `code > 3`.
#[inline]
#[must_use]
pub const fn decode_base(code: u8) -> u8 {
    match code {
        0 => b'A',
        1 => b'C',
        2 => b'G',
        3 => b'T',
        _ => panic!("invalid 2-bit base code"),
    }
}

/// Mask selecting the low `2k` bits.
#[inline]
#[must_use]
pub const fn kmer_mask(k: usize) -> u64 {
    if k == 32 {
        u64::MAX
    } else {
        (1u64 << (2 * k)) - 1
    }
}

/// Pack an exact-length k-mer. Returns `None` if the slice contains a
/// non-ACGT byte.
///
/// # Panics
/// Panics if `seq.len() > MAX_K` (31) or is zero.
#[must_use]
pub fn pack_kmer(seq: &[u8]) -> Option<u64> {
    assert!(
        (1..=MAX_K).contains(&seq.len()),
        "k must be in 1..={MAX_K}, got {}",
        seq.len()
    );
    let mut kmer = 0u64;
    for &b in seq {
        kmer = (kmer << 2) | u64::from(encode_base(b)?);
    }
    Some(kmer)
}

/// Unpack a k-mer into its ASCII sequence.
///
/// # Panics
/// Panics if `k` is zero or exceeds [`MAX_K`].
#[must_use]
pub fn unpack_kmer(kmer: u64, k: usize) -> Vec<u8> {
    assert!((1..=MAX_K).contains(&k), "k must be in 1..={MAX_K}");
    let mut out = vec![0u8; k];
    for (i, slot) in out.iter_mut().enumerate() {
        let shift = 2 * (k - 1 - i);
        *slot = decode_base(((kmer >> shift) & 0b11) as u8);
    }
    out
}

/// Reverse complement of a packed k-mer.
///
/// # Panics
/// Panics if `k` is zero or exceeds [`MAX_K`].
#[inline]
#[must_use]
pub fn revcomp_kmer(kmer: u64, k: usize) -> u64 {
    assert!((1..=MAX_K).contains(&k), "k must be in 1..={MAX_K}");
    // Complement every base: code ^ 0b11 for all 32 slots at once.
    let mut x = !kmer;
    // Reverse the order of the 32 2-bit groups.
    x = ((x >> 2) & 0x3333_3333_3333_3333) | ((x & 0x3333_3333_3333_3333) << 2);
    x = ((x >> 4) & 0x0F0F_0F0F_0F0F_0F0F) | ((x & 0x0F0F_0F0F_0F0F_0F0F) << 4);
    x = x.swap_bytes();
    // The k meaningful groups now sit in the high bits; shift them down.
    x >> (64 - 2 * k)
}

/// Canonical form: the lexicographically smaller of a k-mer and its reverse
/// complement. Strand-independent indexes (the common genomics convention)
/// insert canonical k-mers so a query hits regardless of read orientation.
///
/// # Panics
/// Panics if `k` is zero or exceeds [`MAX_K`].
#[inline]
#[must_use]
pub fn canonical_kmer(kmer: u64, k: usize) -> u64 {
    kmer.min(revcomp_kmer(kmer, k))
}

/// Reverse complement of an ASCII sequence; non-ACGT bytes map to `N`.
#[must_use]
pub fn revcomp_seq(seq: &[u8]) -> Vec<u8> {
    seq.iter()
        .rev()
        .map(|&b| match b {
            b'A' | b'a' => b'T',
            b'C' | b'c' => b'G',
            b'G' | b'g' => b'C',
            b'T' | b't' => b'A',
            _ => b'N',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_codec_roundtrip() {
        for b in [b'A', b'C', b'G', b'T'] {
            assert_eq!(decode_base(encode_base(b).unwrap()), b);
        }
        assert_eq!(encode_base(b'a'), Some(0));
        assert_eq!(encode_base(b't'), Some(3));
        assert_eq!(encode_base(b'N'), None);
        assert_eq!(encode_base(b'X'), None);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let cases: [&[u8]; 4] = [
            b"A",
            b"ACGT",
            b"TTTTTTTTTT",
            b"GATTACAGATTACAGATTACAGATTACAGAT",
        ];
        for seq in cases {
            let packed = pack_kmer(seq).unwrap();
            assert_eq!(unpack_kmer(packed, seq.len()), seq, "{:?}", seq);
        }
    }

    #[test]
    fn pack_rejects_ambiguous() {
        assert_eq!(pack_kmer(b"ACGNT"), None);
    }

    #[test]
    fn packing_convention_first_base_most_significant() {
        // "AC" → A=00, C=01 → 0b0001.
        assert_eq!(pack_kmer(b"AC").unwrap(), 0b0001);
        assert_eq!(pack_kmer(b"CA").unwrap(), 0b0100);
        assert_eq!(pack_kmer(b"T").unwrap(), 0b11);
    }

    #[test]
    fn revcomp_known_values() {
        // revcomp("ACGT") = "ACGT" (palindrome).
        let k = pack_kmer(b"ACGT").unwrap();
        assert_eq!(revcomp_kmer(k, 4), k);
        // revcomp("AACC") = "GGTT".
        let k = pack_kmer(b"AACC").unwrap();
        assert_eq!(unpack_kmer(revcomp_kmer(k, 4), 4), b"GGTT");
        // Full-length 31-mer against the string-level implementation.
        let seq = b"GATTACAGATTACAGATTACAGATTACAGAT";
        let packed = pack_kmer(seq).unwrap();
        assert_eq!(unpack_kmer(revcomp_kmer(packed, 31), 31), revcomp_seq(seq));
    }

    #[test]
    fn revcomp_is_involution() {
        for k in [1usize, 2, 5, 16, 31] {
            let mut x = 0x0123_4567_89AB_CDEFu64 & kmer_mask(k);
            for _ in 0..3 {
                assert_eq!(revcomp_kmer(revcomp_kmer(x, k), k), x, "k={k}");
                x = x.rotate_left(7) & kmer_mask(k);
            }
        }
    }

    #[test]
    fn canonical_is_strand_invariant() {
        for seed in 0..200u64 {
            let k = 31;
            let kmer = rambo_hash::mix64(seed) & kmer_mask(k);
            let rc = revcomp_kmer(kmer, k);
            assert_eq!(canonical_kmer(kmer, k), canonical_kmer(rc, k));
            assert!(canonical_kmer(kmer, k) <= kmer);
        }
    }

    #[test]
    fn revcomp_seq_handles_ambiguity() {
        assert_eq!(revcomp_seq(b"ACGTN"), b"NACGT");
        assert_eq!(revcomp_seq(b"acgt"), b"ACGT".to_vec());
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=")]
    fn pack_rejects_oversized() {
        let _ = pack_kmer(&[b'A'; 32]);
    }
}
