//! McCortex-like binary k-mer-set format.
//!
//! The paper's fastest ingestion path uses the McCortex format (Turner et
//! al., reference \[32\]): "a filtered set of k-mers that omits low-frequency
//! errors from the sequencing instruments", noting that "insertion from
//! McCortex format is blazing fast and preferred as it has unique and
//! filtered k-mers" (§5.2).
//!
//! Real McCortex files carry de-Bruijn-graph edge/coverage metadata that the
//! index never reads; what RAMBO consumes is exactly *the distinct k-mer set
//! of a document*. Our format stores that and nothing else: sorted, distinct,
//! 2-bit-packed k-mers behind a validated header (see DESIGN.md,
//! "Substitutions" item 2).

use crate::encode::kmer_mask;
use crate::iter::kmers_of;
use crate::MAX_K;
use bytes::{Buf, BufMut};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"RKMC";
const VERSION: u8 = 1;

/// A document's distinct k-mer set (sorted ascending).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmerSet {
    k: u8,
    kmers: Vec<u64>,
}

impl KmerSet {
    /// Build from arbitrary packed k-mers: sorts and deduplicates (the
    /// "filtering" step that makes McCortex ingestion cheap for the index).
    ///
    /// # Panics
    /// Panics if `k` is zero or exceeds [`MAX_K`], or if any k-mer has bits
    /// above `2k`.
    #[must_use]
    pub fn from_kmers(k: usize, kmers: impl IntoIterator<Item = u64>) -> Self {
        assert!((1..=MAX_K).contains(&k), "k must be in 1..={MAX_K}");
        let mask = kmer_mask(k);
        let mut v: Vec<u64> = kmers.into_iter().collect();
        for &km in &v {
            assert!(km & !mask == 0, "k-mer {km:#x} has bits beyond 2k");
        }
        v.sort_unstable();
        v.dedup();
        Self {
            k: k as u8,
            kmers: v,
        }
    }

    /// Extract the distinct k-mer set of one sequence.
    #[must_use]
    pub fn from_sequence(seq: &[u8], k: usize, canonical: bool) -> Self {
        Self::from_kmers(k, kmers_of(seq, k, canonical))
    }

    /// Extract the distinct k-mer set of many sequences (e.g. all reads of a
    /// FASTQ file).
    #[must_use]
    pub fn from_sequences<'a>(
        seqs: impl IntoIterator<Item = &'a [u8]>,
        k: usize,
        canonical: bool,
    ) -> Self {
        Self::from_kmers(
            k,
            seqs.into_iter()
                .flat_map(|s| kmers_of(s, k, canonical).collect::<Vec<_>>()),
        )
    }

    /// k-mer length.
    #[must_use]
    pub fn k(&self) -> usize {
        usize::from(self.k)
    }

    /// Number of distinct k-mers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kmers.len()
    }

    /// True when the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kmers.is_empty()
    }

    /// The sorted k-mers.
    #[must_use]
    pub fn kmers(&self) -> &[u64] {
        &self.kmers
    }

    /// Binary-search membership test.
    #[must_use]
    pub fn contains(&self, kmer: u64) -> bool {
        self.kmers.binary_search(&kmer).is_ok()
    }

    /// Merge another set (same `k`) into this one.
    ///
    /// # Panics
    /// Panics if the k values differ.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "cannot merge k-mer sets of different k");
        let mut merged = Vec::with_capacity(self.kmers.len() + other.kmers.len());
        merged.extend_from_slice(&self.kmers);
        merged.extend_from_slice(&other.kmers);
        merged.sort_unstable();
        merged.dedup();
        self.kmers = merged;
    }

    /// Serialize: magic, version, k, count, packed k-mers.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, mut out: W) -> io::Result<()> {
        let mut header = Vec::with_capacity(14);
        header.put_slice(MAGIC);
        header.put_u8(VERSION);
        header.put_u8(self.k);
        header.put_u64_le(self.kmers.len() as u64);
        out.write_all(&header)?;
        let mut buf = Vec::with_capacity(8 * 1024);
        for chunk in self.kmers.chunks(1024) {
            buf.clear();
            for &km in chunk {
                buf.put_u64_le(km);
            }
            out.write_all(&buf)?;
        }
        Ok(())
    }

    /// Deserialize and validate (magic, version, k range, sortedness,
    /// distinctness, k-mer bit width).
    ///
    /// # Errors
    /// `InvalidData` on any violation; propagates I/O errors.
    pub fn read_from<R: Read>(mut input: R) -> io::Result<Self> {
        let mut header = [0u8; 14];
        input.read_exact(&mut header)?;
        let mut h = &header[..];
        let mut magic = [0u8; 4];
        h.copy_to_slice(&mut magic);
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if &magic != MAGIC {
            return Err(bad("bad k-mer set magic"));
        }
        if h.get_u8() != VERSION {
            return Err(bad("unsupported k-mer set version"));
        }
        let k = h.get_u8();
        if k == 0 || usize::from(k) > MAX_K {
            return Err(bad("k out of range"));
        }
        let count = usize::try_from(h.get_u64_le()).map_err(|_| bad("count overflow"))?;
        let mask = kmer_mask(usize::from(k));
        let mut kmers = Vec::with_capacity(count.min(1 << 24));
        let mut word = [0u8; 8];
        let mut prev: Option<u64> = None;
        for _ in 0..count {
            input.read_exact(&mut word)?;
            let km = u64::from_le_bytes(word);
            if km & !mask != 0 {
                return Err(bad("k-mer wider than 2k bits"));
            }
            if let Some(p) = prev {
                if km <= p {
                    return Err(bad("k-mers not strictly ascending"));
                }
            }
            prev = Some(km);
            kmers.push(km);
        }
        Ok(Self { k, kmers })
    }

    /// Bytes this set occupies on disk.
    #[must_use]
    pub fn disk_bytes(&self) -> usize {
        14 + self.kmers.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::pack_kmer;

    #[test]
    fn from_kmers_sorts_and_dedups() {
        let s = KmerSet::from_kmers(4, [9u64, 3, 9, 1, 3]);
        assert_eq!(s.kmers(), &[1, 3, 9]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    fn from_sequence_matches_manual_extraction() {
        let s = KmerSet::from_sequence(b"ACGTACGT", 4, false);
        // Windows: ACGT CGTA GTAC TACG ACGT → 4 distinct.
        assert_eq!(s.len(), 4);
        assert!(s.contains(pack_kmer(b"ACGT").unwrap()));
        assert!(s.contains(pack_kmer(b"TACG").unwrap()));
    }

    #[test]
    fn from_sequences_unions_reads() {
        let reads: Vec<&[u8]> = vec![b"ACGTA", b"GGGGG"];
        let s = KmerSet::from_sequences(reads, 5, false);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn merge_unions() {
        let mut a = KmerSet::from_kmers(4, [1u64, 5]);
        let b = KmerSet::from_kmers(4, [5u64, 7]);
        a.merge(&b);
        assert_eq!(a.kmers(), &[1, 5, 7]);
    }

    #[test]
    fn io_roundtrip() {
        let s = KmerSet::from_sequence(&b"GATTACA".repeat(20), 7, false);
        let mut buf = Vec::new();
        s.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), s.disk_bytes());
        let back = KmerSet::read_from(&buf[..]).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn io_rejects_corruption() {
        let s = KmerSet::from_kmers(4, [1u64, 2, 3]);
        let mut buf = Vec::new();
        s.write_to(&mut buf).unwrap();

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(KmerSet::read_from(&bad_magic[..]).is_err());

        // Unsorted payload: swap two k-mers.
        let mut unsorted = buf.clone();
        let (a, b) = (14, 22);
        for i in 0..8 {
            unsorted.swap(a + i, b + i);
        }
        assert!(KmerSet::read_from(&unsorted[..]).is_err());

        // Truncated payload.
        assert!(KmerSet::read_from(&buf[..buf.len() - 4]).is_err());
    }

    #[test]
    fn io_rejects_wide_kmers() {
        // Hand-craft a file with a k-mer exceeding 2k bits.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"RKMC");
        buf.push(1); // version
        buf.push(2); // k = 2 → mask 0xF
        buf.extend_from_slice(&1u64.to_le_bytes()); // one k-mer
        buf.extend_from_slice(&0x100u64.to_le_bytes()); // too wide
        assert!(KmerSet::read_from(&buf[..]).is_err());
    }

    #[test]
    fn empty_set_roundtrip() {
        let s = KmerSet::from_kmers(31, std::iter::empty());
        assert!(s.is_empty());
        let mut buf = Vec::new();
        s.write_to(&mut buf).unwrap();
        assert_eq!(KmerSet::read_from(&buf[..]).unwrap(), s);
    }
}
