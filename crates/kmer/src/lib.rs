//! Genomics substrate for the RAMBO reproduction.
//!
//! The paper's pipeline (§1, §5.1–5.2) converts each archive file into a set
//! of 31-mers before anything touches a Bloom filter:
//!
//! * a **document** is one sequencing run / assembled genome;
//! * its **terms** are the length-31 substrings (`k = 31`, chosen because it
//!   is discriminative and "small enough to be represented as a 64-bit
//!   integer variable with 2-bit encoding", §5.1);
//! * the input arrives either as **FASTQ** (raw reads, with sequencing
//!   errors) or **McCortex** (pre-filtered distinct k-mer sets).
//!
//! This crate provides all of that: [`encode`] packs DNA into `u64`s (with
//! reverse complements and canonical forms), [`KmerIter`] does the
//! sliding-window extraction, [`fasta`]/[`fastq`] parse the text formats,
//! [`KmerSet`] is our McCortex-like binary k-mer-set format, and
//! [`sim::GenomeSimulator`] generates the synthetic archives that stand in
//! for the 170TB ENA dataset (see DESIGN.md "Substitutions").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cortex;
pub mod encode;
pub mod fasta;
pub mod fastq;
pub mod ingest;
mod iter;
pub mod sim;

pub use cortex::KmerSet;
pub use encode::{canonical_kmer, pack_kmer, revcomp_kmer, revcomp_seq, unpack_kmer};
pub use fasta::{FastaReader, FastaRecord};
pub use fastq::{FastqReader, FastqRecord};
pub use ingest::{
    insert_fasta_documents, insert_fastq_document, insert_kmer_set, insert_sequence,
    pipeline_fasta_documents, pipeline_fastq_documents, IngestError, PipelinedIngest,
};
pub use iter::{kmers_of, KmerIter};

/// The paper's k-mer length: every headline experiment uses `k = 31`.
pub const PAPER_K: usize = 31;

/// Maximum supported k for 2-bit packing into a `u64`.
pub const MAX_K: usize = 31;
