//! Minimal streaming FASTQ parser and writer (Cock et al., reference \[14\] of
//! the paper — the Sanger variant with phred+33 quality scores).
//!
//! FASTQ is the paper's "raw, unfiltered sequence reads" format. Records are
//! strictly four lines: `@id`, sequence, `+`[optional id], quality string of
//! equal length.

use std::io::{self, BufRead, Write};

/// One FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read identifier (text after `@`).
    pub id: String,
    /// Sequence bytes.
    pub seq: Vec<u8>,
    /// Phred+33 quality bytes, same length as `seq`.
    pub qual: Vec<u8>,
}

/// Streaming reader yielding [`FastqRecord`]s.
pub struct FastqReader<R: BufRead> {
    input: R,
    line: String,
    done: bool,
}

impl<R: BufRead> FastqReader<R> {
    /// Wrap a buffered reader.
    pub fn new(input: R) -> Self {
        Self {
            input,
            line: String::new(),
            done: false,
        }
    }

    /// Next non-blank line — used only to find a record's header, so blank
    /// separator lines *between* records are tolerated.
    fn read_nonblank(&mut self) -> io::Result<Option<String>> {
        loop {
            match self.read_raw()? {
                None => return Ok(None),
                Some(t) if t.is_empty() => continue,
                Some(t) => return Ok(Some(t)),
            }
        }
    }

    /// Next line with trailing whitespace (EOL plus stray spaces/tabs, as
    /// some converters emit) stripped — possibly down to empty. Records are
    /// strictly four lines, so inside a record an empty line is *content*
    /// (an empty sequence or quality string), not a separator. Quality
    /// strings cannot legitimately end in whitespace (phred+33 is
    /// `'!'..='~'`), so the trim never eats record data.
    fn read_raw(&mut self) -> io::Result<Option<String>> {
        self.line.clear();
        if self.input.read_line(&mut self.line)? == 0 {
            return Ok(None);
        }
        Ok(Some(self.line.trim_end().to_string()))
    }
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl<R: BufRead> Iterator for FastqReader<R> {
    type Item = io::Result<FastqRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let header = match self.read_nonblank() {
            Ok(None) => return None,
            Ok(Some(h)) => h,
            Err(e) => return Some(Err(e)),
        };
        let result = (|| {
            let id = header
                .strip_prefix('@')
                .ok_or_else(|| invalid("FASTQ header must start with '@'"))?
                .to_string();
            let seq = self
                .read_raw()?
                .ok_or_else(|| invalid("truncated FASTQ record: EOF before sequence line"))?;
            let plus = self
                .read_raw()?
                .ok_or_else(|| invalid("truncated FASTQ record: EOF before '+' line"))?;
            if !plus.starts_with('+') {
                return Err(invalid("FASTQ separator line must start with '+'"));
            }
            let qual = self
                .read_raw()?
                .ok_or_else(|| invalid("truncated FASTQ record: EOF before quality line"))?;
            if qual.len() != seq.len() {
                return Err(invalid("quality length differs from sequence length"));
            }
            Ok(FastqRecord {
                id,
                seq: seq.into_bytes(),
                qual: qual.into_bytes(),
            })
        })();
        if result.is_err() {
            self.done = true;
        }
        Some(result)
    }
}

/// Write records in 4-line FASTQ format.
///
/// # Errors
/// Propagates I/O errors from the underlying writer, and rejects records
/// whose quality length disagrees with the sequence length.
pub fn write_fastq<'a, W: Write>(
    mut out: W,
    records: impl IntoIterator<Item = &'a FastqRecord>,
) -> io::Result<()> {
    for rec in records {
        if rec.qual.len() != rec.seq.len() {
            return Err(invalid("quality length differs from sequence length"));
        }
        writeln!(out, "@{}", rec.id)?;
        out.write_all(&rec.seq)?;
        out.write_all(b"\n+\n")?;
        out.write_all(&rec.qual)?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> io::Result<Vec<FastqRecord>> {
        FastqReader::new(Cursor::new(text)).collect()
    }

    #[test]
    fn single_record() {
        let recs = parse("@read1\nACGT\n+\nIIII\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, "read1");
        assert_eq!(recs[0].seq, b"ACGT");
        assert_eq!(recs[0].qual, b"IIII");
    }

    #[test]
    fn plus_line_with_repeated_id() {
        let recs = parse("@r\nAC\n+r\n!!\n").unwrap();
        assert_eq!(recs[0].seq, b"AC");
    }

    #[test]
    fn multiple_records() {
        let recs = parse("@a\nA\n+\nI\n@b\nCC\n+\nII\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].id, "b");
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse("read-without-at\nAC\n+\nII\n").is_err());
    }

    #[test]
    fn rejects_length_mismatch() {
        assert!(parse("@r\nACGT\n+\nII\n").is_err());
    }

    #[test]
    fn rejects_truncation() {
        assert!(parse("@r\nACGT\n+\n").is_err());
        assert!(parse("@r\nACGT\n").is_err());
    }

    #[test]
    fn empty_input_ok() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("\n\n\n").unwrap().is_empty());
    }

    #[test]
    fn trailing_spaces_are_trimmed() {
        // Some converters pad lines with spaces; those must not break the
        // seq/qual length agreement or read as content.
        let recs = parse("@r \nACGT \n+\nIIII\t\n").unwrap();
        assert_eq!(recs[0].id, "r");
        assert_eq!(recs[0].seq, b"ACGT");
        assert_eq!(recs[0].qual, b"IIII");
        // Whitespace-only lines between records are separators.
        let recs = parse("@a\nA\n+\nI\n  \n@b\nCC\n+\nII\n").unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn crlf_line_endings_handled() {
        let recs = parse("@r1\r\nACGT\r\n+\r\nIIII\r\n@r2\r\nCC\r\n+r2\r\n!!\r\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, b"ACGT");
        assert_eq!(recs[0].qual, b"IIII");
        assert_eq!(recs[1].id, "r2");
    }

    #[test]
    fn empty_quality_line_parses_with_empty_sequence() {
        // Records are strictly four lines: an empty line inside a record is
        // content. A zero-length read (empty seq + empty qual) is valid …
        let recs = parse("@empty\n\n+\n\n@next\nAC\n+\nII\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "empty");
        assert!(recs[0].seq.is_empty() && recs[0].qual.is_empty());
        assert_eq!(recs[1].seq, b"AC");
        // … while an empty quality line under a non-empty sequence is a
        // clean length-mismatch error, not a silent mis-parse of the next
        // record's header as quality data.
        assert!(parse("@r\nACGT\n+\n\n").is_err());
    }

    #[test]
    fn truncated_final_record_errors_after_valid_records() {
        // EOF at every depth inside the trailing record: the earlier record
        // must still come through, then exactly one clean error.
        for tail in [
            "@late",
            "@late\nACGT",
            "@late\nACGT\n+",
            "@late\nACGT\n+\nII",
        ] {
            let text = format!("@ok\nAC\n+\nII\n{tail}");
            let mut rdr = FastqReader::new(Cursor::new(text.as_str()));
            let first = rdr.next().unwrap().unwrap();
            assert_eq!(first.id, "ok");
            let err = rdr.next().unwrap().unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "tail = {tail:?}");
            assert!(rdr.next().is_none(), "reader stops after error");
        }
    }

    #[test]
    fn roundtrip_through_writer() {
        let original = vec![
            FastqRecord {
                id: "x/1".into(),
                seq: b"ACGTACGT".to_vec(),
                qual: b"IIIIHHHH".to_vec(),
            },
            FastqRecord {
                id: "y/2".into(),
                seq: b"TT".to_vec(),
                qual: b"##".to_vec(),
            },
        ];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &original).unwrap();
        let parsed = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn writer_rejects_inconsistent_record() {
        let bad = FastqRecord {
            id: "bad".into(),
            seq: b"ACGT".to_vec(),
            qual: b"II".to_vec(),
        };
        assert!(write_fastq(Vec::new(), [&bad]).is_err());
    }
}
