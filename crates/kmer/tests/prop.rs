//! Property-based tests for the genomics substrate.

use proptest::prelude::*;
use rambo_kmer::{
    canonical_kmer, kmers_of, pack_kmer, revcomp_kmer, revcomp_seq, unpack_kmer, FastaReader,
    FastaRecord, FastqReader, FastqRecord, KmerSet,
};
use std::io::Cursor;

fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(vec![b'A', b'C', b'G', b'T']), len)
}

fn dna_with_n(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'A', b'C', b'G', b'T', b'N']),
        len,
    )
}

proptest! {
    #[test]
    fn pack_unpack_roundtrip(seq in dna(1..32)) {
        let k = seq.len();
        let packed = pack_kmer(&seq).unwrap();
        prop_assert_eq!(unpack_kmer(packed, k), seq);
    }

    #[test]
    fn revcomp_involution(seq in dna(1..32)) {
        let k = seq.len();
        let packed = pack_kmer(&seq).unwrap();
        prop_assert_eq!(revcomp_kmer(revcomp_kmer(packed, k), k), packed);
        // Packed revcomp agrees with string-level revcomp.
        prop_assert_eq!(
            unpack_kmer(revcomp_kmer(packed, k), k),
            revcomp_seq(&seq)
        );
    }

    #[test]
    fn canonical_agrees_between_strands(seq in dna(1..32)) {
        let k = seq.len();
        let fwd = pack_kmer(&seq).unwrap();
        let rev = pack_kmer(&revcomp_seq(&seq)).unwrap();
        prop_assert_eq!(canonical_kmer(fwd, k), canonical_kmer(rev, k));
    }

    #[test]
    fn extraction_matches_windows(seq in dna_with_n(0..200), k in 1usize..16) {
        let got: Vec<u64> = kmers_of(&seq, k, false).collect();
        let expect: Vec<u64> = seq.windows(k).filter_map(pack_kmer).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn kmer_set_contains_exactly_extracted(seq in dna(10..200), k in 1usize..12) {
        let set = KmerSet::from_sequence(&seq, k, false);
        for km in kmers_of(&seq, k, false) {
            prop_assert!(set.contains(km));
        }
        // Sortedness and distinctness invariants.
        let ks = set.kmers();
        prop_assert!(ks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn kmer_set_io_roundtrip(seq in dna(0..300), k in 1usize..16) {
        let set = KmerSet::from_sequence(&seq, k, false);
        let mut buf = Vec::new();
        set.write_to(&mut buf).unwrap();
        prop_assert_eq!(KmerSet::read_from(&buf[..]).unwrap(), set);
    }

    #[test]
    fn fasta_roundtrip(
        ids in proptest::collection::vec("[A-Za-z0-9_. -]{1,20}", 1..6),
        seqs in proptest::collection::vec(dna(0..150), 1..6),
    ) {
        let records: Vec<FastaRecord> = ids
            .iter()
            .zip(&seqs)
            .map(|(id, seq)| FastaRecord { id: id.trim().to_string(), seq: seq.clone() })
            .collect();
        let mut buf = Vec::new();
        rambo_kmer::fasta::write_fasta(&mut buf, &records).unwrap();
        let parsed: Vec<FastaRecord> =
            FastaReader::new(Cursor::new(buf)).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn fastq_roundtrip(
        ids in proptest::collection::vec("[A-Za-z0-9_/]{1,20}", 1..6),
        seqs in proptest::collection::vec(dna(1..150), 1..6),
    ) {
        let records: Vec<FastqRecord> = ids
            .iter()
            .zip(&seqs)
            .map(|(id, seq)| FastqRecord {
                id: id.clone(),
                qual: vec![b'I'; seq.len()],
                seq: seq.clone(),
            })
            .collect();
        let mut buf = Vec::new();
        rambo_kmer::fastq::write_fastq(&mut buf, &records).unwrap();
        let parsed: Vec<FastqRecord> =
            FastqReader::new(Cursor::new(buf)).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(parsed, records);
    }
}
