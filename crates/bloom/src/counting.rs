//! Counting Bloom filter: per-position saturating counters instead of bits,
//! enabling deletion.
//!
//! The paper points out that "Bloom Filters in RAMBO can be replaced with any
//! other set membership testing method" (§1.1). A counting filter is the
//! canonical drop-in when documents must be *removable* from a BFU (e.g.
//! retracted submissions in a live archive) — an extension beyond the paper's
//! evaluation, included to exercise that claim.

use rambo_hash::HashPair;

/// A counting Bloom filter with `u8` saturating counters.
///
/// Counters saturate at 255 and, once saturated, are never decremented (the
/// classic soundness rule: decrementing a saturated counter could introduce
/// false negatives).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountingBloomFilter {
    counters: Vec<u8>,
    eta: u32,
    seed: u64,
    inserts: u64,
}

impl CountingBloomFilter {
    /// An empty filter of `m` counters with `eta` probes per key.
    ///
    /// # Panics
    /// Panics if `m == 0` or `eta == 0`.
    #[must_use]
    pub fn new(m: usize, eta: u32, seed: u64) -> Self {
        assert!(m > 0 && eta > 0);
        Self {
            counters: vec![0; m],
            eta,
            seed,
            inserts: 0,
        }
    }

    #[inline]
    fn positions(&self, pair: HashPair) -> impl Iterator<Item = usize> + '_ {
        let m = self.counters.len() as u64;
        (0..self.eta).map(move |i| pair.index(i, m) as usize)
    }

    /// Insert a packed 64-bit key.
    pub fn insert_u64(&mut self, key: u64) {
        let pair = HashPair::of_u64(key, self.seed);
        for pos in self.positions(pair).collect::<Vec<_>>() {
            self.counters[pos] = self.counters[pos].saturating_add(1);
        }
        self.inserts += 1;
    }

    /// Membership test.
    #[must_use]
    pub fn contains_u64(&self, key: u64) -> bool {
        let pair = HashPair::of_u64(key, self.seed);
        self.positions(pair).all(|pos| self.counters[pos] > 0)
    }

    /// Remove one occurrence of the key. Returns `false` (and changes
    /// nothing) when the key tests as absent — removing a non-member would
    /// corrupt other keys' counters.
    pub fn remove_u64(&mut self, key: u64) -> bool {
        if !self.contains_u64(key) {
            return false;
        }
        let pair = HashPair::of_u64(key, self.seed);
        for pos in self.positions(pair).collect::<Vec<_>>() {
            // Never decrement a saturated counter.
            if self.counters[pos] != u8::MAX {
                self.counters[pos] -= 1;
            }
        }
        self.inserts = self.inserts.saturating_sub(1);
        true
    }

    /// Number of counters (`m`).
    #[must_use]
    pub fn m(&self) -> usize {
        self.counters.len()
    }

    /// Live insert count (inserts minus successful removes).
    #[must_use]
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Heap bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_cycle() {
        let mut f = CountingBloomFilter::new(1 << 12, 4, 3);
        for i in 0..100u64 {
            f.insert_u64(i);
        }
        for i in 0..100u64 {
            assert!(f.contains_u64(i));
        }
        for i in 0..50u64 {
            assert!(f.remove_u64(i));
        }
        // Removed keys are (very likely) gone; retained keys must remain.
        for i in 50..100u64 {
            assert!(f.contains_u64(i), "false negative on retained key {i}");
        }
        let still_there = (0..50u64).filter(|&i| f.contains_u64(i)).count();
        assert!(still_there < 5, "{still_there} removed keys still visible");
    }

    #[test]
    fn remove_absent_key_is_noop() {
        let mut f = CountingBloomFilter::new(1 << 10, 3, 9);
        f.insert_u64(1);
        assert!(!f.remove_u64(999_999));
        assert!(f.contains_u64(1));
        assert_eq!(f.inserts(), 1);
    }

    #[test]
    fn duplicate_inserts_need_matching_removes() {
        let mut f = CountingBloomFilter::new(1 << 10, 3, 5);
        f.insert_u64(7);
        f.insert_u64(7);
        assert!(f.remove_u64(7));
        assert!(f.contains_u64(7), "one copy should survive");
        assert!(f.remove_u64(7));
        assert!(!f.contains_u64(7));
    }

    #[test]
    fn counters_saturate_without_wrapping() {
        let mut f = CountingBloomFilter::new(8, 1, 1);
        for _ in 0..300 {
            f.insert_u64(42);
        }
        assert!(f.contains_u64(42));
        // Saturated counters are not decremented, so the key persists even
        // after many removals — soundness over precision.
        for _ in 0..300 {
            let _ = f.remove_u64(42);
        }
        assert!(f.contains_u64(42));
    }
}
