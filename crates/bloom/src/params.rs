//! Bloom filter parameter arithmetic (paper §2.1).
//!
//! The simplified analysis the paper adopts: a filter of `m` bits holding `n`
//! keys with `η` hash functions has false-positive rate
//! `p ≈ (1 − e^{−ηn/m})^η`, minimized by `η = (m/n)·ln 2`, giving
//! `m = −n·ln p / (ln 2)²`. The paper notes (citing Christensen et al. \[13\])
//! that this underestimates slightly for tiny filters but is accurate at BFU
//! scale; we implement the same expressions and validate them empirically in
//! the test suite.

/// Construction parameters shared by every filter that must be mergeable:
/// identical `m_bits`, `eta` and `seed` are required for OR-union to equal
/// set-union (checked by [`crate::BloomFilter::union_assign`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BloomParams {
    /// Filter length in bits (`m`).
    pub m_bits: usize,
    /// Number of hash probes per key (`η`; 1–6 in the paper's practice).
    pub eta: u32,
    /// Seed of the shared hash family.
    pub seed: u64,
}

impl BloomParams {
    /// Parameters sized for `n` expected keys at target false-positive rate
    /// `p`, seeded with `seed`.
    ///
    /// # Panics
    /// Panics unless `0 < p < 1` and `n > 0`.
    #[must_use]
    pub fn for_capacity(n: usize, p: f64, seed: u64) -> Self {
        Self {
            m_bits: optimal_m(n, p),
            eta: optimal_eta_for_fpr(p),
            seed,
        }
    }

    /// Fixed-size parameters (the paper hand-fixes BFU sizes per experiment,
    /// e.g. 10⁹ bits for the McCortex runs).
    #[must_use]
    pub fn fixed(m_bits: usize, eta: u32, seed: u64) -> Self {
        Self { m_bits, eta, seed }
    }
}

/// Optimal bit count `m = ⌈−n·ln p / (ln 2)²⌉` for `n` keys at FPR `p`.
///
/// # Panics
/// Panics unless `0 < p < 1` and `n > 0`.
#[must_use]
pub fn optimal_m(n: usize, p: f64) -> usize {
    assert!(n > 0, "capacity must be positive");
    assert!(p > 0.0 && p < 1.0, "fpr must be in (0, 1)");
    let ln2 = std::f64::consts::LN_2;
    ((-(n as f64) * p.ln()) / (ln2 * ln2)).ceil() as usize
}

/// Optimal probe count for a *given* geometry: `η = max(1, round(m/n · ln 2))`.
///
/// # Panics
/// Panics if `n == 0`.
#[must_use]
pub fn optimal_eta(m: usize, n: usize) -> u32 {
    assert!(n > 0, "capacity must be positive");
    let eta = (m as f64 / n as f64 * std::f64::consts::LN_2).round();
    (eta.max(1.0)) as u32
}

/// Optimal probe count straight from the target FPR: `η = ⌈−log₂ p⌉`
/// (the paper's `η = −log p / log 2`).
///
/// # Panics
/// Panics unless `0 < p < 1`.
#[must_use]
pub fn optimal_eta_for_fpr(p: f64) -> u32 {
    assert!(p > 0.0 && p < 1.0, "fpr must be in (0, 1)");
    ((-p.log2()).ceil()).max(1.0) as u32
}

/// The simplified false-positive estimate `(1 − e^{−ηn/m})^η`.
///
/// # Panics
/// Panics if `m == 0`.
#[must_use]
pub fn expected_fpr(m: usize, n: usize, eta: u32) -> f64 {
    assert!(m > 0, "filter must have bits");
    let exponent = -(f64::from(eta) * n as f64) / m as f64;
    (1.0 - exponent.exp()).powi(eta as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_m_textbook_values() {
        // Classic reference point: n = 1e6, p = 0.01 → ~9.585e6 bits.
        let m = optimal_m(1_000_000, 0.01);
        assert!((9_580_000..9_590_000).contains(&m), "m = {m}");
    }

    #[test]
    fn optimal_eta_matches_geometry() {
        // m/n = 9.585 → η ≈ 6.64 → 7.
        assert_eq!(optimal_eta(9_585_059, 1_000_000), 7);
        // Degenerate: m < n still yields at least one probe.
        assert_eq!(optimal_eta(10, 1000), 1);
    }

    #[test]
    fn eta_from_fpr() {
        assert_eq!(optimal_eta_for_fpr(0.01), 7);
        assert_eq!(optimal_eta_for_fpr(0.5), 1);
        assert_eq!(optimal_eta_for_fpr(0.1), 4);
    }

    #[test]
    fn expected_fpr_monotone_in_load() {
        let lo = expected_fpr(10_000, 100, 3);
        let hi = expected_fpr(10_000, 2_000, 3);
        assert!(lo < hi, "more keys must mean more false positives");
        assert!(lo > 0.0 && hi < 1.0);
    }

    #[test]
    fn sized_filter_meets_target() {
        // Sizing for p then evaluating the estimate at capacity should land
        // at or below ~p (the ceil in m and η pushes it slightly under).
        for &p in &[0.1, 0.01, 0.001] {
            let params = BloomParams::for_capacity(50_000, p, 1);
            let achieved = expected_fpr(params.m_bits, 50_000, params.eta);
            assert!(
                achieved <= p * 1.05,
                "target {p}, achieved {achieved} with {params:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "fpr must be in (0, 1)")]
    fn rejects_invalid_fpr() {
        let _ = optimal_m(100, 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = optimal_m(0, 0.1);
    }
}
