//! Bloom filter substrate for the RAMBO reproduction.
//!
//! The paper's §2.1 defines the classic Bloom filter and the two identities
//! RAMBO is built on:
//!
//! * **no false negatives** — every inserted key sets all of its `η` bits, so
//!   a later membership test can never miss it;
//! * **bitwise-OR = set union** — the filter of `S₁ ∪ S₂` with shared
//!   parameters equals the OR of the individual filters. This is what makes
//!   a *Bloom Filter for the Union* (BFU) constructible by streaming inserts,
//!   and what makes the §5.3 *fold-over* operation (OR-ing half the index
//!   onto the other half) semantically a coarser partition.
//!
//! Three filter variants are provided:
//!
//! * [`BloomFilter`] — fixed-size filter with Kirsch–Mitzenmacher double
//!   hashing; the BFU building block.
//! * [`ScalableBloomFilter`] — Almeida et al.'s scalable filter (paper
//!   reference \[4\], suggested for adaptive BFU sizing when document
//!   cardinalities are unknown).
//! * [`CountingBloomFilter`] — counter-based filter supporting deletion; an
//!   extension the paper mentions implicitly by noting any membership tester
//!   can replace the BFU.
//!
//! Sizing math ((`m`, `η`) from (`n`, `p`)) lives in [`params`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counting;
mod error;
mod filter;
pub mod params;
mod scalable;

pub use counting::CountingBloomFilter;
pub use error::BloomError;
pub use filter::BloomFilter;
pub use params::BloomParams;
pub use scalable::ScalableBloomFilter;
