//! Error type for filter merging and serialization.

use rambo_bitvec::DecodeError;
use std::fmt;

/// Errors produced by Bloom filter operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BloomError {
    /// Two filters with different `(m, η, seed)` cannot be merged: their bit
    /// patterns are not comparable and OR-ing them would break the
    /// no-false-negative guarantee.
    ParamsMismatch {
        /// Human-readable description of the differing field.
        detail: String,
    },
    /// Binary deserialization failed.
    Decode(DecodeError),
}

impl fmt::Display for BloomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ParamsMismatch { detail } => {
                write!(f, "bloom filter parameter mismatch: {detail}")
            }
            Self::Decode(e) => write!(f, "bloom filter decode failed: {e}"),
        }
    }
}

impl std::error::Error for BloomError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Decode(e) => Some(e),
            Self::ParamsMismatch { .. } => None,
        }
    }
}

impl From<DecodeError> for BloomError {
    fn from(e: DecodeError) -> Self {
        Self::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = BloomError::ParamsMismatch {
            detail: "m 10 vs 20".into(),
        };
        assert!(e.to_string().contains("m 10 vs 20"));
        let d = BloomError::from(DecodeError::new("short"));
        assert!(d.to_string().contains("short"));
    }
}
