//! The classic fixed-size Bloom filter (paper §2.1) — the BFU building block.

use crate::error::BloomError;
use crate::params::BloomParams;
use bytes::{Buf, BufMut};
use rambo_bitvec::{BitVec, DecodeError};
use rambo_hash::HashPair;

const MAGIC: &[u8; 4] = b"RBF1";

/// A Bloom filter over `m` bits with `η` double-hashed probes per key.
///
/// Two RAMBO-specific design points:
///
/// * Keys can be presented pre-hashed as a [`HashPair`]. The RAMBO insert
///   path hashes each term **once** and reuses the pair across all `R`
///   repetitions (all BFUs share one hash family — required for fold-over
///   and distributed stacking to be lossless).
/// * [`BloomFilter::union_assign`] implements the merge underlying both BFU
///   construction ("Bloom Filter for the *Union*") and §5.3 fold-over.
///
/// ```
/// use rambo_bloom::{BloomFilter, BloomParams};
/// let mut f = BloomFilter::new(BloomParams::for_capacity(1000, 0.01, 42));
/// f.insert_bytes(b"ACGTACGTACGTACGT");
/// assert!(f.contains_bytes(b"ACGTACGTACGTACGT")); // never a false negative
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    params: BloomParams,
    bits: BitVec,
    /// Number of `insert_*` calls (an upper bound on distinct keys; exact
    /// when the caller deduplicates). Drives the load-based FPR estimate.
    inserts: u64,
}

impl BloomFilter {
    /// An empty filter with the given parameters.
    ///
    /// # Panics
    /// Panics if `m_bits == 0` or `eta == 0`.
    #[must_use]
    pub fn new(params: BloomParams) -> Self {
        assert!(params.m_bits > 0, "filter must have at least one bit");
        assert!(params.eta > 0, "filter needs at least one hash");
        Self {
            params,
            bits: BitVec::zeros(params.m_bits),
            inserts: 0,
        }
    }

    /// The construction parameters.
    #[must_use]
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Filter length in bits.
    #[must_use]
    pub fn m_bits(&self) -> usize {
        self.params.m_bits
    }

    /// Number of probes per key.
    #[must_use]
    pub fn eta(&self) -> u32 {
        self.params.eta
    }

    /// Number of insert operations performed (including re-inserts).
    #[must_use]
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// The raw bits (used by fold-over and the bit-sliced baselines' tests).
    #[must_use]
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Hash a byte key under this filter's seed.
    #[inline]
    #[must_use]
    pub fn hash_bytes(&self, key: &[u8]) -> HashPair {
        HashPair::of_bytes(key, self.params.seed)
    }

    /// Hash a packed 64-bit key (e.g. a 2-bit-encoded k-mer) under this
    /// filter's seed.
    #[inline]
    #[must_use]
    pub fn hash_u64(&self, key: u64) -> HashPair {
        HashPair::of_u64(key, self.params.seed)
    }

    /// Insert a pre-hashed key.
    #[inline]
    pub fn insert_pair(&mut self, pair: HashPair) {
        let m = self.params.m_bits as u64;
        for i in 0..self.params.eta {
            self.bits.set(pair.index(i, m) as usize);
        }
        self.inserts += 1;
    }

    /// Insert a byte key.
    #[inline]
    pub fn insert_bytes(&mut self, key: &[u8]) {
        self.insert_pair(self.hash_bytes(key));
    }

    /// Insert a packed 64-bit key.
    #[inline]
    pub fn insert_u64(&mut self, key: u64) {
        self.insert_pair(self.hash_u64(key));
    }

    /// Membership test for a pre-hashed key.
    #[inline]
    #[must_use]
    pub fn contains_pair(&self, pair: HashPair) -> bool {
        let m = self.params.m_bits as u64;
        (0..self.params.eta).all(|i| self.bits.get(pair.index(i, m) as usize))
    }

    /// Membership test for a byte key.
    #[inline]
    #[must_use]
    pub fn contains_bytes(&self, key: &[u8]) -> bool {
        self.contains_pair(self.hash_bytes(key))
    }

    /// Membership test for a packed 64-bit key.
    #[inline]
    #[must_use]
    pub fn contains_u64(&self, key: u64) -> bool {
        self.contains_pair(self.hash_u64(key))
    }

    /// Fraction of set bits.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        self.bits.fill_ratio()
    }

    /// Estimated false-positive rate from the observed fill: `fill^η`.
    ///
    /// This estimator is what the RAMBO harness reports as the per-BFU `p`
    /// feeding Lemma 4.1/4.2 predictions.
    #[must_use]
    pub fn estimated_fpr(&self) -> f64 {
        self.fill_ratio().powi(self.params.eta as i32)
    }

    /// Merge `other` into `self` by bitwise OR — the *union* of the two
    /// represented sets. Requires identical parameters.
    ///
    /// # Errors
    /// [`BloomError::ParamsMismatch`] if `(m, η, seed)` differ.
    pub fn union_assign(&mut self, other: &Self) -> Result<(), BloomError> {
        if self.params != other.params {
            return Err(BloomError::ParamsMismatch {
                detail: format!("{:?} vs {:?}", self.params, other.params),
            });
        }
        self.bits.or_assign(&other.bits);
        self.inserts += other.inserts;
        Ok(())
    }

    /// Intersect `other` into `self` by bitwise AND. The result may contain
    /// *false positives relative to set intersection* (AND of filters is a
    /// superset of the filter of the intersection) — used by the split-SBT
    /// baselines for their "sim" filters, matching the original SSBT.
    ///
    /// # Errors
    /// [`BloomError::ParamsMismatch`] if `(m, η, seed)` differ.
    pub fn intersect_assign(&mut self, other: &Self) -> Result<(), BloomError> {
        if self.params != other.params {
            return Err(BloomError::ParamsMismatch {
                detail: format!("{:?} vs {:?}", self.params, other.params),
            });
        }
        self.bits.and_assign(&other.bits);
        self.inserts = self.inserts.min(other.inserts);
        Ok(())
    }

    /// Heap bytes of the filter payload.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.bits.size_bytes()
    }

    /// Append the binary encoding.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_slice(MAGIC);
        out.put_u64_le(self.params.m_bits as u64);
        out.put_u32_le(self.params.eta);
        out.put_u64_le(self.params.seed);
        out.put_u64_le(self.inserts);
        self.bits.encode_into(out);
    }

    /// Serialize to a standalone buffer.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.bits.size_bytes());
        self.encode_into(&mut out);
        out
    }

    /// Decode from a buffer, advancing it past the consumed bytes.
    ///
    /// # Errors
    /// [`BloomError::Decode`] on format violations.
    pub fn decode_from(buf: &mut &[u8]) -> Result<Self, BloomError> {
        if buf.remaining() < 4 + 8 + 4 + 8 + 8 {
            return Err(DecodeError::new("bloom header truncated").into());
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DecodeError::new("bad bloom magic").into());
        }
        let m_bits = usize::try_from(buf.get_u64_le())
            .map_err(|_| DecodeError::new("bloom m_bits exceeds address space"))?;
        let eta = buf.get_u32_le();
        let seed = buf.get_u64_le();
        let inserts = buf.get_u64_le();
        let bits = BitVec::decode_from(buf)?;
        if bits.len() != m_bits {
            return Err(DecodeError::new("bloom bit length disagrees with header").into());
        }
        if eta == 0 || m_bits == 0 {
            return Err(DecodeError::new("bloom header has zero m or eta").into());
        }
        Ok(Self {
            params: BloomParams { m_bits, eta, seed },
            bits,
            inserts,
        })
    }

    /// Decode from an exact buffer.
    ///
    /// # Errors
    /// [`BloomError::Decode`] on format violations or trailing bytes.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, BloomError> {
        let f = Self::decode_from(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(DecodeError::new("trailing bytes after bloom filter").into());
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambo_hash::SplitMix64;

    fn params(m: usize, eta: u32) -> BloomParams {
        BloomParams::fixed(m, eta, 0xBEEF)
    }

    #[test]
    fn no_false_negatives_bytes_and_u64() {
        let mut f = BloomFilter::new(params(1 << 14, 4));
        let keys: Vec<u64> = (0..500).map(|i| i * 2654435761).collect();
        for &k in &keys {
            f.insert_u64(k);
            f.insert_bytes(&k.to_le_bytes());
        }
        for &k in &keys {
            assert!(f.contains_u64(k));
            assert!(f.contains_bytes(&k.to_le_bytes()));
        }
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(params(1024, 3));
        let mut s = SplitMix64::new(7);
        for _ in 0..100 {
            assert!(!f.contains_u64(s.next_u64()));
        }
        assert_eq!(f.estimated_fpr(), 0.0);
    }

    #[test]
    fn measured_fpr_tracks_target() {
        // Size for 2000 keys at 1%: measured FPR on unseen keys should land
        // in the same decade.
        let n = 2000;
        let mut f = BloomFilter::new(BloomParams::for_capacity(n, 0.01, 3));
        for i in 0..n as u64 {
            f.insert_u64(i);
        }
        let trials = 50_000u32;
        let mut fp = 0u32;
        for t in 0..trials {
            // Disjoint from inserted key space.
            if f.contains_u64(1_000_000 + u64::from(t)) {
                fp += 1;
            }
        }
        let rate = f64::from(fp) / f64::from(trials);
        assert!(rate < 0.02, "measured {rate} vs target 0.01");
        // Analytic estimate from the fill ratio should agree with measurement
        // within 2x.
        let est = f.estimated_fpr();
        assert!(
            rate < est * 2.0 + 0.005 && est < rate * 2.0 + 0.005,
            "estimate {est} vs measured {rate}"
        );
    }

    #[test]
    fn union_is_set_union() {
        let p = params(1 << 12, 3);
        let mut a = BloomFilter::new(p);
        let mut b = BloomFilter::new(p);
        for i in 0..200u64 {
            a.insert_u64(i);
        }
        for i in 200..400u64 {
            b.insert_u64(i);
        }
        let mut u = a.clone();
        u.union_assign(&b).unwrap();
        for i in 0..400u64 {
            assert!(u.contains_u64(i), "union lost key {i}");
        }
        assert_eq!(u.inserts(), 400);

        // OR of filters must equal the filter of inserting everything into one.
        let mut direct = BloomFilter::new(p);
        for i in 0..400u64 {
            direct.insert_u64(i);
        }
        assert_eq!(u.bits(), direct.bits());
    }

    #[test]
    fn union_rejects_mismatched_params() {
        let mut a = BloomFilter::new(params(1024, 3));
        let b = BloomFilter::new(params(2048, 3));
        assert!(matches!(
            a.union_assign(&b),
            Err(BloomError::ParamsMismatch { .. })
        ));
        let c = BloomFilter::new(BloomParams::fixed(1024, 3, 999));
        assert!(a.union_assign(&c).is_err(), "seed mismatch must fail");
    }

    #[test]
    fn intersect_keeps_common_keys() {
        let p = params(1 << 13, 3);
        let mut a = BloomFilter::new(p);
        let mut b = BloomFilter::new(p);
        for i in 0..300u64 {
            a.insert_u64(i);
        }
        for i in 200..500u64 {
            b.insert_u64(i);
        }
        let mut x = a.clone();
        x.intersect_assign(&b).unwrap();
        // Keys in both sets are always retained (no false negatives for the
        // intersection).
        for i in 200..300u64 {
            assert!(x.contains_u64(i));
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let mut f = BloomFilter::new(params(5000, 5));
        for i in 0..100u64 {
            f.insert_u64(i * 31);
        }
        let back = BloomFilter::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(f, back);
        for i in 0..100u64 {
            assert!(back.contains_u64(i * 31));
        }
    }

    #[test]
    fn serialization_rejects_corruption() {
        let f = BloomFilter::new(params(512, 2));
        let mut bytes = f.to_bytes();
        bytes[1] ^= 0xFF;
        assert!(BloomFilter::from_bytes(&bytes).is_err());
        let bytes = f.to_bytes();
        assert!(BloomFilter::from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn pair_reuse_equals_direct_insertion() {
        // Hash once, insert into several filters — must agree with hashing
        // inside each filter. This is the invariant the RAMBO hot path uses.
        let p = params(4096, 4);
        let mut direct = BloomFilter::new(p);
        let mut via_pair = BloomFilter::new(p);
        for i in 0..100u64 {
            direct.insert_u64(i);
            let pair = via_pair.hash_u64(i);
            via_pair.insert_pair(pair);
        }
        assert_eq!(direct.bits(), via_pair.bits());
    }

    #[test]
    fn eta_one_filter_works() {
        let mut f = BloomFilter::new(params(1 << 12, 1));
        f.insert_u64(5);
        assert!(f.contains_u64(5));
    }
}
