//! Scalable Bloom filter (Almeida, Baquero, Preguiça, Hutchison — reference
//! [4] of the RAMBO paper).
//!
//! The paper suggests scalable filters for BFUs whose cardinality is unknown
//! in advance ("The size of the BFU can be predefined or a scalable Bloom
//! Filter can be used for adaptive size", §3.2). The construction keeps a
//! list of plain filters; when the newest one reaches its design capacity a
//! fresh, larger one is appended. Each successive slice gets a *tightened*
//! error budget `p·r^i` so the compounded FPR stays below
//! `p / (1 − r)`.

use crate::filter::BloomFilter;
use crate::params::{optimal_eta_for_fpr, optimal_m, BloomParams};
use rambo_hash::SplitMix64;

/// Growth factor for slice capacities (Almeida et al. recommend 2–4).
const GROWTH: usize = 2;

/// A Bloom filter that grows to fit its input while honouring a compounded
/// false-positive budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalableBloomFilter {
    slices: Vec<BloomFilter>,
    /// Capacity (keys) of each slice, parallel to `slices`.
    capacities: Vec<usize>,
    /// Keys inserted into the newest slice.
    current_fill: usize,
    initial_capacity: usize,
    base_fpr: f64,
    tightening: f64,
    seed: u64,
}

impl ScalableBloomFilter {
    /// Create a filter that starts sized for `initial_capacity` keys at
    /// overall false-positive budget ≈ `fpr / (1 − tightening)` with the
    /// conventional tightening ratio `0.5`.
    ///
    /// # Panics
    /// Panics unless `0 < fpr < 1` and `initial_capacity > 0`.
    #[must_use]
    pub fn new(initial_capacity: usize, fpr: f64, seed: u64) -> Self {
        Self::with_tightening(initial_capacity, fpr, 0.5, seed)
    }

    /// Full-control constructor; `tightening` in `(0, 1)` multiplies each new
    /// slice's error budget.
    ///
    /// # Panics
    /// Panics on out-of-range arguments.
    #[must_use]
    pub fn with_tightening(initial_capacity: usize, fpr: f64, tightening: f64, seed: u64) -> Self {
        assert!(initial_capacity > 0, "capacity must be positive");
        assert!(fpr > 0.0 && fpr < 1.0, "fpr must be in (0, 1)");
        assert!(
            tightening > 0.0 && tightening < 1.0,
            "tightening ratio must be in (0, 1)"
        );
        let mut f = Self {
            slices: Vec::new(),
            capacities: Vec::new(),
            current_fill: 0,
            initial_capacity,
            base_fpr: fpr,
            tightening,
            seed,
        };
        f.grow();
        f
    }

    fn grow(&mut self) {
        let i = self.slices.len();
        let capacity = self.initial_capacity * GROWTH.pow(i as u32);
        let fpr = self.base_fpr * self.tightening.powi(i as i32);
        // Derive a fresh slice seed deterministically so serialization is
        // reproducible and slices stay independent.
        let mut s = SplitMix64::new(self.seed.wrapping_add(i as u64));
        let params = BloomParams {
            m_bits: optimal_m(capacity, fpr),
            eta: optimal_eta_for_fpr(fpr),
            seed: s.next_u64(),
        };
        self.slices.push(BloomFilter::new(params));
        self.capacities.push(capacity);
        self.current_fill = 0;
    }

    /// Insert a byte key, growing if the active slice is at capacity.
    pub fn insert_bytes(&mut self, key: &[u8]) {
        if self.current_fill >= self.capacities[self.slices.len() - 1] {
            self.grow();
        }
        self.slices
            .last_mut()
            .expect("at least one slice")
            .insert_bytes(key);
        self.current_fill += 1;
    }

    /// Insert a packed 64-bit key.
    pub fn insert_u64(&mut self, key: u64) {
        self.insert_bytes(&key.to_le_bytes());
    }

    /// Membership test: true if *any* slice reports the key.
    #[must_use]
    pub fn contains_bytes(&self, key: &[u8]) -> bool {
        self.slices.iter().any(|s| s.contains_bytes(key))
    }

    /// Membership test for a packed 64-bit key.
    #[must_use]
    pub fn contains_u64(&self, key: u64) -> bool {
        self.contains_bytes(&key.to_le_bytes())
    }

    /// Number of slices grown so far.
    #[must_use]
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Total keys inserted.
    #[must_use]
    pub fn inserts(&self) -> u64 {
        self.slices.iter().map(BloomFilter::inserts).sum()
    }

    /// Compounded false-positive estimate: `1 − Π(1 − p̂_i)`.
    #[must_use]
    pub fn estimated_fpr(&self) -> f64 {
        1.0 - self
            .slices
            .iter()
            .map(|s| 1.0 - s.estimated_fpr())
            .product::<f64>()
    }

    /// Heap bytes across all slices.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.slices.iter().map(BloomFilter::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_and_never_forgets() {
        let mut f = ScalableBloomFilter::new(100, 0.01, 7);
        for i in 0..5_000u64 {
            f.insert_u64(i);
        }
        assert!(f.slice_count() > 1, "must have grown");
        for i in 0..5_000u64 {
            assert!(f.contains_u64(i), "lost key {i}");
        }
        assert_eq!(f.inserts(), 5_000);
    }

    #[test]
    fn fpr_budget_respected_after_growth() {
        let mut f = ScalableBloomFilter::new(200, 0.01, 11);
        for i in 0..10_000u64 {
            f.insert_u64(i);
        }
        let trials = 30_000u32;
        let fp = (0..trials)
            .filter(|&t| f.contains_u64(1_000_000_000 + u64::from(t)))
            .count();
        let rate = fp as f64 / f64::from(trials);
        // Budget = p/(1-r) = 0.02; allow sampling slack.
        assert!(rate < 0.03, "measured compounded FPR {rate}");
    }

    #[test]
    fn no_growth_when_within_capacity() {
        let mut f = ScalableBloomFilter::new(1000, 0.05, 3);
        for i in 0..900u64 {
            f.insert_u64(i);
        }
        assert_eq!(f.slice_count(), 1);
    }

    #[test]
    fn empty_contains_nothing() {
        let f = ScalableBloomFilter::new(10, 0.1, 1);
        assert!(!f.contains_u64(42));
        assert_eq!(f.estimated_fpr(), 0.0);
    }

    #[test]
    fn size_grows_geometrically() {
        let mut f = ScalableBloomFilter::new(100, 0.01, 5);
        let initial = f.size_bytes();
        for i in 0..1_000u64 {
            f.insert_u64(i);
        }
        assert!(f.size_bytes() > initial);
    }
}
