//! Property-based tests for the Bloom filter invariants RAMBO depends on.

use proptest::prelude::*;
use rambo_bloom::{BloomFilter, BloomParams, ScalableBloomFilter};

proptest! {
    /// The paper's central claim ("RAMBO cannot report false negatives",
    /// §4.1) bottoms out here: a Bloom filter retains every inserted key.
    #[test]
    fn never_a_false_negative(
        keys in proptest::collection::vec(any::<u64>(), 1..300),
        m_exp in 8u32..16,
        eta in 1u32..7,
        seed in any::<u64>(),
    ) {
        let mut f = BloomFilter::new(BloomParams::fixed(1 << m_exp, eta, seed));
        for &k in &keys {
            f.insert_u64(k);
        }
        for &k in &keys {
            prop_assert!(f.contains_u64(k));
        }
    }

    /// OR of filters == filter of the union of inserts, for any split of the
    /// key set. This is what justifies both BFU construction and fold-over.
    #[test]
    fn union_commutes_with_insertion(
        keys in proptest::collection::vec(any::<u64>(), 1..300),
        split in any::<proptest::sample::Index>(),
        seed in any::<u64>(),
    ) {
        let p = BloomParams::fixed(1 << 12, 3, seed);
        let cut = split.index(keys.len());
        let mut a = BloomFilter::new(p);
        let mut b = BloomFilter::new(p);
        for &k in &keys[..cut] { a.insert_u64(k); }
        for &k in &keys[cut..] { b.insert_u64(k); }
        a.union_assign(&b).unwrap();

        let mut direct = BloomFilter::new(p);
        for &k in &keys { direct.insert_u64(k); }
        prop_assert_eq!(a.bits(), direct.bits());
    }

    /// Union is order-insensitive (commutative + associative on bits).
    #[test]
    fn union_is_commutative(
        xs in proptest::collection::vec(any::<u64>(), 0..100),
        ys in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let p = BloomParams::fixed(4096, 4, 1);
        let mut a = BloomFilter::new(p);
        let mut b = BloomFilter::new(p);
        for &k in &xs { a.insert_u64(k); }
        for &k in &ys { b.insert_u64(k); }
        let mut ab = a.clone();
        ab.union_assign(&b).unwrap();
        let mut ba = b.clone();
        ba.union_assign(&a).unwrap();
        prop_assert_eq!(ab.bits(), ba.bits());
    }

    #[test]
    fn serialization_roundtrip(
        keys in proptest::collection::vec(any::<u64>(), 0..200),
        eta in 1u32..6,
        seed in any::<u64>(),
    ) {
        let mut f = BloomFilter::new(BloomParams::fixed(2048, eta, seed));
        for &k in &keys { f.insert_u64(k); }
        let back = BloomFilter::from_bytes(&f.to_bytes()).unwrap();
        prop_assert_eq!(&f, &back);
    }

    /// Scalable filters keep the no-false-negative property across growth.
    #[test]
    fn scalable_never_forgets(
        keys in proptest::collection::vec(any::<u64>(), 1..600),
        cap in 16usize..64,
    ) {
        let mut f = ScalableBloomFilter::new(cap, 0.02, 5);
        for &k in &keys { f.insert_u64(k); }
        for &k in &keys {
            prop_assert!(f.contains_u64(k));
        }
    }

    /// Byte-path and u64-path report consistently for the same logical key
    /// inserted through the byte path.
    #[test]
    fn bytes_path_no_false_negatives(
        words in proptest::collection::vec("[a-z]{1,12}", 1..100),
    ) {
        let mut f = BloomFilter::new(BloomParams::fixed(1 << 13, 4, 9));
        for w in &words { f.insert_bytes(w.as_bytes()); }
        for w in &words {
            prop_assert!(f.contains_bytes(w.as_bytes()));
        }
    }
}
