//! Hashing primitives for the RAMBO index family.
//!
//! The RAMBO paper (Gupta et al., SIGMOD 2021) relies on three distinct kinds
//! of hashing, all implemented here from scratch:
//!
//! 1. **Bloom-filter key hashing** — every term (a packed 31-mer or a word)
//!    must be mapped to `η` bit positions inside a Bloom Filter for the Union
//!    (BFU). We use [MurmurHash3](murmur3_x64_128) (128-bit, x64 variant) to
//!    derive a [`HashPair`] and expand it into `η` indices with
//!    Kirsch–Mitzenmacher *double hashing* (`h1 + i·h2 mod m`), which is the
//!    standard trick used by BIGSI/COBS and friends: one hash computation
//!    serves any `η`.
//! 2. **Partition hashing** — each of the `R` repetitions partitions the `K`
//!    documents into `B` groups with an independent 2-universal hash function
//!    `φ_i(·)` (paper §3.2, citing Carter–Wegman). [`CarterWegman`] implements
//!    the classic `((a·x + b) mod p) mod B` family over the Mersenne prime
//!    `p = 2^61 − 1`.
//! 3. **Two-level distributed routing** (paper §5.3) — documents are first
//!    routed to a node by `τ(·)` and then to a node-local BFU by `φ_i(·)`;
//!    the composed map `b·τ(D) + φ_i(D)` is again 2-universal.
//!    [`TwoLevelHash`] implements exactly this composition so that a sharded
//!    build can be *stacked* into a monolithic index bit-for-bit.
//!
//! All functions are deterministic given their seeds, which is what makes the
//! paper's "fold-over" and cluster-stacking tricks possible: every machine
//! must draw the same hash functions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fnv;
mod mix;
mod murmur3;
mod pair;
mod universal;

pub use fnv::fnv1a64;
pub use mix::{mix64, splitmix64, SplitMix64};
pub use murmur3::{murmur3_x64_128, murmur3_x64_64};
pub use pair::HashPair;
pub use universal::{CarterWegman, PartitionHasher, TwoLevelHash, MERSENNE_P61};

use std::hash::{BuildHasherDefault, Hasher};

/// A `std::hash::Hasher` that finalizes with [`mix64`]; intended for hash maps
/// keyed by integers that are already well-distributed or that only need a
/// cheap final scramble (e.g. packed k-mers).
///
/// This fills the role that `rustc-hash`/`nohash-hasher` would play in a
/// production codebase without adding a dependency: `write_u64` stores the
/// value and `finish` applies a full 64-bit finalizer, so even adversarially
/// structured k-mer integers spread across buckets.
#[derive(Default, Clone, Copy)]
pub struct Mix64Hasher {
    state: u64,
}

impl Hasher for Mix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Byte-stream fallback: FNV-1a accumulate, mixed at finish.
        let mut h = self.state ^ 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.state = h;
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = self.state.rotate_left(31) ^ i;
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`Mix64Hasher`]; use as
/// `HashMap<u64, V, Mix64State>::default()`.
pub type Mix64State = BuildHasherDefault<Mix64Hasher>;

/// Convenience alias: a `HashMap` using the fast [`Mix64Hasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, Mix64State>;

/// Convenience alias: a `HashSet` using the fast [`Mix64Hasher`].
pub type FastSet<K> = std::collections::HashSet<K, Mix64State>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn mix64_hasher_spreads_sequential_keys() {
        let state = Mix64State::default();
        let mut buckets = [0u32; 64];
        for i in 0u64..64_000 {
            let h = state.hash_one(i);
            buckets[(h % 64) as usize] += 1;
        }
        let expected = 64_000 / 64;
        for &c in &buckets {
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < expected as u64 / 2,
                "bucket count {c} too far from expected {expected}"
            );
        }
    }

    #[test]
    fn fast_map_works_with_kmer_keys() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 4, i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&400], 100);
    }
}
