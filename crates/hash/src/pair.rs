//! Double-hashing pairs: the bridge between "hash the term once" and
//! "probe `η` Bloom-filter positions".
//!
//! Kirsch & Mitzenmacher showed that the probe sequence
//! `g_i(x) = h1(x) + i·h2(x) (mod m)` preserves the asymptotic false-positive
//! behaviour of `η` independent hashes. RAMBO leans on this hard: a term is
//! hashed **once** and the same [`HashPair`] is reused across all `R` BFUs it
//! is inserted into (the BFUs share one Bloom hash family, paper §5.3 — "all
//! machines use the same hash function and seeds").

use crate::mix::mix64;
use crate::murmur3::murmur3_x64_128;

/// A 128-bit digest split into the two halves used for double hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HashPair {
    /// First probe base.
    pub h1: u64,
    /// Probe stride. Forced odd so that for power-of-two `m` the probe
    /// sequence cycles through all positions.
    pub h2: u64,
}

impl HashPair {
    /// Hash an arbitrary byte term (word, raw k-mer string, …).
    #[inline]
    #[must_use]
    pub fn of_bytes(term: &[u8], seed: u64) -> Self {
        let (h1, h2) = murmur3_x64_128(term, seed);
        Self { h1, h2: h2 | 1 }
    }

    /// Fast path for 2-bit-packed k-mers: two decorrelated [`mix64`]
    /// cascades instead of a byte-stream hash. ~3–4× faster than
    /// [`HashPair::of_bytes`] on 8-byte inputs, which matters because every
    /// inserted k-mer is hashed exactly once on the construction hot path.
    #[inline]
    #[must_use]
    pub fn of_u64(term: u64, seed: u64) -> Self {
        let h1 = mix64(term ^ seed);
        let h2 = mix64(h1 ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(seed | 1));
        Self { h1, h2: h2 | 1 }
    }

    /// The `i`-th probe position in a filter of `m` bits.
    #[inline]
    #[must_use]
    pub fn index(&self, i: u32, m: u64) -> u64 {
        debug_assert!(m > 0);
        self.h1.wrapping_add(u64::from(i).wrapping_mul(self.h2)) % m
    }

    /// Iterate the first `eta` probe positions in a filter of `m` bits.
    #[inline]
    pub fn indices(&self, eta: u32, m: u64) -> impl Iterator<Item = u64> + '_ {
        (0..eta).map(move |i| self.index(i, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_and_u64_paths_are_deterministic() {
        assert_eq!(
            HashPair::of_bytes(b"ACGT", 5),
            HashPair::of_bytes(b"ACGT", 5)
        );
        assert_eq!(HashPair::of_u64(77, 5), HashPair::of_u64(77, 5));
    }

    #[test]
    fn stride_is_always_odd() {
        for i in 0..1000u64 {
            assert_eq!(HashPair::of_u64(i, 3).h2 & 1, 1);
            assert_eq!(HashPair::of_bytes(&i.to_le_bytes(), 3).h2 & 1, 1);
        }
    }

    #[test]
    fn probe_positions_in_range_and_spread() {
        let m = 1013u64; // prime, non power of two
        let p = HashPair::of_u64(123_456, 9);
        let idx: Vec<u64> = p.indices(6, m).collect();
        assert_eq!(idx.len(), 6);
        for &i in &idx {
            assert!(i < m);
        }
        // With m prime and h2 != 0 mod m, all probes are distinct.
        let set: std::collections::HashSet<_> = idx.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn index_zero_is_h1_mod_m() {
        let p = HashPair { h1: 1000, h2: 33 };
        assert_eq!(p.index(0, 64), 1000 % 64);
        assert_eq!(p.index(1, 64), (1000 + 33) % 64);
        assert_eq!(p.index(2, 64), (1000 + 66) % 64);
    }

    #[test]
    fn different_seeds_decorrelate_positions() {
        let m = 1 << 20;
        let mut same = 0;
        for t in 0..1000u64 {
            let a = HashPair::of_u64(t, 1).index(0, m);
            let b = HashPair::of_u64(t, 2).index(0, m);
            if a == b {
                same += 1;
            }
        }
        // Collision chance per term is ~1/m; over 1000 terms expect ~0.
        assert!(same <= 2, "seeds insufficiently independent: {same}");
    }
}
