//! FNV-1a: a tiny byte-stream hash used where speed matters more than
//! statistical perfection (e.g. pre-bucketing strings before a stronger hash).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `data`.
///
/// ```
/// use rambo_hash::fnv1a64;
/// assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
/// assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
/// ```
#[inline]
#[must_use]
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Official FNV test vectors (Landon Curt Noll's table).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_on_short_strings() {
        let words = ["AC", "CA", "GT", "TG", "ACG", "GCA"];
        let mut seen = std::collections::HashSet::new();
        for w in words {
            assert!(seen.insert(fnv1a64(w.as_bytes())), "collision on {w}");
        }
    }
}
