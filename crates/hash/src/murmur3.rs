//! MurmurHash3 (x64, 128-bit) — the hash used by the genomics Bloom-filter
//! indexes this repository reproduces (BIGSI, COBS and the authors' RAMBO
//! implementation all hash k-mers with MurmurHash3).
//!
//! This is a faithful port of Austin Appleby's public-domain
//! `MurmurHash3_x64_128`. It processes 16-byte blocks with two lanes of
//! multiply-rotate mixing and finalizes with the 64-bit avalanche function
//! (`fmix64`).

const C1: u64 = 0x87c3_7b91_1142_53d5;
const C2: u64 = 0x4cf5_ad43_2745_937f;

/// The 64-bit finalizer ("fmix64") from MurmurHash3: a full-avalanche mixer.
#[inline]
pub(crate) fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

#[inline]
fn read_u64_le(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(buf)
}

/// Compute the 128-bit MurmurHash3 (x64 variant) of `data` with `seed`.
///
/// Returns the two 64-bit halves `(h1, h2)`. The pair is used directly as a
/// [double-hashing pair](crate::HashPair) for Bloom filters, so a single call
/// prices the entire `η`-probe sequence of a filter lookup.
///
/// ```
/// use rambo_hash::murmur3_x64_128;
/// // Deterministic: same input/seed, same output.
/// assert_eq!(murmur3_x64_128(b"ACGT", 7), murmur3_x64_128(b"ACGT", 7));
/// // Seed-sensitive.
/// assert_ne!(murmur3_x64_128(b"ACGT", 7), murmur3_x64_128(b"ACGT", 8));
/// // The empty string with seed 0 hashes to (0, 0) in reference MurmurHash3.
/// assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
/// ```
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> (u64, u64) {
    let len = data.len();
    let n_blocks = len / 16;

    let mut h1 = seed;
    let mut h2 = seed;

    // Body: 16-byte blocks.
    for i in 0..n_blocks {
        let block = &data[i * 16..i * 16 + 16];
        let mut k1 = read_u64_le(&block[0..8]);
        let mut k2 = read_u64_le(&block[8..16]);

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;

        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;

        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    // Tail: up to 15 remaining bytes, accumulated big-endian-style per the
    // reference implementation's fallthrough switch.
    let tail = &data[n_blocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;

    if tail.len() > 8 {
        for (i, &b) in tail[8..].iter().enumerate() {
            k2 ^= u64::from(b) << (8 * i);
        }
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    if !tail.is_empty() {
        for (i, &b) in tail[..tail.len().min(8)].iter().enumerate() {
            k1 ^= u64::from(b) << (8 * i);
        }
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    // Finalization.
    h1 ^= len as u64;
    h2 ^= len as u64;

    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);

    h1 = fmix64(h1);
    h2 = fmix64(h2);

    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);

    (h1, h2)
}

/// 64-bit convenience wrapper: the first half of [`murmur3_x64_128`].
///
/// Used for document-name hashing (mapping set identities onto the
/// 2-universal partition domain) where 64 bits are plenty.
#[inline]
pub fn murmur3_x64_64(data: &[u8], seed: u64) -> u64 {
    murmur3_x64_128(data, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_seed_zero_is_zero() {
        // In reference MurmurHash3_x64_128, hashing zero bytes with seed 0
        // leaves h1 = h2 = 0 through every stage.
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = murmur3_x64_128(b"the quick brown fox", 1);
        let b = murmur3_x64_128(b"the quick brown fox", 1);
        let c = murmur3_x64_128(b"the quick brown fox", 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn block_and_tail_paths_differ_from_each_other() {
        // 16 bytes exercises exactly one body block and no tail; 17 adds a
        // 1-byte tail. The outputs must differ (length is folded in).
        let h16 = murmur3_x64_128(&[0xABu8; 16], 0);
        let h17 = murmur3_x64_128(&[0xABu8; 17], 0);
        let h15 = murmur3_x64_128(&[0xABu8; 15], 0);
        assert_ne!(h16, h17);
        assert_ne!(h15, h16);
    }

    #[test]
    fn tail_lengths_all_distinct() {
        // Exercise every tail length 0..=15 on top of one full block; all 16
        // digests must be pairwise distinct.
        let data = [0x5Au8; 31];
        let mut seen = std::collections::HashSet::new();
        for l in 16..=31 {
            assert!(seen.insert(murmur3_x64_128(&data[..l], 9)));
        }
    }

    #[test]
    fn single_bit_flip_avalanches() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = b"GATTACAGATTACAGATTACA".to_vec();
        let (b1, b2) = murmur3_x64_128(&base, 0);
        let mut flipped = base.clone();
        flipped[3] ^= 0x01;
        let (f1, f2) = murmur3_x64_128(&flipped, 0);
        let dist = (b1 ^ f1).count_ones() + (b2 ^ f2).count_ones();
        assert!(
            (32..=96).contains(&dist),
            "hamming distance {dist} outside avalanche window"
        );
    }

    #[test]
    fn output_bits_unbiased_over_many_keys() {
        // Over many distinct keys each output bit of h1 should be set about
        // half of the time.
        let n = 4096u64;
        let mut ones = [0u32; 64];
        for i in 0..n {
            let (h1, _) = murmur3_x64_128(&i.to_le_bytes(), 42);
            for (b, count) in ones.iter_mut().enumerate() {
                *count += ((h1 >> b) & 1) as u32;
            }
        }
        for (b, &c) in ones.iter().enumerate() {
            let frac = f64::from(c) / n as f64;
            assert!(
                (0.45..=0.55).contains(&frac),
                "bit {b} biased: p(set) = {frac}"
            );
        }
    }

    #[test]
    fn fmix64_is_a_bijection_fixed_points() {
        // fmix64(0) == 0 is the single well-known fixed point.
        assert_eq!(fmix64(0), 0);
        assert_ne!(fmix64(1), 1);
    }
}
