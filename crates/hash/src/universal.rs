//! 2-universal hash families over the Mersenne prime `p = 2^61 − 1`, plus the
//! partition and two-level routing hashers built on them.
//!
//! The paper's construction (§3.2) requires, for each repetition `i ∈ 1..R`,
//! an independent 2-universal function `φ_i : doc-identity → [0, B)`. The
//! Carter–Wegman family `h_{a,b}(x) = ((a·x + b) mod p) mod B` is exactly
//! 2-universal when `a ∈ [1, p)`, `b ∈ [0, p)` are drawn uniformly.
//!
//! §5.3 extends this to the cluster setting: a *routing* hash `τ(D)` picks one
//! of `N` nodes, then the node-local `φ_i(D)` picks one of `b` local buckets,
//! and the composed global bucket is `b·τ(D) + φ_i(D)` — still pairwise
//! independent over the `B = N·b` global range. [`TwoLevelHash`] packages this
//! composition so that sharded construction, stacking and single-machine
//! construction agree bit-for-bit.

use crate::mix::SplitMix64;
use crate::murmur3::murmur3_x64_64;

/// The Mersenne prime `2^61 − 1` used as the field modulus.
pub const MERSENNE_P61: u64 = (1 << 61) - 1;

/// Reduce a 128-bit product modulo `2^61 − 1` using the Mersenne shortcut
/// (`x mod 2^k−1 == (x >> k) + (x & 2^k−1)`, folded twice).
#[inline]
fn mod_p61(x: u128) -> u64 {
    let lo = (x & u128::from(MERSENNE_P61)) as u64;
    let hi = (x >> 61) as u64;
    let mut s = lo.wrapping_add(hi & MERSENNE_P61).wrapping_add(hi >> 61);
    if s >= MERSENNE_P61 {
        s -= MERSENNE_P61;
    }
    s
}

/// A Carter–Wegman 2-universal hash `x ↦ ((a·x + b) mod p) mod range`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarterWegman {
    a: u64,
    b: u64,
    range: u64,
}

impl CarterWegman {
    /// Draw a function from the family with output `range`, deterministically
    /// from `seed`.
    ///
    /// # Panics
    /// Panics if `range == 0`.
    #[must_use]
    pub fn from_seed(seed: u64, range: u64) -> Self {
        assert!(range > 0, "hash range must be positive");
        let mut s = SplitMix64::new(seed);
        // a ∈ [1, p), b ∈ [0, p).
        let a = 1 + s.next_below(MERSENNE_P61 - 1);
        let b = s.next_below(MERSENNE_P61);
        Self { a, b, range }
    }

    /// Evaluate the function on a 64-bit key (keys are first reduced mod p;
    /// the loss of injectivity above 2^61 is irrelevant for hashed inputs).
    #[inline]
    #[must_use]
    pub fn eval(&self, x: u64) -> u64 {
        let x = x % MERSENNE_P61;
        let ax = u128::from(self.a) * u128::from(x) + u128::from(self.b);
        mod_p61(ax) % self.range
    }

    /// Output range of this function.
    #[must_use]
    pub fn range(&self) -> u64 {
        self.range
    }
}

/// Maps document identities (names) to partitions — the `φ_i(·)` of
/// Algorithm 1. One `PartitionHasher` per repetition.
///
/// The document name is first digested with MurmurHash3 (seeded identically
/// everywhere), then pushed through a [`CarterWegman`] function into `[0, B)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionHasher {
    name_seed: u64,
    cw: CarterWegman,
}

impl PartitionHasher {
    /// Create the partition hasher for one repetition.
    ///
    /// `seed` must be identical across all machines participating in a
    /// distributed build (paper §5.3).
    #[must_use]
    pub fn new(seed: u64, buckets: u64) -> Self {
        let mut s = SplitMix64::new(seed ^ 0x7061_7274_6974_696f); // "partitio"
        let name_seed = s.next_u64();
        let cw = CarterWegman::from_seed(s.next_u64(), buckets);
        Self { name_seed, cw }
    }

    /// Bucket of a document identified by raw name bytes.
    #[inline]
    #[must_use]
    pub fn bucket_of_name(&self, name: &[u8]) -> u64 {
        self.cw.eval(murmur3_x64_64(name, self.name_seed))
    }

    /// Bucket of a document identified by a pre-hashed 64-bit identity.
    #[inline]
    #[must_use]
    pub fn bucket_of_id(&self, id: u64) -> u64 {
        self.cw.eval(id)
    }

    /// Number of buckets `B`.
    #[must_use]
    pub fn buckets(&self) -> u64 {
        self.cw.range()
    }
}

/// The two-level routing hash of §5.3: `global = b·τ(D) + φ_i(D)`.
///
/// `τ` routes a document to one of `nodes` machines; `φ_i` is the machine-
/// local partition hash for repetition `i` with `local_buckets` buckets. The
/// composition is used *both* by the sharded builder (each node evaluates only
/// `φ_i` on the documents `τ` routed to it) and by the monolithic index (which
/// evaluates the composition directly), making the two constructions
/// filter-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoLevelHash {
    tau_seed: u64,
    nodes: u64,
    local: Vec<PartitionHasher>,
    local_buckets: u64,
}

impl TwoLevelHash {
    /// Build the router for `nodes` machines, `repetitions` tables and
    /// `local_buckets` BFUs per table per machine, all derived from `seed`.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(seed: u64, nodes: u64, repetitions: usize, local_buckets: u64) -> Self {
        assert!(nodes > 0 && repetitions > 0 && local_buckets > 0);
        let mut s = SplitMix64::new(seed ^ 0x726f_7574_6572_3256); // "router2V"
        let tau_seed = s.next_u64();
        let local = (0..repetitions)
            .map(|_| PartitionHasher::new(s.next_u64(), local_buckets))
            .collect();
        Self {
            tau_seed,
            nodes,
            local,
            local_buckets,
        }
    }

    /// `τ(name)`: which node owns this document.
    #[inline]
    #[must_use]
    pub fn node_of(&self, name: &[u8]) -> u64 {
        murmur3_x64_64(name, self.tau_seed) % self.nodes
    }

    /// `φ_i(name)`: node-local bucket for repetition `rep`.
    #[inline]
    #[must_use]
    pub fn local_bucket(&self, rep: usize, name: &[u8]) -> u64 {
        self.local[rep].bucket_of_name(name)
    }

    /// The composed global bucket `b·τ(name) + φ_rep(name)` in
    /// `[0, nodes·local_buckets)`.
    #[inline]
    #[must_use]
    pub fn global_bucket(&self, rep: usize, name: &[u8]) -> u64 {
        self.local_buckets * self.node_of(name) + self.local_bucket(rep, name)
    }

    /// Total global bucket count `B = nodes · local_buckets`.
    #[must_use]
    pub fn global_buckets(&self) -> u64 {
        self.nodes * self.local_buckets
    }

    /// Number of repetitions this router was built for.
    #[must_use]
    pub fn repetitions(&self) -> usize {
        self.local.len()
    }

    /// Number of nodes `N`.
    #[must_use]
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Node-local buckets `b`.
    #[must_use]
    pub fn local_buckets(&self) -> u64 {
        self.local_buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_p61_agrees_with_naive() {
        let cases: [u128; 6] = [
            0,
            1,
            u128::from(MERSENNE_P61),
            u128::from(MERSENNE_P61) + 1,
            u128::from(u64::MAX) * 3,
            u128::from(MERSENNE_P61 - 1) * u128::from(MERSENNE_P61 - 1),
        ];
        for &x in &cases {
            assert_eq!(
                u128::from(mod_p61(x)),
                x % u128::from(MERSENNE_P61),
                "x = {x}"
            );
        }
    }

    #[test]
    fn carter_wegman_range_respected() {
        let h = CarterWegman::from_seed(7, 100);
        for x in 0..10_000u64 {
            assert!(h.eval(x) < 100);
        }
    }

    #[test]
    fn carter_wegman_near_uniform() {
        let b = 50u64;
        let h = CarterWegman::from_seed(11, b);
        let mut hist = vec![0u32; b as usize];
        let n = 100_000u64;
        for x in 0..n {
            hist[h.eval(x.wrapping_mul(0x9e37_79b9)) as usize] += 1;
        }
        let expected = (n / b) as f64;
        for (i, &c) in hist.iter().enumerate() {
            let dev = (f64::from(c) - expected).abs() / expected;
            assert!(dev < 0.25, "bucket {i} off by {dev:.2}");
        }
    }

    #[test]
    fn pairwise_collision_rate_close_to_one_over_b() {
        // Empirical 2-universality check: Pr[h(x) == h(y)] ≈ 1/B over random
        // function draws.
        let b = 64u64;
        let trials = 20_000u32;
        let mut collisions = 0u32;
        for seed in 0..trials {
            let h = CarterWegman::from_seed(u64::from(seed), b);
            if h.eval(123_456_789) == h.eval(987_654_321) {
                collisions += 1;
            }
        }
        let rate = f64::from(collisions) / f64::from(trials);
        let ideal = 1.0 / b as f64;
        assert!(
            (rate - ideal).abs() < ideal * 0.5,
            "collision rate {rate:.5} vs ideal {ideal:.5}"
        );
    }

    #[test]
    fn partition_hasher_stable_and_in_range() {
        let p = PartitionHasher::new(3, 20);
        assert_eq!(p.buckets(), 20);
        let b1 = p.bucket_of_name(b"ENA-0001.fastq");
        let b2 = p.bucket_of_name(b"ENA-0001.fastq");
        assert_eq!(b1, b2);
        assert!(b1 < 20);
    }

    #[test]
    fn two_level_composition_matches_parts() {
        let t = TwoLevelHash::new(42, 10, 3, 50);
        assert_eq!(t.global_buckets(), 500);
        for i in 0..200u32 {
            let name = format!("doc-{i}");
            let node = t.node_of(name.as_bytes());
            assert!(node < 10);
            for rep in 0..3 {
                let local = t.local_bucket(rep, name.as_bytes());
                assert!(local < 50);
                assert_eq!(t.global_bucket(rep, name.as_bytes()), 50 * node + local);
            }
        }
    }

    #[test]
    fn two_level_global_buckets_near_uniform() {
        // The paper's claim: the composed map keeps the collision probability
        // at 1/B. We check the occupancy histogram of the global range.
        let t = TwoLevelHash::new(1, 8, 1, 16);
        let b = t.global_buckets() as usize;
        let mut hist = vec![0u32; b];
        let n = 64_000;
        for i in 0..n {
            let name = format!("genome-{i}");
            hist[t.global_bucket(0, name.as_bytes()) as usize] += 1;
        }
        let expected = n as f64 / b as f64;
        for (i, &c) in hist.iter().enumerate() {
            let dev = (f64::from(c) - expected).abs() / expected;
            assert!(dev < 0.3, "global bucket {i} off by {dev:.2}");
        }
    }
}
