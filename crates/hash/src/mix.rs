//! 64-bit integer mixing and the splitmix64 pseudo-random sequence.
//!
//! RAMBO needs many *derived* seeds (one Bloom seed, `R` partition seeds, a
//! routing seed) from one user seed. We derive them with splitmix64, the same
//! generator used to seed xoshiro-family PRNGs: sequential calls produce
//! decorrelated 64-bit values from a single starting state.

/// Full-avalanche 64-bit mixer (splitmix64 finalizer, Stafford variant 13).
///
/// Used as the fast path for hashing 2-bit-packed k-mers: a packed k-mer is
/// already a dense `u64`, so one multiply-xorshift cascade replaces a full
/// byte-stream hash while retaining avalanche quality.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z
}

/// One step of the splitmix64 sequence: advances `state` and returns the next
/// pseudo-random value.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tiny deterministic seed-derivation stream around [`splitmix64`].
///
/// ```
/// use rambo_hash::SplitMix64;
/// let mut s = SplitMix64::new(42);
/// let a = s.next_u64();
/// let b = s.next_u64();
/// assert_ne!(a, b);
/// // Restarting from the same seed replays the same stream.
/// assert_eq!(SplitMix64::new(42).next_u64(), a);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a stream from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next pseudo-random 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Next value reduced to `[0, n)` (Lemire's multiply-shift reduction;
    /// bias is negligible for the `n ≪ 2^64` ranges used here).
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First two outputs for seed 1234567, as published with Vigna's
        // reference implementation (and the Rosetta Code task derived from it).
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 6457827717110365317);
        assert_eq!(splitmix64(&mut s), 3203168211198807973);
    }

    #[test]
    fn mix64_distinct_on_sequential_inputs() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut s = SplitMix64::new(99);
        let n = 10;
        let mut hist = [0u32; 10];
        for _ in 0..10_000 {
            let v = s.next_below(n);
            assert!(v < n);
            hist[v as usize] += 1;
        }
        for &h in &hist {
            assert!(h > 500, "value underrepresented: {h}");
        }
    }
}
