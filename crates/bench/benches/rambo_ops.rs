//! Criterion benchmarks for the RAMBO core: insertion, the two query modes,
//! fold-over, and the §5.1 "bitmap arrays vs sets" intersection ablation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rambo_baselines::intersect_sorted;
use rambo_bitvec::BitVec;
use rambo_core::{QueryContext, QueryMode, Rambo, RamboParams};
use rambo_workloads::{ArchiveParams, PlantedQueries, SyntheticArchive};
use std::time::Duration;

fn build_index(k: usize, terms: usize, seed: u64) -> (Rambo, Vec<u64>) {
    let mut p = ArchiveParams::tiny(k, seed);
    p.mean_terms = terms;
    p.std_terms = terms / 3;
    let mut archive = SyntheticArchive::generate(&p);
    let planted = PlantedQueries::generate(200, k, 5.0, seed ^ 0xBEEF);
    planted.plant_into(&mut archive.docs);
    // Force an even bucket count so the fold benchmark can halve it.
    let b = (((k as f64).sqrt() * 4.5).round() as u64 + 1) & !1;
    let per_bucket = ((k as f64 / b as f64) * terms as f64 * 1.2)
        .ceil()
        .max(64.0) as usize;
    let params = RamboParams::flat(
        b,
        3,
        rambo_bloom::params::optimal_m(per_bucket, 1.0 / b as f64),
        2,
        seed,
    );
    let mut r = Rambo::new(params).expect("params");
    for (name, ts) in &archive.docs {
        r.insert_document(name, ts.iter().copied()).expect("unique");
    }
    let queries: Vec<u64> = planted.queries.iter().map(|(t, _)| *t).collect();
    (r, queries)
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("rambo/insert");
    g.measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(15);
    let params = RamboParams::flat(100, 3, 1 << 20, 2, 1);
    let mut r = Rambo::new(params).expect("params");
    let d = r.add_document("bench-doc").expect("unique");
    let mut t = 0u64;
    g.throughput(Throughput::Elements(1));
    g.bench_function("insert_term_u64", |b| {
        b.iter(|| {
            t = t.wrapping_add(1);
            r.insert_term_u64(d, black_box(t)).expect("known doc");
        })
    });
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("rambo/query");
    g.measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(15);
    for &k in &[1000usize, 8000] {
        let (r, queries) = build_index(k, 200, 42);
        let mut ctx = QueryContext::new();
        for (mode, label) in [(QueryMode::Full, "full"), (QueryMode::Sparse, "sparse")] {
            g.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % queries.len();
                    black_box(r.query_terms_with(&[queries[i]], mode, &mut ctx))
                })
            });
        }
    }
    g.finish();
}

fn bench_fold(c: &mut Criterion) {
    let mut g = c.benchmark_group("rambo/fold");
    g.measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(10);
    let (r, _) = build_index(2000, 200, 7);
    g.bench_function("fold_once/K2000", |b| {
        b.iter_batched(
            || r.clone(),
            |mut x| x.fold_once().expect("fold available"),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// §5.1 ablation: intersect the per-repetition document sets as bitmaps
/// (word-AND) vs as sorted id lists, across result densities. The paper
/// chose bitmaps because its per-repetition unions exceed the ~15% density
/// where bitmaps win; at low densities the list path wins — which is exactly
/// why RAMBO+ runs on candidate lists.
fn bench_docset(c: &mut Criterion) {
    let mut g = c.benchmark_group("docset_intersection");
    g.measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(15);
    let k = 100_000usize;
    for density_pct in [1usize, 15, 50] {
        let step = 100 / density_pct;
        let a_ids: Vec<u32> = (0..k).step_by(step).map(|x| x as u32).collect();
        let b_ids: Vec<u32> = (0..k).step_by(step).map(|x| (x + 1) as u32).collect();
        let a_bm = BitVec::from_ones(k, a_ids.iter().map(|&x| x as usize));
        let b_bm = BitVec::from_ones(k, b_ids.iter().map(|&x| x as usize));
        g.bench_with_input(
            BenchmarkId::new("bitmap_and", density_pct),
            &density_pct,
            |bch, _| {
                bch.iter_batched(
                    || a_bm.clone(),
                    |mut x| x.and_assign(black_box(&b_bm)),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        g.bench_with_input(
            BenchmarkId::new("sorted_lists", density_pct),
            &density_pct,
            |bch, _| bch.iter(|| intersect_sorted(black_box(&a_ids), black_box(&b_ids))),
        );
    }
    g.finish();
}

fn all(c: &mut Criterion) {
    bench_insert(c);
    bench_query(c);
    bench_fold(c);
    bench_docset(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
