//! Criterion micro-benchmarks for the substrate crates: hashing, bit
//! vectors, Bloom filters, k-mer extraction. These are the kernels every
//! macro number in the paper tables decomposes into.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rambo_bitvec::{BitVec, RrrVec};
use rambo_bloom::{BloomFilter, BloomParams};
use rambo_hash::{mix64, murmur3_x64_128, HashPair};
use rambo_kmer::kmers_of;
use std::time::Duration;

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    g.measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(20);
    let kmer31 = b"GATTACAGATTACAGATTACAGATTACAGAT";
    g.throughput(Throughput::Bytes(31));
    g.bench_function("murmur3_x64_128/31B", |b| {
        b.iter(|| murmur3_x64_128(black_box(kmer31), 7))
    });
    g.throughput(Throughput::Elements(1));
    g.bench_function("mix64", |b| b.iter(|| mix64(black_box(0xDEAD_BEEF))));
    g.bench_function("hashpair_of_u64", |b| {
        b.iter(|| HashPair::of_u64(black_box(0xDEAD_BEEF), 7))
    });
    g.finish();
}

fn bench_bitvec(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitvec");
    g.measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(20);
    let n = 1 << 16;
    let a = BitVec::from_ones(n, (0..n).step_by(3));
    let b_vec = BitVec::from_ones(n, (0..n).step_by(5));
    g.throughput(Throughput::Bytes((n / 8) as u64));
    g.bench_function("and_assign/64kbit", |b| {
        b.iter_batched(
            || a.clone(),
            |mut x| x.and_assign(black_box(&b_vec)),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("count_and/64kbit", |b| {
        b.iter(|| black_box(&a).count_and(black_box(&b_vec)))
    });
    let rrr = RrrVec::from_bitvec(&a);
    g.throughput(Throughput::Elements(1));
    g.bench_function("rrr_get", |b| b.iter(|| rrr.get(black_box(31_337))));
    g.bench_function("rrr_rank1", |b| b.iter(|| rrr.rank1(black_box(31_337))));
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    g.measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(20);
    let params = BloomParams::for_capacity(100_000, 0.01, 7);
    let mut filter = BloomFilter::new(params);
    for i in 0..100_000u64 {
        filter.insert_u64(i);
    }
    g.throughput(Throughput::Elements(1));
    g.bench_function("insert_u64", |b| {
        let mut f = BloomFilter::new(params);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            f.insert_u64(black_box(i));
        })
    });
    g.bench_function("contains_u64/hit", |b| {
        b.iter(|| filter.contains_u64(black_box(55_555)))
    });
    g.bench_function("contains_u64/miss", |b| {
        b.iter(|| filter.contains_u64(black_box(u64::MAX - 5)))
    });
    g.finish();
}

fn bench_kmer(c: &mut Criterion) {
    let mut g = c.benchmark_group("kmer");
    g.measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(20);
    let mut sim = rambo_kmer::sim::GenomeSimulator::new(3);
    let genome = sim.random_genome(100_000);
    g.throughput(Throughput::Bytes(genome.len() as u64));
    g.bench_function("extract_31mers/100kb", |b| {
        b.iter(|| kmers_of(black_box(&genome), 31, false).count())
    });
    g.bench_function("extract_canonical_31mers/100kb", |b| {
        b.iter(|| kmers_of(black_box(&genome), 31, true).count())
    });
    g.finish();
}

fn all(c: &mut Criterion) {
    let c = configure(c);
    bench_hashing(c);
    bench_bitvec(c);
    bench_bloom(c);
    bench_kmer(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
