//! Criterion benchmark sweeping every index family on one shared archive —
//! the "Table 2 in micro-benchmark form" comparison at a fixed K.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rambo_bench::build_suite;
use rambo_workloads::{ArchiveParams, PlantedQueries, SyntheticArchive};
use std::time::Duration;

fn bench_suite_queries(c: &mut Criterion) {
    let k = 2000;
    let mut p = ArchiveParams::tiny(k, 11);
    p.mean_terms = 400;
    p.std_terms = 150;
    let mut archive = SyntheticArchive::generate(&p);
    let planted = PlantedQueries::generate(300, k, 20.0, 0xC0FFEE);
    planted.plant_into(&mut archive.docs);
    let queries: Vec<u64> = planted.queries.iter().map(|(t, _)| *t).collect();
    let suite = build_suite(&archive.docs, 400, false, 11, true);

    let mut g = c.benchmark_group("suite_query_K2000");
    g.measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(15);
    for built in &suite {
        let idx = built.index.as_ref();
        let mut i = 0usize;
        g.bench_function(idx.label(), |b| {
            b.iter(|| {
                i = (i + 1) % queries.len();
                black_box(idx.query_term(queries[i]))
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("suite_sequence_query_K2000");
    g.measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(15);
    // A 8-term conjunction from one document: the §3.3.1 workload.
    let seq: Vec<u64> = archive.docs[77].1[..8].to_vec();
    for built in &suite {
        let idx = built.index.as_ref();
        g.bench_function(idx.label(), |b| {
            b.iter(|| black_box(idx.query_terms(black_box(&seq))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_suite_queries);
criterion_main!(benches);
