//! **§5.3 reproduction** — distributed construction: thread-parallel sharded
//! builds, stacking losslessness, and scaling with the number of simulated
//! nodes.
//!
//! The paper's claim is architectural: with the two-level hash, 100 nodes
//! ingest 460K files with **zero** inter-node communication, and stacking
//! the per-node structures reproduces the monolithic index exactly. We
//! verify the exactness on every run and report the wall-clock scaling over
//! worker threads (bounded by physical cores, unlike the paper's cluster).
//!
//! Keep `total-b / nodes ≥ 64`: each node's matrix rows round up to whole
//! 64-bit words, so smaller node-local bucket counts make the shards pay
//! word-granularity padding and memory traffic that erases the parallel win.
//!
//! ```text
//! cargo run -p rambo-bench --release --bin cluster_scaling -- \
//!     [--docs 2000] [--terms 2000] [--total-b 1024] [--reps 3] [--seed 7] \
//!     [--nodes 1,2,4,8,16]
//! ```

use rambo_bench::Args;
use rambo_core::{build_sharded_parallel, Rambo, RamboParams};
use rambo_workloads::timing::{human_duration, time};
use rambo_workloads::{ArchiveParams, SyntheticArchive, Table};

fn main() {
    let args = Args::parse();
    let k = args.get_usize("docs", 2000);
    let mean_terms = args.get_usize("terms", 2000);
    let total_b = args.get_u64("total-b", 1024);
    let reps = args.get_usize("reps", 3);
    let seed = args.get_u64("seed", 7);
    let node_counts = args.get_usize_list("nodes", &[1, 2, 4, 8, 16]);
    rambo_bench::require_nonzero(
        "cluster_scaling",
        &[
            ("--docs", k),
            ("--terms", mean_terms),
            ("--total-b", total_b as usize),
            ("--reps", reps),
            ("--nodes", node_counts.iter().copied().min().unwrap_or(0)),
        ],
    );

    println!("RAMBO reproduction — §5.3 cluster construction (simulated nodes)");
    println!("workload: {k} docs x ~{mean_terms} terms, global B = {total_b}, R = {reps}\n");

    let mut p = ArchiveParams::ena_like(k, 1.0 / 2000.0, seed);
    p.mean_terms = mean_terms;
    p.std_terms = mean_terms / 2;
    let archive = SyntheticArchive::generate(&p);
    let per_bucket = ((k as f64 / total_b as f64) * mean_terms as f64 * 1.2)
        .ceil()
        .max(64.0) as usize;
    let bfu_bits = rambo_bloom::params::optimal_m(per_bucket, 0.01);

    // Single-thread monolithic reference (also the correctness oracle).
    // Pinned to one batch-insertion thread so the speedup column measures
    // the node fan-out, not the batch engine's per-repetition fan-out.
    let mono_params = RamboParams::two_level(1, total_b, reps, bfu_bits, 2, seed);
    let (_, mono_time) = time(|| {
        let mut r = Rambo::new(mono_params).expect("params");
        for (name, terms) in &archive.docs {
            r.insert_document_batch_with(name, terms, 1)
                .expect("unique");
        }
        r
    });
    println!(
        "monolithic single-thread build: {}",
        human_duration(mono_time)
    );
    println!(
        "host parallelism: {} hardware threads (speedup saturates there)\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    );

    let mut table = Table::new(
        "sharded build scaling",
        &["nodes", "build time", "speedup", "stack == monolithic BFUs"],
    );
    for &n in &node_counts {
        let n = n as u64;
        if !total_b.is_multiple_of(n) {
            continue;
        }
        let params = RamboParams::two_level(n, total_b / n, reps, bfu_bits, 2, seed);
        let (stacked, t) =
            time(|| build_sharded_parallel(params, archive.docs.clone()).expect("sharded build"));
        // Lossless-stacking check: identical BFU bit patterns as a
        // same-seed monolithic build with the same node layout.
        let mut mono = Rambo::new(params).expect("params");
        for (name, terms) in &archive.docs {
            mono.insert_document(name, terms.iter().copied())
                .expect("unique");
        }
        let mut identical = true;
        'check: for rep in 0..reps {
            for b in 0..total_b as usize {
                if stacked.bfu_bits(rep, b) != mono.bfu_bits(rep, b) {
                    identical = false;
                    break 'check;
                }
            }
        }
        table.row(&[
            n.to_string(),
            human_duration(t),
            format!("{:.2}x", mono_time.as_secs_f64() / t.as_secs_f64()),
            if identical {
                "yes".into()
            } else {
                "NO — BUG".to_string()
            },
        ]);
    }
    println!("{table}");
    println!("shape checks vs paper (§5.3):");
    println!("  * every row must say 'yes' — stacking is lossless by construction;");
    println!("  * speedup grows with nodes until physical cores saturate (the paper's");
    println!("    100-node, 1-hour construction of 460K files is this same curve).");
}
