//! Ingestion-throughput benchmark for the batch-parallel engine.
//!
//! Builds the same index three ways over one synthetic ENA-like archive —
//! term-at-a-time (the pre-batch hot path), batch single-thread, and batch
//! multi-thread — asserts all three are **bit-identical**, and emits
//! `BENCH_ingest.json` so the speedup is tracked across PRs.
//!
//! ```text
//! cargo run --release -p rambo-bench --bin ingest_throughput -- \
//!     --docs 60 --mean-terms 20000 --reps 4 --threads 4
//! ```

use rambo_bench::{archive_with_mean_terms, default_threads, Args, JsonReport};
use rambo_core::{Rambo, RamboParams};
use rambo_workloads::timing::{human_duration, time};

fn main() {
    let args = Args::parse();
    let docs = args.get_usize("docs", 60);
    let mean_terms = args.get_usize("mean-terms", 20_000);
    let reps = args.get_usize("reps", 4);
    let threads = args.get_usize("threads", default_threads());
    let seed = args.get_u64("seed", 42);

    let archive = archive_with_mean_terms(docs, mean_terms, seed);
    let total_terms = archive.total_terms() as u64;

    let b = ((docs as f64).sqrt() * 4.5).round().max(4.0) as u64;
    let per_bucket = ((docs as f64 / b as f64) * mean_terms as f64 * 1.2).ceil() as usize;
    let rambo_params = RamboParams::flat(
        b,
        reps,
        rambo_bloom::params::optimal_m(per_bucket.max(64), 0.01),
        2,
        seed,
    );

    eprintln!(
        "ingest: K={docs} mean_terms={mean_terms} total_terms={total_terms} B={b} R={reps} \
         threads={threads}"
    );

    // 1. Term-at-a-time: the pre-batch ingestion path.
    let (naive, t_naive) = time(|| {
        let mut r = Rambo::new(rambo_params).expect("valid params");
        for (name, terms) in &archive.docs {
            let d = r.add_document(name).expect("unique");
            for &t in terms {
                r.insert_term_u64(d, t).expect("known doc");
            }
        }
        r
    });

    // 2. Batch engine, forced sequential.
    let (batch1, t_batch1) = time(|| {
        let mut r = Rambo::new(rambo_params).expect("valid params");
        for (name, terms) in &archive.docs {
            r.insert_document_batch_with(name, terms, 1)
                .expect("unique");
        }
        r
    });

    // 3. Batch engine, R-way fan-out over `threads` workers.
    let (batch_n, t_batch_n) = time(|| {
        let mut r = Rambo::new(rambo_params).expect("valid params");
        for (name, terms) in &archive.docs {
            r.insert_document_batch_with(name, terms, threads)
                .expect("unique");
        }
        r
    });

    assert_eq!(naive, batch1, "batch(1) must be bit-identical to naive");
    assert_eq!(
        naive, batch_n,
        "batch({threads}) must be bit-identical to naive"
    );

    let rate = |d: std::time::Duration| total_terms as f64 / d.as_secs_f64();
    eprintln!(
        "naive     {:>10}  ({:.2} Mterms/s)",
        human_duration(t_naive),
        rate(t_naive) / 1e6
    );
    eprintln!(
        "batch(1)  {:>10}  ({:.2} Mterms/s)",
        human_duration(t_batch1),
        rate(t_batch1) / 1e6
    );
    eprintln!(
        "batch({threads})  {:>10}  ({:.2} Mterms/s)",
        human_duration(t_batch_n),
        rate(t_batch_n) / 1e6
    );

    JsonReport::new("ingest_throughput")
        .int("docs", docs as u64)
        .int("total_terms", total_terms)
        .int("buckets", b)
        .int("repetitions", reps as u64)
        .int("threads", threads as u64)
        .num("naive_s", t_naive.as_secs_f64())
        .num("batch_single_thread_s", t_batch1.as_secs_f64())
        .num("batch_multi_thread_s", t_batch_n.as_secs_f64())
        .num("naive_mterms_per_s", rate(t_naive) / 1e6)
        .num("batch_single_mterms_per_s", rate(t_batch1) / 1e6)
        .num("batch_multi_mterms_per_s", rate(t_batch_n) / 1e6)
        .ratio("speedup_batch_vs_naive", t_naive, t_batch1)
        .ratio("speedup_multi_vs_single", t_batch1, t_batch_n)
        .ratio("speedup_total", t_naive, t_batch_n)
        .finish("BENCH_ingest.json");
}
