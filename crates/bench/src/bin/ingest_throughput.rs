//! Ingestion-throughput benchmark for the batch-parallel engine and the
//! pipelined / shard-parallel construction paths.
//!
//! Builds the same index five ways over one synthetic ENA-like archive —
//! term-at-a-time (the pre-batch hot path), batch single-thread, batch
//! multi-thread, the bounded-queue ingestion pipeline, and the
//! document-sharded parallel build — asserts all five are **bit-identical**,
//! and emits `BENCH_ingest.json` (including the pipeline's queue-stall
//! telemetry) so the speedups are tracked across PRs.
//!
//! The pipelined and sharded paths scale with real cores; on a single
//! hardware thread their ratios are OS-scheduling noise around parity
//! (0.8–1.8× run-to-run), so the CI regression gate does not gate them.
//! The bit-identity asserts and the stall counters are exercised
//! regardless.
//!
//! ```text
//! cargo run --release -p rambo-bench --bin ingest_throughput -- \
//!     --docs 60 --mean-terms 20000 --reps 4 --threads 4 --shards 4
//! ```

use rambo_bench::{archive_with_mean_terms, default_threads, Args, JsonReport};
use rambo_core::{IngestPipeline, PipelineObserver, Rambo, RamboParams};
use rambo_workloads::timing::{human_duration, time};
use rambo_workloads::QueueTelemetry;
use std::sync::Arc;

fn main() {
    let args = Args::parse();
    let docs = args.get_usize("docs", 60);
    if docs == 0 {
        eprintln!("ingest_throughput: --docs must be >= 1 (an empty archive has no throughput)");
        std::process::exit(2);
    }
    let mean_terms = args.get_usize("mean-terms", 20_000);
    let reps = args.get_usize("reps", 4);
    let threads = args.get_usize("threads", default_threads());
    let shards = args.get_usize("shards", threads.max(2));
    let queue_depth = args.get_usize("queue-depth", 4);
    let seed = args.get_u64("seed", 42);

    let archive = archive_with_mean_terms(docs, mean_terms, seed);
    let total_terms = archive.total_terms() as u64;

    let b = ((docs as f64).sqrt() * 4.5).round().max(4.0) as u64;
    let per_bucket = ((docs as f64 / b as f64) * mean_terms as f64 * 1.2).ceil() as usize;
    let rambo_params = RamboParams::flat(
        b,
        reps,
        rambo_bloom::params::optimal_m(per_bucket.max(64), 0.01),
        2,
        seed,
    );

    eprintln!(
        "ingest: K={docs} mean_terms={mean_terms} total_terms={total_terms} B={b} R={reps} \
         threads={threads} shards={shards} queue_depth={queue_depth}"
    );

    // 1. Term-at-a-time: the pre-batch ingestion path.
    let (naive, t_naive) = time(|| {
        let mut r = Rambo::new(rambo_params).expect("valid params");
        for (name, terms) in &archive.docs {
            let d = r.add_document(name).expect("unique");
            for &t in terms {
                r.insert_term_u64(d, t).expect("known doc");
            }
        }
        r
    });

    // 2. Batch engine, forced sequential.
    let (batch1, t_batch1) = time(|| {
        let mut r = Rambo::new(rambo_params).expect("valid params");
        for (name, terms) in &archive.docs {
            r.insert_document_batch_with(name, terms, 1)
                .expect("unique");
        }
        r
    });

    // 3. Batch engine, R-way fan-out over `threads` workers.
    let (batch_n, t_batch_n) = time(|| {
        let mut r = Rambo::new(rambo_params).expect("valid params");
        for (name, terms) in &archive.docs {
            r.insert_document_batch_with(name, terms, threads)
                .expect("unique");
        }
        r
    });

    // 4. Bounded-queue pipeline: hash of document n+1 overlaps writes of n.
    let telemetry = Arc::new(QueueTelemetry::new());
    let (piped, t_piped) = time(|| {
        IngestPipeline::new()
            .queue_depth(queue_depth)
            .observer(Arc::clone(&telemetry) as Arc<dyn PipelineObserver>)
            .build(rambo_params, archive.docs.iter().cloned())
            .expect("pipelined build")
    });
    let (piped, pipe_report) = piped;

    // 5. Document-sharded parallel build, folded into one index.
    let (sharded, t_sharded) = time(|| {
        IngestPipeline::new()
            .build_sharded(rambo_params, &archive.docs, shards)
            .expect("sharded build")
    });
    let (sharded, _) = sharded;

    assert_eq!(naive, batch1, "batch(1) must be bit-identical to naive");
    assert_eq!(
        naive, batch_n,
        "batch({threads}) must be bit-identical to naive"
    );
    assert_eq!(
        naive, piped,
        "pipelined build must be bit-identical to naive"
    );
    assert_eq!(
        naive, sharded,
        "sharded({shards}) build must be bit-identical to naive"
    );

    let rate = |d: std::time::Duration| total_terms as f64 / d.as_secs_f64();
    let row = |label: &str, d: std::time::Duration| {
        eprintln!(
            "{label:<12} {:>10}  ({:.2} Mterms/s)",
            human_duration(d),
            rate(d) / 1e6
        );
    };
    row("naive", t_naive);
    row("batch(1)", t_batch1);
    row(&format!("batch({threads})"), t_batch_n);
    row("pipelined", t_piped);
    row(&format!("sharded({shards})"), t_sharded);
    eprintln!(
        "pipeline stalls: producer {} ({:.2}ms), writer {} ({:.2}ms), max queue depth {}",
        pipe_report.producer_stalls,
        pipe_report.producer_stall().as_secs_f64() * 1e3,
        pipe_report.writer_stalls,
        pipe_report.writer_stall().as_secs_f64() * 1e3,
        pipe_report.max_queue_depth,
    );

    JsonReport::new("ingest_throughput")
        .int("docs", docs as u64)
        .int("total_terms", total_terms)
        .int("buckets", b)
        .int("repetitions", reps as u64)
        .int("threads", threads as u64)
        .int("shards", shards as u64)
        .int("queue_depth", queue_depth as u64)
        .num("naive_s", t_naive.as_secs_f64())
        .num("batch_single_thread_s", t_batch1.as_secs_f64())
        .num("batch_multi_thread_s", t_batch_n.as_secs_f64())
        .num("pipelined_s", t_piped.as_secs_f64())
        .num("sharded_s", t_sharded.as_secs_f64())
        .num("naive_mterms_per_s", rate(t_naive) / 1e6)
        .num("batch_single_mterms_per_s", rate(t_batch1) / 1e6)
        .num("batch_multi_mterms_per_s", rate(t_batch_n) / 1e6)
        .num("pipelined_mterms_per_s", rate(t_piped) / 1e6)
        .num("sharded_mterms_per_s", rate(t_sharded) / 1e6)
        .ratio("speedup_batch_vs_naive", t_naive, t_batch1)
        .ratio("speedup_multi_vs_single", t_batch1, t_batch_n)
        .ratio("speedup_pipelined_vs_single", t_batch1, t_piped)
        .ratio("speedup_sharded_vs_single", t_batch1, t_sharded)
        .ratio("speedup_total", t_naive, t_batch_n)
        .int("pipeline_producer_stalls", pipe_report.producer_stalls)
        .int("pipeline_writer_stalls", pipe_report.writer_stalls)
        .num(
            "pipeline_producer_stall_ms",
            pipe_report.producer_stall().as_secs_f64() * 1e3,
        )
        .num(
            "pipeline_writer_stall_ms",
            pipe_report.writer_stall().as_secs_f64() * 1e3,
        )
        .num(
            "pipeline_producer_stall_p99_us",
            telemetry.producer_stalls().quantile(0.99).as_secs_f64() * 1e6,
        )
        .num(
            "pipeline_writer_stall_p99_us",
            telemetry.writer_stalls().quantile(0.99).as_secs_f64() * 1e6,
        )
        .int("pipeline_max_queue_depth", pipe_report.max_queue_depth)
        .finish("BENCH_ingest.json");
}
