//! Distributed-serving benchmark: a coordinator scatter-gathering over K
//! loopback shard servers, swept across shard counts, plus replica
//! failover and degraded-mode phases.
//!
//! Three phases, all over real TCP sockets:
//!
//! 1. **Scaling sweep** — for every shard count in `--nodes`, plan one
//!    corpus into node-local shards (§4.2 two-level partition), spawn
//!    `--replicas` replicas of each, and drive the query mix through a
//!    [`rambo_cluster::Coordinator`]. Every single answer is asserted
//!    bit-identical to the stacked monolith's (`scatter_parity_ok` is a
//!    hard gate, not a sample); p50/p99 end-to-end latency and the hedge
//!    fire rate are reported per shard count.
//! 2. **Failover** — at the largest shard count, kill one replica of
//!    shard 0 mid-load and keep querying. The gate is *zero* failed
//!    queries (`replica_kill_success`); the time until the coordinator
//!    demotes the dead replica is reported as `failover_demotion_ms`.
//! 3. **Degraded mode** — kill the rest of shard 0's replica set. Every
//!    query must still return `Ok` (`degraded_availability = 1.0`), with
//!    the dead shard listed in `degraded` and the partial answer equal to
//!    the monolith's minus that shard's document range.
//!
//! Emits `BENCH_cluster.json`.
//!
//! ```text
//! cargo run --release -p rambo-bench --bin cluster_serve -- \
//!     --docs 60 --queries 300 --nodes 1,2,4 --replicas 2
//! ```

use rambo_bench::{require_nonzero, us_per, Args, JsonReport};
use rambo_cluster::{plan_cluster, ClusterConfig, ClusterPlan, Coordinator, ShardNode};
use rambo_core::{QueryMode, RamboParams};
use rambo_server::ServerConfig;
use rambo_workloads::stats::percentile;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(10);

/// Per-document terms: a shared prefix (multi-doc hits) plus private runs.
fn corpus(docs: u64, terms_per_doc: u64, seed: u64) -> Vec<(String, Vec<u64>)> {
    (0..docs)
        .map(|d| {
            let terms = (0..3u64)
                .map(|t| seed << 40 | 0xABC0 | t)
                .chain((3..terms_per_doc).map(|t| seed << 40 | d << 16 | t))
                .collect();
            (format!("doc{d}"), terms)
        })
        .collect()
}

/// Planted intersections, the shared set, and absent terms, cycled to `n`.
fn query_mix(docs: u64, seed: u64, n: usize) -> Vec<Vec<u64>> {
    let mut base: Vec<Vec<u64>> = (0..docs)
        .map(|d| (3..7u64).map(|t| seed << 40 | d << 16 | t).collect())
        .collect();
    base.push(vec![seed << 40 | 0xABC0, seed << 40 | 0xABC1]);
    base.push(vec![0x7777_0001, 0x7777_0002]);
    (0..n).map(|i| base[i % base.len()].clone()).collect()
}

fn spawn_nodes(plan: &ClusterPlan, replicas: u32) -> Vec<Vec<ShardNode>> {
    plan.shards
        .iter()
        .zip(&plan.ranges)
        .enumerate()
        .map(|(s, (shard, &(lo, hi)))| {
            (0..replicas)
                .map(|r| {
                    ShardNode::spawn(shard.clone(), s as u32, r, lo, hi, ServerConfig::default())
                        .expect("spawn shard node")
                })
                .collect()
        })
        .collect()
}

fn topology(nodes: &[Vec<ShardNode>]) -> Vec<Vec<SocketAddr>> {
    nodes
        .iter()
        .map(|reps| reps.iter().map(ShardNode::addr).collect())
        .collect()
}

fn main() {
    let args = Args::parse();
    let docs = args.get_usize("docs", 60) as u64;
    let terms_per_doc = args.get_usize("terms-per-doc", 24) as u64;
    let local_b = args.get_usize("local-b", 16) as u64;
    let reps = args.get_usize("reps", 3);
    let replicas = args.get_usize("replicas", 2).max(1) as u32;
    let n_queries = args.get_usize("queries", 300);
    let shard_counts = args.get_usize_list("nodes", &[1, 2, 4]);
    let seed = args.get_u64("seed", 11);
    require_nonzero(
        "cluster_serve",
        &[
            ("--docs", docs as usize),
            ("--queries", n_queries),
            ("--terms-per-doc", terms_per_doc as usize),
        ],
    );
    if shard_counts.is_empty() || shard_counts.contains(&0) {
        eprintln!("cluster_serve: --nodes must list shard counts >= 1");
        std::process::exit(2);
    }

    let corpus = corpus(docs, terms_per_doc, seed);
    let queries = query_mix(docs, seed, n_queries);
    let mut report = JsonReport::new("cluster_serve");
    report
        .int("docs", docs)
        .int("queries", n_queries as u64)
        .int("replicas", u64::from(replicas))
        .int("local_buckets", local_b);

    // Phase 1: scaling sweep with per-query parity assertions.
    let mut parity_ok = true;
    for &n_shards in &shard_counts {
        let params = RamboParams::two_level(n_shards as u64, local_b, reps, 1 << 12, 2, seed);
        let plan = plan_cluster(params, &corpus).expect("plan cluster");
        let nodes = spawn_nodes(&plan, replicas);
        let coordinator =
            Coordinator::connect(&topology(&nodes), ClusterConfig::default()).expect("connect");
        let mut lat = Vec::with_capacity(queries.len());
        for terms in &queries {
            let start = Instant::now();
            let reply = coordinator.query(terms, 0.0, DEADLINE).expect("query");
            lat.push(us_per(start.elapsed(), 1));
            let mono = plan.monolith.query_terms_u64(terms, QueryMode::Full);
            if reply.docs != mono || !reply.degraded.is_empty() {
                parity_ok = false;
                eprintln!("PARITY FAILURE at {n_shards} shards, terms {terms:?}");
            }
        }
        let stats = coordinator.stats();
        let hedge_rate = stats.total_hedges() as f64 / stats.queries.max(1) as f64;
        let (p50, p99) = (percentile(&lat, 50.0), percentile(&lat, 99.0));
        eprintln!(
            "shards={n_shards:<2} p50 {p50:>8.1} us   p99 {p99:>9.1} us   hedge rate {hedge_rate:.3}"
        );
        report
            .num(&format!("n{n_shards}_p50_us"), p50)
            .num(&format!("n{n_shards}_p99_us"), p99)
            .num(&format!("n{n_shards}_hedge_rate"), hedge_rate);
    }
    report.num("scatter_parity_ok", if parity_ok { 1.0 } else { 0.0 });
    assert!(parity_ok, "scatter-gather diverged from the monolith");

    // Phases 2 and 3 need a replica to lose; a 1-replica run can still do
    // the sweep above, but the resilience gates require --replicas >= 2.
    let max_shards = shard_counts.iter().copied().max().expect("non-empty");
    let params = RamboParams::two_level(max_shards as u64, local_b, reps, 1 << 12, 2, seed);
    let plan = plan_cluster(params, &corpus).expect("plan cluster");
    let mut nodes = spawn_nodes(&plan, replicas.max(2));
    let coordinator =
        Coordinator::connect(&topology(&nodes), ClusterConfig::default()).expect("connect");
    for terms in queries.iter().take(8) {
        coordinator.query(terms, 0.0, DEADLINE).expect("warm query");
    }

    // Phase 2: kill one replica of shard 0 mid-load; zero queries may fail.
    nodes[0][0].kill();
    let killed_at = Instant::now();
    let mut failed = 0u64;
    let mut demoted_ms = f64::NAN;
    for terms in &queries {
        match coordinator.query(terms, 0.0, DEADLINE) {
            Ok(reply) => {
                let mono = plan.monolith.query_terms_u64(terms, QueryMode::Full);
                if reply.docs != mono || !reply.degraded.is_empty() {
                    failed += 1;
                }
            }
            Err(_) => failed += 1,
        }
        if demoted_ms.is_nan() {
            let stats = coordinator.stats();
            if !stats.shards[0].replicas[0].up {
                demoted_ms = killed_at.elapsed().as_secs_f64() * 1e3;
            }
        }
    }
    let failovers = coordinator.stats().shards[0].failovers;
    eprintln!(
        "failover: killed 1 replica, {failed} of {} queries failed, \
         demoted after {demoted_ms:.1} ms ({failovers} failovers)",
        queries.len()
    );
    report
        .int("replica_kill_failed_queries", failed)
        .num("replica_kill_success", if failed == 0 { 1.0 } else { 0.0 })
        .num(
            "failover_demotion_ms",
            if demoted_ms.is_nan() {
                -1.0
            } else {
                demoted_ms
            },
        );
    assert_eq!(failed, 0, "replica failover lost queries");

    // Phase 3: kill the rest of shard 0's replica set; availability must
    // hold at 1.0 via degraded answers.
    for node in &mut nodes[0] {
        node.kill();
    }
    let (lo, hi) = plan.ranges[0];
    let mut ok = 0u64;
    let mut degraded = 0u64;
    for terms in &queries {
        match coordinator.query(terms, 0.0, DEADLINE) {
            Ok(reply) => {
                ok += 1;
                if !reply.degraded.is_empty() {
                    degraded += 1;
                    assert_eq!(reply.degraded, vec![0], "wrong shard reported down");
                    let expect: Vec<u32> = plan
                        .monolith
                        .query_terms_u64(terms, QueryMode::Full)
                        .into_iter()
                        .filter(|&d| d < lo || d >= hi)
                        .collect();
                    assert_eq!(reply.docs, expect, "degraded answer diverged");
                }
            }
            Err(e) => eprintln!("DEGRADED-MODE FAILURE: {e}"),
        }
    }
    let availability = ok as f64 / queries.len() as f64;
    eprintln!(
        "degraded: killed full replica set, availability {availability:.3} \
         ({degraded} of {} replies marked degraded)",
        queries.len()
    );
    report
        .num("degraded_availability", availability)
        .int("degraded_replies", degraded);
    assert!(
        (availability - 1.0).abs() < f64::EPSILON,
        "degraded mode dropped queries"
    );

    report.finish("BENCH_cluster.json");
}
