//! Serving-engine load benchmark: one-query-at-a-time evaluation vs the
//! micro-batching [`rambo_server`] scheduler, under concurrent closed-loop
//! clients firing a mixed-FPR-budget load across the fold-over tier
//! catalog.
//!
//! Four serving designs over the same catalog and query stream:
//!
//! 1. `one-at-a-time` — every request evaluated independently as it
//!    arrives, fresh [`rambo_core::QueryContext`] per query, no shared
//!    state (the lock-free naive concurrent server).
//! 2. `direct(mutex)` — one query at a time through a shared per-tier
//!    `Mutex<QueryBatch>`: amortized masks, but the lock convoys under
//!    contention.
//! 3. `served batch=1` — the scheduler with coalescing disabled.
//! 4. `served batch=N` — real micro-batches.
//!
//! Also demonstrates catalog tier selection (loosening the FPR budget picks
//! a strictly smaller tier), verifies served results equal direct
//! evaluation, and — with `--tcp` — runs the same load through the
//! length-prefixed TCP front, asserting non-empty responses and a clean
//! shutdown (the CI `serve-smoke` step).
//!
//! Emits `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p rambo-bench --bin serve_load -- \
//!     --docs 1000 --mean-terms 5000 --queries 4000 --clients 4 --tcp
//! ```

use rambo_bench::{archive_with_mean_terms, us_per, window_queries, Args, JsonReport};
use rambo_core::{IngestPipeline, QueryBatch, QueryMode, RamboParams};
use rambo_server::{serve_tcp, Catalog, Server, ServerConfig, TcpClient};
use rambo_workloads::stats::percentile;
use rambo_workloads::timing::time;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A query with its routing budget.
struct Job {
    terms: Vec<u64>,
    budget: f64,
}

/// Latency series (µs) plus wall time of one serving run.
struct RunResult {
    latencies_us: Vec<f64>,
    elapsed: Duration,
}

impl RunResult {
    fn p50(&self) -> f64 {
        percentile(&self.latencies_us, 50.0)
    }
    fn p99(&self) -> f64 {
        percentile(&self.latencies_us, 99.0)
    }
    fn qps(&self) -> f64 {
        self.latencies_us.len() as f64 / self.elapsed.as_secs_f64()
    }
}

/// Split `jobs` round-robin into `clients` slices (owned indices).
fn client_slices(n_jobs: usize, clients: usize) -> Vec<Vec<usize>> {
    let mut slices = vec![Vec::new(); clients];
    for i in 0..n_jobs {
        slices[i % clients].push(i);
    }
    slices
}

/// The two one-query-at-a-time designs a server without a batching
/// scheduler would use: every request evaluated independently as it
/// arrives, either with a fresh [`rambo_core::QueryContext`] per request
/// (lock-free, no amortization at all) or through a shared per-tier
/// `Mutex<QueryBatch>` (amortized masks, serialized by the lock).
#[derive(Clone, Copy, PartialEq)]
enum DirectMode {
    FreshContext,
    LockedEvaluator,
}

fn run_direct(catalog: &Catalog, jobs: &[Job], clients: usize, mode: DirectMode) -> RunResult {
    let evaluators: Vec<Mutex<QueryBatch<'_>>> = (0..catalog.len())
        .map(|t| Mutex::new(QueryBatch::new(catalog.tier(t))))
        .collect();
    let slices = client_slices(jobs.len(), clients);
    let (latencies, elapsed) = time(|| {
        std::thread::scope(|s| {
            let handles: Vec<_> = slices
                .iter()
                .map(|slice| {
                    let evaluators = &evaluators;
                    s.spawn(move || {
                        let mut lat = Vec::with_capacity(slice.len());
                        for &i in slice {
                            let job = &jobs[i];
                            let tier = catalog.select(job.budget);
                            let start = Instant::now();
                            let docs = match mode {
                                DirectMode::FreshContext => {
                                    let mut ctx = rambo_core::QueryContext::new();
                                    catalog.tier(tier).query_terms_with(
                                        &job.terms,
                                        QueryMode::Full,
                                        &mut ctx,
                                    )
                                }
                                DirectMode::LockedEvaluator => evaluators[tier]
                                    .lock()
                                    .expect("evaluator lock")
                                    .query_terms(&job.terms, QueryMode::Full),
                            };
                            lat.push(us_per(start.elapsed(), 1));
                            std::hint::black_box(docs);
                        }
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect::<Vec<f64>>()
        })
    });
    RunResult {
        latencies_us: latencies,
        elapsed,
    }
}

/// Designs 2 and 3: the serving engine at a given batch configuration.
/// Each client keeps up to `pipeline` requests in flight (a serving front
/// multiplexing many end users over one connection sees exactly this
/// shape); `pipeline = 1` is a closed loop.
fn run_served(
    catalog: &Catalog,
    jobs: &[Job],
    clients: usize,
    pipeline: usize,
    config: ServerConfig,
) -> RunResult {
    let slices = client_slices(jobs.len(), clients);
    let (latencies, elapsed) = time(|| {
        let (latencies, _) = Server::scope(catalog, config, |handle| {
            std::thread::scope(|s| {
                let handles: Vec<_> = slices
                    .iter()
                    .map(|slice| {
                        let handle = &handle;
                        s.spawn(move || {
                            let mut lat = Vec::with_capacity(slice.len());
                            let mut inflight = std::collections::VecDeque::new();
                            for &i in slice {
                                let job = &jobs[i];
                                let start = Instant::now();
                                let pending = handle
                                    .submit(
                                        &job.terms,
                                        &rambo_server::QueryOptions {
                                            fpr_budget: job.budget,
                                            deadline: Duration::from_secs(30),
                                            ..Default::default()
                                        },
                                    )
                                    .expect("serving failure under load");
                                inflight.push_back((start, pending));
                                if inflight.len() >= pipeline.max(1) {
                                    let (start, oldest) =
                                        inflight.pop_front().expect("non-empty pipeline");
                                    let reply = oldest.wait().expect("serving failure under load");
                                    lat.push(us_per(start.elapsed(), 1));
                                    std::hint::black_box(reply.docs);
                                }
                            }
                            for (start, pending) in inflight {
                                let reply = pending.wait().expect("serving failure under load");
                                lat.push(us_per(start.elapsed(), 1));
                                std::hint::black_box(reply.docs);
                            }
                            lat
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("client thread"))
                    .collect::<Vec<f64>>()
            })
        });
        latencies
    });
    RunResult {
        latencies_us: latencies,
        elapsed,
    }
}

/// The TCP smoke: serve on a loopback port, fire a mixed-tier load from
/// `clients` connections, assert every response matches direct evaluation
/// (and is non-empty for present-term queries), shut down cleanly.
fn run_tcp_smoke(catalog: &Catalog, jobs: &[Job], clients: usize, config: ServerConfig) -> usize {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let stop = AtomicBool::new(false);
    let slices = client_slices(jobs.len(), clients);
    let (answered, _) = Server::scope(catalog, config, |handle| {
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp(handle, listener, &stop));
            let answered: usize = slices
                .iter()
                .map(|slice| {
                    let stop = &stop;
                    s.spawn(move || {
                        let mut client = TcpClient::connect(addr).expect("connect");
                        let mut ctx = rambo_core::QueryContext::new();
                        let mut answered = 0usize;
                        for &i in slice {
                            let job = &jobs[i];
                            let reply = client
                                .query(&job.terms, job.budget, Duration::from_secs(30))
                                .expect("tcp query");
                            let direct = catalog.tier(reply.tier).query_terms_with(
                                &job.terms,
                                QueryMode::Full,
                                &mut ctx,
                            );
                            assert_eq!(reply.docs, direct, "TCP reply diverged from direct eval");
                            // Present-term windows must return their owner.
                            if job.terms.len() > 1 {
                                assert!(
                                    !reply.docs.is_empty(),
                                    "present-term query answered empty over TCP"
                                );
                            }
                            answered += 1;
                        }
                        let _ = stop;
                        answered
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("tcp client thread"))
                .sum();
            stop.store(true, Ordering::Relaxed);
            server
                .join()
                .expect("tcp server thread")
                .expect("tcp server io");
            answered
        })
    });
    answered
}

fn main() {
    let args = Args::parse();
    let docs = args.get_usize("docs", 1000);
    let mean_terms = args.get_usize("mean-terms", 5000);
    let n_queries = args.get_usize("queries", 4000);
    // 192 terms ≈ the k-mer set of a 220bp read: the §3.3.1 sequence-query
    // shape, heavy enough that evaluation (not scheduling) dominates.
    let window = args.get_usize("window", 192);
    let clients = args.get_usize("clients", 4).max(1);
    let levels = args.get_usize("levels", 2) as u32;
    let max_batch = args.get_usize("max-batch", 64);
    let pipeline = args.get_usize("pipeline", 1).max(1);
    let max_delay_us = args.get_u64("max-delay-us", 0);
    let seed = args.get_u64("seed", 7);
    let tcp = args.get_bool("tcp");

    // Bucket count above word granularity (matrix rows are ⌈B/64⌉ words) so
    // every fold level genuinely halves the filter payload: 256 → 128 → 64.
    let buckets = 64u64 << levels;
    let archive = archive_with_mean_terms(docs, mean_terms, seed);
    let per_bucket = ((docs as f64 / buckets as f64) * mean_terms as f64 * 1.2).ceil() as usize;
    let params = RamboParams::flat(
        buckets,
        3,
        rambo_bloom::params::optimal_m(per_bucket.max(64), 0.01),
        2,
        seed,
    );
    // Catalog base index comes in through the bounded-queue ingestion
    // pipeline (hash of document n+1 overlaps writes of document n) —
    // bit-identical to the sequential batch build.
    let (index, _) = IngestPipeline::new()
        .build(params, archive.docs.iter().cloned())
        .expect("pipelined build");
    let catalog = Catalog::build_halving(&index, levels).expect("catalog");
    let infos = catalog.infos();

    // Tier-selection demonstration: loosening the budget must pick a
    // strictly smaller tier.
    let tight = catalog.select(infos[0].predicted_fpr);
    let loose = catalog.select(infos[infos.len() - 1].predicted_fpr);
    assert!(
        loose > tight && infos[loose].size_bytes < infos[tight].size_bytes,
        "loosened budget must select a strictly smaller tier"
    );

    // Mixed-tier load: sliding-window queries, budgets cycling through the
    // tiers' predicted FPRs so every tier sees traffic.
    let queries = window_queries(&archive, window, 8, n_queries);
    let jobs: Vec<Job> = queries
        .into_iter()
        .enumerate()
        .map(|(i, terms)| Job {
            terms,
            budget: infos[i % infos.len()].predicted_fpr,
        })
        .collect();

    eprintln!(
        "serve_load: K={docs} queries={} window={window} clients={clients} tiers={} B={}",
        jobs.len(),
        catalog.len(),
        index.buckets(),
    );
    for info in &infos {
        eprintln!(
            "  tier {}: B={:<4} size={:>9} B  bfu_fpr={:.2e}  predicted_fpr={:.2e}",
            info.tier, info.buckets, info.size_bytes, info.bfu_fpr, info.predicted_fpr
        );
    }

    // Served results must equal direct evaluation (spot-check before the
    // timed runs; also warms the page cache for every tier).
    {
        let mut ctx = rambo_core::QueryContext::new();
        let ((), _) = Server::scope(&catalog, ServerConfig::default(), |handle| {
            for job in jobs.iter().step_by(17) {
                let reply = handle
                    .query(&job.terms, job.budget, Duration::from_secs(30))
                    .expect("verification query");
                let direct = catalog.tier(reply.tier).query_terms_with(
                    &job.terms,
                    QueryMode::Full,
                    &mut ctx,
                );
                assert_eq!(reply.docs, direct, "served result diverged");
            }
        });
    }

    // Greedy adaptive batching by default (`max_delay = 0`): batches form
    // from the backlog that accumulates while the previous batch evaluates,
    // adding no artificial wait — the right default for closed-loop clients.
    let batched_config = ServerConfig {
        max_batch,
        max_delay: Duration::from_micros(max_delay_us),
        ..ServerConfig::default()
    };
    let unbatched_config = ServerConfig {
        max_batch: 1,
        max_delay: Duration::ZERO,
        ..ServerConfig::default()
    };

    let fresh = run_direct(&catalog, &jobs, clients, DirectMode::FreshContext);
    let mutexed = run_direct(&catalog, &jobs, clients, DirectMode::LockedEvaluator);
    let unbatched = run_served(&catalog, &jobs, clients, pipeline, unbatched_config);
    let batched = run_served(&catalog, &jobs, clients, pipeline, batched_config);

    let print = |label: &str, r: &RunResult| {
        eprintln!(
            "{label:<18} p50 {:>8.1} us   p99 {:>9.1} us   {:>9.0} qps",
            r.p50(),
            r.p99(),
            r.qps()
        );
    };
    print("one-at-a-time", &fresh);
    print("direct(mutex)", &mutexed);
    print("served batch=1", &unbatched);
    print(&format!("served batch={max_batch}"), &batched);

    let mut report = JsonReport::new("serve_load");
    report
        .int("docs", docs as u64)
        .int("queries", jobs.len() as u64)
        .int("window", window as u64)
        .int("clients", clients as u64)
        .int("tiers", catalog.len() as u64)
        .int("buckets", index.buckets())
        .int("max_batch", max_batch as u64);
    for info in &infos {
        report
            .int(&format!("tier{}_buckets", info.tier), info.buckets)
            .int(
                &format!("tier{}_size_bytes", info.tier),
                info.size_bytes as u64,
            )
            .num(
                &format!("tier{}_predicted_fpr", info.tier),
                info.predicted_fpr,
            );
    }
    report
        .int("tier_selected_tight_budget", tight as u64)
        .int("tier_selected_loose_budget", loose as u64)
        .int("pipeline", pipeline as u64)
        .num("one_at_a_time_p50_us", fresh.p50())
        .num("one_at_a_time_p99_us", fresh.p99())
        .num("one_at_a_time_qps", fresh.qps())
        .num("direct_mutex_p50_us", mutexed.p50())
        .num("direct_mutex_p99_us", mutexed.p99())
        .num("direct_mutex_qps", mutexed.qps())
        .num("served_unbatched_p50_us", unbatched.p50())
        .num("served_unbatched_p99_us", unbatched.p99())
        .num("served_unbatched_qps", unbatched.qps())
        .num("served_batched_p50_us", batched.p50())
        .num("served_batched_p99_us", batched.p99())
        .num("served_batched_qps", batched.qps())
        .num(
            "batched_p99_speedup_vs_one_at_a_time",
            fresh.p99() / batched.p99(),
        )
        .num(
            "batched_p99_speedup_vs_unbatched",
            unbatched.p99() / batched.p99(),
        )
        .num(
            "batched_qps_speedup_vs_one_at_a_time",
            batched.qps() / fresh.qps(),
        );

    if tcp {
        // Small slice of the load through the TCP front (the CI smoke).
        let tcp_jobs = &jobs[..jobs.len().min(400)];
        let (answered, tcp_elapsed) =
            time(|| run_tcp_smoke(&catalog, tcp_jobs, clients.min(4), batched_config));
        assert_eq!(answered, tcp_jobs.len(), "TCP smoke dropped queries");
        eprintln!(
            "tcp-smoke: {answered} queries answered over loopback in {:.0} ms, clean shutdown",
            tcp_elapsed.as_secs_f64() * 1e3
        );
        report
            .int("tcp_smoke_queries", answered as u64)
            .num("tcp_smoke_s", tcp_elapsed.as_secs_f64());
    }

    if args.get_bool("assert-batch-wins") {
        assert!(
            batched.p99() < fresh.p99(),
            "micro-batched p99 {}us must beat one-query-at-a-time p99 {}us",
            batched.p99(),
            fresh.p99()
        );
    }

    report.finish("BENCH_serve.json");
}
