//! Serving-engine load benchmark: the adaptive scheduler against the two
//! fixed designs it must dominate, swept across load levels, plus the
//! hot-query result cache and the non-blocking TCP front.
//!
//! The stream models §3.3.1 sequence-search sessions: each document
//! contributes a run of `--windows-per-doc` heavily-overlapping sliding
//! windows, all routed under that session's accuracy budget (documents
//! cycle through the tiers so every tier sees traffic).
//!
//! Three serving designs over the same catalog and query stream, at every
//! load level in `--loads` (default `1,2,8` closed-loop clients). All
//! three run through the same engine, so the sweep isolates exactly the
//! scheduling policy; client-side latency timing is therefore symmetric
//! across arms (same admission, queue and wakeup machinery):
//!
//! 1. `one-at-a-time` — `max_batch = 1` and a degenerate (single-term)
//!    mask memo: every request staged and evaluated alone with no
//!    cross-request amortization — serving without the micro-batching
//!    subsystem, which is exactly the feature under test.
//! 2. `always-batch` — the pre-adaptive scheduler: every request queued
//!    and micro-batched, even a lone client paying the queue/wakeup tax.
//! 3. `adaptive` — the load-aware scheduler: inline bypass under low load,
//!    hysteresis flip to greedy-drain batching once the queue deepens.
//!
//! A fourth, ungated `direct` row is reported for reference: each client
//! evaluates in-process with a fresh [`rambo_core::QueryContext`], no
//! serving engine at all — the floor any server design pays its overhead
//! against.
//!
//! The headline gate metrics are the *worst* per-level p99 speedups of the
//! adaptive scheduler over each fixed design
//! (`batched_p99_speedup_vs_one_at_a_time`,
//! `batched_p99_speedup_vs_always_batch`): "adaptive is never slower than
//! either at any load" is exactly `min >= 1.0`. Served arms are scored at
//! the serving boundary — submit → reply-posted, from the engine's
//! aggregated latency histogram — so queue wait and evaluation count but a
//! client thread's wake-up (pure OS timeslicing on an oversubscribed host,
//! identical across arms) does not; throughput is client-side wall clock.
//! A separate repeat-heavy phase measures the result-cache hit path
//! (`cache_hit_p50_speedup`).
//!
//! Also demonstrates catalog tier selection (loosening the FPR budget picks
//! a strictly smaller tier), verifies served results equal direct
//! evaluation, and — with `--tcp` — runs the same load through the
//! length-prefixed TCP front, asserting result parity, a `STATS`-frame
//! round trip, and a clean shutdown even with a client stalled mid-frame
//! (the CI `serve-smoke` step).
//!
//! Emits `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p rambo-bench --bin serve_load -- \
//!     --docs 1000 --mean-terms 5000 --queries 4000 --loads 1,2,8 --tcp
//! ```

use rambo_bench::{archive_with_mean_terms, us_per, window_queries, Args, JsonReport};
use rambo_core::{IngestPipeline, QueryMode, RamboParams};
use rambo_server::{serve_tcp, Catalog, SchedulerMode, Server, ServerConfig, TcpClient};
use rambo_workloads::stats::percentile;
use rambo_workloads::timing::time;
use std::io::Write;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A query with its routing budget.
struct Job {
    terms: Vec<u64>,
    budget: f64,
}

/// Latency series (µs) plus wall time of one serving run.
struct RunResult {
    latencies_us: Vec<f64>,
    elapsed: Duration,
}

impl RunResult {
    fn empty() -> Self {
        Self {
            latencies_us: Vec::new(),
            elapsed: Duration::ZERO,
        }
    }
    fn merge(&mut self, other: RunResult) {
        self.latencies_us.extend(other.latencies_us);
        self.elapsed += other.elapsed;
    }
    fn p50(&self) -> f64 {
        percentile(&self.latencies_us, 50.0)
    }
    fn p99(&self) -> f64 {
        percentile(&self.latencies_us, 99.0)
    }
    fn qps(&self) -> f64 {
        self.latencies_us.len() as f64 / self.elapsed.as_secs_f64()
    }
}

/// Split `jobs` round-robin into `clients` slices (owned indices).
fn client_slices(n_jobs: usize, clients: usize) -> Vec<Vec<usize>> {
    let mut slices = vec![Vec::new(); clients];
    for i in 0..n_jobs {
        slices[i % clients].push(i);
    }
    slices
}

/// The ungated reference arm: every request evaluated in-process as it
/// arrives, with a fresh [`rambo_core::QueryContext`] per request — no
/// serving engine, so no queue, no wakeups, and no admission accounting.
fn run_direct(catalog: &Catalog, jobs: &[Job], clients: usize, pace: Duration) -> RunResult {
    let slices = client_slices(jobs.len(), clients);
    let (latencies, elapsed) = time(|| {
        std::thread::scope(|s| {
            let handles: Vec<_> = slices
                .iter()
                .enumerate()
                .map(|(c, slice)| {
                    s.spawn(move || {
                        let mut lat = Vec::with_capacity(slice.len());
                        let mut pacer = Pacer::new(pace, c, clients);
                        for &i in slice {
                            let job = &jobs[i];
                            let tier = catalog.select(job.budget);
                            pacer.wait_for_slot();
                            let start = Instant::now();
                            let mut ctx = rambo_core::QueryContext::new();
                            let docs = catalog.tier(tier).query_terms_with(
                                &job.terms,
                                QueryMode::Full,
                                &mut ctx,
                            );
                            lat.push(us_per(start.elapsed(), 1));
                            std::hint::black_box(docs);
                        }
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect::<Vec<f64>>()
        })
    });
    RunResult {
        latencies_us: latencies,
        elapsed,
    }
}

/// Per-client open-loop pacer: one submission slot every `pace`, clients
/// staggered so slots interleave instead of bursting in lockstep. A client
/// that falls behind its schedule (the engine arm can't keep up) submits
/// back-to-back until it catches up — offered load is constant-rate, and
/// an arm's shortfall shows up as queueing and schedule slip rather than
/// as a silently lowered arrival rate. `pace = 0` disables pacing
/// (saturation mode: every arm runs flat out, but then each arm measures
/// itself at a *different* achieved load, so cross-arm latency comparisons
/// conflate scheduling quality with throughput-driven context-switch
/// pressure — which is why paced mode is the default).
struct Pacer {
    pace: Duration,
    next_at: Instant,
}

impl Pacer {
    fn new(pace: Duration, client: usize, clients: usize) -> Self {
        Self {
            pace,
            next_at: Instant::now() + pace * client as u32 / clients.max(1) as u32,
        }
    }

    /// Sleep until this client's next submission slot, then advance it.
    fn wait_for_slot(&mut self) {
        if self.pace.is_zero() {
            return;
        }
        let now = Instant::now();
        if self.next_at > now {
            std::thread::sleep(self.next_at - now);
        }
        self.next_at += self.pace;
    }
}

/// The served arms: drive `jobs` through an already-running serving engine.
/// Each client keeps up to `pipeline` requests in flight (a serving front
/// multiplexing many end users over one connection sees exactly this shape);
/// `pipeline = 1` is a closed loop between slots. The server outlives the
/// call — a real serving process is long-lived, and per-chunk restarts would
/// reset the evaluators' term-mask memos, charging warmup to the stateful
/// arms on every interleaved chunk.
fn run_clients(
    handle: &rambo_server::ServerHandle<'_>,
    jobs: &[Job],
    clients: usize,
    pipeline: usize,
    pace: Duration,
) -> RunResult {
    let slices = client_slices(jobs.len(), clients);
    let (latencies, elapsed) = time(|| {
        std::thread::scope(|s| {
            let handles: Vec<_> = slices
                .iter()
                .enumerate()
                .map(|(c, slice)| {
                    s.spawn(move || {
                        let mut lat = Vec::with_capacity(slice.len());
                        let mut inflight = std::collections::VecDeque::new();
                        let mut pacer = Pacer::new(pace, c, clients);
                        for &i in slice {
                            let job = &jobs[i];
                            pacer.wait_for_slot();
                            let start = Instant::now();
                            let pending = handle
                                .submit(
                                    &job.terms,
                                    &rambo_server::QueryOptions {
                                        fpr_budget: job.budget,
                                        deadline: Duration::from_secs(30),
                                        ..Default::default()
                                    },
                                )
                                .expect("serving failure under load");
                            inflight.push_back((start, pending));
                            if inflight.len() >= pipeline.max(1) {
                                let (start, oldest) =
                                    inflight.pop_front().expect("non-empty pipeline");
                                let reply = oldest.wait().expect("serving failure under load");
                                lat.push(us_per(start.elapsed(), 1));
                                std::hint::black_box(reply.docs);
                            }
                        }
                        for (start, pending) in inflight {
                            let reply = pending.wait().expect("serving failure under load");
                            lat.push(us_per(start.elapsed(), 1));
                            std::hint::black_box(reply.docs);
                        }
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect::<Vec<f64>>()
        })
    });
    RunResult {
        latencies_us: latencies,
        elapsed,
    }
}

/// The result-cache phase: one server with the cache enabled answers the
/// same distinct job list twice at load 1. The first (cold) pass evaluates
/// and fills the cache; the second (hot) pass must be served from it.
/// Returns `(cold, hot)` latency series.
fn run_cache_phase(catalog: &Catalog, jobs: &[Job]) -> (RunResult, RunResult) {
    let config = ServerConfig::default(); // cache on, adaptive scheduler
    let ((cold, hot), stats) = Server::scope(catalog, config, |handle| {
        let pass = || {
            let mut lat = Vec::with_capacity(jobs.len());
            let (_, elapsed) = time(|| {
                for job in jobs {
                    let start = Instant::now();
                    let reply = handle
                        .query(&job.terms, job.budget, Duration::from_secs(30))
                        .expect("cache-phase query");
                    lat.push(us_per(start.elapsed(), 1));
                    std::hint::black_box(reply.docs);
                }
            });
            RunResult {
                latencies_us: lat,
                elapsed,
            }
        };
        let cold = pass();
        let hot = pass();
        (cold, hot)
    });
    // Every hot-pass request must have been a cache hit (the job list may
    // also repeat within the cold pass) — fewer hits than jobs means the
    // cache evicted under a budget this phase was sized to fit, or keys
    // failed to canonicalize identically.
    assert!(
        stats.total_cache_hits() >= jobs.len() as u64,
        "hot pass was not fully served from the result cache: {} hits for {} jobs",
        stats.total_cache_hits(),
        jobs.len()
    );
    (cold, hot)
}

/// The TCP smoke: serve on a loopback port, fire a mixed-tier load from
/// `clients` connections, assert every response matches direct evaluation
/// (and is non-empty for present-term queries), round-trip a `STATS`
/// frame, then shut down cleanly *while one client is stalled mid-frame*.
fn run_tcp_smoke(catalog: &Catalog, jobs: &[Job], clients: usize, config: ServerConfig) -> usize {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let stop = AtomicBool::new(false);
    let slices = client_slices(jobs.len(), clients);
    let (answered, _) = Server::scope(catalog, config, |handle| {
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp(handle, listener, &stop));
            let answered: usize = slices
                .iter()
                .map(|slice| {
                    s.spawn(move || {
                        let mut client = TcpClient::connect(addr).expect("connect");
                        let mut ctx = rambo_core::QueryContext::new();
                        let mut answered = 0usize;
                        for &i in slice {
                            let job = &jobs[i];
                            let reply = client
                                .query(&job.terms, job.budget, Duration::from_secs(30))
                                .expect("tcp query");
                            let direct = catalog.tier(reply.tier).query_terms_with(
                                &job.terms,
                                QueryMode::Full,
                                &mut ctx,
                            );
                            assert_eq!(reply.docs, direct, "TCP reply diverged from direct eval");
                            // Present-term windows must return their owner.
                            if job.terms.len() > 1 {
                                assert!(
                                    !reply.docs.is_empty(),
                                    "present-term query answered empty over TCP"
                                );
                            }
                            answered += 1;
                        }
                        answered
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("tcp client thread"))
                .sum();
            // STATS frame round trip: the plain-text counter dump must
            // reflect the load just served.
            let mut stats_client = TcpClient::connect(addr).expect("stats connect");
            let dump = stats_client.stats().expect("stats frame");
            assert!(
                dump.contains("tier 0:") && dump.contains("cache:"),
                "malformed STATS dump: {dump}"
            );
            // A stalled mid-frame client (promised bytes never sent) must
            // not block shutdown: the readiness loop abandons it.
            let mut stalled = std::net::TcpStream::connect(addr).expect("stalled connect");
            stalled.write_all(&64u32.to_le_bytes()).expect("stall len");
            stalled.write_all(&[0u8; 9]).expect("stall partial");
            stalled.flush().expect("stall flush");
            let shutdown_start = Instant::now();
            stop.store(true, Ordering::Relaxed);
            server
                .join()
                .expect("tcp server thread")
                .expect("tcp server io");
            assert!(
                shutdown_start.elapsed() < Duration::from_secs(5),
                "stalled client blocked TCP shutdown"
            );
            drop(stalled);
            answered
        })
    });
    answered
}

fn main() {
    let args = Args::parse();
    let docs = args.get_usize("docs", 1000);
    let mean_terms = args.get_usize("mean-terms", 5000);
    let n_queries = args.get_usize("queries", 8000);
    // 768 terms ≈ the k-mer set of an ~800bp amplicon: the §3.3.1
    // sequence-query shape. The size is deliberate: an un-memoized
    // evaluation of 768 terms costs well over the host's ambient p99
    // noise floor (~150-250µs of timer ticks and kworker preemptions on a
    // single-core box), so the memo arms' advantage is measured as signal,
    // not coin-flipped against scheduler jitter the way a ~30µs eval is.
    let window = args.get_usize("window", 768);
    // Windows per document: one §3.3.1 sequence search slides its window
    // across the whole sequence, so a serving session is a long run of
    // heavily-overlapping queries (a 1kbp contig yields ~800 windows).
    // Each run shares all but a sliding fringe of its terms — the access
    // pattern the per-term mask memo and the result cache exist for.
    let per_doc = args.get_usize("windows-per-doc", 128).max(1);
    // `--clients N` pins a single load level; `--loads a,b,c` sweeps. A
    // zero anywhere is a usage error (zero closed-loop clients generate no
    // load), same contract as ingest_throughput's `--docs`.
    let loads: Vec<usize> = if args.get("clients").is_some() {
        vec![args.get_usize("clients", 4)]
    } else {
        args.get_usize_list("loads", &[1, 2, 8])
    };
    if loads.is_empty() || loads.contains(&0) {
        eprintln!("serve_load: --clients/--loads must be >= 1 (zero clients produce no load)");
        std::process::exit(2);
    }
    let levels = args.get_usize("levels", 2) as u32;
    let max_batch = args.get_usize("max-batch", 64);
    let pipeline = args.get_usize("pipeline", 1).max(1);
    // Per-client submission interval: open-loop constant-rate load, so all
    // arms face the same offered arrival schedule (see [`Pacer`]). The
    // default puts load level 8 near the one-at-a-time arm's single-core
    // capacity — deep enough to make scheduling matter, shallow enough that
    // the faster arms stay on schedule. `--pace-us 0` = saturation mode.
    let pace = Duration::from_micros(args.get_u64("pace-us", 300));
    let max_delay_us = args.get_u64("max-delay-us", 0);
    let seed = args.get_u64("seed", 7);
    let tcp = args.get_bool("tcp");

    // Bucket count above word granularity (matrix rows are ⌈B/64⌉ words) so
    // every fold level genuinely halves the filter payload: 256 → 128 → 64.
    let buckets = 64u64 << levels;
    let archive = archive_with_mean_terms(docs, mean_terms, seed);
    let per_bucket = ((docs as f64 / buckets as f64) * mean_terms as f64 * 1.2).ceil() as usize;
    let params = RamboParams::flat(
        buckets,
        3,
        rambo_bloom::params::optimal_m(per_bucket.max(64), 0.01),
        2,
        seed,
    );
    // Catalog base index comes in through the bounded-queue ingestion
    // pipeline (hash of document n+1 overlaps writes of document n) —
    // bit-identical to the sequential batch build.
    let (index, _) = IngestPipeline::new()
        .build(params, archive.docs.iter().cloned())
        .expect("pipelined build");
    let catalog = Catalog::build_halving(&index, levels).expect("catalog");
    let infos = catalog.infos();

    // Tier-selection demonstration: loosening the budget must pick a
    // strictly smaller tier.
    let tight = catalog.select(infos[0].predicted_fpr);
    let loose = catalog.select(infos[infos.len() - 1].predicted_fpr);
    assert!(
        loose > tight && infos[loose].size_bytes < infos[tight].size_bytes,
        "loosened budget must select a strictly smaller tier"
    );

    // Mixed-tier load: sliding-window query runs, budgets cycling through
    // the tiers' predicted FPRs *per document* so every tier sees traffic —
    // one client session searches one sequence under one accuracy budget,
    // so all of a document's windows route to the same tier.
    let queries = window_queries(&archive, window, per_doc, n_queries);
    let jobs: Vec<Job> = queries
        .into_iter()
        .enumerate()
        .map(|(i, terms)| Job {
            terms,
            budget: infos[(i / per_doc) % infos.len()].predicted_fpr,
        })
        .collect();

    eprintln!(
        "serve_load: K={docs} queries={} window={window} windows/doc={per_doc} loads={loads:?} tiers={} B={}",
        jobs.len(),
        catalog.len(),
        index.buckets(),
    );
    for info in &infos {
        eprintln!(
            "  tier {}: B={:<4} size={:>9} B  bfu_fpr={:.2e}  predicted_fpr={:.2e}",
            info.tier, info.buckets, info.size_bytes, info.bfu_fpr, info.predicted_fpr
        );
    }

    // Served results must equal direct evaluation (spot-check before the
    // timed runs; also warms the page cache for every tier).
    {
        let mut ctx = rambo_core::QueryContext::new();
        let ((), _) = Server::scope(&catalog, ServerConfig::default(), |handle| {
            for job in jobs.iter().step_by(17) {
                let reply = handle
                    .query(&job.terms, job.budget, Duration::from_secs(30))
                    .expect("verification query");
                let direct = catalog.tier(reply.tier).query_terms_with(
                    &job.terms,
                    QueryMode::Full,
                    &mut ctx,
                );
                assert_eq!(reply.docs, direct, "served result diverged");
            }
        });
    }

    // Greedy adaptive batching (`max_delay = 0`): batches form from the
    // backlog that accumulates while the previous batch evaluates, adding
    // no artificial wait — the right default for closed-loop clients. The
    // result cache is disabled in every scheduler arm so the sweep measures
    // scheduling, not repeat traffic; the cache gets its own phase below.
    // The baseline serves through the same admission/queue/reply machinery
    // (so client-side timing is symmetric) but without the micro-batching
    // subsystem: singleton batches, and a degenerate one-term mask memo —
    // cross-request mask amortization is the batching evaluator's feature,
    // not the baseline's.
    let one_config = ServerConfig {
        max_batch: 1,
        max_delay: Duration::ZERO,
        scheduler: SchedulerMode::AlwaysBatch,
        mask_memo_terms: Some(1),
        result_cache_bytes: 0,
        ..ServerConfig::default()
    };
    let always_config = ServerConfig {
        max_batch,
        max_delay: Duration::from_micros(max_delay_us),
        scheduler: SchedulerMode::AlwaysBatch,
        result_cache_bytes: 0,
        ..ServerConfig::default()
    };
    let adaptive_config = ServerConfig {
        max_batch,
        max_delay: Duration::from_micros(max_delay_us),
        result_cache_bytes: 0,
        ..ServerConfig::default()
    };

    let mut report = JsonReport::new("serve_load");
    report
        .int("docs", docs as u64)
        .int("queries", jobs.len() as u64)
        .int("window", window as u64)
        .int("tiers", catalog.len() as u64)
        .int("buckets", index.buckets())
        .int("max_batch", max_batch as u64);
    for info in &infos {
        report
            .int(&format!("tier{}_buckets", info.tier), info.buckets)
            .int(
                &format!("tier{}_size_bytes", info.tier),
                info.size_bytes as u64,
            )
            .num(
                &format!("tier{}_predicted_fpr", info.tier),
                info.predicted_fpr,
            );
    }
    report
        .int("tier_selected_tight_budget", tight as u64)
        .int("tier_selected_loose_budget", loose as u64)
        .int("pipeline", pipeline as u64)
        .int("pace_us", pace.as_micros() as u64);

    // The load sweep: at each level, adaptive must be no slower than both
    // fixed designs, so the gated aggregates are the *minimum* per-level
    // speedups.
    let mut min_vs_one = f64::INFINITY;
    let mut min_vs_always = f64::INFINITY;
    let mut last_qps_ratio = 0.0f64;
    for &load in &loads {
        // Interleave the three arms in rotating order across `rounds`
        // chunks of the job list: single-core hosts drift (frequency,
        // neighbors) over a benchmark's lifetime, and back-to-back arm
        // runs would charge the whole drift to whichever arm ran last.
        // Rotation puts every arm in every position the same number of
        // times, and many short chunks (vs. three long ones) spread
        // millisecond-scale noise bursts — a kworker flush, a timer storm —
        // across all three arms instead of letting one burst land wholly
        // inside a single arm's share and decide its p99.
        let rounds = 9usize;
        let mut direct = RunResult::empty();
        let mut one = RunResult::empty();
        let mut always = RunResult::empty();
        let mut adaptive = RunResult::empty();
        // All three engines live for the whole level (servers are
        // long-lived processes); only the client work is interleaved.
        let ((adaptive_stats, always_stats), one_stats) =
            Server::scope(&catalog, one_config, |one_h| {
                Server::scope(&catalog, always_config, |always_h| {
                    let ((), adaptive_stats) =
                        Server::scope(&catalog, adaptive_config, |adaptive_h| {
                            // Steady-state warmup: a prefix of the stream
                            // converges each lane's scheduler gate and
                            // absorbs one-time cold costs (first-touch memo
                            // fills; a level-start inline eval descheduled
                            // mid-flight on an oversubscribed host convoys
                            // the early queue) that a long-lived server
                            // amortizes but a short measurement window
                            // would charge entirely to the tail. Counters
                            // reset after, so the scored window is pure
                            // steady state.
                            let warm = &jobs[..jobs.len().min(768)];
                            run_clients(one_h, warm, load, pipeline, pace);
                            one_h.reset_stats();
                            run_clients(always_h, warm, load, pipeline, pace);
                            always_h.reset_stats();
                            run_clients(adaptive_h, warm, load, pipeline, pace);
                            adaptive_h.reset_stats();
                            // Reference row first: stateless, so position in
                            // the level does not matter the way it does for
                            // the memo-carrying served arms.
                            direct.merge(run_direct(&catalog, &jobs, load, pace));
                            for (round, part) in
                                jobs.chunks(jobs.len().div_ceil(rounds)).enumerate()
                            {
                                for slot in 0..3 {
                                    match (slot + round) % 3 {
                                        0 => {
                                            one.merge(run_clients(
                                                one_h, part, load, pipeline, pace,
                                            ));
                                        }
                                        1 => always.merge(run_clients(
                                            always_h, part, load, pipeline, pace,
                                        )),
                                        _ => adaptive.merge(run_clients(
                                            adaptive_h, part, load, pipeline, pace,
                                        )),
                                    }
                                }
                            }
                        });
                    adaptive_stats
                })
            });
        if std::env::var("SERVE_LOAD_DEBUG").is_ok() {
            eprintln!("one-at-a-time @ {load}:\n{one_stats}");
            eprintln!("always-batch @ {load}:\n{always_stats}");
            eprintln!("adaptive @ {load}:\n{adaptive_stats}");
        }
        // Served arms are scored at the serving boundary (submit →
        // reply-posted, from the engine's aggregated latency histogram):
        // queue wait and evaluation are inside, the client thread's wake-up
        // is not. On an oversubscribed host the wake-up wait measures the
        // OS scheduler's timeslicing, not this scheduler — and it applies
        // identically to every arm. Throughput stays client-side wall
        // clock, which *does* include everything.
        let us = |d: Duration| d.as_nanos() as f64 / 1e3;
        let served: Vec<(&str, f64, f64, f64)> = [
            ("one-at-a-time", &one_stats, &one),
            ("always-batch", &always_stats, &always),
            ("adaptive", &adaptive_stats, &adaptive),
        ]
        .into_iter()
        .map(|(label, stats, run)| {
            (
                label,
                us(stats.latency.quantile(0.50)),
                us(stats.latency.quantile(0.99)),
                run.qps(),
            )
        })
        .collect();
        eprintln!(
            "clients={load:<3} {:<14} p50 {:>8.1} us   p99 {:>9.1} us   {:>9.0} qps",
            "direct (ref)",
            direct.p50(),
            direct.p99(),
            direct.qps()
        );
        for &(label, p50, p99, qps) in &served {
            eprintln!(
                "clients={load:<3} {label:<14} p50 {p50:>8.1} us   p99 {p99:>9.1} us   {qps:>9.0} qps"
            );
        }
        let (one_p99, always_p99, adaptive_p99) = (served[0].2, served[1].2, served[2].2);
        let vs_one = one_p99 / adaptive_p99;
        let vs_always = always_p99 / adaptive_p99;
        min_vs_one = min_vs_one.min(vs_one);
        min_vs_always = min_vs_always.min(vs_always);
        last_qps_ratio = adaptive.qps() / one.qps();
        report
            .num(&format!("c{load}_direct_p50_us"), direct.p50())
            .num(&format!("c{load}_direct_p99_us"), direct.p99())
            .num(&format!("c{load}_direct_qps"), direct.qps());
        for &(label, p50, p99, qps) in &served {
            let key = match label {
                "one-at-a-time" => "one",
                "always-batch" => "always",
                _ => "adaptive",
            };
            report
                .num(&format!("c{load}_{key}_p50_us"), p50)
                .num(&format!("c{load}_{key}_p99_us"), p99)
                .num(&format!("c{load}_{key}_qps"), qps);
        }
        report
            .num(&format!("c{load}_adaptive_p99_speedup_vs_one"), vs_one)
            .num(
                &format!("c{load}_adaptive_p99_speedup_vs_always"),
                vs_always,
            );
    }
    // Gate aggregates: worst case across the sweep. `>= 1.0` means "the
    // adaptive scheduler is never slower than either fixed design at any
    // measured load".
    report
        .num("batched_p99_speedup_vs_one_at_a_time", min_vs_one)
        .num("batched_p99_speedup_vs_always_batch", min_vs_always)
        .num("batched_qps_speedup_vs_one_at_a_time", last_qps_ratio);

    // Result-cache phase: a distinct-job prefix served twice at load 1.
    // Sized to fit the default cache budget comfortably so the hot pass is
    // all hits (asserted inside).
    let cache_jobs = &jobs[..jobs.len().min(256)];
    let (cold, hot) = run_cache_phase(&catalog, cache_jobs);
    let cache_speedup = cold.p50() / hot.p50();
    eprintln!(
        "result-cache: cold p50 {:.1} us  hot p50 {:.1} us  speedup {:.1}x",
        cold.p50(),
        hot.p50(),
        cache_speedup
    );
    report
        .num("cache_cold_p50_us", cold.p50())
        .num("cache_hot_p50_us", hot.p50())
        .num("cache_hit_p50_speedup", cache_speedup);

    if tcp {
        // Small slice of the load through the TCP front (the CI smoke),
        // at the sweep's highest client count.
        let tcp_jobs = &jobs[..jobs.len().min(400)];
        let tcp_clients = loads.iter().copied().max().unwrap_or(1).min(4);
        let (answered, tcp_elapsed) =
            time(|| run_tcp_smoke(&catalog, tcp_jobs, tcp_clients, ServerConfig::default()));
        assert_eq!(answered, tcp_jobs.len(), "TCP smoke dropped queries");
        eprintln!(
            "tcp-smoke: {answered} queries answered over loopback in {:.0} ms, clean shutdown",
            tcp_elapsed.as_secs_f64() * 1e3
        );
        report
            .int("tcp_smoke_queries", answered as u64)
            .num("tcp_smoke_s", tcp_elapsed.as_secs_f64());
    }

    if args.get_bool("assert-batch-wins") {
        assert!(
            min_vs_one >= 1.0 && min_vs_always >= 1.0,
            "adaptive scheduler lost a load level: vs one-at-a-time {min_vs_one:.3}x, \
             vs always-batch {min_vs_always:.3}x"
        );
    }

    report.finish("BENCH_serve.json");
}
