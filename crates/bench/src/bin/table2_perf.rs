//! **Table 2 reproduction** — query time and construction time for RAMBO /
//! RAMBO+ vs COBS / BIGSI / SBT / SSBT / HowDeSBT-like, over the paper's
//! file sweep {100, 200, 500, 1000, 2000}, in both input formats.
//!
//! Scaled per DESIGN.md: per-document cardinalities are ~2000× below ENA's;
//! absolute times therefore shrink for everyone, but the *orderings* and
//! *ratios* (RAMBO+ ≥ RAMBO ≫ COBS ≫ trees on query; COBS ≈ RAMBO ≪ trees
//! on construction) are the reproduction targets.
//!
//! ```text
//! cargo run -p rambo-bench --release --bin table2_perf -- \
//!     [--files 100,200,500] [--terms 1500] [--queries 500] [--seed 7] \
//!     [--tree-limit 500] [--fastq-genome 20000]
//! ```

use rambo_bench::{build_suite, mean_query_time, Args};
use rambo_workloads::timing::{human_duration, time};
use rambo_workloads::{ArchiveParams, PlantedQueries, SyntheticArchive, Table};

fn main() {
    let args = Args::parse();
    let files = args.get_usize_list("files", &[100, 200, 500, 1000, 2000]);
    let mean_terms = args.get_usize("terms", 1500);
    let n_queries = args.get_usize("queries", 500);
    let seed = args.get_u64("seed", 7);
    // The paper's HowDeSBT "exceeds available RAM after 500 files"; our tree
    // builds are O(K·depth·m) and dominate harness time past this limit.
    let tree_limit = args.get_usize("tree-limit", 500);
    let fastq_genome = args.get_usize("fastq-genome", 20_000);
    rambo_bench::require_nonzero(
        "table2_perf",
        &[
            ("--files", files.iter().copied().min().unwrap_or(0)),
            ("--terms", mean_terms),
            ("--queries", n_queries),
            ("--fastq-genome", fastq_genome),
        ],
    );

    println!("RAMBO reproduction — Table 2 (query + construction time)");
    println!(
        "scale: mean {mean_terms} distinct terms/doc (ENA/2000-ish), {n_queries} planted queries\n"
    );

    for fastq in [false, true] {
        let format = if fastq { "FASTQ" } else { "McCortex" };
        let mut qt_table = Table::new(
            format!("Table 2 ({format}): time per query (ms)"),
            &[
                "#files", "RAMBO", "RAMBO+", "COBS", "BIGSI", "SBT", "SSBT", "HowDe~",
            ],
        );
        let mut ct_table = Table::new(
            format!("Table 2 ({format}): construction time"),
            &[
                "#files", "extract", "RAMBO", "COBS", "BIGSI", "SBT", "SSBT", "HowDe~",
            ],
        );

        for &k in &files {
            // --- workload -------------------------------------------------
            let (mut archive, extract_time) = if fastq {
                time(|| SyntheticArchive::generate_fastq(k, fastq_genome, 4.0, 0.005, 21, seed))
            } else {
                time(|| {
                    let mut p = ArchiveParams::ena_like(k, 1.0 / 2000.0, seed);
                    p.mean_terms = mean_terms;
                    p.std_terms = mean_terms / 2;
                    SyntheticArchive::generate(&p)
                })
            };
            let planted = PlantedQueries::generate(n_queries, k, 100.0, seed ^ 0xFACE);
            planted.plant_into(&mut archive.docs);
            let query_terms: Vec<u64> = planted.queries.iter().map(|(t, _)| *t).collect();
            let actual_mean = archive.mean_terms().round() as usize;

            // --- build ----------------------------------------------------
            let heavy = k <= tree_limit;
            let suite = build_suite(&archive.docs, actual_mean, fastq, seed, heavy);

            // --- measure --------------------------------------------------
            let mut qt_row = vec![k.to_string()];
            let mut ct_row = vec![k.to_string(), human_duration(extract_time)];
            for built in &suite {
                let label = built.index.label();
                // Skip the BIGSI column duplicate in construction table
                // alignment: both tables share suite order
                // [RAMBO, RAMBO+, COBS, BIGSI, SBT, SSBT, HowDe~].
                let qt = mean_query_time(built.index.as_ref(), &query_terms);
                qt_row.push(format!("{:.4}", qt.as_secs_f64() * 1e3));
                if label != "RAMBO+" {
                    ct_row.push(human_duration(built.build_time));
                }
            }
            while qt_row.len() < 8 {
                qt_row.push("-".into());
            }
            while ct_row.len() < 8 {
                ct_row.push("-".into());
            }
            qt_table.row(&qt_row);
            ct_table.row(&ct_row);
        }
        println!("{qt_table}");
        println!("{ct_table}");
    }

    println!("shape checks vs paper:");
    println!("  * RAMBO and RAMBO+ query times should sit 1-3 orders of magnitude");
    println!("    below the SBT family and well below COBS at K = 2000 (paper: 25x-2000x).");
    println!("  * RAMBO+ <= RAMBO on every row (sparse evaluation only prunes work).");
    println!("  * Construction: RAMBO within ~2x of COBS; trees far slower (paper:");
    println!("    COBS 15m38s vs RAMBO 25m41s vs SSBT 18h22m at 2000 files).");
}
