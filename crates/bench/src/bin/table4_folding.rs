//! **Table 4 reproduction** — fold-over: query time and index size at folds
//! ×2, ×4, ×8 of a sharded-then-stacked index (§5.3, Figure 3).
//!
//! Paper numbers (170TB build, B = 50000, R = 5): fold 2 → 66.5ms /
//! 7.13TB; fold 4 → 43.5ms / 3.6TB; fold 8 → 26.25ms / 1.78TB. The
//! shape: each fold halves the size **and** reduces query time (fewer BFUs
//! to probe) while the false-positive rate climbs super-linearly — we print
//! the measured FPR alongside to expose that trade-off (the paper defers it
//! to Figure 4).
//!
//! ```text
//! cargo run -p rambo-bench --release --bin table4_folding -- \
//!     [--docs 2000] [--terms 1000] [--nodes 8] [--local-b 64] [--reps 5] \
//!     [--queries 1000] [--seed 7]
//! ```

use rambo_bench::Args;
use rambo_core::{build_sharded_parallel, QueryContext, QueryMode, RamboParams};
use rambo_workloads::timing::{human_bytes, time};
use rambo_workloads::{ArchiveParams, PlantedQueries, SyntheticArchive, Table};

fn main() {
    let args = Args::parse();
    let k = args.get_usize("docs", 2000);
    let mean_terms = args.get_usize("terms", 1000);
    let nodes = args.get_u64("nodes", 8);
    let local_b = args.get_u64("local-b", 64);
    let reps = args.get_usize("reps", 5);
    let n_queries = args.get_usize("queries", 1000);
    let seed = args.get_u64("seed", 7);
    rambo_bench::require_nonzero(
        "table4_folding",
        &[
            ("--docs", k),
            ("--terms", mean_terms),
            ("--nodes", nodes as usize),
            ("--local-b", local_b as usize),
            ("--reps", reps),
            ("--queries", n_queries),
        ],
    );

    println!("RAMBO reproduction — Table 4 (folding over the stacked index)");
    println!(
        "build: {k} docs x ~{mean_terms} terms, {nodes} simulated nodes x {local_b} local buckets, R = {reps}\n"
    );

    // Archive + planted FPR probes.
    let mut p = ArchiveParams::ena_like(k, 1.0 / 2000.0, seed);
    p.mean_terms = mean_terms;
    p.std_terms = mean_terms / 2;
    let mut archive = SyntheticArchive::generate(&p);
    let planted = PlantedQueries::generate(n_queries, k, 100.0, seed ^ 0xF01D);
    planted.plant_into(&mut archive.docs);
    let query_terms: Vec<u64> = planted.queries.iter().map(|(t, _)| *t).collect();

    // Sharded build, as the paper's cluster would produce it.
    let per_bucket = ((k as f64 / (nodes * local_b) as f64) * mean_terms as f64 * 1.2)
        .ceil()
        .max(64.0) as usize;
    let params = RamboParams::two_level(
        nodes,
        local_b,
        reps,
        rambo_bloom::params::optimal_m(per_bucket, 0.01),
        2,
        seed,
    );
    let (index, build_time) =
        time(|| build_sharded_parallel(params, archive.docs.clone()).expect("sharded build"));
    println!(
        "stacked build: B = {} x R = {} in {}\n",
        index.buckets(),
        index.repetitions(),
        rambo_workloads::timing::human_duration(build_time)
    );

    let mut table = Table::new(
        "Table 4: query time / size / FPR per fold",
        &[
            "fold",
            "B",
            "QT full (ms)",
            "QT sparse (ms)",
            "size",
            "per-doc FPR",
        ],
    );
    let mut current = index;
    for fold in [1u32, 2, 4, 8] {
        if fold > 1 {
            current.fold_once().expect("fold available");
        }
        let mut ctx = QueryContext::new();
        let (_, full_t) = time(|| {
            for &t in &query_terms {
                std::hint::black_box(current.query_terms_with(&[t], QueryMode::Full, &mut ctx));
            }
        });
        let (_, sparse_t) = time(|| {
            for &t in &query_terms {
                std::hint::black_box(current.query_terms_with(&[t], QueryMode::Sparse, &mut ctx));
            }
        });
        // The sharded build renumbers documents node-major; translate index
        // ids back to archive positions for the ground-truth comparison.
        let archive_pos: std::collections::HashMap<&str, u32> = archive
            .docs
            .iter()
            .enumerate()
            .map(|(i, (name, _))| (name.as_str(), i as u32))
            .collect();
        let fpr = planted.measure(k, |t| {
            let mut ids: Vec<u32> = current
                .query_u64(t)
                .into_iter()
                .map(|d| archive_pos[current.document_name(d)])
                .collect();
            ids.sort_unstable();
            ids
        });
        table.row(&[
            format!("x{fold}"),
            current.buckets().to_string(),
            format!(
                "{:.4}",
                full_t.as_secs_f64() * 1e3 / query_terms.len() as f64
            ),
            format!(
                "{:.4}",
                sparse_t.as_secs_f64() * 1e3 / query_terms.len() as f64
            ),
            human_bytes(current.size_bytes()),
            format!("{:.5}", fpr.per_doc_rate()),
        ]);
    }
    println!("{table}");
    println!("shape checks vs paper (Table 4: 66.5ms/7.13TB -> 43.5/3.6 -> 26.25/1.78):");
    println!("  * size halves per fold;");
    println!("  * full-evaluation query time falls as B shrinks (fewer BFU probes);");
    println!("  * FPR rises super-linearly with each fold (Figure 4's trade-off).");
}
