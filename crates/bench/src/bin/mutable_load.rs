//! Mutable-index load benchmark: live insert throughput and read latency
//! while the LSM-style generational index seals and merges underneath.
//!
//! One writer streams the synthetic archive into a
//! [`rambo_server::LiveServer`] while `--readers` closed-loop readers
//! query concurrently — the write phase continuously triggers memtable
//! seals (every `--memtable-cap` documents) and background size-tiered
//! merges, so the concurrent read latencies *are* "read p99 during
//! merge". After the writer finishes and merges drain, every probe is
//! replayed against a from-scratch monolithic [`rambo_core::Rambo`] build
//! in both query modes; `generations_parity_ok` is 1 only if all answers
//! are bit-identical (the gate the regression baseline pins at 1.0).
//!
//! `merge_read_p99_headroom` = `--p99-ceiling-ms` / measured merge-phase
//! read p99: ≥ 1.0 means background maintenance never stalled readers
//! past the ceiling. The install critical section is a two-`Arc` splice,
//! so the default 50 ms ceiling is generous by orders of magnitude.
//!
//! Emits `BENCH_mutable.json`.
//!
//! ```text
//! cargo run --release -p rambo-bench --bin mutable_load -- \
//!     --docs 300 --mean-terms 800 --queries 2000 --readers 2
//! ```

use rambo_bench::{absent_term, archive_with_mean_terms, require_nonzero, Args, JsonReport};
use rambo_core::{GenerationConfig, QueryContext, QueryMode, Rambo, RamboParams};
use rambo_server::{LiveServer, ServerConfig};
use rambo_workloads::stats::percentile;
use rambo_workloads::timing::time;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let docs = args.get_usize("docs", 300);
    let mean_terms = args.get_usize("mean-terms", 800);
    let queries = args.get_usize("queries", 2000);
    let readers = args.get_usize("readers", 2);
    let cap = args.get_usize("memtable-cap", 32);
    let ceiling_ms = args.get_f64("p99-ceiling-ms", 50.0);
    let seed = args.get_u64("seed", 42);
    require_nonzero(
        "mutable_load",
        &[
            ("--docs", docs),
            ("--mean-terms", mean_terms),
            ("--queries", queries),
            ("--readers", readers),
            ("--memtable-cap", cap),
        ],
    );

    let archive = archive_with_mean_terms(docs, mean_terms, seed);
    let total_terms = archive.total_terms() as u64;
    let b = ((docs as f64).sqrt() * 4.5).round().max(4.0) as u64;
    let per_bucket = ((docs as f64 / b as f64) * mean_terms as f64 * 1.2).ceil() as usize;
    let params = RamboParams::flat(
        b,
        3,
        rambo_bloom::params::optimal_m(per_bucket.max(64), 0.01),
        2,
        seed,
    );
    let gen_config = GenerationConfig {
        memtable_max_docs: cap,
        tier_growth: 2,
        max_generations: 4,
        ..GenerationConfig::default()
    };
    let config = ServerConfig::builder().generations(gen_config).build();
    eprintln!(
        "mutable: K={docs} mean_terms={mean_terms} B={b} cap={cap} readers={readers} \
         queries={queries}"
    );

    // Probe pool the readers cycle through: up to three present terms per
    // document, 1/4 absent.
    let mut probes: Vec<u64> = archive
        .docs
        .iter()
        .flat_map(|(_, ts)| ts.iter().take(3).copied())
        .take(queries * 3 / 4)
        .collect();
    while probes.len() < queries {
        probes.push(absent_term(probes.len()));
    }

    let writing = AtomicBool::new(true);
    let merge_reads = AtomicUsize::new(0);
    let ((write_elapsed, merge_lat_us, parity_ok, quiet_p99_us), stats) =
        LiveServer::scope(params, config, |handle| {
            // Write phase: one writer streaming the archive, `readers`
            // closed-loop readers measuring latency while seals and merges
            // churn underneath.
            let (write_elapsed, merge_lat_us) = std::thread::scope(|s| {
                let reader_handles: Vec<_> = (0..readers)
                    .map(|r| {
                        let handle = &handle;
                        let probes = &probes;
                        let writing = &writing;
                        let merge_reads = &merge_reads;
                        s.spawn(move || {
                            let mut lat_us = Vec::new();
                            let mut i = r;
                            // At least one read per reader even if the
                            // write phase finishes first (smoke runs).
                            loop {
                                let t0 = Instant::now();
                                let got = handle.query(&[probes[i % probes.len()]], None);
                                lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
                                std::hint::black_box(got);
                                merge_reads.fetch_add(1, Ordering::Relaxed);
                                i += 1;
                                if !writing.load(Ordering::Relaxed) {
                                    break;
                                }
                            }
                            lat_us
                        })
                    })
                    .collect();
                let (_, write_elapsed) = time(|| {
                    for (name, terms) in &archive.docs {
                        handle.insert_document(name, terms).unwrap();
                    }
                });
                writing.store(false, Ordering::Relaxed);
                let mut merge_lat_us = Vec::new();
                for h in reader_handles {
                    merge_lat_us.extend(h.join().unwrap());
                }
                (write_elapsed, merge_lat_us)
            });
            handle.drain_merges().unwrap();

            // Parity phase: every probe plus multi-term windows, both
            // modes, against a from-scratch monolithic rebuild.
            let mut mono = Rambo::new(params).unwrap();
            for (name, terms) in &archive.docs {
                mono.insert_document(name, terms.iter().copied()).unwrap();
            }
            let mut ctx = QueryContext::new();
            let mut parity_ok = true;
            let mut quiet_us = Vec::with_capacity(probes.len());
            for &t in &probes {
                for mode in [QueryMode::Full, QueryMode::Sparse] {
                    let t0 = Instant::now();
                    let live_ans = handle.query(&[t], Some(mode));
                    quiet_us.push(t0.elapsed().as_secs_f64() * 1e6);
                    if live_ans != mono.query_terms_with(&[t], mode, &mut ctx) {
                        eprintln!("PARITY FAILURE on {t:#x} ({mode:?})");
                        parity_ok = false;
                    }
                }
            }
            for pair in probes.chunks(2).take(queries / 4) {
                if handle.query(pair, Some(QueryMode::Full))
                    != mono.query_terms_with(pair, QueryMode::Full, &mut ctx)
                {
                    eprintln!("PARITY FAILURE on multi-term {pair:x?}");
                    parity_ok = false;
                }
            }
            let quiet_p99 = percentile(&quiet_us, 99.0);
            (write_elapsed, merge_lat_us, parity_ok, quiet_p99)
        })
        .unwrap();
    assert!(parity_ok, "generational index diverged from the monolith");
    assert!(
        stats.seals > 0 && stats.merges > 0,
        "the write phase must exercise seals and merges: {stats:?}"
    );

    let merge_p50_us = percentile(&merge_lat_us, 50.0);
    let merge_p99_us = percentile(&merge_lat_us, 99.0);
    let headroom = ceiling_ms * 1e3 / merge_p99_us.max(1e-9);
    let write_docs_per_s = docs as f64 / write_elapsed.as_secs_f64();
    eprintln!(
        "write: {write_docs_per_s:.0} docs/s over {} seals / {} merges; \
         read-during-merge p99 {merge_p99_us:.0}µs (headroom {headroom:.1}x), \
         quiescent p99 {quiet_p99_us:.0}µs, parity {}",
        stats.seals,
        stats.merges,
        if parity_ok { "OK" } else { "FAILED" }
    );

    JsonReport::new("mutable_load")
        .int("docs", docs as u64)
        .int("total_terms", total_terms)
        .int("buckets", b)
        .int("memtable_cap", cap as u64)
        .int("readers", readers as u64)
        .num("write_s", write_elapsed.as_secs_f64())
        .num("write_docs_per_s", write_docs_per_s)
        .num(
            "write_mterms_per_s",
            total_terms as f64 / write_elapsed.as_secs_f64() / 1e6,
        )
        .num("insert_p99_us", stats.write_p99.as_secs_f64() * 1e6)
        .int(
            "merge_phase_reads",
            merge_reads.load(Ordering::Relaxed) as u64,
        )
        .num("merge_read_p50_us", merge_p50_us)
        .num("merge_read_p99_us", merge_p99_us)
        .num("quiescent_read_p99_us", quiet_p99_us)
        .num("merge_read_p99_headroom", headroom)
        .num("generations_parity_ok", f64::from(u8::from(parity_ok)))
        .int("seals", stats.seals)
        .int("merges", stats.merges)
        .int("final_generations", stats.generations as u64)
        .int("epoch", stats.epoch)
        .finish("BENCH_mutable.json");
}
