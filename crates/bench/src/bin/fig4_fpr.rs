//! **Figure 4 reproduction** — false-positive rate as a function of k-mer
//! multiplicity `V` and index memory (fold level), with Lemma 4.1's
//! prediction printed alongside the measurement.
//!
//! Paper shape: FPR is very low for rare terms (small `V`) and rises with
//! both `V` and folding; "for a full sequence search, the returned result
//! depends solely on the rarest k-mer", hence accurate sequence queries.
//!
//! ```text
//! cargo run -p rambo-bench --release --bin fig4_fpr -- \
//!     [--docs 2000] [--terms 800] [--buckets 256] [--reps 3] \
//!     [--queries 400] [--vs 1,2,4,8,16,32,64] [--folds 3] [--seed 7]
//! ```

use rambo_bench::Args;
use rambo_core::{theory, Rambo, RamboParams};
use rambo_workloads::timing::human_bytes;
use rambo_workloads::{ArchiveParams, PlantedQueries, SyntheticArchive, Table};

fn main() {
    let args = Args::parse();
    let k = args.get_usize("docs", 2000);
    let mean_terms = args.get_usize("terms", 800);
    let buckets = args.get_u64("buckets", 256);
    let reps = args.get_usize("reps", 3);
    let n_queries = args.get_usize("queries", 400);
    let vs = args.get_usize_list("vs", &[1, 2, 4, 8, 16, 32, 64]);
    let folds = args.get_usize("folds", 3);
    let seed = args.get_u64("seed", 7);
    rambo_bench::require_nonzero(
        "fig4_fpr",
        &[
            ("--docs", k),
            ("--terms", mean_terms),
            ("--buckets", buckets as usize),
            ("--reps", reps),
            ("--queries", n_queries),
            ("--vs", vs.iter().copied().min().unwrap_or(0)),
        ],
    );

    println!("RAMBO reproduction — Figure 4 (FPR vs multiplicity V and memory)");
    println!("base geometry: K = {k}, B = {buckets}, R = {reps}\n");

    // Archive with planted fixed-V query sets, one per V.
    let mut p = ArchiveParams::ena_like(k, 1.0 / 2000.0, seed);
    p.mean_terms = mean_terms;
    p.std_terms = mean_terms / 2;
    let mut archive = SyntheticArchive::generate(&p);
    let planted_sets: Vec<(usize, PlantedQueries)> = vs
        .iter()
        .map(|&v| {
            (
                v,
                PlantedQueries::generate_fixed_v(n_queries, k, v.min(k), seed ^ (v as u64)),
            )
        })
        .collect();
    for (_, q) in &planted_sets {
        q.plant_into(&mut archive.docs);
    }

    // Build once, then derive folded versions (the paper's one-time
    // processing workflow).
    let per_bucket = ((k as f64 / buckets as f64) * mean_terms as f64 * 1.2)
        .ceil()
        .max(64.0) as usize;
    let params = RamboParams::flat(
        buckets,
        reps,
        rambo_bloom::params::optimal_m(per_bucket, 0.01),
        2,
        seed,
    );
    let mut base = Rambo::new(params).expect("valid params");
    for (name, terms) in &archive.docs {
        base.insert_document(name, terms.iter().copied())
            .expect("unique names");
    }

    let mut headers: Vec<String> = vec!["V".into()];
    let mut indexes = vec![base];
    for f in 0..folds {
        let next = indexes[f].folded(1).expect("fold available");
        indexes.push(next);
    }
    for idx in &indexes {
        headers.push(format!("meas@{}", human_bytes(idx.size_bytes())));
        headers.push("lemma4.1".into());
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Figure 4: per-doc FPR, measured vs Lemma 4.1, per fold level",
        &header_refs,
    );

    for (v, queries) in &planted_sets {
        let mut row = vec![v.to_string()];
        for idx in &indexes {
            let m = queries.measure(k, |t| idx.query_u64(t));
            let p_bfu = idx.estimated_bfu_fpr();
            let predicted = theory::per_doc_fpr(p_bfu, idx.buckets(), *v as u32, idx.repetitions());
            row.push(format!("{:.5}", m.per_doc_rate()));
            row.push(format!("{predicted:.5}"));
        }
        table.row(&row);
    }
    println!("{table}");
    println!("shape checks vs paper (Figure 4):");
    println!("  * each column pair: measured FPR tracks the Lemma 4.1 curve;");
    println!("  * FPR grows with V (bucket collisions with true documents);");
    println!("  * every fold (smaller memory) shifts the whole curve up super-linearly;");
    println!("  * at V = 1 the rate is tiny — rare/unknown sequences stay accurate.");
}
