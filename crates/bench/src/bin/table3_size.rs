//! **Table 3 reproduction** — index size for the same sweep as Table 2.
//!
//! Paper shape: RAMBO takes at most `O(log K)` extra space over the optimal
//! array of Bloom filters (COBS); the SBT family pays for per-node filters
//! (HowDeSBT's RRR compression mitigates but does not close the gap at
//! FASTQ sizes: 92.5GB vs COBS-class sizes at 100 files).
//!
//! ```text
//! cargo run -p rambo-bench --release --bin table3_size -- \
//!     [--files 100,200,500,1000,2000] [--terms 1500] [--seed 7] [--tree-limit 500]
//! ```

use rambo_bench::{build_suite, Args};
use rambo_workloads::timing::human_bytes;
use rambo_workloads::{ArchiveParams, SyntheticArchive, Table};

fn main() {
    let args = Args::parse();
    let files = args.get_usize_list("files", &[100, 200, 500, 1000, 2000]);
    let mean_terms = args.get_usize("terms", 1500);
    let seed = args.get_u64("seed", 7);
    let tree_limit = args.get_usize("tree-limit", 500);
    rambo_bench::require_nonzero(
        "table3_size",
        &[
            ("--files", files.iter().copied().min().unwrap_or(0)),
            ("--terms", mean_terms),
        ],
    );

    println!("RAMBO reproduction — Table 3 (index size)\n");
    let mut table = Table::new(
        "Table 3: serialized index size",
        &[
            "#files",
            "RAMBO",
            "COBS",
            "BIGSI",
            "SBT",
            "SSBT",
            "HowDe~",
            "RAMBO/COBS",
        ],
    );

    for &k in &files {
        let mut p = ArchiveParams::ena_like(k, 1.0 / 2000.0, seed);
        p.mean_terms = mean_terms;
        p.std_terms = mean_terms / 2;
        let archive = SyntheticArchive::generate(&p);
        let actual_mean = archive.mean_terms().round() as usize;
        let suite = build_suite(&archive.docs, actual_mean, false, seed, k <= tree_limit);

        // Suite order: RAMBO, RAMBO+, COBS, BIGSI, SBT, SSBT, HowDe~.
        let size_of = |label: &str| -> Option<usize> {
            suite
                .iter()
                .find(|b| b.index.label() == label)
                .map(|b| b.index.size_bytes())
        };
        let rambo = size_of("RAMBO").expect("always built");
        let cobs = size_of("COBS").expect("always built");
        let cell = |l: &str| size_of(l).map_or("-".to_string(), human_bytes);
        table.row(&[
            k.to_string(),
            human_bytes(rambo),
            human_bytes(cobs),
            cell("COBS(uniform)"),
            cell("SBT"),
            cell("SSBT"),
            cell("HowDeSBT~"),
            format!("{:.2}x", rambo as f64 / cobs as f64),
        ]);
    }
    println!("{table}");
    println!("shape checks vs paper:");
    println!("  * RAMBO/COBS ratio stays small and ~flat-to-log in K (paper: 1.3x-2.1x");
    println!("    on McCortex; worst case O(log K) over the optimal filter array).");
    println!("  * SBT-family sizes sit above the bit-sliced family (paper FASTQ:");
    println!("    HowDe 92.5GB / SSBT 9.5GB vs RAMBO 12.8GB at 100 files).");
}
