//! Batch-query benchmark: per-call [`rambo_core::Rambo::query_terms_with`]
//! vs the memoizing [`rambo_core::QueryBatch`] engine, in both evaluation
//! modes, on a workload whose queries share terms (overlapping sequence
//! windows — the shape §3.3.1 sequence queries produce).
//!
//! Asserts batch results equal per-call results, then emits
//! `BENCH_batch_query.json`.
//!
//! ```text
//! cargo run --release -p rambo-bench --bin batch_query -- \
//!     --docs 400 --mean-terms 400 --queries 2000
//! ```

use rambo_bench::{
    archive_with_mean_terms, build_rambo, paper_rambo_params, us_per, window_queries, Args,
    JsonReport,
};
use rambo_core::{QueryBatch, QueryContext, QueryMode};
use rambo_workloads::timing::time;

fn main() {
    let args = Args::parse();
    let docs = args.get_usize("docs", 400);
    let mean_terms = args.get_usize("mean-terms", 400);
    let n_queries = args.get_usize("queries", 2000);
    let window = args.get_usize("window", 4);
    let seed = args.get_u64("seed", 7);
    rambo_bench::require_nonzero(
        "batch_query",
        &[
            ("--docs", docs),
            ("--mean-terms", mean_terms),
            ("--queries", n_queries),
            ("--window", window),
        ],
    );

    let archive = archive_with_mean_terms(docs, mean_terms, seed);
    let index = build_rambo(
        paper_rambo_params(docs, mean_terms, false, seed),
        &archive.docs,
    );

    // Sliding-window queries (the memoization-friendly sequence shape) plus
    // a tail of absent single-term probes.
    let queries = window_queries(&archive, window, 8, n_queries);

    eprintln!(
        "batch_query: K={docs} queries={} window={window} B={} R={}",
        queries.len(),
        index.buckets(),
        index.repetitions()
    );

    let mut report = JsonReport::new("batch_query");
    report
        .int("docs", docs as u64)
        .int("queries", queries.len() as u64)
        .int("window", window as u64)
        .int("buckets", index.buckets())
        .int("repetitions", index.repetitions() as u64);

    for (mode, label) in [(QueryMode::Full, "full"), (QueryMode::Sparse, "sparse")] {
        let (per_call, t_per_call) = time(|| {
            let mut ctx = QueryContext::new();
            queries
                .iter()
                .map(|q| index.query_terms_with(q, mode, &mut ctx))
                .collect::<Vec<_>>()
        });
        let (batched, t_batch) = time(|| {
            let mut batch = QueryBatch::new(&index);
            batch.run(&queries, mode)
        });
        assert_eq!(per_call, batched, "{label}: batch must equal per-call");

        let nq = queries.len();
        eprintln!(
            "{label:<6} per-call {:>8.2} us/query   batch {:>8.2} us/query   ({:.2}x)",
            us_per(t_per_call, nq),
            us_per(t_batch, nq),
            rambo_bench::speedup(t_per_call, t_batch)
        );
        report
            .num(
                &format!("{label}_per_call_us_per_query"),
                us_per(t_per_call, nq),
            )
            .num(&format!("{label}_batch_us_per_query"), us_per(t_batch, nq))
            .ratio(&format!("{label}_batch_speedup"), t_per_call, t_batch);
    }

    report.finish("BENCH_batch_query.json");
}
