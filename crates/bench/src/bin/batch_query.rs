//! Batch-query benchmark: per-call [`rambo_core::Rambo::query_terms_with`]
//! vs the memoizing [`rambo_core::QueryBatch`] engine, in both evaluation
//! modes, on a workload whose queries share terms (overlapping sequence
//! windows — the shape §3.3.1 sequence queries produce).
//!
//! Asserts batch results equal per-call results, then emits
//! `BENCH_batch_query.json`.
//!
//! ```text
//! cargo run --release -p rambo-bench --bin batch_query -- \
//!     --docs 400 --mean-terms 400 --queries 2000
//! ```

use rambo_bench::{build_rambo, paper_rambo_params, Args, JsonReport};
use rambo_core::{QueryBatch, QueryContext, QueryMode};
use rambo_workloads::timing::time;
use rambo_workloads::{ArchiveParams, SyntheticArchive};

fn main() {
    let args = Args::parse();
    let docs = args.get_usize("docs", 400);
    let mean_terms = args.get_usize("mean-terms", 400);
    let n_queries = args.get_usize("queries", 2000);
    let window = args.get_usize("window", 4);
    let seed = args.get_u64("seed", 7);

    let mut params = ArchiveParams::tiny(docs, seed);
    params.mean_terms = mean_terms;
    params.std_terms = mean_terms / 3;
    let archive = SyntheticArchive::generate(&params);
    let index = build_rambo(
        paper_rambo_params(docs, mean_terms, false, seed),
        &archive.docs,
    );

    // Sliding `window`-term queries over document term lists: adjacent
    // queries share `window − 1` terms, plus a tail of absent single-term
    // probes. This is the memoization-friendly (and realistic) shape.
    let mut queries: Vec<Vec<u64>> = Vec::with_capacity(n_queries);
    'outer: for (_, terms) in archive.docs.iter() {
        if terms.len() < window {
            continue;
        }
        for w in terms.windows(window).take(8) {
            queries.push(w.to_vec());
            if queries.len() == n_queries * 9 / 10 {
                break 'outer;
            }
        }
    }
    while queries.len() < n_queries {
        queries.push(vec![0xDEAD_0000_0000u64 + queries.len() as u64]);
    }

    eprintln!(
        "batch_query: K={docs} queries={} window={window} B={} R={}",
        queries.len(),
        index.buckets(),
        index.repetitions()
    );

    let mut report = JsonReport::new("batch_query");
    report
        .int("docs", docs as u64)
        .int("queries", queries.len() as u64)
        .int("window", window as u64)
        .int("buckets", index.buckets())
        .int("repetitions", index.repetitions() as u64);

    for (mode, label) in [(QueryMode::Full, "full"), (QueryMode::Sparse, "sparse")] {
        let (per_call, t_per_call) = time(|| {
            let mut ctx = QueryContext::new();
            queries
                .iter()
                .map(|q| index.query_terms_with(q, mode, &mut ctx))
                .collect::<Vec<_>>()
        });
        let (batched, t_batch) = time(|| {
            let mut batch = QueryBatch::new(&index);
            batch.run(&queries, mode)
        });
        assert_eq!(per_call, batched, "{label}: batch must equal per-call");

        let nq = queries.len() as f64;
        let us = |d: std::time::Duration| d.as_secs_f64() * 1e6 / nq;
        eprintln!(
            "{label:<6} per-call {:>8.2} us/query   batch {:>8.2} us/query   ({:.2}x)",
            us(t_per_call),
            us(t_batch),
            t_per_call.as_secs_f64() / t_batch.as_secs_f64()
        );
        report
            .num(&format!("{label}_per_call_us_per_query"), us(t_per_call))
            .num(&format!("{label}_batch_us_per_query"), us(t_batch))
            .num(
                &format!("{label}_batch_speedup"),
                t_per_call.as_secs_f64() / t_batch.as_secs_f64(),
            );
    }

    report
        .write("BENCH_batch_query.json")
        .expect("write BENCH_batch_query.json");
}
