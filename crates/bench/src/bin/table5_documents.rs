//! **Table 5 reproduction** — document (text) indexing: Wiki-dump-like and
//! ClueWeb09-like corpora, RAMBO vs COBS vs HowDeSBT-like.
//!
//! Paper (Table 5): on Wiki-dump (17.6K docs) RAMBO answers in 0.074ms with
//! a 51MB index built in 1.75s, vs COBS 0.523ms / 157MB / 2.71s and HowDe
//! 3.781ms / 6.43GB / 101m. On ClueWeb (50K docs) RAMBO and COBS converge
//! (0.58 vs 0.56ms) with RAMBO smaller (62MB vs 88MB).
//!
//! Paper parameters reproduced: Wiki B = 1000, R = 2, BFU = 200,000 bits;
//! ClueWeb B = 5000, R = 3, BFU = 20,000 bits. The corpora are Zipfian
//! synthetics calibrated to ~650/~450 distinct terms per document; `--scale`
//! shrinks the document counts for quick runs (BFU bits scale with K/B).
//!
//! ```text
//! cargo run -p rambo-bench --release --bin table5_documents -- \
//!     [--scale 0.1] [--queries 400] [--seed 7] [--trees true]
//! ```

use rambo_baselines::{CompactBitSliced, MembershipIndex, RamboIndex, SplitSbt};
use rambo_bench::{build_rambo_threads, mean_query_time, Args};
use rambo_core::RamboParams;
use rambo_text::{CorpusParams, ZipfCorpus};
use rambo_workloads::timing::{human_bytes, human_duration, time};
use rambo_workloads::{PlantedQueries, Table};

struct DatasetSpec {
    label: &'static str,
    corpus: CorpusParams,
    buckets: u64,
    reps: usize,
    bfu_bits: usize,
}

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.1);
    let n_queries = args.get_usize("queries", 400);
    let seed = args.get_u64("seed", 7);
    let with_trees = args.get("trees").is_none_or(|v| v != "false");
    rambo_bench::require_nonzero("table5_documents", &[("--queries", n_queries)]);
    if scale <= 0.0 {
        eprintln!("table5_documents: --scale must be > 0 (a zero-scale corpus has no documents)");
        std::process::exit(2);
    }

    println!("RAMBO reproduction — Table 5 (document indexing)");
    println!("scale = {scale} of the paper's corpus sizes\n");

    let scale_b = |b: u64| ((b as f64 * scale).round() as u64).max(4);
    let scale_bits = |m: usize| ((m as f64).round() as usize).max(1024);
    let specs = [
        DatasetSpec {
            label: "Wiki-dump",
            corpus: CorpusParams::wiki(scale, seed),
            buckets: scale_b(1000),
            reps: 2,
            bfu_bits: scale_bits(200_000),
        },
        DatasetSpec {
            label: "ClueWeb09",
            corpus: CorpusParams::clueweb(scale, seed),
            buckets: scale_b(5000),
            reps: 3,
            bfu_bits: scale_bits(20_000),
        },
    ];

    let mut table = Table::new(
        "Table 5: QT (ms) / size / construction time",
        &["dataset", "index", "QT (ms)", "size", "CT"],
    );

    for spec in specs {
        let corpus = ZipfCorpus::generate(&spec.corpus);
        let k = corpus.docs.len();
        let mut docs: Vec<(String, Vec<u64>)> =
            corpus.docs.into_iter().map(|d| (d.name, d.terms)).collect();
        let planted = PlantedQueries::generate(n_queries, k, 100.0_f64.min(k as f64 / 2.0), seed);
        planted.plant_into(&mut docs);
        let terms: Vec<u64> = planted.queries.iter().map(|(t, _)| *t).collect();

        // RAMBO with the paper's per-dataset parameters.
        let params = RamboParams::flat(spec.buckets, spec.reps, spec.bfu_bits, 2, seed);
        // One ingestion thread: this table's construction-time column is
        // compared against single-threaded baseline builds (same fairness
        // rule as build_suite; the fan-out is measured by ingest_throughput).
        let (rambo, rambo_ct) = time(|| build_rambo_threads(params, &docs, 1));
        let rambo = RamboIndex::new(rambo);

        let (cobs, cobs_ct) =
            time(|| CompactBitSliced::build(&docs, (k / 16).max(8), 0.01, 3, seed));

        let mut entries: Vec<(&dyn MembershipIndex, std::time::Duration)> =
            vec![(&rambo, rambo_ct), (&cobs, cobs_ct)];
        let howde_storage;
        if with_trees {
            let max_n = docs.iter().map(|(_, t)| t.len()).max().unwrap_or(1).max(1);
            let m_tree = rambo_bloom::params::optimal_m(max_n, 0.01);
            let (howde, howde_ct) = time(|| SplitSbt::build(&docs, m_tree, 1, seed, true));
            howde_storage = howde;
            entries.push((&howde_storage, howde_ct));
        }

        for (idx, ct) in entries {
            let qt = mean_query_time(idx, &terms);
            table.row(&[
                spec.label.to_string(),
                idx.label().to_string(),
                format!("{:.4}", qt.as_secs_f64() * 1e3),
                human_bytes(idx.size_bytes()),
                human_duration(ct),
            ]);
        }
    }
    println!("{table}");
    println!("shape checks vs paper (Table 5):");
    println!("  * Wiki: RAMBO clearly faster and smaller than COBS (paper: 7x QT, 3x size);");
    println!("  * ClueWeb: RAMBO and COBS converge on QT, RAMBO stays smaller;");
    println!("  * HowDe-like: orders of magnitude slower to build, larger index.");
}
