//! Multi-tenant RESP serving benchmark: one process, one reactor, many
//! named RAMBO indexes driven concurrently over the text protocol.
//!
//! `--tenants` client threads each create their own named index over a
//! live RESP connection, stream a per-tenant corpus through `R.INSERTDOC`
//! (tenant 0 gets a Zipf-distributed text corpus, the rest synthetic
//! archives), then measure `R.QUERYSEQ` latency over the wire. After the
//! load, every tenant's probe battery is replayed against an **isolated
//! single-index oracle** built from exactly that tenant's documents;
//! `tenant_isolation_parity_ok` is 1 only if every wire answer is
//! identical to its oracle — multi-tenancy must be unobservable from
//! inside a tenant. A separate capped tenant validates admission control:
//! `quota_enforcement_ok` is 1 only if inserts beyond its document quota
//! are rejected in-protocol and the registry's rejection counter agrees.
//!
//! Emits `BENCH_tenant.json` with per-tenant read p50/p99 and the
//! quota-rejection count.
//!
//! ```text
//! cargo run --release -p rambo-bench --bin tenant_serve -- \
//!     --tenants 3 --docs 150 --mean-terms 120 --queries 400
//! ```

use rambo_bench::{absent_term, archive_with_mean_terms, require_nonzero, Args, JsonReport};
use rambo_core::{QueryContext, QueryMode, Rambo, RamboParams};
use rambo_server::{serve_tenant_tcp, TenantQuotas, TenantRegistry, TenantServeOptions};
use rambo_text::{CorpusParams, ZipfCorpus};
use rambo_workloads::stats::percentile;
use rambo_workloads::TestClient;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// One tenant's workload: named documents with u64 term lists.
struct Workload {
    tenant: String,
    docs: Vec<(String, Vec<u64>)>,
}

/// Parse the doc names out of a RESP array reply.
fn array_docs(reply: &[u8]) -> Vec<String> {
    let text = std::str::from_utf8(reply).expect("ascii reply");
    let mut lines = text.split("\r\n");
    let header = lines.next().expect("header");
    assert!(header.starts_with('*'), "expected array, got {text:?}");
    let n: usize = header[1..].parse().expect("count");
    (0..n)
        .map(|_| {
            let len = lines.next().expect("bulk header");
            assert!(len.starts_with('$'), "expected bulk, got {text:?}");
            lines.next().expect("bulk body").to_string()
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let tenants = args.get_usize("tenants", 3);
    let docs = args.get_usize("docs", 150);
    let mean_terms = args.get_usize("mean-terms", 120);
    let queries = args.get_usize("queries", 400);
    let seed = args.get_u64("seed", 42);
    require_nonzero(
        "tenant_serve",
        &[
            ("--tenants", tenants),
            ("--docs", docs),
            ("--mean-terms", mean_terms),
            ("--queries", queries),
        ],
    );

    let b = ((docs as f64).sqrt() * 3.0).round().max(4.0) as u64;
    let per_bucket = ((docs as f64 / b as f64) * mean_terms as f64 * 1.2).ceil() as usize;
    let params = RamboParams::flat(
        b,
        3,
        rambo_bloom::params::optimal_m(per_bucket.max(64), 0.01),
        2,
        seed,
    );
    eprintln!("tenant_serve: tenants={tenants} docs={docs}/tenant B={b} queries={queries}/tenant");

    // Per-tenant corpora: tenant 0 is a Zipf text corpus (heavy term reuse
    // across documents — the many-sets workload of the paper's §3.3), the
    // rest synthetic archives with per-doc private terms.
    let workloads: Vec<Workload> = (0..tenants)
        .map(|t| {
            let tenant = format!("tenant-{t}");
            let mut docs = if t == 0 {
                let corpus = ZipfCorpus::generate(&CorpusParams {
                    docs,
                    vocab: 4000,
                    exponent: 1.07,
                    mean_terms,
                    seed: seed ^ 0x21F0,
                });
                corpus
                    .docs
                    .into_iter()
                    .enumerate()
                    .map(|(i, d)| (format!("t0-{i}"), d.terms))
                    .collect()
            } else {
                archive_with_mean_terms(docs, mean_terms, seed.wrapping_add(t as u64))
                    .docs
                    .into_iter()
                    .enumerate()
                    .map(|(i, (_, terms))| (format!("t{t}-{i}"), terms))
                    .collect::<Vec<_>>()
            };
            // The wire protocol (sensibly) refuses term-less inserts.
            for (i, (_, terms)) in docs.iter_mut().enumerate() {
                if terms.is_empty() {
                    terms.push(0x0DD_BA11 ^ (i as u64) << 8);
                }
            }
            Workload { tenant, docs }
        })
        .collect();

    let registry = TenantRegistry::new(params, TenantQuotas::default()).expect("registry params");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let stop = AtomicBool::new(false);

    let mut per_tenant_lat: Vec<Vec<f64>> = Vec::new();
    let mut insert_elapsed_s = 0.0f64;
    let mut parity_ok = true;
    let mut quota_ok = true;
    let mut wire_rejections = 0u64;

    std::thread::scope(|s| {
        let server = s.spawn(|| {
            serve_tenant_tcp(
                &registry,
                listener,
                None,
                &stop,
                &TenantServeOptions::default(),
            )
        });

        // Load + measure phase: one wire client per tenant, concurrently.
        let t0 = Instant::now();
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                s.spawn(move || {
                    let mut c = TestClient::connect(addr).expect("dial");
                    c.send_resp(&[b"R.CREATE", w.tenant.as_bytes(), b"fpr=0.01"])
                        .expect("create");
                    assert_eq!(c.read_resp_reply().expect("create reply"), b"+OK\r\n");
                    for (i, (name, terms)) in w.docs.iter().enumerate() {
                        let term_strs: Vec<String> = terms.iter().map(u64::to_string).collect();
                        let mut cmd: Vec<&[u8]> =
                            vec![b"R.INSERTDOC", w.tenant.as_bytes(), name.as_bytes()];
                        cmd.extend(term_strs.iter().map(String::as_bytes));
                        c.send_resp(&cmd).expect("insert");
                        assert_eq!(
                            c.read_resp_reply().expect("insert reply"),
                            format!(":{i}\r\n").into_bytes(),
                            "{}: insert ids must be dense",
                            w.tenant
                        );
                    }
                    // Timed probes: 3/4 planted terms, 1/4 absent.
                    let mut lat_us = Vec::with_capacity(queries);
                    for q in 0..queries {
                        let term = if q % 4 == 3 {
                            absent_term(q)
                        } else {
                            let ts = &w.docs[q % w.docs.len()].1;
                            ts[q % ts.len()]
                        };
                        let term = term.to_string();
                        let t = Instant::now();
                        c.send_resp(&[b"R.QUERYSEQ", w.tenant.as_bytes(), b"1.0", term.as_bytes()])
                            .expect("query");
                        let _ = c.read_resp_reply().expect("query reply");
                        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                    }
                    lat_us
                })
            })
            .collect();
        per_tenant_lat = handles.into_iter().map(|h| h.join().unwrap()).collect();
        insert_elapsed_s = t0.elapsed().as_secs_f64();

        // Quota phase: a capped tenant must reject every insert beyond its
        // document quota, in-protocol.
        {
            let cap = (docs / 4).max(1);
            let mut c = TestClient::connect(addr).expect("dial");
            c.send_resp(&[b"R.CREATE", b"capped", format!("docs={cap}").as_bytes()])
                .expect("create capped");
            assert_eq!(c.read_resp_reply().expect("reply"), b"+OK\r\n");
            for i in 0..docs {
                let name = format!("c-{i}");
                let term = (0xCAFE_0000 + i as u64).to_string();
                c.send_resp(&[b"R.INSERTDOC", b"capped", name.as_bytes(), term.as_bytes()])
                    .expect("insert");
                let reply = c.read_resp_reply().expect("reply");
                if reply.starts_with(b"-ERR quota exceeded") {
                    wire_rejections += 1;
                } else if !reply.starts_with(b":") {
                    eprintln!("QUOTA FAILURE: unexpected reply {reply:?}");
                    quota_ok = false;
                }
            }
            let expect = (docs - cap) as u64;
            let counted = registry
                .stats("capped")
                .expect("capped stats")
                .quota_rejections;
            if wire_rejections != expect || counted != expect {
                eprintln!(
                    "QUOTA FAILURE: wire {wire_rejections}, counter {counted}, expect {expect}"
                );
                quota_ok = false;
            }
        }

        // Parity phase: every tenant's probe battery over the wire vs an
        // isolated oracle built from that tenant's documents alone.
        let mut ctx = QueryContext::new();
        for w in &workloads {
            let mut oracle = Rambo::new(params).expect("oracle params");
            for (name, terms) in &w.docs {
                oracle
                    .insert_document(name, terms.iter().copied())
                    .expect("oracle insert");
            }
            let mut c = TestClient::connect(addr).expect("dial");
            for q in 0..queries.min(200) {
                let (theta, theta_s): (f64, &[u8]) = if q % 3 == 0 {
                    (0.5, b"0.5")
                } else {
                    (1.0, b"1.0")
                };
                let ts1 = &w.docs[q % w.docs.len()].1;
                let t1 = ts1[q % ts1.len()];
                let t2 = w.docs[(q * 7 + 1) % w.docs.len()].1[0];
                let (s1, s2) = (t1.to_string(), t2.to_string());
                c.send_resp(&[
                    b"R.QUERYSEQ",
                    w.tenant.as_bytes(),
                    theta_s,
                    s1.as_bytes(),
                    s2.as_bytes(),
                ])
                .expect("parity query");
                let got = array_docs(&c.read_resp_reply().expect("parity reply"));
                let ids = oracle.query_sequence_theta(&[t1, t2], theta, QueryMode::Full, &mut ctx);
                let want: Vec<String> = ids.iter().map(|&d| w.docs[d as usize].0.clone()).collect();
                if got != want {
                    eprintln!(
                        "PARITY FAILURE: {} q{q} theta {theta}: wire {got:?} oracle {want:?}",
                        w.tenant
                    );
                    parity_ok = false;
                }
            }
        }

        stop.store(true, Ordering::Relaxed);
        server.join().unwrap().expect("server");
    });
    assert!(parity_ok, "a tenant diverged from its isolated oracle");
    assert!(quota_ok, "quota enforcement failed");

    let all: Vec<f64> = per_tenant_lat.iter().flatten().copied().collect();
    let total_docs = (tenants * docs) as f64;
    eprintln!(
        "load: {:.0} docs/s across {tenants} tenants; read p50 {:.0}µs p99 {:.0}µs; \
         {wire_rejections} quota rejections; parity OK",
        total_docs / insert_elapsed_s,
        percentile(&all, 50.0),
        percentile(&all, 99.0),
    );

    let mut report = JsonReport::new("tenant_serve");
    report
        .int("tenants", tenants as u64)
        .int("docs_per_tenant", docs as u64)
        .int("queries_per_tenant", queries as u64)
        .int("buckets", b)
        .num("load_s", insert_elapsed_s)
        .num("load_docs_per_s", total_docs / insert_elapsed_s)
        .num("read_p50_us", percentile(&all, 50.0))
        .num("read_p99_us", percentile(&all, 99.0))
        .int("quota_rejections", wire_rejections)
        .num("quota_enforcement_ok", f64::from(u8::from(quota_ok)))
        .num("tenant_isolation_parity_ok", f64::from(u8::from(parity_ok)));
    for (t, lat) in per_tenant_lat.iter().enumerate() {
        report.num(&format!("tenant{t}_read_p50_us"), percentile(lat, 50.0));
        report.num(&format!("tenant{t}_read_p99_us"), percentile(lat, 99.0));
    }
    report.finish("BENCH_tenant.json");
}
