//! Probe-kernel benchmark: the row-at-a-time scalar AND loop (the
//! pre-kernel query hot path) vs the fused 4-row word-parallel kernel of
//! [`rambo_bitvec::kernel`], on tables well past the last-level cache —
//! with one fused row per **kernel backend** (the portable auto-vectorized
//! loop pinned via `Kernel::forced(Backend::Scalar)`, the AVX2
//! `target_feature` variant where the host supports it, and the dispatched
//! default the production query path uses) — plus the storage backends:
//! copying [`Rambo::from_bytes`] load vs the zero-copy [`Rambo::open_view`],
//! with query parity asserted between them.
//!
//! Emits `BENCH_probe.json` (`fused_<backend>_ms` /
//! `speedup_fused_<backend>_vs_scalar` per supported backend;
//! `dispatch_backend` records what `Kernel::auto()` picked).
//!
//! ```text
//! cargo run --release -p rambo-bench --bin probe_kernel -- \
//!     --mask-words 524288 --rows 16 --iters 5 --docs 200 --queries 500
//! ```

use rambo_bench::{
    archive_with_mean_terms, build_rambo, paper_rambo_params, single_term_queries, speedup, us_per,
    Args, JsonReport,
};
use rambo_bitvec::kernel::{self, Backend, Kernel};
use rambo_core::{QueryContext, QueryMode, Rambo};
use rambo_hash::SplitMix64;
use rambo_workloads::timing::time;
use std::sync::Arc;

/// Row-at-a-time baseline: one pass over the mask per probed row, exactly
/// like the pre-kernel `probe_all_into` loop.
fn probe_scalar(mask: &mut [u64], rows: &[u64], mask_words: usize) {
    mask.fill(u64::MAX);
    for row in rows.chunks_exact(mask_words) {
        kernel::and_into_scalar(mask, row);
    }
}

/// Fused kernel under one pinned backend: four rows ANDed into the mask per
/// pass, early-exiting the moment the mask dies (it does not on random rows
/// of this density).
fn probe_fused(k: Kernel, mask: &mut [u64], rows: &[u64], mask_words: usize) {
    mask.fill(u64::MAX);
    let mut chunks = rows.chunks_exact(4 * mask_words);
    for quad in &mut chunks {
        let (r0, rest) = quad.split_at(mask_words);
        let (r1, rest) = rest.split_at(mask_words);
        let (r2, r3) = rest.split_at(mask_words);
        if !k.and_rows_into_any(mask, [r0, r1, r2, r3]) {
            return;
        }
    }
    for row in chunks.remainder().chunks_exact(mask_words) {
        if !k.and_rows_into_any(mask, [row]) {
            return;
        }
    }
}

fn main() {
    let args = Args::parse();
    let mask_words = args.get_usize("mask-words", 1 << 19); // 4 MiB mask
    let n_rows = args.get_usize("rows", 16);
    if mask_words == 0 || n_rows == 0 {
        eprintln!(
            "probe_kernel: --mask-words and --rows must be >= 1 \
             (a zero-sized table has no probe to measure)"
        );
        std::process::exit(2);
    }
    let iters = args.get_usize("iters", 5).max(1);
    let docs = args.get_usize("docs", 200);
    let mean_terms = args.get_usize("mean-terms", 400);
    let n_queries = args.get_usize("queries", 500);
    let seed = args.get_u64("seed", 7);

    // ---- Kernel comparison on a >LLC table of random Bloom rows. ----
    let mut rng = SplitMix64::new(seed);
    let rows: Vec<u64> = (0..n_rows * mask_words).map(|_| rng.next_u64()).collect();
    let table_bytes = rows.len() * 8;
    let mut mask_s = vec![0u64; mask_words];
    let mut mask_v = vec![0u64; mask_words];

    let (_, t_scalar) = time(|| {
        for _ in 0..iters {
            probe_scalar(&mut mask_s, &rows, mask_words);
        }
    });
    // The dispatched default — the exact path `probe_all_into` runs in
    // production (best supported backend, RAMBO_KERNEL to override).
    let dispatch = Kernel::auto();
    let (_, t_vec) = time(|| {
        for _ in 0..iters {
            probe_fused(dispatch, &mut mask_v, &rows, mask_words);
        }
    });
    assert_eq!(mask_s, mask_v, "kernels must be bit-identical");
    let kernel_speedup = speedup(t_scalar, t_vec);
    eprintln!(
        "probe kernel: {table_bytes} B table, {n_rows} rows × {iters} iters — \
         row-at-a-time scalar {:.2} ms, fused dispatch[{}] {:.2} ms ({kernel_speedup:.2}x)",
        t_scalar.as_secs_f64() * 1e3,
        dispatch.backend(),
        t_vec.as_secs_f64() * 1e3,
    );

    // One fused row per supported backend, pinned via `Kernel::forced`, all
    // asserted bit-identical to the row-at-a-time reference mask.
    let mut backend_rows: Vec<(Backend, std::time::Duration)> = Vec::new();
    let mut mask_b = vec![0u64; mask_words];
    for backend in Backend::ALL {
        let Ok(k) = Kernel::forced(backend) else {
            eprintln!("probe kernel: backend {backend} unsupported on this host, skipped");
            continue;
        };
        let (_, t_b) = time(|| {
            for _ in 0..iters {
                probe_fused(k, &mut mask_b, &rows, mask_words);
            }
        });
        assert_eq!(mask_s, mask_b, "backend {backend} must be bit-identical");
        eprintln!(
            "probe kernel: fused {backend} {:.2} ms ({:.2}x vs row-at-a-time)",
            t_b.as_secs_f64() * 1e3,
            speedup(t_scalar, t_b),
        );
        backend_rows.push((backend, t_b));
    }

    // ---- Storage comparison: copying load vs zero-copy view. ----
    let archive = archive_with_mean_terms(docs, mean_terms, seed);
    let index = build_rambo(
        paper_rambo_params(docs, mean_terms, false, seed),
        &archive.docs,
    );
    let bytes = index.to_bytes().expect("serializable index");
    let index_bytes = bytes.len();
    let buf: Arc<[u8]> = bytes.into();

    let (owned, t_load_owned) = time(|| Rambo::from_bytes(&buf).expect("valid index"));
    let (view, t_load_view) = time(|| Rambo::open_view(buf.clone()).expect("valid index"));
    assert!(view.is_view() && view.payload_borrows(&buf));
    assert!(!owned.payload_borrows(&buf));

    let queries = single_term_queries(&archive, n_queries);
    let run = |idx: &Rambo| {
        let mut ctx = QueryContext::new();
        queries
            .iter()
            .map(|&t| idx.query_terms_with(&[t], QueryMode::Full, &mut ctx))
            .collect::<Vec<_>>()
    };
    let (res_owned, t_q_owned) = time(|| run(&owned));
    let (res_view, t_q_view) = time(|| run(&view));
    assert_eq!(res_owned, res_view, "owned and view storage must agree");

    let nq = queries.len();
    eprintln!(
        "storage: {index_bytes} B index — load from_bytes {:.3} ms, open_view {:.3} ms; \
         query owned {:.2} us, view {:.2} us",
        t_load_owned.as_secs_f64() * 1e3,
        t_load_view.as_secs_f64() * 1e3,
        us_per(t_q_owned, nq),
        us_per(t_q_view, nq),
    );

    let mut report = JsonReport::new("probe_kernel");
    report
        .int("table_bytes", table_bytes as u64)
        .int("mask_words", mask_words as u64)
        .int("rows", n_rows as u64)
        .int("iters", iters as u64)
        .num("scalar_ms", t_scalar.as_secs_f64() * 1e3 / iters as f64)
        .num("vectorized_ms", t_vec.as_secs_f64() * 1e3 / iters as f64)
        .num("speedup_vectorized_vs_scalar", kernel_speedup)
        .str("dispatch_backend", dispatch.backend().name());
    for (backend, t_b) in &backend_rows {
        report
            .num(
                &format!("fused_{}_ms", backend.name()),
                t_b.as_secs_f64() * 1e3 / iters as f64,
            )
            .num(
                &format!("speedup_fused_{}_vs_scalar", backend.name()),
                speedup(t_scalar, *t_b),
            );
    }
    report
        .int("index_bytes", index_bytes as u64)
        .int("docs", docs as u64)
        .num("load_from_bytes_ms", t_load_owned.as_secs_f64() * 1e3)
        .num("load_view_ms", t_load_view.as_secs_f64() * 1e3)
        .ratio("load_speedup_view", t_load_owned, t_load_view)
        .int("view_borrows_payload", 1)
        .num("owned_query_us_per_query", us_per(t_q_owned, nq))
        .num("view_query_us_per_query", us_per(t_q_view, nq));
    report.finish("BENCH_probe.json");
}
