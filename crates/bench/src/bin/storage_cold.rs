//! Storage-tier benchmark: compressed cold tiers, paged catalog opens, and
//! the block cache's cold-vs-hot serving gap.
//!
//! Two experiments, one report (`BENCH_storage.json`):
//!
//! 1. **Compression** — build the same index into two two-tier catalogs,
//!    all-dense vs RRR-compressed tier 0 (the paper's Table 3 trade: RAMBO
//!    forgoes the RRR compression HowDeSBT/SSBT use; here cold tiers get
//!    it back). Reports bits/doc per tier, the headline
//!    `dense_over_rrr_bits_per_doc` ratio, and the query cost of serving
//!    compressed — after asserting both tiers answer **identically**.
//! 2. **Paged serving** — write a ≥100MB all-dense catalog to disk, open it
//!    with [`Catalog::open_paged`] (metadata only; payload blocks fault
//!    through the byte-budgeted block cache) and measure: open time vs a
//!    4×-smaller file (`paged_open_payload_independence` ≈ 4 when the open
//!    is O(metadata)), open time vs a full read+parse
//!    (`cold_open_speedup_vs_full`), per-query p50 cold (faulting) vs hot
//!    (cache-resident), and the block-cache hit ratios behind both.
//!
//! ```text
//! cargo run --release -p rambo-bench --bin storage_cold -- \
//!     --docs 400 --terms 2000 --buckets 1024 --paged-m-bits 20
//! ```

use rambo_bench::{archive_with_mean_terms, us_per, window_queries, Args, JsonReport};
use rambo_core::{RamboParams, TierCompression};
use rambo_server::Catalog;
use rambo_workloads::timing::time;
use std::time::{Duration, Instant};

/// Serving-latency design ceiling for a cold (all-faulting) query, µs. The
/// gate metric `cold_query_headroom = CEILING / cold_p50_us` must stay ≥ 1:
/// a cold query against a 100MB+ on-disk catalog answers well inside the
/// paper's "milliseconds" envelope.
const COLD_QUERY_CEILING_US: f64 = 20_000.0;

fn p50(mut samples: Vec<Duration>) -> Duration {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Time each query separately (the paged experiments need a latency
/// *distribution* — cold faults make the mean meaningless).
fn per_query_times(catalog: &Catalog, tier: usize, queries: &[Vec<u64>]) -> (Vec<Duration>, usize) {
    let index = catalog.tier(tier);
    let mut times = Vec::with_capacity(queries.len());
    let mut hits = 0usize;
    for q in queries {
        let start = Instant::now();
        hits += index.query_terms_u64(q, rambo_core::QueryMode::Full).len();
        times.push(start.elapsed());
    }
    (times, hits)
}

fn main() {
    let args = Args::parse();
    let docs = args.get_usize("docs", 400);
    let terms = args.get_usize("terms", 2000);
    let buckets = args.get_u64("buckets", 1024);
    let paged_docs = args.get_usize("paged-docs", 64);
    let paged_terms = args.get_usize("paged-terms", 500);
    let paged_m_bits = args.get_usize("paged-m-bits", 20);
    let cache_mb = args.get_usize("cache-mb", 192);
    let n_queries = args.get_usize("queries", 256);
    let seed = args.get_u64("seed", 42);
    rambo_bench::require_nonzero(
        "storage_cold",
        &[
            ("--docs", docs),
            ("--terms", terms),
            ("--buckets", buckets as usize),
            ("--paged-docs", paged_docs),
            ("--paged-terms", paged_terms),
            ("--paged-m-bits", paged_m_bits),
            ("--cache-mb", cache_mb),
            ("--queries", n_queries),
        ],
    );

    let mut report = JsonReport::new("storage_cold");
    report
        .int("docs", docs as u64)
        .int("terms", terms as u64)
        .int("buckets", buckets)
        .int("paged_docs", paged_docs as u64)
        .int("paged_terms", paged_terms as u64)
        .int("paged_m_bits", paged_m_bits as u64)
        .int("cache_mb", cache_mb as u64)
        .int("seed", seed);

    // ---- 1. Compressed cold tier vs dense ---------------------------------
    // Size m for a sparse tier-0 (fill ≈ 2.5%): RRR wins on sparse rows, and
    // the unfolded tier is exactly where the catalog is sparse — folding ORs
    // columns together and raises fill, which is why the folded tier below
    // stays dense.
    let eta = 2u32;
    let keys_per_bucket = (docs as f64 / buckets as f64) * terms as f64;
    let m = ((f64::from(eta) * keys_per_bucket / 0.025) as usize)
        .next_power_of_two()
        .max(1 << 10);
    let params = RamboParams::flat(buckets, 2, m, eta, seed);
    let archive = archive_with_mean_terms(docs, terms, seed);
    let base = rambo_bench::build_rambo(params, &archive.docs);
    let tier_plan_dense = [buckets, buckets / 4];
    eprintln!(
        "compression: K={docs} terms={terms} B={buckets} m={m} tiers={tier_plan_dense:?} \
         fill={:.4}",
        base.fill_stats().0
    );

    let dense_cat = Catalog::build(&base, &tier_plan_dense).expect("dense catalog");
    let rrr_cat = Catalog::build_with(
        &base,
        &[
            (buckets, TierCompression::Rrr),
            (buckets / 4, TierCompression::Dense),
        ],
    )
    .expect("mixed catalog");

    // Bits/doc per tier (the paper's Table 3 unit), from the encoded sizes.
    let bits_per_doc = |encoded_len: usize| encoded_len as f64 * 8.0 / docs as f64;
    let dense_t0 = bits_per_doc(dense_cat.info(0).encoded_len);
    let dense_t1 = bits_per_doc(dense_cat.info(1).encoded_len);
    let rrr_t0 = bits_per_doc(rrr_cat.info(0).encoded_len);
    report
        .num("dense_bits_per_doc_tier0", dense_t0)
        .num("dense_bits_per_doc_tier1", dense_t1)
        .num("rrr_bits_per_doc_tier0", rrr_t0)
        .num("dense_over_rrr_bits_per_doc", dense_t0 / rrr_t0);

    // Parity first, then timing: the RRR tier must answer bit-identically.
    let queries = window_queries(&archive, 4, 2, n_queries);
    for q in &queries {
        assert_eq!(
            rrr_cat
                .tier(0)
                .query_terms_u64(q, rambo_core::QueryMode::Full),
            dense_cat
                .tier(0)
                .query_terms_u64(q, rambo_core::QueryMode::Full),
            "RRR tier diverged from dense on {q:?}"
        );
    }
    let (dense_hits, dense_time) = time(|| {
        queries
            .iter()
            .map(|q| {
                dense_cat
                    .tier(0)
                    .query_terms_u64(q, rambo_core::QueryMode::Full)
                    .len()
            })
            .sum::<usize>()
    });
    let (rrr_hits, rrr_time) = time(|| {
        queries
            .iter()
            .map(|q| {
                rrr_cat
                    .tier(0)
                    .query_terms_u64(q, rambo_core::QueryMode::Full)
                    .len()
            })
            .sum::<usize>()
    });
    assert_eq!(dense_hits, rrr_hits);
    report
        .num("dense_query_us", us_per(dense_time, queries.len()))
        .num("rrr_query_us", us_per(rrr_time, queries.len()));
    eprintln!(
        "compression: tier0 {:.0} bits/doc dense vs {:.0} RRR ({:.2}x), query {:.1}us vs {:.1}us",
        dense_t0,
        rrr_t0,
        dense_t0 / rrr_t0,
        us_per(dense_time, queries.len()),
        us_per(rrr_time, queries.len()),
    );

    // ---- 2. Paged open + cold/hot serving ---------------------------------
    // Two single-tier on-disk catalogs differing ONLY in filter bits (4x):
    // an O(metadata) open costs the same on both, an O(payload) open does
    // not. The big file is the ≥100MB acceptance artifact at default flags
    // (2 reps x 2^20 x 512 bits = 128MB).
    let dir = std::path::Path::new("target").join("storage_cold");
    std::fs::create_dir_all(&dir).expect("create target/storage_cold");
    let paged_archive = archive_with_mean_terms(paged_docs, paged_terms, seed + 1);
    let paged_buckets = 512u64.min(buckets);
    let mut sizes = Vec::new();
    for (tag, m_bits) in [("big", paged_m_bits), ("small", paged_m_bits - 2)] {
        let params = RamboParams::flat(paged_buckets, 2, 1 << m_bits, eta, seed + 1);
        let index = rambo_bench::build_rambo(params, &paged_archive.docs);
        let bytes = index.to_bytes().expect("serialize");
        let path = dir.join(format!("{tag}.cat"));
        std::fs::write(&path, &bytes).expect("write catalog file");
        eprintln!("paged: wrote {} ({} MB)", path.display(), bytes.len() >> 20);
        sizes.push((path, bytes.len()));
    }
    let (big_path, big_len) = sizes[0].clone();
    let (small_path, _) = sizes[1].clone();
    report.int("paged_file_bytes", big_len as u64);
    let cache_bytes = cache_mb << 20;

    // Open cost, best of 5 (page-cache warmup on the metadata reads is part
    // of what "best" strips out; the payload is never read either way).
    let best_open = |path: &std::path::Path| {
        (0..5)
            .map(|_| {
                let (cat, t) = time(|| Catalog::open_paged(path, cache_bytes).expect("open_paged"));
                drop(cat);
                t
            })
            .min()
            .expect("five opens")
    };
    let open_big = best_open(&big_path);
    let open_small = best_open(&small_path);
    let (full_cat, open_full) = time(|| {
        let bytes = std::fs::read(&big_path).expect("read catalog");
        Catalog::open(bytes.into()).expect("open buffered")
    });
    // 4x the payload should cost ~1x the open when reads are O(metadata):
    // normalize so "fully payload-bound" ≈ 1 and "payload-independent" ≈ 4.
    let independence = 4.0 / (open_big.as_secs_f64() / open_small.as_secs_f64().max(1e-9));
    report
        .num("paged_open_us", open_big.as_secs_f64() * 1e6)
        .num("paged_open_small_us", open_small.as_secs_f64() * 1e6)
        .num("full_open_us", open_full.as_secs_f64() * 1e6)
        .num("paged_open_payload_independence", independence)
        .ratio("cold_open_speedup_vs_full", open_full, open_big);
    eprintln!(
        "paged: open big {:?} / small {:?} (independence {:.2}), full read+parse {:?}",
        open_big, open_small, independence, open_full
    );

    // Cold pass: a fresh open faults every probed block from disk. Hot
    // pass: same catalog, same queries — every probe hits the block cache.
    let paged_queries = window_queries(&paged_archive, 4, 4, n_queries);
    let cold_cat = Catalog::open_paged(&big_path, cache_bytes).expect("open_paged");
    let (cold_times, cold_hits) = per_query_times(&cold_cat, 0, &paged_queries);
    let cold_blocks = cold_cat.block_cache_stats(0).expect("paged tier");
    let (hot_times, hot_hits) = per_query_times(&cold_cat, 0, &paged_queries);
    let after_hot = cold_cat.block_cache_stats(0).expect("paged tier");
    assert_eq!(cold_hits, hot_hits, "hot pass must answer identically");
    // Paged answers must match the in-memory catalog bit for bit.
    for q in paged_queries.iter().take(32) {
        assert_eq!(
            cold_cat
                .tier(0)
                .query_terms_u64(q, rambo_core::QueryMode::Full),
            full_cat
                .tier(0)
                .query_terms_u64(q, rambo_core::QueryMode::Full),
            "paged tier diverged from buffered on {q:?}"
        );
    }
    let cold_p50 = p50(cold_times);
    let hot_p50 = p50(hot_times);
    let hot_blocks_hits = after_hot.hits - cold_blocks.hits;
    let hot_blocks_misses = after_hot.misses - cold_blocks.misses;
    let hot_hit_ratio = if hot_blocks_hits + hot_blocks_misses == 0 {
        0.0
    } else {
        hot_blocks_hits as f64 / (hot_blocks_hits + hot_blocks_misses) as f64
    };
    let cold_p50_us = cold_p50.as_secs_f64() * 1e6;
    report
        .num("cold_p50_us", cold_p50_us)
        .num("hot_p50_us", hot_p50.as_secs_f64() * 1e6)
        .ratio("hot_over_cold_query_speedup", cold_p50, hot_p50)
        .num(
            "cold_query_headroom",
            COLD_QUERY_CEILING_US / cold_p50_us.max(1e-9),
        )
        .num("block_hit_ratio_cold", cold_blocks.hit_ratio())
        .num("block_hit_ratio_hot", hot_hit_ratio)
        .int("blocks_faulted_cold", cold_blocks.misses)
        .int("block_evictions", after_hot.evictions);
    eprintln!(
        "paged: cold p50 {:?} (hit ratio {:.3}) -> hot p50 {:?} (hit ratio {:.3})",
        cold_p50,
        cold_blocks.hit_ratio(),
        hot_p50,
        hot_hit_ratio,
    );

    report.finish("BENCH_storage.json");
}
