//! **Table 1 reproduction** — the theoretical query-time comparison, checked
//! empirically: how mean query time grows with `K` for each index family.
//!
//! | structure | paper's query complexity |
//! |---|---|
//! | Inverted index | O(1) best case |
//! | BIGSI/COBS | O(K) |
//! | SBT family | O(log K) best, O(K) worst |
//! | RAMBO | O(√K · log K) |
//!
//! The harness sweeps K geometrically and prints per-doubling growth
//! factors: COBS should approach 2.0x per doubling, RAMBO ≈ √2 ≈ 1.4x, the
//! inverted index ≈ 1.0x, with the trees in between (absent queries prune
//! early; present ones descend).
//!
//! ```text
//! cargo run -p rambo-bench --release --bin table1_scaling -- \
//!     [--ks 400,1600,6400,25600] [--terms 100] [--queries 300] [--alpha 4] [--seed 7]
//!
//! Note on scale: COBS's O(K) term is word-parallel (64 documents per AND
//! word), so its linear growth only emerges for K in the tens of thousands;
//! the default sweep goes there. `--alpha` keeps planted multiplicities
//! small so result-set materialization does not mask index probe costs.
//! ```

use rambo_baselines::{
    BitSlicedIndex, InvertedIndex, MembershipIndex, RamboIndex, RamboPlusIndex, Sbt, SplitSbt,
};
use rambo_bench::{
    build_rambo, mean_query_time, paper_buckets_for, paper_rambo_params_with_fpr, Args,
};
use rambo_workloads::{ArchiveParams, PlantedQueries, SyntheticArchive, Table};

fn main() {
    let args = Args::parse();
    let ks = args.get_usize_list("ks", &[400, 1600, 6400, 25600]);
    let mean_terms = args.get_usize("terms", 100);
    let n_queries = args.get_usize("queries", 300);
    let alpha = args.get_f64("alpha", 4.0);
    let seed = args.get_u64("seed", 7);
    rambo_bench::require_nonzero(
        "table1_scaling",
        &[
            ("--ks", ks.iter().copied().min().unwrap_or(0)),
            ("--terms", mean_terms),
            ("--queries", n_queries),
        ],
    );

    println!("RAMBO reproduction — Table 1 (query-time scaling with K)\n");
    let labels = ["Inverted", "RAMBO", "RAMBO+", "COBS", "SBT", "SSBT"];
    let mut headers = vec!["K".to_string()];
    headers.extend(labels.iter().map(|l| format!("{l} (us)")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("mean query time (microseconds)", &header_refs);

    let mut series: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    for &k in &ks {
        let mut p = ArchiveParams::tiny(k, seed);
        p.mean_terms = mean_terms;
        p.std_terms = mean_terms / 3;
        let mut archive = SyntheticArchive::generate(&p);
        let planted = PlantedQueries::generate(n_queries, k, alpha, seed ^ 0xAB);
        planted.plant_into(&mut archive.docs);
        let terms: Vec<u64> = planted.queries.iter().map(|(t, _)| *t).collect();
        let docs = &archive.docs;

        // Theorem 4.5's precondition: per-BFU FPR p ≤ 1/B, so the
        // B·p false-bucket term of Lemma 4.4 stays O(1) as K grows.
        let p_bfu = (1.0 / paper_buckets_for(k) as f64).min(0.01);
        let rambo = build_rambo(
            paper_rambo_params_with_fpr(k, mean_terms, false, p_bfu, seed),
            docs,
        );
        let max_n = docs.iter().map(|(_, t)| t.len()).max().unwrap_or(1).max(1);
        let m_tree = rambo_bloom::params::optimal_m(max_n, 0.01);
        let indexes: Vec<Box<dyn MembershipIndex>> = vec![
            Box::new(InvertedIndex::build(docs)),
            Box::new(RamboIndex::new(rambo.clone())),
            Box::new(RamboPlusIndex::new(rambo)),
            Box::new(BitSlicedIndex::build_auto(docs, 0.01, 3, seed)),
            Box::new(Sbt::build(docs, m_tree, 1, seed)),
            Box::new(SplitSbt::build(docs, m_tree, 1, seed, false)),
        ];

        let mut row = vec![k.to_string()];
        for (i, idx) in indexes.iter().enumerate() {
            let t = mean_query_time(idx.as_ref(), &terms).as_secs_f64() * 1e6;
            series[i].push(t);
            row.push(format!("{t:.2}"));
        }
        table.row(&row);
    }
    println!("{table}");

    // Per-doubling growth factors (geometric mean across the sweep).
    let mut growth = Table::new(
        "growth factor per K-doubling (geometric mean)",
        &["index", "growth", "theory"],
    );
    let theory = [
        "~1.0 (O(1))",
        "~1.4 (O(sqrt K log K))",
        "~1.4",
        "~2.0 (O(K))",
        "1..2 (O(log K)..O(K))",
        "1..2",
    ];
    for (i, label) in labels.iter().enumerate() {
        let s = &series[i];
        if s.len() < 2 {
            continue;
        }
        let mut factors = Vec::new();
        for w in s.windows(2) {
            // Adjacent Ks may not be exact doublings; normalize the ratio to
            // a per-doubling exponent.
            let k_ratio = ks[factors.len() + 1] as f64 / ks[factors.len()] as f64;
            let t_ratio = (w[1] / w[0]).max(1e-9);
            factors.push(t_ratio.powf(1.0 / k_ratio.log2()));
        }
        let g = rambo_workloads::stats::geo_mean(&factors);
        growth.row(&[
            (*label).to_string(),
            format!("{g:.2}x"),
            theory[i].to_string(),
        ]);
    }
    println!("{growth}");
    println!("shape check: COBS growth > RAMBO growth > Inverted growth.");
}
