//! Shared harness machinery for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index); this library holds what they
//! share: the paper's parameter grids, index-suite construction with build
//! timing, query timing loops, and a tiny CLI-argument parser (no external
//! dependency).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rambo_baselines::{
    BitSlicedIndex, CompactBitSliced, MembershipIndex, RamboIndex, RamboPlusIndex, Sbt, SplitSbt,
};
use rambo_core::{Rambo, RamboParams};
use rambo_workloads::timing::time;
use std::time::Duration;

/// The paper's Table 2 parameter grid: `(files, B)` with `B ∈
/// {15, 27, 60, 100, 200}` for `K ∈ {100, 200, 500, 1000, 2000}`.
#[must_use]
pub fn paper_buckets_for(k: usize) -> u64 {
    match k {
        0..=100 => 15,
        101..=200 => 27,
        201..=500 => 60,
        501..=1000 => 100,
        _ => {
            // Extend the paper's grid by its own rule B = O(√K): the listed
            // constants track ≈ 4.5·√K / √10.
            let exact = [(100u64, 15u64), (200, 27), (500, 60), (1000, 100), (2000, 200)];
            if let Some(&(_, b)) = exact.iter().find(|&&(kk, _)| kk == k as u64) {
                b
            } else {
                ((k as f64).sqrt() * 4.5).round() as u64
            }
        }
    }
}

/// RAMBO parameters for a Table-2-style run: the paper's `B` grid, `R = 2`
/// for McCortex-style input or `R = 3` for FASTQ-style, BFU bits sized by
/// the §5.1 pooling method at per-BFU FPR 1%.
#[must_use]
pub fn paper_rambo_params(k: usize, mean_terms: usize, fastq: bool, seed: u64) -> RamboParams {
    paper_rambo_params_with_fpr(k, mean_terms, fastq, 0.01, seed)
}

/// [`paper_rambo_params`] with an explicit per-BFU FPR target. The scaling
/// harness passes `p ≤ 1/B`, the assumption under which Theorem 4.5's
/// `O(√K log K)` holds (the `B·p` false-bucket term of Lemma 4.4 stays
/// constant instead of growing with `B`).
#[must_use]
pub fn paper_rambo_params_with_fpr(
    k: usize,
    mean_terms: usize,
    fastq: bool,
    p: f64,
    seed: u64,
) -> RamboParams {
    let b = paper_buckets_for(k);
    let r = if fastq { 3 } else { 2 };
    let per_bucket = (((k as f64 / b as f64) * mean_terms as f64)
        * rambo_core::theory::gamma(b, 2))
    .ceil()
    .max(64.0) as usize;
    RamboParams::flat(
        b,
        r,
        rambo_bloom::params::optimal_m(per_bucket, p),
        2,
        seed,
    )
}

/// One built index with its construction time.
pub struct BuiltIndex {
    /// The index behind the common query interface.
    pub index: Box<dyn MembershipIndex>,
    /// Wall-clock construction time.
    pub build_time: Duration,
}

/// Build the full Table 2 suite over a document batch: RAMBO, RAMBO+, COBS
/// (compact), COBS(uniform)=BIGSI, SBT, SSBT and HowDeSBT-like. `heavy_trees`
/// can be disabled for large K where the SBT family would dominate harness
/// runtime (mirroring the paper, where HowDeSBT runs out of RAM past 500
/// files).
#[must_use]
pub fn build_suite(
    docs: &[(String, Vec<u64>)],
    mean_terms: usize,
    fastq: bool,
    seed: u64,
    heavy_trees: bool,
) -> Vec<BuiltIndex> {
    let k = docs.len();
    let mut out: Vec<BuiltIndex> = Vec::new();

    let params = paper_rambo_params(k, mean_terms, fastq, seed);
    let (rambo, t) = time(|| build_rambo(params, docs));
    out.push(BuiltIndex {
        index: Box::new(RamboIndex::new(rambo.clone())),
        build_time: t,
    });
    out.push(BuiltIndex {
        index: Box::new(RamboPlusIndex::new(rambo)),
        build_time: t,
    });

    let (cobs, t) = time(|| CompactBitSliced::build(docs, (k / 8).max(8), 0.01, 3, seed));
    out.push(BuiltIndex {
        index: Box::new(cobs),
        build_time: t,
    });
    let (bigsi, t) = time(|| BitSlicedIndex::build_auto(docs, 0.01, 3, seed));
    out.push(BuiltIndex {
        index: Box::new(bigsi),
        build_time: t,
    });

    if heavy_trees {
        // Tree filter size: fit the largest document at 1% (the SBT-family
        // constraint of one size for all nodes).
        let max_n = docs.iter().map(|(_, t)| t.len()).max().unwrap_or(1).max(1);
        let m = rambo_bloom::params::optimal_m(max_n, 0.01);
        let (sbt, t) = time(|| Sbt::build(docs, m, 1, seed));
        out.push(BuiltIndex {
            index: Box::new(sbt),
            build_time: t,
        });
        let (ssbt, t) = time(|| SplitSbt::build(docs, m, 1, seed, false));
        out.push(BuiltIndex {
            index: Box::new(ssbt),
            build_time: t,
        });
        let (howde, t) = time(|| SplitSbt::build(docs, m, 1, seed, true));
        out.push(BuiltIndex {
            index: Box::new(howde),
            build_time: t,
        });
    }
    out
}

/// Build a RAMBO index from a batch.
#[must_use]
pub fn build_rambo(params: RamboParams, docs: &[(String, Vec<u64>)]) -> Rambo {
    let mut r = Rambo::new(params).expect("valid params");
    for (name, terms) in docs {
        r.insert_document(name, terms.iter().copied())
            .expect("unique names");
    }
    r
}

/// Time a query workload: mean wall time per query over `terms`.
#[must_use]
pub fn mean_query_time(index: &dyn MembershipIndex, terms: &[u64]) -> Duration {
    assert!(!terms.is_empty());
    let (_, total) = time(|| {
        let mut touched = 0usize;
        for &t in terms {
            touched += index.query_term(t).len();
        }
        touched
    });
    total / terms.len() as u32
}

/// Minimal `--key value` argument parser for the harness binaries.
#[derive(Debug)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parse `std::env::args()`.
    #[must_use]
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            if let Some(key) = argv[i].strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    pairs.push((key.to_string(), argv[i + 1].clone()));
                    i += 2;
                } else {
                    pairs.push((key.to_string(), "true".to_string()));
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Self { pairs }
    }

    /// Look up a `usize` flag.
    #[must_use]
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Look up a `u64` flag.
    #[must_use]
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Look up an `f64` flag.
    #[must_use]
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Look up a boolean flag (present without value = true).
    #[must_use]
    pub fn get_bool(&self, key: &str) -> bool {
        self.get(key).is_some_and(|v| v != "false")
    }

    /// Raw lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Comma-separated usize list.
    #[must_use]
    pub fn get_usize_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.get(key) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .filter_map(|x| x.trim().parse().ok())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambo_workloads::{ArchiveParams, SyntheticArchive};

    #[test]
    fn paper_bucket_grid_matches_table2() {
        assert_eq!(paper_buckets_for(100), 15);
        assert_eq!(paper_buckets_for(200), 27);
        assert_eq!(paper_buckets_for(500), 60);
        assert_eq!(paper_buckets_for(1000), 100);
        assert_eq!(paper_buckets_for(2000), 200);
        // Extrapolation stays √K-shaped.
        let b4000 = paper_buckets_for(4000);
        assert!((250..350).contains(&(b4000 as usize)), "B(4000) = {b4000}");
    }

    #[test]
    fn suite_builds_and_answers() {
        let archive = SyntheticArchive::generate(&ArchiveParams::tiny(30, 5));
        let suite = build_suite(&archive.docs, 200, false, 5, true);
        assert_eq!(suite.len(), 7);
        let probe = archive.docs[3].1[0];
        for built in &suite {
            assert!(
                built.index.query_term(probe).contains(&3),
                "{} lost the probe",
                built.index.label()
            );
            assert!(built.index.size_bytes() > 0);
        }
    }

    #[test]
    fn mean_query_time_is_positive() {
        let archive = SyntheticArchive::generate(&ArchiveParams::tiny(10, 6));
        let suite = build_suite(&archive.docs, 200, false, 6, false);
        let terms: Vec<u64> = archive.docs.iter().map(|(_, t)| t[0]).collect();
        for built in &suite {
            let d = mean_query_time(built.index.as_ref(), &terms);
            assert!(d.as_nanos() > 0);
        }
    }
}
