//! Shared harness machinery for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index); this library holds what they
//! share: the paper's parameter grids, index-suite construction with build
//! timing, query timing loops, and a tiny CLI-argument parser (no external
//! dependency).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rambo_baselines::{
    BitSlicedIndex, CompactBitSliced, MembershipIndex, RamboIndex, RamboPlusIndex, Sbt, SplitSbt,
};
use rambo_core::{Rambo, RamboParams};
use rambo_workloads::timing::time;
use std::time::Duration;

/// The paper's Table 2 parameter grid: `(files, B)` with `B ∈
/// {15, 27, 60, 100, 200}` for `K ∈ {100, 200, 500, 1000, 2000}`.
#[must_use]
pub fn paper_buckets_for(k: usize) -> u64 {
    match k {
        0..=100 => 15,
        101..=200 => 27,
        201..=500 => 60,
        501..=1000 => 100,
        _ => {
            // Extend the paper's grid by its own rule B = O(√K): the listed
            // constants track ≈ 4.5·√K / √10.
            let exact = [
                (100u64, 15u64),
                (200, 27),
                (500, 60),
                (1000, 100),
                (2000, 200),
            ];
            if let Some(&(_, b)) = exact.iter().find(|&&(kk, _)| kk == k as u64) {
                b
            } else {
                ((k as f64).sqrt() * 4.5).round() as u64
            }
        }
    }
}

/// RAMBO parameters for a Table-2-style run: the paper's `B` grid, `R = 2`
/// for McCortex-style input or `R = 3` for FASTQ-style, BFU bits sized by
/// the §5.1 pooling method at per-BFU FPR 1%.
#[must_use]
pub fn paper_rambo_params(k: usize, mean_terms: usize, fastq: bool, seed: u64) -> RamboParams {
    paper_rambo_params_with_fpr(k, mean_terms, fastq, 0.01, seed)
}

/// [`paper_rambo_params`] with an explicit per-BFU FPR target. The scaling
/// harness passes `p ≤ 1/B`, the assumption under which Theorem 4.5's
/// `O(√K log K)` holds (the `B·p` false-bucket term of Lemma 4.4 stays
/// constant instead of growing with `B`).
#[must_use]
pub fn paper_rambo_params_with_fpr(
    k: usize,
    mean_terms: usize,
    fastq: bool,
    p: f64,
    seed: u64,
) -> RamboParams {
    let b = paper_buckets_for(k);
    let r = if fastq { 3 } else { 2 };
    let per_bucket = (((k as f64 / b as f64) * mean_terms as f64) * rambo_core::theory::gamma(b, 2))
        .ceil()
        .max(64.0) as usize;
    RamboParams::flat(b, r, rambo_bloom::params::optimal_m(per_bucket, p), 2, seed)
}

/// One built index with its construction time.
pub struct BuiltIndex {
    /// The index behind the common query interface.
    pub index: Box<dyn MembershipIndex>,
    /// Wall-clock construction time.
    pub build_time: Duration,
}

/// Build the full Table 2 suite over a document batch: RAMBO, RAMBO+, COBS
/// (compact), COBS(uniform)=BIGSI, SBT, SSBT and HowDeSBT-like. `heavy_trees`
/// can be disabled for large K where the SBT family would dominate harness
/// runtime (mirroring the paper, where HowDeSBT runs out of RAM past 500
/// files).
#[must_use]
pub fn build_suite(
    docs: &[(String, Vec<u64>)],
    mean_terms: usize,
    fastq: bool,
    seed: u64,
    heavy_trees: bool,
) -> Vec<BuiltIndex> {
    let k = docs.len();
    let mut out: Vec<BuiltIndex> = Vec::new();

    let params = paper_rambo_params(k, mean_terms, fastq, seed);
    // Single ingestion thread: the suite's construction-time columns compare
    // against single-threaded COBS/BIGSI/SBT builds, so RAMBO must not get a
    // hidden multi-core advantage here (the thread fan-out is measured
    // separately by the ingest_throughput bin).
    let (rambo, t) = time(|| build_rambo_threads(params, docs, 1));
    out.push(BuiltIndex {
        index: Box::new(RamboIndex::new(rambo.clone())),
        build_time: t,
    });
    out.push(BuiltIndex {
        index: Box::new(RamboPlusIndex::new(rambo)),
        build_time: t,
    });

    let (cobs, t) = time(|| CompactBitSliced::build(docs, (k / 8).max(8), 0.01, 3, seed));
    out.push(BuiltIndex {
        index: Box::new(cobs),
        build_time: t,
    });
    let (bigsi, t) = time(|| BitSlicedIndex::build_auto(docs, 0.01, 3, seed));
    out.push(BuiltIndex {
        index: Box::new(bigsi),
        build_time: t,
    });

    if heavy_trees {
        // Tree filter size: fit the largest document at 1% (the SBT-family
        // constraint of one size for all nodes).
        let max_n = docs.iter().map(|(_, t)| t.len()).max().unwrap_or(1).max(1);
        let m = rambo_bloom::params::optimal_m(max_n, 0.01);
        let (sbt, t) = time(|| Sbt::build(docs, m, 1, seed));
        out.push(BuiltIndex {
            index: Box::new(sbt),
            build_time: t,
        });
        let (ssbt, t) = time(|| SplitSbt::build(docs, m, 1, seed, false));
        out.push(BuiltIndex {
            index: Box::new(ssbt),
            build_time: t,
        });
        let (howde, t) = time(|| SplitSbt::build(docs, m, 1, seed, true));
        out.push(BuiltIndex {
            index: Box::new(howde),
            build_time: t,
        });
    }
    out
}

/// Build a RAMBO index from a batch through the batch-parallel ingestion
/// engine, using all available cores for the per-repetition fan-out.
#[must_use]
pub fn build_rambo(params: RamboParams, docs: &[(String, Vec<u64>)]) -> Rambo {
    build_rambo_threads(params, docs, default_threads())
}

/// [`build_rambo`] with an explicit ingestion thread budget (`1` forces the
/// sequential path; the resulting index is bit-identical either way).
#[must_use]
pub fn build_rambo_threads(
    params: RamboParams,
    docs: &[(String, Vec<u64>)],
    threads: usize,
) -> Rambo {
    let mut r = Rambo::new(params).expect("valid params");
    for (name, terms) in docs {
        r.insert_document_batch_with(name, terms, threads)
            .expect("unique names");
    }
    r
}

pub use rambo_core::default_threads;

/// Synthetic ENA-like archive with an explicit mean terms-per-document —
/// the workload every throughput bin builds (σ is set to a third of the
/// mean, matching the archives the paper's experiments sample).
#[must_use]
pub fn archive_with_mean_terms(
    docs: usize,
    mean_terms: usize,
    seed: u64,
) -> rambo_workloads::SyntheticArchive {
    let mut params = rambo_workloads::ArchiveParams::tiny(docs, seed);
    params.mean_terms = mean_terms;
    params.std_terms = mean_terms / 3;
    rambo_workloads::SyntheticArchive::generate(&params)
}

/// An absent probe term (outside every synthetic document's term range).
#[must_use]
pub fn absent_term(i: usize) -> u64 {
    0xDEAD_0000_0000u64 + i as u64
}

/// Sliding `window`-term queries over the archive's documents (at most
/// `per_doc` windows each, filling 9/10 of `n`), padded to exactly `n` with
/// absent single-term probes. Adjacent queries share `window − 1` terms —
/// the §3.3.1 sequence-query shape the mask memo amortizes.
#[must_use]
pub fn window_queries(
    archive: &rambo_workloads::SyntheticArchive,
    window: usize,
    per_doc: usize,
    n: usize,
) -> Vec<Vec<u64>> {
    let mut queries: Vec<Vec<u64>> = Vec::with_capacity(n);
    'outer: for (_, terms) in &archive.docs {
        if terms.len() < window {
            continue;
        }
        for w in terms.windows(window).take(per_doc) {
            queries.push(w.to_vec());
            if queries.len() == n * 9 / 10 {
                break 'outer;
            }
        }
    }
    while queries.len() < n {
        queries.push(vec![absent_term(queries.len())]);
    }
    queries
}

/// Single-term probes: 3/4 present terms (up to three per document), the
/// rest absent, exactly `n` in total.
#[must_use]
pub fn single_term_queries(archive: &rambo_workloads::SyntheticArchive, n: usize) -> Vec<u64> {
    let mut queries: Vec<u64> = archive
        .docs
        .iter()
        .flat_map(|(_, ts)| ts.iter().take(3).copied())
        .take(n * 3 / 4)
        .collect();
    while queries.len() < n {
        queries.push(absent_term(queries.len()));
    }
    queries
}

/// Exit with the conventional usage status (2) when any size/count flag is
/// zero — same contract as `ingest_throughput`'s `--docs`: a zero-sized run
/// measures nothing and would otherwise panic deep inside index
/// construction with a far less useful message. List-valued flags pass each
/// element (an empty list should be rejected by the caller with `(flag, 0)`).
pub fn require_nonzero(bin: &str, flags: &[(&str, usize)]) {
    for (flag, v) in flags {
        if *v == 0 {
            eprintln!("{bin}: {flag} must be >= 1 (a zero-sized run measures nothing)");
            std::process::exit(2);
        }
    }
}

/// Mean microseconds per item of a workload that processed `n` items.
#[must_use]
pub fn us_per(d: Duration, n: usize) -> f64 {
    d.as_secs_f64() * 1e6 / n.max(1) as f64
}

/// Wall-time speedup of `candidate` over `baseline` (>1 means faster).
#[must_use]
pub fn speedup(baseline: Duration, candidate: Duration) -> f64 {
    baseline.as_secs_f64() / candidate.as_secs_f64().max(1e-12)
}

/// Time a query workload: mean wall time per query over `terms`.
#[must_use]
pub fn mean_query_time(index: &dyn MembershipIndex, terms: &[u64]) -> Duration {
    assert!(!terms.is_empty());
    let (_, total) = time(|| {
        let mut touched = 0usize;
        for &t in terms {
            touched += index.query_term(t).len();
        }
        touched
    });
    total / terms.len() as u32
}

/// Minimal JSON-object writer for the machine-readable `BENCH_*.json`
/// artifacts the throughput benchmarks emit (no external JSON dependency;
/// keys keep insertion order so diffs across PRs stay readable).
#[derive(Debug, Default)]
pub struct JsonReport {
    fields: Vec<(String, String)>,
}

impl JsonReport {
    /// Start a report for the named benchmark.
    #[must_use]
    pub fn new(bench: &str) -> Self {
        let mut r = Self::default();
        r.str("bench", bench);
        r
    }

    /// Add a string field (JSON-escaped, including all control characters).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        use std::fmt::Write;
        let mut escaped = String::with_capacity(value.len());
        for c in value.chars() {
            match c {
                '"' => escaped.push_str("\\\""),
                '\\' => escaped.push_str("\\\\"),
                '\n' => escaped.push_str("\\n"),
                '\r' => escaped.push_str("\\r"),
                '\t' => escaped.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    write!(escaped, "\\u{:04x}", c as u32).expect("string write");
                }
                c => escaped.push(c),
            }
        }
        self.fields
            .push((key.to_string(), format!("\"{escaped}\"")));
        self
    }

    /// Add an integer field.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Add a float field. Values at or above 1e-3 in magnitude use fixed
    /// 6-decimal notation (stable across runs for diffing); smaller non-zero
    /// values switch to scientific notation so they are not flattened to
    /// `0.000000`.
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        let rendered = if value == 0.0 || value.abs() >= 1e-3 {
            format!("{value:.6}")
        } else {
            format!("{value:.6e}")
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Render the JSON object.
    #[must_use]
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("  \"{k}\": {v}"))
            .collect();
        format!("{{\n{}\n}}\n", body.join(",\n"))
    }

    /// Add a duration ratio field (>1 means `candidate` beat `baseline`).
    pub fn ratio(&mut self, key: &str, baseline: Duration, candidate: Duration) -> &mut Self {
        self.num(key, speedup(baseline, candidate))
    }

    /// Write the report to `path` and echo it to stdout.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        let rendered = self.render();
        print!("{rendered}");
        std::fs::write(path, rendered)
    }

    /// [`JsonReport::write`], panicking with context on failure — the
    /// shared tail of every `BENCH_*.json`-emitting binary.
    ///
    /// # Panics
    /// Panics when the file cannot be written.
    pub fn finish(&self, path: &str) {
        self.write(path)
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
    }
}

/// Minimal `--key value` argument parser for the harness binaries.
#[derive(Debug)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parse `std::env::args()`.
    #[must_use]
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            if let Some(key) = argv[i].strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    pairs.push((key.to_string(), argv[i + 1].clone()));
                    i += 2;
                } else {
                    pairs.push((key.to_string(), "true".to_string()));
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Self { pairs }
    }

    /// Look up a `usize` flag.
    #[must_use]
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Look up a `u64` flag.
    #[must_use]
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Look up an `f64` flag.
    #[must_use]
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Look up a boolean flag (present without value = true).
    #[must_use]
    pub fn get_bool(&self, key: &str) -> bool {
        self.get(key).is_some_and(|v| v != "false")
    }

    /// Raw lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Comma-separated usize list.
    #[must_use]
    pub fn get_usize_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.get(key) {
            None => default.to_vec(),
            Some(v) => v.split(',').filter_map(|x| x.trim().parse().ok()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambo_workloads::{ArchiveParams, SyntheticArchive};

    #[test]
    fn paper_bucket_grid_matches_table2() {
        assert_eq!(paper_buckets_for(100), 15);
        assert_eq!(paper_buckets_for(200), 27);
        assert_eq!(paper_buckets_for(500), 60);
        assert_eq!(paper_buckets_for(1000), 100);
        assert_eq!(paper_buckets_for(2000), 200);
        // Extrapolation stays √K-shaped.
        let b4000 = paper_buckets_for(4000);
        assert!((250..350).contains(&(b4000 as usize)), "B(4000) = {b4000}");
    }

    #[test]
    fn suite_builds_and_answers() {
        let archive = SyntheticArchive::generate(&ArchiveParams::tiny(30, 5));
        let suite = build_suite(&archive.docs, 200, false, 5, true);
        assert_eq!(suite.len(), 7);
        let probe = archive.docs[3].1[0];
        for built in &suite {
            assert!(
                built.index.query_term(probe).contains(&3),
                "{} lost the probe",
                built.index.label()
            );
            assert!(built.index.size_bytes() > 0);
        }
    }

    #[test]
    fn mean_query_time_is_positive() {
        let archive = SyntheticArchive::generate(&ArchiveParams::tiny(10, 6));
        let suite = build_suite(&archive.docs, 200, false, 6, false);
        let terms: Vec<u64> = archive.docs.iter().map(|(_, t)| t[0]).collect();
        for built in &suite {
            let d = mean_query_time(built.index.as_ref(), &terms);
            assert!(d.as_nanos() > 0);
        }
    }
}
