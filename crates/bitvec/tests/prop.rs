//! Property-based tests for the bit-vector substrate.
//!
//! The RAMBO query engine's correctness rests on these algebraic identities
//! (union distributing over partitions, intersection across repetitions), so
//! they are checked against a naive `Vec<bool>` model under random inputs.

use proptest::prelude::*;
use rambo_bitvec::kernel::{and_into_scalar, Backend, ColumnCounter, Kernel};
use rambo_bitvec::{BitVec, RankBitVec, RrrVec};

/// A bit length paired with set-bit positions below it.
type LenAndOnes = (usize, Vec<usize>);

/// Strategy: a bit length and a set of positions below it.
fn bits_strategy(max_len: usize) -> impl Strategy<Value = LenAndOnes> {
    (1..max_len).prop_flat_map(|len| {
        (
            Just(len),
            proptest::collection::vec(0..len, 0..(len.min(256))),
        )
    })
}

fn model(len: usize, ones: &[usize]) -> Vec<bool> {
    let mut v = vec![false; len];
    for &i in ones {
        v[i] = true;
    }
    v
}

/// Deterministic pseudo-random words from a fuzzed seed: `sparsify` extra
/// AND-draws thin the density (0 → ~50% set, 3 → ~6%), so the backend
/// identity tests cover both live and dying masks.
fn sparse_words(seed: u64, n: usize, sparsify: u32) -> Vec<u64> {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..n)
        .map(|_| (0..=sparsify).fold(u64::MAX, |w, _| w & next()))
        .collect()
}

/// Every kernel backend the host supports (scalar always; AVX2 where
/// `is_x86_feature_detected!` confirms it).
fn supported_kernels() -> Vec<Kernel> {
    Backend::ALL
        .into_iter()
        .filter(|b| b.is_supported())
        .map(|b| Kernel::forced(b).unwrap())
        .collect()
}

proptest! {
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn get_matches_model((len, ones) in bits_strategy(2000)) {
        let bv = BitVec::from_ones(len, ones.iter().copied());
        let m = model(len, &ones);
        for i in 0..len {
            prop_assert_eq!(bv.get(i), m[i]);
        }
        prop_assert_eq!(bv.count_ones(), m.iter().filter(|&&b| b).count());
    }

    #[test]
    fn or_and_xor_match_model(
        (len, a_ones) in bits_strategy(1500),
        b_seed in proptest::collection::vec(0usize..1500, 0..128),
    ) {
        let b_ones: Vec<usize> = b_seed.into_iter().map(|x| x % len).collect();
        let a = BitVec::from_ones(len, a_ones.iter().copied());
        let b = BitVec::from_ones(len, b_ones.iter().copied());
        let (ma, mb) = (model(len, &a_ones), model(len, &b_ones));

        let mut or = a.clone();
        or.or_assign(&b);
        let mut and = a.clone();
        and.and_assign(&b);
        let mut xor = a.clone();
        xor.xor_assign(&b);

        for i in 0..len {
            prop_assert_eq!(or.get(i), ma[i] | mb[i]);
            prop_assert_eq!(and.get(i), ma[i] & mb[i]);
            prop_assert_eq!(xor.get(i), ma[i] ^ mb[i]);
        }
    }

    #[test]
    fn union_is_superset_intersection_is_subset(
        (len, a_ones) in bits_strategy(1000),
        b_seed in proptest::collection::vec(0usize..1000, 0..128),
    ) {
        let b_ones: Vec<usize> = b_seed.into_iter().map(|x| x % len).collect();
        let a = BitVec::from_ones(len, a_ones);
        let b = BitVec::from_ones(len, b_ones);
        let mut or = a.clone();
        or.or_assign(&b);
        let mut and = a.clone();
        and.and_assign(&b);
        prop_assert!(a.is_subset_of(&or));
        prop_assert!(b.is_subset_of(&or));
        prop_assert!(and.is_subset_of(&a));
        prop_assert!(and.is_subset_of(&b));
    }

    #[test]
    fn iter_ones_roundtrip((len, ones) in bits_strategy(3000)) {
        let bv = BitVec::from_ones(len, ones.iter().copied());
        let collected: Vec<usize> = bv.iter_ones().collect();
        let rebuilt = BitVec::from_ones(len, collected.iter().copied());
        prop_assert_eq!(&bv, &rebuilt);
        // Sorted and unique.
        prop_assert!(collected.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn serialization_roundtrip((len, ones) in bits_strategy(4000)) {
        let bv = BitVec::from_ones(len, ones);
        let back = BitVec::from_bytes(&bv.to_bytes()).unwrap();
        prop_assert_eq!(bv, back);
    }

    /// Zero-copy views decode to the same logical vector as the copying
    /// path, borrow the input buffer, and answer the word-level kernels
    /// identically.
    #[test]
    fn open_view_equals_from_bytes((len, ones) in bits_strategy(4000)) {
        let bv = BitVec::from_ones(len, ones);
        let buf: std::sync::Arc<[u8]> = bv.to_bytes().into();
        if !(buf.as_ptr() as usize).is_multiple_of(8) {
            continue; // 32-bit Arc layouts may misalign the payload; the
                      // loader correctly errors there (see store.rs tests)
        }
        let owned = BitVec::from_bytes(&buf).unwrap();
        let view = BitVec::open_view(buf.clone()).unwrap();
        prop_assert!(view.is_view());
        prop_assert_eq!(&view, &owned);
        prop_assert_eq!(view.count_ones(), owned.count_ones());
        prop_assert_eq!(view.any(), owned.any());
        prop_assert_eq!(
            view.iter_ones().collect::<Vec<_>>(),
            owned.iter_ones().collect::<Vec<_>>()
        );
        if !view.is_empty() {
            let p = view.words().as_ptr().cast::<u8>();
            prop_assert!(buf.as_ptr_range().contains(&p), "view must borrow the buffer");
        }
    }

    /// Corrupted view buffers (truncation at any depth, shifted/misaligned
    /// payloads, byte flips) return errors or decode to a consistent
    /// vector — never panic, never UB.
    #[test]
    fn open_view_fuzz_errors_not_ub(
        (len, ones) in bits_strategy(2000),
        cut in any::<proptest::sample::Index>(),
        flip_at in any::<proptest::sample::Index>(),
        flip_to in any::<u8>(),
        shift in 1usize..8,
    ) {
        let bytes = BitVec::from_ones(len, ones).to_bytes();

        let truncated: std::sync::Arc<[u8]> = bytes[..cut.index(bytes.len())].to_vec().into();
        prop_assert!(BitVec::open_view(truncated).is_err());

        let mut shifted = vec![0u8; shift];
        shifted.extend_from_slice(&bytes);
        prop_assert!(BitVec::open_view(shifted.into()).is_err(), "shifted buffer has bad magic");

        let mut flipped = bytes.clone();
        let at = flip_at.index(flipped.len());
        flipped[at] = flip_to;
        if let Ok(v) = BitVec::open_view(flipped.into()) {
            let _ = v.count_ones(); // decoded → must be internally consistent
            let _ = v.iter_ones().count();
        }
    }

    #[test]
    fn rank_select_consistent((len, ones) in bits_strategy(4000)) {
        let rb = RankBitVec::new(BitVec::from_ones(len, ones));
        let mut acc = 0usize;
        for i in 0..len {
            prop_assert_eq!(rb.rank1(i), acc);
            if rb.get(i) { acc += 1; }
        }
        prop_assert_eq!(rb.rank1(len), acc);
        for k in 0..rb.count_ones() {
            let p = rb.select1(k).unwrap();
            prop_assert!(rb.get(p));
            prop_assert_eq!(rb.rank1(p), k);
        }
    }

    /// Every supported kernel backend (AVX2 where the host has it) must be
    /// **bit-identical** to the pinned scalar backend for the fused N-row
    /// AND — mask words *and* the liveness flag — across fuzzed lengths,
    /// densities (sparse rows exercise the mask-death path) and all four
    /// probe arities. On hosts without AVX2 only scalar runs and the test
    /// still passes (the dispatch falls back silently).
    #[test]
    fn kernel_backends_fused_and_bit_identical(
        len in 0usize..600,
        seed in any::<u64>(),
        sparsify in 0u32..4,
    ) {
        let scalar = Kernel::forced(Backend::Scalar).unwrap();
        let rows: Vec<Vec<u64>> =
            (0..4).map(|i| sparse_words(seed ^ (i * 0x9E37), len, sparsify)).collect();
        let base = sparse_words(seed ^ 0xABCD, len, 0);
        for kernel in supported_kernels() {
            for arity in 1..=4usize {
                // Independent reference: row-at-a-time scalar AND.
                let mut expect = base.clone();
                for r in rows.iter().take(arity) {
                    and_into_scalar(&mut expect, r);
                }
                let mut scalar_got = base.clone();
                let mut got = base.clone();
                let (scalar_live, live) = match arity {
                    1 => (
                        scalar.and_rows_into_any(&mut scalar_got, [&rows[0][..]]),
                        kernel.and_rows_into_any(&mut got, [&rows[0][..]]),
                    ),
                    2 => (
                        scalar.and_rows_into_any(&mut scalar_got, [&rows[0][..], &rows[1]]),
                        kernel.and_rows_into_any(&mut got, [&rows[0][..], &rows[1]]),
                    ),
                    3 => (
                        scalar.and_rows_into_any(
                            &mut scalar_got,
                            [&rows[0][..], &rows[1], &rows[2]],
                        ),
                        kernel.and_rows_into_any(&mut got, [&rows[0][..], &rows[1], &rows[2]]),
                    ),
                    _ => (
                        scalar.and_rows_into_any(
                            &mut scalar_got,
                            [&rows[0][..], &rows[1], &rows[2], &rows[3]],
                        ),
                        kernel.and_rows_into_any(
                            &mut got,
                            [&rows[0][..], &rows[1], &rows[2], &rows[3]],
                        ),
                    ),
                };
                prop_assert_eq!(&scalar_got, &expect, "scalar vs reference, arity {}", arity);
                prop_assert_eq!(
                    &got, &expect,
                    "{} vs reference, arity {}", kernel.backend(), arity
                );
                prop_assert_eq!(scalar_live, expect.iter().any(|&w| w != 0));
                prop_assert_eq!(live, scalar_live, "{} liveness", kernel.backend());
            }
        }
    }

    /// OR, popcount and any must agree across every supported backend on
    /// fuzzed words (the intersection walk and fill statistics depend on
    /// these three being interchangeable).
    #[test]
    fn kernel_backends_or_popcount_any_bit_identical(
        len in 0usize..600,
        seed in any::<u64>(),
        sparsify in 0u32..4,
    ) {
        let scalar = Kernel::forced(Backend::Scalar).unwrap();
        let a = sparse_words(seed, len, sparsify);
        let b = sparse_words(seed ^ 0x5555, len, sparsify);
        for kernel in supported_kernels() {
            let mut or_s = a.clone();
            scalar.or_into(&mut or_s, &b);
            let mut or_k = a.clone();
            kernel.or_into(&mut or_k, &b);
            prop_assert_eq!(&or_k, &or_s, "{} or_into", kernel.backend());
            prop_assert_eq!(kernel.popcount(&a), scalar.popcount(&a));
            prop_assert_eq!(kernel.any(&a), scalar.any(&a));
            prop_assert_eq!(kernel.popcount(&or_k), scalar.popcount(&or_s));
        }
    }

    /// The bit-sliced column counters must produce identical counts under
    /// every supported backend (fuzzed row width, row count and density) —
    /// the fill statistics behind FPR prediction may not depend on the CPU.
    #[test]
    fn kernel_backends_column_counts_bit_identical(
        width in 1usize..8,
        n_rows in 0usize..70,
        seed in any::<u64>(),
        sparsify in 0u32..4,
    ) {
        let rows: Vec<Vec<u64>> =
            (0..n_rows).map(|i| sparse_words(seed ^ (i as u64 * 31), width, sparsify)).collect();
        let scalar = Kernel::forced(Backend::Scalar).unwrap();
        let mut reference = ColumnCounter::with_kernel(width, scalar);
        for row in &rows {
            reference.add_row(row);
        }
        let expect = reference.counts();
        for kernel in supported_kernels() {
            let mut cc = ColumnCounter::with_kernel(width, kernel);
            for row in &rows {
                cc.add_row(row);
            }
            prop_assert_eq!(cc.counts(), expect.clone(), "{}", kernel.backend());
        }
    }

    /// RRR vectors round-trip through the v2 `RRV2` framing at every fuzzed
    /// density and length: decode gives back the same logical vector
    /// (access and rank1 agree with the dense model), and the encoded
    /// record self-describes its length so trailing bytes survive.
    #[test]
    fn rrr_serialization_roundtrip((len, ones) in bits_strategy(4000), tail in any::<u8>()) {
        let dense = BitVec::from_ones(len, ones);
        let rrr = RrrVec::from_bitvec(&dense);
        let bytes = rrr.to_bytes();

        let back = RrrVec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.len(), dense.len());
        prop_assert_eq!(back.count_ones(), dense.count_ones());
        prop_assert_eq!(back.to_bitvec(), dense.clone());
        let rank_dense = RankBitVec::new(dense.clone());
        for i in (0..len).step_by(11) {
            prop_assert_eq!(back.get(i), dense.get(i));
            prop_assert_eq!(back.rank1(i), rank_dense.rank1(i));
        }

        // Framed decode consumes exactly its record and leaves the tail.
        let mut framed = bytes.clone();
        framed.extend_from_slice(&[tail, tail]);
        let mut slice = framed.as_slice();
        let again = RrrVec::decode_from(&mut slice).unwrap();
        prop_assert_eq!(slice.len(), 2, "decode must consume exactly one record");
        prop_assert_eq!(again.to_bitvec(), dense);
    }

    /// Corrupted or truncated `RRV2` records must return an error or decode
    /// to an internally consistent vector — never panic, never UB. Mirrors
    /// `open_view_fuzz_errors_not_ub` for the compressed framing.
    #[test]
    fn rrr_decode_fuzz_errors_not_panics(
        (len, ones) in bits_strategy(2000),
        cut in any::<proptest::sample::Index>(),
        flip_at in any::<proptest::sample::Index>(),
        flip_to in any::<u8>(),
    ) {
        let bytes = RrrVec::from_bitvec(&BitVec::from_ones(len, ones)).to_bytes();

        // Truncation at every depth is an error, not a panic.
        prop_assert!(RrrVec::from_bytes(&bytes[..cut.index(bytes.len())]).is_err());

        // A flipped byte either errors out or yields a vector whose reads
        // stay in bounds (class/offset tables may still be coherent).
        let mut flipped = bytes.clone();
        let at = flip_at.index(flipped.len());
        flipped[at] = flip_to;
        if let Ok(v) = RrrVec::from_bytes(&flipped) {
            let n = v.len();
            let _ = v.count_ones();
            let _ = v.rank1(n);
            if n > 0 {
                let _ = v.get(n - 1);
            }
        }
    }

    #[test]
    fn rrr_equals_dense((len, ones) in bits_strategy(4000)) {
        let dense = BitVec::from_ones(len, ones);
        let rrr = RrrVec::from_bitvec(&dense);
        prop_assert_eq!(rrr.len(), dense.len());
        prop_assert_eq!(rrr.count_ones(), dense.count_ones());
        prop_assert_eq!(rrr.to_bitvec(), dense.clone());
        let rank_dense = RankBitVec::new(dense.clone());
        for i in (0..len).step_by(7) {
            prop_assert_eq!(rrr.get(i), dense.get(i));
            prop_assert_eq!(rrr.rank1(i), rank_dense.rank1(i));
        }
    }
}
