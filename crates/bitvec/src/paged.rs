//! File-backed word storage with an on-demand block cache — the paged
//! loading tier behind [`crate::WordStore`]'s owned/view backends.
//!
//! A serialized catalog can be far larger than RAM (the paper's headline is
//! 170TB on disk); opening it must read *metadata only*, and queries must
//! fault in just the rows they probe. [`PagedFile`] wraps one open catalog
//! file plus a sharded, byte-budgeted block cache; [`PagedWords`] is one
//! matrix payload inside that file, exposing bucket-row-aligned reads:
//! blocks are a whole number of rows (`stride` words), so a probed row
//! never straddles two pages and a [`PageGuard`] can hand out one
//! contiguous `&[u64]` slice per row.
//!
//! The cache reuses the intrusive-LRU shape proven by the server's
//! `ResultCache`: a map indexes into a slot arena that doubles as a
//! doubly-linked recency list, so hit, insert and evict are all O(1) under
//! one short shard lock. It is sized in **bytes, not blocks**, and each
//! resident block remembers its owning tier's [`BlockCacheCounters`] so an
//! eviction is charged to the tier that loaded it, not the tier that
//! triggered it.
//!
//! Words are decoded from little-endian bytes at fault time (an explicit
//! conversion, unlike the zero-copy [`crate::WordView`] which requires an
//! LE target), so the paged path works on any endianness.

use crate::error::DecodeError;
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::ops::Deref;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sentinel link for the intrusive LRU lists.
const NIL: u32 = u32::MAX;

/// Lock shards — same count as the result cache; the critical section is a
/// hash probe plus a few link writes.
const SHARDS: usize = 8;

/// Accounting overhead charged per resident block on top of its word
/// payload: key, LRU links, owner pointer and the map slot.
const ENTRY_OVERHEAD_BYTES: usize = 64;

/// Target page size in words (8 KiB) — rounded up to a whole number of
/// rows so a row read never crosses a page.
const TARGET_BLOCK_WORDS: usize = 1024;

/// Per-tier block-cache traffic counters (lock-free increments).
#[derive(Debug, Default)]
pub struct BlockCacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BlockCacheCounters {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn record_evict(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time counter values.
    #[must_use]
    pub fn snapshot(&self) -> BlockCacheSnapshot {
        BlockCacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of one tier's block-cache traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheSnapshot {
    /// Block reads served from the cache.
    pub hits: u64,
    /// Block reads that faulted in from the file.
    pub misses: u64,
    /// Resident blocks of this tier evicted by the byte budget.
    pub evictions: u64,
}

impl BlockCacheSnapshot {
    /// Hits over total block reads; 0.0 when no reads happened.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One resident block with its LRU links.
struct Slot {
    key: u128,
    block: Arc<[u64]>,
    bytes: usize,
    owner: Arc<BlockCacheCounters>,
    prev: u32,
    next: u32,
}

/// One lock shard: an intrusive-LRU arena with a byte budget.
struct Shard {
    map: HashMap<u128, u32>,
    slots: Vec<Slot>,
    /// Recycled arena indices (evictions free slots).
    free: Vec<u32>,
    head: u32,
    tail: u32,
    bytes: usize,
}

impl Shard {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn unlink(&mut self, s: u32) {
        let (prev, next) = (self.slots[s as usize].prev, self.slots[s as usize].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    fn push_front(&mut self, s: u32) {
        self.slots[s as usize].prev = NIL;
        self.slots[s as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = s;
        }
        self.head = s;
        if self.tail == NIL {
            self.tail = s;
        }
    }

    /// Unlink + unmap + free a slot, dropping its block payload and
    /// charging the eviction to the block's owner.
    fn evict(&mut self, s: u32) {
        self.unlink(s);
        let slot = &mut self.slots[s as usize];
        self.map.remove(&slot.key);
        slot.block = Arc::from(Vec::new());
        slot.owner.record_evict();
        self.bytes -= slot.bytes;
        self.free.push(s);
    }
}

/// Sharded, byte-bounded LRU of file blocks, shared by every matrix payload
/// of one [`PagedFile`].
pub(crate) struct PageCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget (total / SHARDS).
    shard_cap: usize,
}

impl PageCache {
    fn new(capacity_bytes: usize) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            shard_cap: (capacity_bytes / SHARDS).max(ENTRY_OVERHEAD_BYTES),
        }
    }

    fn shard_of(&self, key: u128) -> &Mutex<Shard> {
        // Block numbers are small sequential integers — mix before sharding.
        let mut h = (key as u64) ^ ((key >> 64) as u64).rotate_left(29);
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 29;
        &self.shards[(h as usize) & (SHARDS - 1)]
    }

    /// Look up a resident block, bumping it to most-recently-used.
    fn get(&self, key: u128) -> Option<Arc<[u64]>> {
        let mut shard = self.shard_of(key).lock().expect("page cache shard");
        let s = *shard.map.get(&key)?;
        if shard.head != s {
            shard.unlink(s);
            shard.push_front(s);
        }
        Some(shard.slots[s as usize].block.clone())
    }

    /// Admit a freshly loaded block, evicting least-recently-used blocks
    /// until the shard fits its budget. Blocks larger than a whole shard
    /// are not admitted (the caller still gets its loaded copy).
    fn insert(&self, key: u128, block: &Arc<[u64]>, owner: &Arc<BlockCacheCounters>) {
        let bytes = std::mem::size_of_val(&block[..]) + ENTRY_OVERHEAD_BYTES;
        if bytes > self.shard_cap {
            return;
        }
        let mut shard = self.shard_of(key).lock().expect("page cache shard");
        if let Some(&s) = shard.map.get(&key) {
            // A concurrent fault already admitted this block.
            shard.evict(s);
        }
        while shard.bytes + bytes > self.shard_cap {
            let victim = shard.tail;
            debug_assert_ne!(victim, NIL, "budget admits at least one block");
            shard.evict(victim);
        }
        let s = if let Some(s) = shard.free.pop() {
            let slot = &mut shard.slots[s as usize];
            slot.key = key;
            slot.block = block.clone();
            slot.bytes = bytes;
            slot.owner = owner.clone();
            s
        } else {
            let s = u32::try_from(shard.slots.len()).expect("page cache slots exceed u32");
            shard.slots.push(Slot {
                key,
                block: block.clone(),
                bytes,
                owner: owner.clone(),
                prev: NIL,
                next: NIL,
            });
            s
        };
        shard.map.insert(key, s);
        shard.push_front(s);
        shard.bytes += bytes;
    }

    /// Resident blocks across all shards (tests/diagnostics).
    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("page cache shard").map.len())
            .sum()
    }
}

/// One open catalog file plus the block cache its matrix payloads share.
///
/// Opening reads nothing but the file length; all payload traffic goes
/// through [`PagedWords`] faults. Each payload claims a unique *region* id
/// so block keys from different matrices never collide in the shared cache.
pub struct PagedFile {
    file: Mutex<File>,
    len: u64,
    cache: PageCache,
    next_region: AtomicU64,
}

impl std::fmt::Debug for PagedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedFile")
            .field("len", &self.len)
            .field("resident_blocks", &self.cache.len())
            .finish_non_exhaustive()
    }
}

impl PagedFile {
    /// Open a catalog file for paged access with a block cache of about
    /// `cache_bytes` (apportioned across lock shards).
    ///
    /// # Errors
    /// Any I/O error from opening or stat-ing the file.
    pub fn open(path: impl AsRef<Path>, cache_bytes: usize) -> io::Result<Arc<Self>> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Ok(Arc::new(Self {
            file: Mutex::new(file),
            len,
            cache: PageCache::new(cache_bytes),
            next_region: AtomicU64::new(0),
        }))
    }

    /// Total file length in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for a zero-length file.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read `len` raw bytes at `offset`, bypassing the block cache — for
    /// headers and other metadata read once at open.
    ///
    /// # Errors
    /// Any I/O error; reading past the end yields `UnexpectedEof`.
    pub fn read_bytes(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        let mut file = self.file.lock().expect("paged file");
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Read `n_words` little-endian words at byte `offset`.
    fn read_words(&self, offset: u64, n_words: usize) -> io::Result<Vec<u64>> {
        let bytes = self.read_bytes(offset, n_words * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect())
    }

    /// Resident blocks across the cache (tests/diagnostics).
    #[must_use]
    pub fn resident_blocks(&self) -> usize {
        self.cache.len()
    }
}

/// One matrix word payload inside a [`PagedFile`], faulted in
/// row-aligned blocks on demand.
///
/// `stride` is the row length in words; blocks are `stride` rounded up to
/// ~`TARGET_BLOCK_WORDS` (a whole number of rows), so any in-row read is
/// one contiguous slice of one block.
#[derive(Clone)]
pub struct PagedWords {
    file: Arc<PagedFile>,
    /// Cache-key namespace for this payload within the shared file cache.
    region: u64,
    /// Byte offset of word 0 in the file.
    start: u64,
    /// Total payload words.
    words: usize,
    /// Words per row.
    stride: usize,
    /// Words per cache block (a multiple of `stride`).
    block_words: usize,
    counters: Arc<BlockCacheCounters>,
}

impl std::fmt::Debug for PagedWords {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedWords")
            .field("start", &self.start)
            .field("words", &self.words)
            .field("stride", &self.stride)
            .field("block_words", &self.block_words)
            .finish_non_exhaustive()
    }
}

impl PagedWords {
    /// Describe a payload of `words` words starting at byte `start` of
    /// `file`, organized in rows of `stride` words. Faulted blocks are
    /// charged to `counters` (one set per catalog tier).
    ///
    /// # Errors
    /// [`DecodeError`] when the described range overruns the file, `stride`
    /// is zero, or `words` is not a whole number of rows.
    pub fn new(
        file: Arc<PagedFile>,
        start: u64,
        words: usize,
        stride: usize,
        counters: Arc<BlockCacheCounters>,
    ) -> Result<Self, DecodeError> {
        if stride == 0 || !words.is_multiple_of(stride) {
            return Err(DecodeError::new("paged payload is not whole rows"));
        }
        let end = (words as u64)
            .checked_mul(8)
            .and_then(|b| b.checked_add(start))
            .ok_or_else(|| DecodeError::new("paged payload size overflow"))?;
        if end > file.len() {
            return Err(DecodeError::new("paged payload overruns file"));
        }
        let rows_per_block = (TARGET_BLOCK_WORDS / stride).max(1);
        Ok(Self {
            region: file.next_region.fetch_add(1, Ordering::Relaxed),
            block_words: rows_per_block * stride,
            file,
            start,
            words,
            stride,
            counters,
        })
    }

    /// Total payload words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words
    }

    /// True when the payload holds no words.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words == 0
    }

    /// Words per cache block (tests/diagnostics).
    #[must_use]
    pub fn block_words(&self) -> usize {
        self.block_words
    }

    /// The tier counters charged for this payload's cache traffic.
    #[must_use]
    pub fn counters(&self) -> &Arc<BlockCacheCounters> {
        &self.counters
    }

    /// Fetch the block containing word `first`, from cache or file.
    fn fetch(&self, block_no: usize) -> Arc<[u64]> {
        let key = (u128::from(self.region) << 64) | block_no as u128;
        if let Some(block) = self.file.cache.get(key) {
            self.counters.record_hit();
            return block;
        }
        self.counters.record_miss();
        let first = block_no * self.block_words;
        let n = self.block_words.min(self.words - first);
        let words = self
            .file
            .read_words(self.start + (first as u64) * 8, n)
            .expect("paged catalog read failed (file changed under the process?)");
        let block: Arc<[u64]> = words.into();
        self.file.cache.insert(key, &block, &self.counters);
        block
    }

    /// Read `n` words at `word_off` — an in-row range: `n ≤ stride` and the
    /// range may not cross a row boundary, which guarantees it lives in one
    /// block. Returns a guard dereferencing to the word slice.
    ///
    /// # Panics
    /// Panics when the range overruns the payload or crosses a block, or if
    /// the underlying file read fails (the catalog file changed or vanished
    /// under the process — unrecoverable for a serving probe path).
    #[must_use]
    pub fn read(&self, word_off: usize, n: usize) -> PageGuard {
        assert!(word_off + n <= self.words, "paged read out of range");
        let block_no = word_off / self.block_words;
        let within = word_off - block_no * self.block_words;
        assert!(within + n <= self.block_words, "paged read crosses a page");
        PageGuard {
            block: self.fetch(block_no),
            start: within,
            len: n,
        }
    }

    /// Read a single word (cached like any block access).
    ///
    /// # Panics
    /// Panics when `word_off` is out of range or on a failed file read.
    #[must_use]
    pub fn read_word(&self, word_off: usize) -> u64 {
        self.read(word_off, 1)[0]
    }
}

/// A borrowed view of words inside a resident cache block.
pub struct PageGuard {
    block: Arc<[u64]>,
    start: usize,
    len: usize,
}

impl Deref for PageGuard {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        &self.block[self.start..self.start + self.len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    /// Write a file of `n` little-endian words `f(i)` and open it paged.
    fn paged_fixture(
        name: &str,
        n: usize,
        cache_bytes: usize,
    ) -> (Arc<PagedFile>, std::path::PathBuf) {
        let path =
            std::env::temp_dir().join(format!("rambo_paged_{}_{}", std::process::id(), name));
        let mut f = File::create(&path).unwrap();
        for i in 0..n {
            f.write_all(&(i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes())
                .unwrap();
        }
        f.flush().unwrap();
        (PagedFile::open(&path, cache_bytes).unwrap(), path)
    }

    fn expect_word(i: usize) -> u64 {
        (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    #[test]
    fn reads_match_file_and_count_hits() {
        let (file, path) = paged_fixture("basic", 4096, 1 << 20);
        let counters = Arc::new(BlockCacheCounters::new());
        let pw = PagedWords::new(file.clone(), 0, 4096, 8, counters.clone()).unwrap();
        assert_eq!(pw.block_words(), 1024);
        for row in 0..512 {
            let g = pw.read(row * 8, 8);
            for w in 0..8 {
                assert_eq!(g[w], expect_word(row * 8 + w), "row {row} word {w}");
            }
        }
        let snap = counters.snapshot();
        assert_eq!(snap.misses, 4, "4096 words / 1024-word blocks");
        assert_eq!(snap.hits, 512 - 4);
        assert!(snap.hit_ratio() > 0.9);
        assert_eq!(pw.read_word(77), expect_word(77));
        drop(file);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn byte_budget_evicts_and_charges_owner() {
        // Each shard's budget fits exactly one 8 KiB block; touching 16
        // blocks lands ≥ 2 in some shard and forces evictions.
        let (file, path) = paged_fixture("evict", 16 * 1024, SHARDS * (1024 * 8 + 64));
        let counters = Arc::new(BlockCacheCounters::new());
        let pw = PagedWords::new(file.clone(), 0, 16 * 1024, 8, counters.clone()).unwrap();
        for pass in 0..2 {
            for block in 0..16 {
                let g = pw.read(block * 1024, 8);
                assert_eq!(g[0], expect_word(block * 1024), "pass {pass}");
            }
        }
        let snap = counters.snapshot();
        assert!(snap.evictions > 0, "tiny budget must evict: {snap:?}");
        assert!(snap.misses > 16, "second pass re-faults evicted blocks");
        assert!(file.resident_blocks() <= SHARDS);
        drop(file);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn regions_do_not_collide_and_metadata_reads_bypass_cache() {
        let (file, path) = paged_fixture("regions", 2048, 1 << 20);
        let c1 = Arc::new(BlockCacheCounters::new());
        let c2 = Arc::new(BlockCacheCounters::new());
        // Two payloads over different windows of the same file.
        let a = PagedWords::new(file.clone(), 0, 1024, 4, c1.clone()).unwrap();
        let b = PagedWords::new(file.clone(), 1024 * 8, 1024, 4, c2.clone()).unwrap();
        assert_eq!(a.read_word(0), expect_word(0));
        assert_eq!(b.read_word(0), expect_word(1024));
        assert_eq!(c1.snapshot().misses, 1);
        assert_eq!(c2.snapshot().misses, 1);
        let raw = file.read_bytes(8, 8).unwrap();
        assert_eq!(u64::from_le_bytes(raw.try_into().unwrap()), expect_word(1));
        assert_eq!(
            c1.snapshot().misses + c2.snapshot().misses,
            2,
            "read_bytes is uncached"
        );
        drop((a, b, file));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn constructor_rejects_bad_geometry() {
        let (file, path) = paged_fixture("geom", 64, 1 << 16);
        let c = Arc::new(BlockCacheCounters::new());
        assert!(PagedWords::new(file.clone(), 0, 64, 0, c.clone()).is_err());
        assert!(PagedWords::new(file.clone(), 0, 63, 8, c.clone()).is_err());
        assert!(
            PagedWords::new(file.clone(), 8, 64, 8, c.clone()).is_err(),
            "overruns file"
        );
        assert!(PagedWords::new(file.clone(), 0, 64, 8, c).is_ok());
        drop(file);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn wide_rows_get_single_row_blocks() {
        let n = 4 * 2000;
        let (file, path) = paged_fixture("wide", n, 1 << 20);
        let c = Arc::new(BlockCacheCounters::new());
        // stride 2000 > TARGET_BLOCK_WORDS → one row per block.
        let pw = PagedWords::new(file.clone(), 0, n, 2000, c).unwrap();
        assert_eq!(pw.block_words(), 2000);
        let g = pw.read(3 * 2000, 2000);
        assert_eq!(g[1999], expect_word(4 * 2000 - 1));
        drop(file);
        std::fs::remove_file(path).ok();
    }
}
